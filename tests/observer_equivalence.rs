//! Observer-equivalence pin: an [`Execution`] run with the migrated
//! probes (`SegmentObserver`, `SpecObserver`, `AllianceObserver`)
//! reproduces the exact `RunStats` and probe outputs of the
//! pre-redesign hand-rolled stepping loops.
//!
//! Each `manual_*` function below is a literal replica of the loop the
//! experiment layer used before the execution/observer redesign; the
//! property tests (over a golden seed set plus generated seeds) assert
//! byte-for-byte agreement with the observer-driven path. This is what
//! guarantees the E1–E12 reproduction numbers survived the API
//! redesign unchanged.

use proptest::prelude::*;
use ssr_alliance::verify::{self, AllianceObserver};
use ssr_core::{toys::Agreement, Sdr, SegmentObserver, SegmentReport, SegmentTracker, Standalone};
use ssr_graph::{generators, Graph};
use ssr_runtime::{Algorithm, Daemon, RunStats, Simulator, StepOutcome};
use ssr_unison::{spec, unison_sdr, Unison};

/// The golden seed set pinning the equivalence on fixed trajectories.
const GOLDEN_SEEDS: [u64; 6] = [0, 1, 0x5D2, 0xE3_00, 0xBEEF, 0x5EED_CAFE];

fn daemon_from(idx: u8) -> Daemon {
    match idx % 4 {
        0 => Daemon::RandomSubset { p: 0.5 },
        1 => Daemon::Central,
        2 => Daemon::RoundRobin,
        _ => Daemon::Synchronous,
    }
}

/// Pre-redesign `run_until`: predicate checked on the initial
/// configuration, then after every step, bounded by `max_steps`.
/// Returns `(reached, terminal, steps_used, moves, rounds)`.
fn manual_run_until<A: Algorithm>(
    sim: &mut Simulator<'_, A>,
    max_steps: u64,
    mut predicate: impl FnMut(&Graph, &[A::State]) -> bool,
) -> (bool, bool, u64, u64, u64) {
    let mut steps_used = 0;
    if predicate(sim.graph(), sim.states()) {
        return (
            true,
            sim.is_terminal(),
            steps_used,
            sim.stats().moves,
            sim.rounds_now(),
        );
    }
    while steps_used < max_steps {
        match sim.step() {
            StepOutcome::Terminal => {
                return (false, true, steps_used, sim.stats().moves, sim.rounds_now());
            }
            StepOutcome::Progress { .. } => {
                steps_used += 1;
                if predicate(sim.graph(), sim.states()) {
                    return (
                        true,
                        sim.is_terminal(),
                        steps_used,
                        sim.stats().moves,
                        sim.rounds_now(),
                    );
                }
            }
        }
    }
    (
        false,
        sim.is_terminal(),
        steps_used,
        sim.stats().moves,
        sim.rounds_now(),
    )
}

/// Pre-redesign E3 body: hand-rolled loop feeding a [`SegmentTracker`].
fn manual_segments(graph_seed: u64, sim_seed: u64, daemon: Daemon) -> (SegmentReport, RunStats) {
    let g = generators::random_connected(10, 5, graph_seed);
    let sdr = Sdr::new(Agreement::new(6));
    let init = sdr.arbitrary_config(&g, graph_seed ^ 0xF00D);
    let mut tracker = SegmentTracker::new(&sdr, &g, &init);
    let mut sim = Simulator::new(&g, sdr, init, daemon, sim_seed);
    for _ in 0..100_000 {
        match sim.step() {
            StepOutcome::Terminal => break,
            StepOutcome::Progress { .. } => tracker.after_step(
                sim.algorithm(),
                sim.graph(),
                sim.states(),
                sim.last_activated(),
            ),
        }
    }
    (tracker.report(), sim.stats().clone())
}

/// Observer-driven E3 body over the same scenario.
fn observed_segments(graph_seed: u64, sim_seed: u64, daemon: Daemon) -> (SegmentReport, RunStats) {
    let g = generators::random_connected(10, 5, graph_seed);
    let sdr = Sdr::new(Agreement::new(6));
    let init = sdr.arbitrary_config(&g, graph_seed ^ 0xF00D);
    let mut probe = SegmentObserver::new(&sdr, &g, &init);
    let mut sim = Simulator::new(&g, sdr, init, daemon, sim_seed);
    sim.execution().cap(100_000).observe(&mut probe).run();
    (probe.report(), sim.stats().clone())
}

/// Pre-redesign E6 body: stabilize, then a hand-rolled liveness window.
fn manual_liveness(seed: u64, daemon: Daemon) -> (u64, u64, u64, usize, u64, RunStats) {
    let g = generators::random_connected(8, 4, seed);
    let algo = unison_sdr(Unison::for_graph(&g));
    let k = algo.input().period();
    let init = algo.arbitrary_config(&g, seed ^ 0xAB);
    let check = unison_sdr(Unison::for_graph(&g));
    let mut sim = Simulator::new(&g, algo, init, daemon, seed);
    let (_, _, _, moves, rounds) =
        manual_run_until(&mut sim, 5_000_000, |gr, st| check.is_normal_config(gr, st));
    let clocks: Vec<u64> = sim.states().iter().map(|s| s.inner).collect();
    let mut monitor = spec::LivenessMonitor::new(&clocks);
    let mut violations = 0usize;
    let window = 50 * g.node_count() as u64;
    for _ in 0..window {
        sim.step();
        let clocks: Vec<u64> = sim.states().iter().map(|s| s.inner).collect();
        violations += spec::safety_violations(&g, &clocks, k);
        monitor.observe(&clocks);
    }
    (
        moves,
        rounds,
        monitor.min_increments(),
        violations,
        window,
        sim.stats().clone(),
    )
}

/// Observer-driven E6 body over the same scenario.
fn observed_liveness(seed: u64, daemon: Daemon) -> (u64, u64, u64, usize, u64, RunStats) {
    let g = generators::random_connected(8, 4, seed);
    let algo = unison_sdr(Unison::for_graph(&g));
    let init = algo.arbitrary_config(&g, seed ^ 0xAB);
    let check = unison_sdr(Unison::for_graph(&g));
    let mut sim = Simulator::new(&g, algo, init, daemon, seed);
    let out = sim
        .execution()
        .cap(5_000_000)
        .until(|gr, st| check.is_normal_config(gr, st))
        .run();
    let mut probe = spec::SpecObserver::watching(&sim);
    let window = 50 * g.node_count() as u64;
    sim.execution().cap(window).observe(&mut probe).run();
    (
        out.moves_at_hit,
        out.rounds_at_hit,
        probe.min_increments(),
        probe.safety_violations(),
        window,
        sim.stats().clone(),
    )
}

#[test]
fn golden_seeds_segment_probe_equivalence() {
    for (i, &seed) in GOLDEN_SEEDS.iter().enumerate() {
        let daemon = daemon_from(i as u8);
        let manual = manual_segments(seed, seed ^ 7, daemon.clone());
        let observed = observed_segments(seed, seed ^ 7, daemon.clone());
        assert_eq!(manual, observed, "seed {seed} daemon {daemon:?}");
    }
}

#[test]
fn golden_seeds_liveness_probe_equivalence() {
    for (i, &seed) in GOLDEN_SEEDS.iter().enumerate() {
        let daemon = daemon_from(i as u8 + 1);
        let manual = manual_liveness(seed, daemon.clone());
        let observed = observed_liveness(seed, daemon.clone());
        assert_eq!(manual, observed, "seed {seed} daemon {daemon:?}");
    }
}

#[test]
fn golden_seeds_alliance_probe_equivalence() {
    for &seed in &GOLDEN_SEEDS {
        let g = generators::random_connected(12, 7, seed);
        let Ok(fga) = ssr_alliance::presets::domination(&g) else {
            continue;
        };
        // Pre-redesign: run to termination, verify the final states
        // inline with the definition-level checkers.
        let f = fga.f().to_vec();
        let gg = fga.g().to_vec();
        let ids = fga.ids().to_vec();
        let alg = Standalone::new(fga.clone());
        let init = alg.initial_config(&g);
        let mut sim = Simulator::new(&g, alg, init, Daemon::Central, seed);
        let mut steps = 0u64;
        while steps < 10_000_000 {
            match sim.step() {
                StepOutcome::Terminal => break,
                StepOutcome::Progress { .. } => steps += 1,
            }
        }
        let members = verify::members(sim.states().iter());
        let manual = (
            verify::is_alliance(&g, &f, &gg, &members),
            verify::is_one_minimal(&g, &f, &gg, &members),
            verify::gap_explained_by_gslack_corner(&g, &f, &gg, &ids, &members),
            members,
            sim.stats().clone(),
        );

        // Observer-driven path over the same scenario.
        let mut probe = AllianceObserver::new(&fga);
        let alg = Standalone::new(fga);
        let init = alg.initial_config(&g);
        let mut sim = Simulator::new(&g, alg, init, Daemon::Central, seed);
        sim.execution().cap(10_000_000).observe(&mut probe).run();
        let v = probe.into_verdict().expect("sampled at run end");
        let observed = (
            v.alliance,
            v.one_minimal,
            v.corner_ok,
            v.members,
            sim.stats().clone(),
        );
        assert_eq!(manual, observed, "seed {seed}");
    }
}

proptest! {
    /// `Execution::until` reproduces the pre-redesign `run_until`
    /// exactly: outcome fields, counters, and final configuration.
    #[test]
    fn execution_matches_manual_run_until(
        n in 4usize..12,
        seed in 0u64..1000,
        daemon_idx in 0u8..4,
        cap_idx in 0usize..3,
    ) {
        let cap = [3u64, 50, 5_000_000][cap_idx];
        let build = || {
            let g = generators::random_connected(n, n / 2, seed);
            let sdr = Sdr::new(Agreement::new(5));
            let init = sdr.arbitrary_config(&g, seed ^ 0xC0FFEE);
            (g, sdr, init)
        };
        let (g, sdr, init) = build();
        let check = Sdr::new(Agreement::new(5));
        let mut manual_sim = Simulator::new(&g, sdr, init, daemon_from(daemon_idx), seed);
        let manual =
            manual_run_until(&mut manual_sim, cap, |gr, st| check.is_normal_config(gr, st));

        let (g2, sdr2, init2) = build();
        let check2 = Sdr::new(Agreement::new(5));
        let mut sim = Simulator::new(&g2, sdr2, init2, daemon_from(daemon_idx), seed);
        let out = sim
            .execution()
            .cap(cap)
            .until(|gr, st| check2.is_normal_config(gr, st))
            .run();

        prop_assert_eq!(
            manual,
            (out.reached, out.terminal, out.steps_used, out.moves_at_hit, out.rounds_at_hit)
        );
        prop_assert_eq!(manual_sim.stats(), sim.stats());
        prop_assert_eq!(manual_sim.states(), sim.states());
    }

    /// The segment probe equivalence as a property over random seeds.
    #[test]
    fn segment_probe_matches_manual_tracking(
        graph_seed in 0u64..500,
        sim_seed in 0u64..500,
        daemon_idx in 0u8..4,
    ) {
        let daemon = daemon_from(daemon_idx);
        prop_assert_eq!(
            manual_segments(graph_seed, sim_seed, daemon.clone()),
            observed_segments(graph_seed, sim_seed, daemon)
        );
    }
}
