//! Workspace-level integration tests: full pipelines crossing every
//! crate boundary (graph → runtime → core → instantiation → verifier).

use ssr::alliance::{fga_sdr, presets, verify};
use ssr::baselines::{CfgUnison, MonoReset};
use ssr::core::toys::Agreement;
use ssr::core::{Sdr, SegmentTracker};
use ssr::graph::NodeId;
use ssr::graph::{generators, metrics};
use ssr::runtime::{Daemon, Simulator, StepOutcome};
use ssr::unison::{spec, unison_sdr, Unison};

#[test]
fn full_pipeline_unison_then_faults_then_recovery() {
    let g = generators::random_connected(20, 15, 0xF00);
    let n = g.node_count() as u64;
    let algo = unison_sdr(Unison::for_graph(&g));
    let k = algo.input().period();
    let check = unison_sdr(Unison::for_graph(&g));
    let init = algo.arbitrary_config(&g, 0x1111);
    let mut sim = Simulator::new(&g, algo, init, Daemon::RandomSubset { p: 0.5 }, 0x2222);

    // Phase 1: stabilize from garbage.
    let out = sim
        .execution()
        .cap(10_000_000)
        .until(|gr, st| check.is_normal_config(gr, st))
        .run();
    assert!(out.reached && out.rounds_at_hit <= 3 * n);

    // Phase 2: healthy operation window.
    for _ in 0..2_000 {
        sim.step();
        let clocks: Vec<u64> = sim.states().iter().map(|s| s.inner).collect();
        assert!(spec::safety_holds(&g, &clocks, k));
    }

    // Phase 3: fault burst, then recovery within the bound again.
    let mut rng = ssr::runtime::rng::Xoshiro256StarStar::seed_from_u64(3);
    let arbitrary = check.arbitrary_config(&g, 0x3333);
    ssr::runtime::faults::corrupt_random(&mut sim, 7, &mut rng, |u, _| arbitrary[u.index()]);
    sim.reset_stats();
    let out = sim
        .execution()
        .cap(10_000_000)
        .until(|gr, st| check.is_normal_config(gr, st))
        .run();
    assert!(out.reached && out.rounds_at_hit <= 3 * n);
}

#[test]
fn sdr_generic_over_three_different_inputs() {
    // The same reset layer serves agreement, unison, and alliance.
    let g = generators::grid(4, 4);
    let n = g.node_count() as u64;

    let a = Sdr::new(Agreement::new(5));
    let ia = a.arbitrary_config(&g, 1);
    let ca = Sdr::new(Agreement::new(5));
    let mut sa = Simulator::new(&g, a, ia, Daemon::Central, 1);
    assert!(
        sa.execution()
            .cap(10_000_000)
            .until(|gr, st| ca.is_normal_config(gr, st))
            .run()
            .reached
    );

    let u = unison_sdr(Unison::for_graph(&g));
    let iu = u.arbitrary_config(&g, 2);
    let cu = unison_sdr(Unison::for_graph(&g));
    let mut su = Simulator::new(&g, u, iu, Daemon::Central, 2);
    let ou = su
        .execution()
        .cap(10_000_000)
        .until(|gr, st| cu.is_normal_config(gr, st))
        .run();
    assert!(ou.reached && ou.rounds_at_hit <= 3 * n);

    let f = fga_sdr(presets::domination(&g).unwrap());
    let fi = f.arbitrary_config(&g, 3);
    let mut sf = Simulator::new(&g, f, fi, Daemon::Central, 3);
    assert!(sf.execution().cap(10_000_000).run().terminal);
}

#[test]
fn segment_structure_verified_on_composed_alliance() {
    let g = generators::random_connected(12, 8, 0xAB);
    let fga = presets::domination(&g).unwrap();
    let sdr = fga_sdr(fga);
    let init = sdr.arbitrary_config(&g, 0xCD);
    let mut tracker = SegmentTracker::new(&sdr, &g, &init);
    let mut sim = Simulator::new(&g, sdr, init, Daemon::RandomSubset { p: 0.5 }, 0xEF);
    for _ in 0..2_000_000 {
        match sim.step() {
            StepOutcome::Terminal => break,
            StepOutcome::Progress { .. } => tracker.after_step(
                sim.algorithm(),
                sim.graph(),
                sim.states(),
                sim.last_activated(),
            ),
        }
    }
    assert!(sim.is_terminal());
    let report = tracker.report();
    assert!(report.ok(), "{:?}", report.violations);
    assert!(report.segments <= g.node_count() as u64 + 1);
}

#[test]
fn three_reset_strategies_agree_on_outcome() {
    // SDR, CFG-style local reset, and mono-initiator reset must all
    // restore a torn unison to a safe configuration.
    let g = generators::ring(10);

    let sdr = unison_sdr(Unison::for_graph(&g));
    let k1 = sdr.input().period();
    let check = unison_sdr(Unison::for_graph(&g));
    let mut init = sdr.initial_config(&g);
    init[5].inner = 7;
    let mut s1 = Simulator::new(&g, sdr, init, Daemon::Central, 1);
    assert!(
        s1.execution()
            .cap(5_000_000)
            .until(|gr, st| check.is_normal_config(gr, st))
            .run()
            .reached
    );
    let c1: Vec<u64> = s1.states().iter().map(|s| s.inner).collect();
    assert!(spec::safety_holds(&g, &c1, k1));

    let cfg = CfgUnison::for_graph(&g);
    let k2 = cfg.period();
    let mut clocks = vec![0u64; 10];
    clocks[5] = 7;
    let mut s2 = Simulator::new(&g, cfg, clocks, Daemon::Central, 2);
    assert!(
        s2.execution()
            .cap(5_000_000)
            .until(|gr, st| spec::safety_holds(gr, st, k2))
            .run()
            .reached
    );

    let mono = MonoReset::new(&g, Unison::for_graph(&g), NodeId(0));
    let mcheck = MonoReset::new(&g, Unison::for_graph(&g), NodeId(0));
    let mut minit = mono.initial_config(&g);
    minit[5].inner = 7;
    let mut s3 = Simulator::new(&g, mono, minit, Daemon::Central, 3);
    assert!(
        s3.execution()
            .cap(5_000_000)
            .until(|gr, st| mcheck.is_normal_config(gr, st))
            .run()
            .reached
    );
}

#[test]
fn bounds_scale_across_sizes() {
    for n in [6usize, 10, 14, 18] {
        let g = generators::ring(n);
        let d = metrics::diameter(&g).max(1) as u64;
        let algo = unison_sdr(Unison::for_graph(&g));
        let init = algo.arbitrary_config(&g, n as u64);
        let check = unison_sdr(Unison::for_graph(&g));
        let mut sim = Simulator::new(&g, algo, init, Daemon::PreferHighRules, n as u64);
        let out = sim
            .execution()
            .cap(50_000_000)
            .until(|gr, st| check.is_normal_config(gr, st))
            .run();
        assert!(out.reached);
        assert!(out.rounds_at_hit <= spec::theorem7_round_bound(n as u64));
        assert!(out.moves_at_hit <= spec::theorem6_move_bound(n as u64, d));
    }
}

#[test]
fn exhaustive_explorer_certifies_what_sampling_observes() {
    // The facade exposes the explorer; exact worst cases certified by
    // exhaustive schedule enumeration dominate everything a stochastic
    // sweep can observe from the same initial configurations, and the
    // witness schedule replays through the same execution engine.
    use ssr::explore::{explore, ExploreOptions};
    let g = generators::wheel(5);
    let sdr = Sdr::new(Agreement::new(2));
    let check = Sdr::new(Agreement::new(2));
    let inits: Vec<_> = (0..6).map(|s| sdr.arbitrary_config(&g, s)).collect();
    let ex = explore(
        &g,
        &sdr,
        &inits,
        |gr, st| check.is_normal_config(gr, st),
        &ExploreOptions::default(),
    )
    .unwrap();
    assert!(ex.verified(), "closure + convergence hold exhaustively");
    let worst = ex.worst.unwrap();
    assert!(worst.rounds <= 3 * g.node_count() as u64, "Cor. 5, exactly");
    for (i, init) in inits.iter().enumerate() {
        for seed in 0..3 {
            let c = Sdr::new(Agreement::new(2));
            let mut sim = Simulator::new(
                &g,
                Sdr::new(Agreement::new(2)),
                init.clone(),
                Daemon::RandomSubset { p: 0.5 },
                seed + i as u64 * 17,
            );
            let out = sim
                .execution()
                .cap(1_000_000)
                .until(|gr, st| c.is_normal_config(gr, st))
                .run();
            assert!(out.reached);
            assert!(out.moves_at_hit <= worst.moves);
            assert!(out.rounds_at_hit <= worst.rounds);
        }
    }
    let w = ex.witness_moves.unwrap();
    let c = Sdr::new(Agreement::new(2));
    let out = w.replay(
        &g,
        Sdr::new(Agreement::new(2)),
        inits[w.init].clone(),
        move |gr, st| c.is_normal_config(gr, st),
    );
    assert!(w.matches(&out));
    assert_eq!(out.moves_at_hit, worst.moves);
}

#[test]
fn alliance_verifiers_reject_corrupted_outputs() {
    // End-to-end negative control: flip a member off and the verifier
    // must notice on graphs where every member matters.
    let g = generators::ring(8);
    let fga = presets::domination(&g).unwrap();
    let f = fga.f().to_vec();
    let gg = fga.g().to_vec();
    let algo = fga_sdr(fga);
    let init = algo.initial_config(&g);
    let mut sim = Simulator::new(&g, algo, init, Daemon::Central, 4);
    assert!(sim.execution().cap(5_000_000).run().terminal);
    let mut members = verify::members(sim.states().iter().map(|s| &s.inner));
    assert!(verify::is_one_minimal(&g, &f, &gg, &members));
    // Remove one member: on a ring-dominating set this breaks coverage.
    let idx = members.iter().position(|&b| b).unwrap();
    members[idx] = false;
    assert!(!verify::is_alliance(&g, &f, &gg, &members));
}
