//! Root smoke test: the README/facade quickstart path, end to end.
//!
//! Build a ring, compose unison with SDR, start from an arbitrary
//! (transient-fault) configuration, run under the *distributed* daemon,
//! and land inside the paper's bounds.

use ssr::graph::generators;
use ssr::runtime::{Daemon, Simulator};
use ssr::unison::{spec, unison_sdr, Unison};

#[test]
fn quickstart_ring_stabilizes_within_paper_bounds() {
    let n = 10usize;
    let g = generators::ring(n);

    let algo = unison_sdr(Unison::for_graph(&g));
    let k = algo.input().period();
    assert!(k > n as u64, "Theorem 5 requires period K > n");

    // Transient-fault soup: every variable of every process arbitrary.
    let init = algo.arbitrary_config(&g, 0xBAD_5EED);
    let check = unison_sdr(Unison::for_graph(&g));

    // The distributed daemon activates arbitrary non-empty subsets of
    // the enabled processes; RandomSubset samples such schedules.
    let mut sim = Simulator::new(&g, algo, init, Daemon::RandomSubset { p: 0.5 }, 7);
    let out = sim
        .execution()
        .cap(1_000_000)
        .until(|gr, st| check.is_normal_config(gr, st))
        .run();

    assert!(out.reached, "U ∘ SDR must stabilize");
    assert!(
        out.rounds_at_hit <= 3 * n as u64,
        "Theorem 7: ≤ 3n rounds, got {} for n = {n}",
        out.rounds_at_hit
    );

    // After stabilization the unison specification holds and keeps
    // holding (closure of the legitimate configurations).
    for _ in 0..200 {
        sim.step();
        let clocks: Vec<u64> = sim.states().iter().map(|s| s.inner).collect();
        assert!(spec::safety_holds(&g, &clocks, k));
    }
}
