//! Cross-crate guard rails for the family registry: every registered
//! composable family must satisfy the §3.5 requirements on the tiny
//! suite, and every registered label must round-trip through the
//! string-addressable `AlgorithmSpec` handle.
//!
//! A mis-registered family — wrong reset state, a `P_ICorrect` that
//! all-reset neighborhoods violate, a label that does not parse back
//! to itself — fails loudly here, before any campaign runs it.

use proptest::prelude::*;
use ssr::campaign::families;
use ssr::explore::tiny_suite;
use ssr::runtime::family::AlgorithmSpec;

/// Registry keys whose families are SDR compositions or gated
/// standalone inputs — these MUST expose a requirements check; if one
/// stops doing so, the registration is broken.
const COMPOSABLE_KEYS: [&str; 5] = ["sdr-agreement", "unison-sdr", "unison", "fga-sdr", "fga"];

#[test]
fn every_registered_composable_family_satisfies_the_requirements() {
    let registry = families::default_registry();
    let mut checked = 0usize;
    for label in registry.labels() {
        let family = registry
            .resolve_label(&label)
            .unwrap_or_else(|| panic!("registered label {label:?} must resolve"));
        for (topo, graph) in tiny_suite(6) {
            match family.requirements(&graph) {
                None => {}
                Some(result) => {
                    checked += 1;
                    result.unwrap_or_else(|err| {
                        panic!("family {label:?} violates §3.5 on {topo}: {err}")
                    });
                }
            }
        }
    }
    assert!(checked > 0, "at least one composable family was checked");
}

#[test]
fn composable_families_expose_their_requirements_check() {
    let registry = families::default_registry();
    let graph = ssr::graph::generators::ring(6);
    for label in registry.labels() {
        let spec: AlgorithmSpec = label.parse().unwrap();
        let family = registry.resolve(&spec).unwrap();
        if COMPOSABLE_KEYS.contains(&spec.family.as_str()) {
            assert!(
                family.requirements(&graph).is_some(),
                "{label:?} is a composable family but exposes no requirements check \
                 — mis-registered?"
            );
        }
    }
}

#[test]
fn every_registered_label_round_trips_and_resolves_to_its_own_id() {
    let registry = families::default_registry();
    let labels = registry.labels();
    assert!(!labels.is_empty());
    for label in labels {
        let spec: AlgorithmSpec = label.parse().unwrap();
        assert_eq!(spec.to_string(), label, "Display ∘ FromStr on {label:?}");
        assert_eq!(spec.label(), label);
        let family = registry.resolve(&spec).unwrap();
        assert_eq!(family.id(), label, "registry id agrees with label");
        assert_eq!(family.label(), label);
    }
}

/// Deterministic pseudo-random string from a pool, keyed by `seed`.
fn gen_string(pool: &[char], len: usize, seed: &mut u64) -> String {
    (0..len)
        .map(|_| {
            *seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            pool[(*seed >> 33) as usize % pool.len()]
        })
        .collect()
}

proptest! {
    /// Parsing is a retraction: for ANY string over the label
    /// alphabet, parsing the rendered spec reproduces the spec
    /// (labels are a fixed point of `parse ∘ to_string`).
    #[test]
    fn parse_render_is_idempotent_on_arbitrary_strings(seed in 0u64..1_000_000, len in 0usize..24) {
        let pool: Vec<char> = "abcxyz019:(),.-".chars().collect();
        let mut state = seed;
        let s = gen_string(&pool, len, &mut state);
        let spec: AlgorithmSpec = s.parse().unwrap();
        let rendered = spec.to_string();
        let reparsed: AlgorithmSpec = rendered.parse().unwrap();
        prop_assert_eq!(&reparsed, &spec);
        prop_assert_eq!(reparsed.to_string(), rendered);
    }

    /// Constructor round-trips: any well-formed family/params pair
    /// renders to a label that parses back to the same handle (colon
    /// params must not contain ':' — the split is at the first colon —
    /// and paren params must be paren-free, matching every real
    /// label).
    #[test]
    fn constructed_specs_round_trip(seed in 0u64..1_000_000, len in 1usize..10, style in 0u8..3) {
        let name_pool: Vec<char> = "abcdeksr-019".chars().collect();
        let colon_pool: Vec<char> = "abc019,()-".chars().collect();
        let paren_pool: Vec<char> = "abc019,-".chars().collect();
        let mut state = seed;
        let family = format!("f{}", gen_string(&name_pool, len, &mut state));
        let spec = match style {
            0 => AlgorithmSpec::plain(&family),
            1 => AlgorithmSpec::colon(&family, gen_string(&colon_pool, len, &mut state)),
            _ => AlgorithmSpec::paren(&family, gen_string(&paren_pool, len, &mut state)),
        };
        let reparsed: AlgorithmSpec = spec.label().parse().unwrap();
        prop_assert_eq!(reparsed, spec);
    }
}
