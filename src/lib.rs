//! **ssr** — Self-Stabilizing Distributed Cooperative Reset.
//!
//! A full reproduction of *Devismes & Johnen, “Self-Stabilizing
//! Distributed Cooperative Reset”, ICDCS 2019*: the SDR reset layer,
//! its two instantiations (asynchronous unison and 1-minimal
//! (f,g)-alliance), the computational model they run in, and the
//! baselines they are compared against.
//!
//! This crate is a facade that re-exports the workspace members:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`graph`] | `ssr-graph` | communication graphs, generators, metrics |
//! | [`runtime`] | `ssr-runtime` | composite-atomicity simulator, daemons, rounds/moves, the open algorithm-family registry (`runtime::family`), exhaustive engine (`runtime::exhaustive`) |
//! | [`core`] | `ssr-core` | Algorithm SDR, `ResetInput`, composition, analysis |
//! | [`unison`] | `ssr-unison` | Algorithm U, `U ∘ SDR`, unison spec checkers |
//! | [`alliance`] | `ssr-alliance` | Algorithm FGA, `FGA ∘ SDR`, presets, verifiers |
//! | [`baselines`] | `ssr-baselines` | CFG unison, mono-initiator reset |
//! | [`campaign`] | `ssr-campaign` | scenario campaigns, parallel batch engine, standard family registry (`campaign::families`), JSONL/CSV results |
//! | [`explore`] | `ssr-explore` | exhaustive schedule-space explorer, exact worst-case bounds, witness traces |
//! | [`obs`] | `ssr-obs` | zero-cost tracing sinks, metrics registry, campaign progress, run timelines |
//! | [`analyze`] | `ssr-analyze` | static soundness certification: footprint analysis, locality/commutativity audit, rule-table lints, `ANALYSIS.json` |
//! | [`report`] | `ssr-report` | typed artifact readers, self-contained HTML/SVG campaign reports, perf-history store + regression tripwire |
//! | [`serve`] | `ssr-serve` | long-running campaign service: HTTP/1.1 API, content-addressed result cache, resumable checkpoints, SSE progress |
//!
//! # Quickstart
//!
//! Recover a synchronized clock network from an arbitrary corrupted
//! state (see `examples/quickstart.rs` for the commented version):
//!
//! ```
//! use ssr::graph::generators;
//! use ssr::runtime::{Daemon, Simulator};
//! use ssr::unison::{unison_sdr, Unison};
//!
//! let g = generators::ring(10);
//! let algo = unison_sdr(Unison::for_graph(&g));
//! let init = algo.arbitrary_config(&g, 42); // transient-fault soup
//! let check = unison_sdr(Unison::for_graph(&g));
//! let mut sim = Simulator::new(&g, algo, init, Daemon::Central, 7);
//! let out = sim.execution().cap(1_000_000).until(|gr, st| check.is_normal_config(gr, st)).run();
//! assert!(out.reached && out.rounds_at_hit <= 30); // ≤ 3n rounds
//! ```

#![forbid(unsafe_code)]

pub use ssr_alliance as alliance;
pub use ssr_analyze as analyze;
pub use ssr_baselines as baselines;
pub use ssr_campaign as campaign;
pub use ssr_core as core;
pub use ssr_explore as explore;
pub use ssr_graph as graph;
pub use ssr_obs as obs;
pub use ssr_report as report;
pub use ssr_runtime as runtime;
pub use ssr_serve as serve;
pub use ssr_unison as unison;
