//! Offline, API-compatible subset of the [`criterion`] benchmark crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of criterion's surface its benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::sample_size`],
//! [`BenchmarkGroup::bench_with_input`] /
//! [`BenchmarkGroup::bench_function`], [`BenchmarkId`], [`Bencher::iter`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical analysis, each benchmark runs its
//! routine up to `sample_size` times (bounded by a wall-clock budget so
//! slow benches do not stall `cargo bench`) and reports min / mean /
//! max. Passing `--test` (as `cargo test --benches` does) or setting
//! `SSR_BENCH_SMOKE=1` runs each routine exactly once as a smoke test.
//!
//! [`criterion`]: https://crates.io/crates/criterion

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Wall-clock budget per benchmark in normal mode.
const PER_BENCH_BUDGET: Duration = Duration::from_secs(3);

/// Identifies one benchmark within a group: a function name plus a
/// parameter rendered with `Display`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    /// `function_name/parameter`, as in the real crate.
    pub fn new<P: Display>(function_name: impl Into<String>, parameter: P) -> Self {
        BenchmarkId {
            repr: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A bare function id without a parameter.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            repr: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.repr)
    }
}

/// Entry point handed to each benchmark function.
pub struct Criterion {
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let smoke = std::env::args().any(|a| a == "--test")
            || std::env::var("SSR_BENCH_SMOKE")
                .map(|v| !v.is_empty() && v != "0")
                .unwrap_or(false);
        Criterion { smoke }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            smoke: self.smoke,
            _criterion: self,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    smoke: bool,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id, |b| f(b, input));
    }

    /// Benchmarks a routine without a distinguished input.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id, |b| f(b));
    }

    /// Ends the group. (The real crate finalizes reports here.)
    pub fn finish(self) {}

    fn run(&mut self, id: BenchmarkId, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: if self.smoke { 1 } else { self.sample_size },
            budget: if self.smoke {
                Duration::MAX
            } else {
                PER_BENCH_BUDGET
            },
        };
        f(&mut bencher);
        let s = &bencher.samples;
        if s.is_empty() {
            println!(
                "{}/{}: no samples (routine never called iter)",
                self.name, id
            );
            return;
        }
        let min = s.iter().min().unwrap();
        let max = s.iter().max().unwrap();
        let mean = s.iter().sum::<Duration>() / s.len() as u32;
        println!(
            "{}/{}: [{:?} {:?} {:?}] ({} samples)",
            self.name,
            id,
            min,
            mean,
            max,
            s.len()
        );
    }
}

/// Timer handle: call [`Bencher::iter`] with the routine to measure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    budget: Duration,
}

impl Bencher {
    /// Times `routine` once per sample, stopping early when the
    /// per-benchmark wall-clock budget runs out.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let started = Instant::now();
        for done in 0..self.sample_size {
            let t = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t.elapsed());
            if done + 1 < self.sample_size && started.elapsed() > self.budget {
                break;
            }
        }
    }
}

/// Re-export for code written against criterion's `black_box` (the std
/// version is what the real crate now delegates to as well).
pub use std::hint::black_box;

/// Bundles benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_routine_and_records_samples() {
        let mut c = Criterion { smoke: false };
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_with_input(BenchmarkId::new("f", 7), &7, |b, &x| {
            b.iter(|| {
                calls += 1;
                x * 2
            })
        });
        group.finish();
        // The budget cutoff may legally stop early on a starved
        // machine, so only the upper bound is exact.
        assert!((1..=3).contains(&calls), "calls = {calls}");
    }

    #[test]
    fn smoke_mode_runs_exactly_once() {
        let mut c = Criterion { smoke: true };
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        let mut calls = 0u32;
        group.bench_function(BenchmarkId::from_parameter("f"), |b| b.iter(|| calls += 1));
        group.finish();
        assert_eq!(calls, 1);
    }

    #[test]
    fn benchmark_id_renders_like_criterion() {
        assert_eq!(BenchmarkId::new("ring", 16).to_string(), "ring/16");
        assert_eq!(BenchmarkId::from_parameter(5).to_string(), "5");
    }
}
