//! Value-generation strategies: primitive ranges only.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Generates values of one type from a [`TestRng`].
///
/// The real proptest `Strategy` produces shrinkable value *trees*; this
/// subset samples plain values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Samples one value.
    fn pick(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn pick(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128) - (self.start as i128);
                let off = rng.below_u128(span as u128) as i128;
                ((self.start as i128) + off) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn pick(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                let off = rng.below_u128(span as u128) as i128;
                ((*self.start() as i128) + off) as $t
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn pick(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        // `start + u * span` can round up to exactly `end` when the
        // span is small relative to the magnitude; keep the bound
        // exclusive.
        if v >= self.end {
            self.end.next_down()
        } else {
            v
        }
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn pick(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + (rng.unit_f64() as f32) * (self.end - self.start);
        if v >= self.end {
            self.end.next_down()
        } else {
            v
        }
    }
}
