//! Offline, API-compatible subset of the [`proptest`] crate.
//!
//! The build environment for this repository has no network access to
//! crates.io, so the workspace vendors the small part of proptest's
//! surface its test suites actually use:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(...)]` inner attribute;
//! * range strategies over the primitive integer types and `f64`
//!   (`lo..hi`, `lo..=hi`);
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`];
//! * [`ProptestConfig`] with [`ProptestConfig::with_cases`].
//!
//! Unlike the real crate there is **no shrinking**: a failing case
//! reports its inputs (and the deterministic per-test seed) and stops.
//! Executions are fully deterministic: the RNG seed is derived from the
//! test's module path and name, so failures reproduce across runs.
//!
//! # Test profiles
//!
//! Case counts are gated so `cargo test -q` stays fast (the `quick`
//! profile convention of `ssr-bench`):
//!
//! * `PROPTEST_CASES=<n>` — run exactly `n` cases per property;
//! * `SSR_TEST_PROFILE=full` — run every property at its configured
//!   case count (the `with_cases(..)` value, default 256);
//! * otherwise (the `quick` profile) counts are capped at
//!   [`QUICK_PROFILE_CASE_CAP`].
//!
//! [`proptest`]: https://crates.io/crates/proptest

pub mod strategy;
pub mod test_runner;

/// Maximum cases per property under the default `quick` profile.
pub const QUICK_PROFILE_CASE_CAP: u32 = 16;

pub use test_runner::ProptestConfig;

/// The subset of `proptest::prelude` the workspace uses.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a [`proptest!`] body.
///
/// Without shrinking there is nothing to unwind gracefully, so this is
/// a plain `assert!`; the surrounding harness prints the case inputs
/// when the panic crosses it.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Inequality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Defines property-based tests.
///
/// As with the real crate, attributes are passed through unchanged, so
/// each property **must** carry an explicit `#[test]` to be picked up
/// by the harness (a bare `fn` compiles but never runs):
///
/// ```text
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
///
/// The runnable doctest below omits `#[test]` only so it can call the
/// generated function directly:
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// addition_commutes();
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __cases = __config.resolved_cases();
            let __test_name = concat!(module_path!(), "::", stringify!($name));
            let mut __rng = $crate::test_runner::TestRng::for_test(__test_name);
            for __case in 0..__cases {
                $(let $arg = $crate::strategy::Strategy::pick(&($strat), &mut __rng);)+
                let mut __inputs = String::new();
                $(
                    __inputs.push_str(stringify!($arg));
                    __inputs.push_str(" = ");
                    __inputs.push_str(&format!("{:?}, ", $arg));
                )+
                let __guard =
                    $crate::test_runner::CaseGuard::new(__test_name, __case, __inputs);
                $body
                __guard.disarm();
            }
        }
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
}
