//! Deterministic test runner support: configuration, RNG, and the
//! failing-case reporter.

use std::env;

/// Per-`proptest!` configuration. Only the `cases` knob is supported.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Requested number of cases per property (before profile gating).
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The case count after applying the test-profile gates:
    /// `PROPTEST_CASES` overrides outright, `SSR_TEST_PROFILE=full`
    /// lifts the quick-profile cap (see the crate docs).
    pub fn resolved_cases(&self) -> u32 {
        if let Ok(v) = env::var("PROPTEST_CASES") {
            if let Ok(n) = v.trim().parse::<u32>() {
                return n.max(1);
            }
        }
        if env::var("SSR_TEST_PROFILE").as_deref() == Ok("full") {
            self.cases.max(1)
        } else {
            self.cases.clamp(1, crate::QUICK_PROFILE_CASE_CAP)
        }
    }
}

/// SplitMix64: tiny, high-quality-enough, and dependency-free.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the RNG deterministically from the test's full name, so
    /// each property gets an independent but reproducible stream.
    /// `PROPTEST_SEED=<n>` perturbs every stream at once.
    pub fn for_test(test_name: &str) -> Self {
        // FNV-1a over the name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        if let Ok(v) = env::var("PROPTEST_SEED") {
            if let Ok(s) = v.trim().parse::<u64>() {
                h ^= s.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            }
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound > 0`, may exceed `u64`).
    pub fn below_u128(&mut self, bound: u128) -> u128 {
        assert!(bound > 0, "below_u128 needs a positive bound");
        let wide = (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64());
        wide % bound
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Prints the failing case's inputs if a panic unwinds through it.
///
/// The `proptest!` harness arms one guard per case around the body and
/// disarms it on success; on failure `Drop` runs while
/// `std::thread::panicking()`, which is the hook for the report.
pub struct CaseGuard {
    test_name: &'static str,
    case: u32,
    inputs: String,
    armed: bool,
}

impl CaseGuard {
    /// Arms a guard for one case.
    pub fn new(test_name: &'static str, case: u32, inputs: String) -> Self {
        CaseGuard {
            test_name,
            case,
            inputs,
            armed: true,
        }
    }

    /// The case passed; suppress the report.
    pub fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            eprintln!(
                "proptest: {} failed at case {} with inputs: {} (rerun is \
                 deterministic; set PROPTEST_SEED to vary the stream)",
                self.test_name, self.case, self.inputs
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::for_test("x::y");
        let mut b = TestRng::for_test("x::y");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_test("x::z");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::for_test("bound");
        for _ in 0..1000 {
            assert!(rng.below_u128(7) < 7);
        }
    }

    #[test]
    fn unit_f64_in_range() {
        let mut rng = TestRng::for_test("unit");
        for _ in 0..1000 {
            let u = rng.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn quick_profile_caps_cases() {
        // Only meaningful when the env overrides are absent, which is
        // the default in CI; guard against interference anyway.
        if std::env::var("PROPTEST_CASES").is_err() && std::env::var("SSR_TEST_PROFILE").is_err() {
            let cfg = ProptestConfig::with_cases(1000);
            assert!(cfg.resolved_cases() <= crate::QUICK_PROFILE_CASE_CAP);
        }
    }
}
