//! Computing a 1-minimal dominating set (and friends) with FGA ∘ SDR.
//!
//! Runs the silent self-stabilizing alliance algorithm on a random
//! network for each of the six classical (f,g) instantiations of §6.1
//! and prints the verified result sizes.
//!
//! Run with: `cargo run --example alliance_dominating_set`

use ssr::alliance::{fga_sdr, presets, verify};
use ssr::graph::{generators, metrics};
use ssr::runtime::{Daemon, Simulator};

fn main() {
    let g = generators::random_connected(24, 30, 0xA111A);
    let profile = metrics::GraphProfile::of(&g);
    println!(
        "network: n = {}, m = {}, Δ = {}, D = {}\n",
        profile.n, profile.m, profile.max_degree, profile.diameter
    );
    println!(
        "{:<20} {:>5} {:>9} {:>8} {:>11}",
        "instantiation", "|A|", "alliance", "1-min", "rounds(≤8n+4)"
    );

    for (label, fga) in presets::all_presets(&g) {
        let f = fga.f().to_vec();
        let gg = fga.g().to_vec();
        let ids = fga.ids().to_vec();
        let algo = fga_sdr(fga);
        // Start from garbage: the composition is self-stabilizing.
        let init = algo.arbitrary_config(&g, 0xC0DE);
        let mut sim = Simulator::new(&g, algo, init, Daemon::Central, 1);
        let out = sim.execution().cap(100_000_000).run();
        assert!(out.terminal, "FGA ∘ SDR is silent");

        let members = verify::members(sim.states().iter().map(|s| &s.inner));
        let size = members.iter().filter(|&&b| b).count();
        let alliance = verify::is_alliance(&g, &f, &gg, &members);
        let one_min = verify::is_one_minimal(&g, &f, &gg, &members);
        // Any 1-minimality gap must be the documented g-slack corner.
        assert!(verify::gap_explained_by_gslack_corner(
            &g, &f, &gg, &ids, &members
        ));
        println!(
            "{label:<20} {size:>5} {:>9} {:>8} {:>11}",
            if alliance { "yes" } else { "NO" },
            if one_min { "yes" } else { "corner*" },
            sim.stats().completed_rounds + 1,
        );
    }
    println!(
        "\n(*) documented reproduction finding: with f ≤ g the published\n\
         bestPtr blocks zero-g-slack members; see ssr-alliance docs."
    );
}
