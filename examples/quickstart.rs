//! Quickstart: self-stabilizing unison on a ring.
//!
//! Builds `U ∘ SDR`, throws it into a completely arbitrary
//! configuration (corrupted clocks AND corrupted reset variables), and
//! watches it stabilize within the paper's `3n`-round bound.
//!
//! Run with: `cargo run --example quickstart`

use ssr::graph::generators;
use ssr::runtime::{Daemon, Simulator};
use ssr::unison::{spec, unison_sdr, Unison};

fn main() {
    let n = 16;
    let g = generators::ring(n);
    println!("network: ring of {n} processes, diameter {}", n / 2);

    // Algorithm U needs a period K > n; the composition with SDR makes
    // it self-stabilizing.
    let algo = unison_sdr(Unison::for_graph(&g));
    let check = unison_sdr(Unison::for_graph(&g));

    // An adversarial initial configuration: every variable of every
    // process is random garbage within its domain.
    let init = algo.arbitrary_config(&g, 0xBAD_C0FFEE);
    println!(
        "initial clocks: {:?}",
        init.iter().map(|s| s.inner).collect::<Vec<_>>()
    );

    let mut sim = Simulator::new(&g, algo, init, Daemon::RandomSubset { p: 0.5 }, 7);
    let out = sim
        .execution()
        .cap(1_000_000)
        .until(|gr, st| check.is_normal_config(gr, st))
        .run();

    assert!(out.reached, "U ∘ SDR always stabilizes");
    println!(
        "stabilized after {} rounds ({} moves); paper bound is 3n = {} rounds",
        out.rounds_at_hit,
        out.moves_at_hit,
        3 * n
    );

    // From here on the unison specification holds: clocks stay within
    // one tick of every neighbor and keep advancing — pinned by the
    // spec observer over a post-stabilization window.
    let mut probe = spec::SpecObserver::watching(&sim);
    sim.execution().cap(5 * n as u64).observe(&mut probe).run();
    assert_eq!(probe.safety_violations(), 0);
    println!(
        "final clocks:   {:?}",
        sim.states().iter().map(|s| s.inner).collect::<Vec<_>>()
    );
    println!("safety held at every instant after stabilization ✓");
}
