//! Fault recovery: watch cooperative resets repair a live unison.
//!
//! A healthy clock grid gets hit by a burst of transient faults; the
//! example traces the reset wave (C → RB → RF → C) with a tiny ASCII
//! rendering, then confirms the clocks re-synchronize.
//!
//! Run with: `cargo run --example unison_fault_recovery`

use ssr::core::Status;
use ssr::graph::generators;
use ssr::runtime::rng::Xoshiro256StarStar;
use ssr::runtime::{faults, Daemon, Simulator};
use ssr::unison::{unison_sdr, Unison};

fn render(states: &[ssr::core::Composed<u64>], width: usize) -> String {
    let mut out = String::new();
    for (i, s) in states.iter().enumerate() {
        let c = match s.sdr.status {
            Status::C => '·',
            Status::RB => 'B',
            Status::RF => 'F',
        };
        out.push(c);
        if (i + 1) % width == 0 {
            out.push('\n');
        }
    }
    out
}

fn main() {
    let (w, h) = (8, 4);
    let g = generators::grid(w, h);
    let n = g.node_count();
    println!("network: {w}×{h} grid ({n} processes)\n");

    let algo = unison_sdr(Unison::for_graph(&g));
    let check = unison_sdr(Unison::for_graph(&g));
    let probe = unison_sdr(Unison::for_graph(&g));
    let init = algo.initial_config(&g);
    let mut sim = Simulator::new(&g, algo, init, Daemon::RandomSubset { p: 0.4 }, 99);

    // Let the healthy system run for a while.
    for _ in 0..500 {
        sim.step();
    }
    println!("healthy system after 500 steps (all status C):");
    println!("{}", render(sim.states(), w));

    // Transient-fault burst: corrupt 6 random processes entirely.
    let mut rng = Xoshiro256StarStar::seed_from_u64(0xFA117);
    let arbitrary = probe.arbitrary_config(&g, 0x5EED);
    let victims = faults::corrupt_random(&mut sim, 6, &mut rng, |u, _| arbitrary[u.index()]);
    println!("faults injected at {victims:?}:");
    println!("{}", render(sim.states(), w));
    sim.reset_stats();

    // Trace the repair: print the reset-status map every few steps.
    let mut shots = 0;
    while !check.is_normal_config(sim.graph(), sim.states()) {
        sim.step();
        if sim.stats().steps % 40 == 0 && shots < 6 {
            println!("step {:>3}:", sim.stats().steps);
            println!("{}", render(sim.states(), w));
            shots += 1;
        }
        assert!(sim.stats().steps < 1_000_000, "must stabilize");
    }
    println!(
        "recovered in {} rounds / {} moves (bound: 3n = {} rounds)",
        sim.stats().completed_rounds + 1,
        sim.stats().moves,
        3 * n
    );
    println!("{}", render(sim.states(), w));

    let clocks: Vec<u64> = sim.states().iter().map(|s| s.inner).collect();
    let k = check.input().period();
    assert!(ssr::unison::spec::safety_holds(&g, &clocks, k));
    println!("clocks back in unison ✓");
}
