//! Fault recovery: watch cooperative resets repair a live unison.
//!
//! A healthy clock grid gets hit by a burst of transient faults; the
//! example traces the reset wave (C → RB → RF → C) with a tiny ASCII
//! rendering, then confirms the clocks re-synchronize.
//!
//! Run with: `cargo run --example unison_fault_recovery`

use ssr::core::Status;
use ssr::graph::generators;
use ssr::runtime::rng::Xoshiro256StarStar;
use ssr::runtime::{faults, Daemon, Observer, Simulator, StepOutcome};
use ssr::unison::{unison_sdr, Unison, UnisonSdr};

fn render(states: &[ssr::core::Composed<u64>], width: usize) -> String {
    let mut out = String::new();
    for (i, s) in states.iter().enumerate() {
        let c = match s.sdr.status {
            Status::C => '·',
            Status::RB => 'B',
            Status::RF => 'F',
        };
        out.push(c);
        if (i + 1) % width == 0 {
            out.push('\n');
        }
    }
    out
}

fn main() {
    let (w, h) = (8, 4);
    let g = generators::grid(w, h);
    let n = g.node_count();
    println!("network: {w}×{h} grid ({n} processes)\n");

    let algo = unison_sdr(Unison::for_graph(&g));
    let check = unison_sdr(Unison::for_graph(&g));
    let probe = unison_sdr(Unison::for_graph(&g));
    let init = algo.initial_config(&g);
    let mut sim = Simulator::new(&g, algo, init, Daemon::RandomSubset { p: 0.4 }, 99);

    // Let the healthy system run for a while.
    sim.execution().cap(500).run();
    println!("healthy system after 500 steps (all status C):");
    println!("{}", render(sim.states(), w));

    // Transient-fault burst: corrupt 6 random processes entirely.
    let mut rng = Xoshiro256StarStar::seed_from_u64(0xFA117);
    let arbitrary = probe.arbitrary_config(&g, 0x5EED);
    let victims = faults::corrupt_random(&mut sim, 6, &mut rng, |u, _| arbitrary[u.index()]);
    println!("faults injected at {victims:?}:");
    println!("{}", render(sim.states(), w));
    sim.reset_stats();

    // Trace the repair with a snapshot probe: it prints the
    // reset-status map every few steps while the execution drives the
    // run to the normal configuration.
    struct Snapshots {
        width: usize,
        shots: usize,
    }
    impl Observer<UnisonSdr> for Snapshots {
        fn on_step(&mut self, sim: &Simulator<'_, UnisonSdr>, _outcome: &StepOutcome) {
            if sim.stats().steps % 40 == 0 && self.shots < 6 {
                println!("step {:>3}:", sim.stats().steps);
                println!("{}", render(sim.states(), self.width));
                self.shots += 1;
            }
        }
    }
    let out = sim
        .execution()
        .cap(1_000_000)
        .observe(Snapshots { width: w, shots: 0 })
        .until(|gr, st| check.is_normal_config(gr, st))
        .run();
    assert!(out.reached, "must stabilize");
    println!(
        "recovered in {} rounds / {} moves (bound: 3n = {} rounds)",
        sim.stats().completed_rounds + 1,
        sim.stats().moves,
        3 * n
    );
    println!("{}", render(sim.states(), w));

    let clocks: Vec<u64> = sim.states().iter().map(|s| s.inner).collect();
    let k = check.input().period();
    assert!(ssr::unison::spec::safety_holds(&g, &clocks, k));
    println!("clocks back in unison ✓");
}
