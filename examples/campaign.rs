//! A custom scenario campaign, not covered by the E1–E12 harness:
//! daemon sensitivity of `U ∘ SDR` recovery on topology families the
//! experiment suite never sweeps (hypercubes, lollipops, dense Gnp).
//!
//! Demonstrates the full campaign workflow: declare a grid, drain it
//! on worker threads, aggregate percentiles per group, and serialize
//! structured results — parallel and sequential execution produce
//! byte-identical output.
//!
//! Run with: `cargo run --release --example campaign`

use ssr::campaign::{engine, output, stats, AlgorithmSpec, Campaign, TopologySpec};
use ssr::runtime::report::Table;
use ssr::runtime::Daemon;

fn main() {
    let campaign = Campaign::new("daemon-sensitivity")
        .topologies(vec![
            TopologySpec::Hypercube,
            TopologySpec::Lollipop,
            TopologySpec::Gnp { per_mille: 300 },
        ])
        .sizes(vec![16, 32])
        .algorithms(vec![AlgorithmSpec::UnisonSdr])
        .daemons(vec![
            Daemon::Synchronous,
            Daemon::Central,
            Daemon::RandomSubset { p: 0.5 },
            Daemon::PreferHighRules,
        ])
        .trials(4)
        .step_cap(20_000_000)
        .seed(0xCAFE_2026);

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "campaign '{}': {} scenarios on {} worker threads\n",
        campaign.id(),
        campaign.len(),
        threads
    );

    let records = engine::run(&campaign, threads);

    // Every run must satisfy Thm 6/7 — the campaign runner checks the
    // closed-form bounds per record.
    assert!(
        records.iter().all(|r| r.verdict.ok()),
        "a U ∘ SDR run violated its paper bound"
    );

    // Aggregate: recovery effort per (topology, daemon) group.
    let mut table = Table::new([
        "topology",
        "daemon",
        "runs",
        "rounds p50",
        "rounds p90",
        "rounds max",
        "moves p50",
        "moves max",
    ]);
    for group in stats::summarize_by(&records, |r| format!("{}|{}", r.topology, r.daemon)) {
        let (topology, daemon) = group.key.split_once('|').expect("two-part key");
        table.row_vec(vec![
            topology.to_string(),
            daemon.to_string(),
            group.runs.to_string(),
            group.rounds.p50.to_string(),
            group.rounds.p90.to_string(),
            group.rounds.max.to_string(),
            group.moves.p50.to_string(),
            group.moves.max.to_string(),
        ]);
    }
    println!("{table}");

    // Structured results: the first few JSONL lines (grid order,
    // thread-count invariant).
    let jsonl = output::jsonl(&records);
    println!("sample of the JSONL stream:");
    for line in jsonl.lines().take(3) {
        println!("  {line}");
    }
    println!("  … {} lines total", jsonl.lines().count());

    // The determinism contract, demonstrated end to end.
    let sequential = output::jsonl(&engine::run(&campaign, 1));
    assert_eq!(jsonl, sequential, "parallel != sequential");
    println!("\nparallel and sequential results are byte-identical ✓");
}
