//! A custom scenario campaign, not covered by the E1–E12 harness:
//! daemon sensitivity of `U ∘ SDR` recovery on topology families the
//! experiment suite never sweeps (hypercubes, lollipops, dense Gnp).
//!
//! Demonstrates the full campaign workflow: declare a grid, drain it
//! on worker threads, aggregate percentiles per group, and serialize
//! structured results — parallel and sequential execution produce
//! byte-identical output. The second half shows a *custom probe*: an
//! [`Observer`] measuring scheduling contention, attached to the
//! campaign's executions instead of a hand-rolled stepping loop.
//!
//! Run with: `cargo run --release --example campaign`

use ssr::campaign::{engine, families, output, stats, Campaign, TopologySpec};
use ssr::runtime::report::Table;
use ssr::runtime::{Daemon, Observer, Simulator, StepOutcome};
use ssr::unison::{unison_sdr, Unison, UnisonSdr};

/// Custom observer: how contended is the schedule? Tracks the peak
/// number of simultaneously-enabled processes and the peak number
/// activated in one step — a measure the default runner has no column
/// for, showing that "new workload" means "write an observer".
struct ContentionProbe {
    peak_enabled: usize,
    peak_activated: usize,
}

impl ContentionProbe {
    /// Samples the initial configuration too — on arbitrary garbage
    /// the trajectory peak is often the very first instant.
    fn attach(sim: &Simulator<'_, UnisonSdr>) -> Self {
        ContentionProbe {
            peak_enabled: sim.enabled_count(),
            peak_activated: 0,
        }
    }
}

impl Observer<UnisonSdr> for ContentionProbe {
    fn on_step(&mut self, sim: &Simulator<'_, UnisonSdr>, outcome: &StepOutcome) {
        if let StepOutcome::Progress { activated } = outcome {
            self.peak_activated = self.peak_activated.max(*activated);
        }
        self.peak_enabled = self.peak_enabled.max(sim.enabled_count());
    }
}

fn main() {
    let campaign = Campaign::new("daemon-sensitivity")
        .topologies(vec![
            TopologySpec::Hypercube,
            TopologySpec::Lollipop,
            TopologySpec::Gnp { per_mille: 300 },
        ])
        .sizes(vec![16, 32])
        .algorithms(vec![families::unison_sdr()])
        .daemons(vec![
            Daemon::Synchronous,
            Daemon::Central,
            Daemon::RandomSubset { p: 0.5 },
            Daemon::PreferHighRules,
        ])
        .trials(4)
        .step_cap(20_000_000)
        .seed(0xCAFE_2026);

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "campaign '{}': {} scenarios on {} worker threads\n",
        campaign.id(),
        campaign.len(),
        threads
    );

    let records = engine::run(&campaign, threads);

    // Every run must satisfy Thm 6/7 — the campaign runner checks the
    // closed-form bounds per record.
    assert!(
        records.iter().all(|r| r.verdict.ok()),
        "a U ∘ SDR run violated its paper bound"
    );

    // Aggregate: recovery effort per (topology, daemon) group.
    let mut table = Table::new([
        "topology",
        "daemon",
        "runs",
        "rounds p50",
        "rounds p90",
        "rounds max",
        "moves p50",
        "moves max",
    ]);
    for group in stats::summarize_by(&records, |r| format!("{}|{}", r.topology, r.daemon)) {
        let (topology, daemon) = group.key.split_once('|').expect("two-part key");
        table.row_vec(vec![
            topology.to_string(),
            daemon.to_string(),
            group.runs.to_string(),
            group.rounds.p50.to_string(),
            group.rounds.p90.to_string(),
            group.rounds.max.to_string(),
            group.moves.p50.to_string(),
            group.moves.max.to_string(),
        ]);
    }
    println!("{table}");

    // Structured results: the first few JSONL lines (grid order,
    // thread-count invariant).
    let jsonl = output::jsonl(&records);
    println!("sample of the JSONL stream:");
    for line in jsonl.lines().take(3) {
        println!("  {line}");
    }
    println!("  … {} lines total", jsonl.lines().count());

    // The determinism contract, demonstrated end to end.
    let sequential = output::jsonl(&engine::run(&campaign, 1));
    assert_eq!(jsonl, sequential, "parallel != sequential");
    println!("\nparallel and sequential results are byte-identical ✓");

    // ---- custom probe: scheduling contention per daemon ----
    //
    // A bespoke measurement = a custom runner that attaches an
    // observer to the execution. The engine's determinism contract
    // carries over untouched because the runner stays a pure function
    // of its scenario.
    let probe_campaign = Campaign::new("contention")
        .topologies(vec![TopologySpec::Hypercube, TopologySpec::Lollipop])
        .sizes(vec![16])
        .algorithms(vec![families::unison_sdr()])
        .daemons(vec![
            Daemon::Synchronous,
            Daemon::Central,
            Daemon::RandomSubset { p: 0.5 },
        ])
        .trials(2)
        .step_cap(20_000_000)
        .seed(0xC0_27E2);
    struct ContentionRow {
        topology: String,
        daemon: String,
        peak_enabled: usize,
        peak_activated: usize,
        rounds: u64,
    }
    let rows = engine::run_with(&probe_campaign, threads, |sc| {
        let [graph_seed, init_seed, sim_seed, _] = sc.seeds::<4>();
        let g = sc.topology.build(sc.n, graph_seed);
        let algo = unison_sdr(Unison::for_graph(&g));
        let check = unison_sdr(Unison::for_graph(&g));
        let init = algo.arbitrary_config(&g, init_seed);
        let mut sim = ssr::runtime::Simulator::new(&g, algo, init, sc.daemon.clone(), sim_seed);
        let mut probe = ContentionProbe::attach(&sim);
        let out = sim
            .execution()
            .cap(sc.step_cap)
            .observe(&mut probe)
            .until(|gr, st| check.is_normal_config(gr, st))
            .run();
        assert!(out.reached, "U ∘ SDR recovers within its bounds");
        ContentionRow {
            topology: sc.topology.label(),
            daemon: sc.daemon.label(),
            peak_enabled: probe.peak_enabled,
            peak_activated: probe.peak_activated,
            rounds: out.rounds_at_hit,
        }
    });
    let mut contention = Table::new([
        "topology",
        "daemon",
        "peak enabled",
        "peak activated",
        "worst rounds",
    ]);
    for pair in rows.chunks(2) {
        // trials is the fastest-varying axis: each chunk is one cell.
        contention.row_vec(vec![
            pair[0].topology.clone(),
            pair[0].daemon.clone(),
            pair.iter()
                .map(|r| r.peak_enabled)
                .max()
                .unwrap()
                .to_string(),
            pair.iter()
                .map(|r| r.peak_activated)
                .max()
                .unwrap()
                .to_string(),
            pair.iter().map(|r| r.rounds).max().unwrap().to_string(),
        ]);
    }
    println!("\ncustom observer probe — scheduling contention:\n{contention}");
}
