//! Exhaustive verification of the paper's worst-case bounds on tiny
//! graphs: walk *every* distributed-daemon schedule, report the exact
//! worst case next to the closed-form bound, and replay the worst-case
//! schedule through the ordinary execution engine.
//!
//! ```console
//! cargo run --release --example exhaustive_bounds
//! ```

use ssr::core::{toys::Agreement, Sdr};
use ssr::explore::{explore, tiny_suite, ExploreOptions};
use ssr::runtime::Observer;
use ssr::unison::{unison_sdr, Unison};

/// A probe riding along the worst-case replay: peak processes moved in
/// one step (any observer works — the witness drives the same
/// execution engine as every other run).
#[derive(Default)]
struct PeakActivation(usize);

impl<A: ssr::runtime::Algorithm> Observer<A> for PeakActivation {
    fn on_step(
        &mut self,
        _sim: &ssr::runtime::Simulator<'_, A>,
        outcome: &ssr::runtime::StepOutcome,
    ) {
        if let ssr::runtime::StepOutcome::Progress { activated } = outcome {
            self.0 = self.0.max(*activated);
        }
    }
}

fn main() {
    let n = 5;
    println!("== exact SDR worst cases over ALL schedules (n = {n}) ==\n");
    println!(
        "{:<14} {:>8} {:>12} {:>12} {:>13} {:>13}",
        "topology", "states", "exact moves", "exact rounds", "bound 3n", "verified"
    );
    for (label, g) in tiny_suite(n) {
        let nn = g.node_count() as u64;
        let sdr = Sdr::new(Agreement::new(2));
        let check = Sdr::new(Agreement::new(2));
        // The self-stabilization quantifier: adversarial initial
        // configurations (a fixed seed set; schedules are exhaustive).
        let inits: Vec<_> = (0..8).map(|s| sdr.arbitrary_config(&g, s)).collect();
        let ex = explore(
            &g,
            &sdr,
            &inits,
            |gr, st| check.is_normal_config(gr, st),
            &ExploreOptions::default(),
        )
        .expect("tiny graphs fit the explorer limits");
        let worst = ex.worst.expect("SDR converges");
        println!(
            "{label:<14} {:>8} {:>12} {:>12} {:>13} {:>13}",
            ex.states,
            worst.moves,
            worst.rounds,
            3 * nn,
            if ex.verified() && worst.rounds <= 3 * nn {
                "yes"
            } else {
                "NO"
            }
        );
    }

    // The worst case is a concrete schedule, not just a number:
    // extract it and drive it back through Execution with a probe.
    let g = ssr::graph::generators::wheel(n);
    let algo = unison_sdr(Unison::for_graph(&g));
    let check = unison_sdr(Unison::for_graph(&g));
    let inits: Vec<_> = (0..8).map(|s| algo.arbitrary_config(&g, s)).collect();
    let ex = explore(
        &g,
        &algo,
        &inits,
        |gr, st| check.is_normal_config(gr, st),
        &ExploreOptions::default(),
    )
    .expect("wheel(5) fits the explorer limits");
    let worst = ex.worst.expect("U ∘ SDR converges");
    let w = ex.witness_moves.expect("some sampled init is illegitimate");
    println!(
        "\n== U ∘ SDR on wheel({n}): exact worst case {} moves / {} rounds \
         (Thm 7 bound: {}) ==",
        worst.moves,
        worst.rounds,
        ssr::unison::spec::theorem7_round_bound(g.node_count() as u64),
    );
    println!(
        "witness schedule: {} steps from init #{}, replaying through Execution…",
        w.steps, w.init
    );
    let verify = unison_sdr(Unison::for_graph(&g));
    let mut peak = PeakActivation::default();
    let out = w.replay_with(
        &g,
        unison_sdr(Unison::for_graph(&g)),
        inits[w.init].clone(),
        move |gr, st| verify.is_normal_config(gr, st),
        &mut peak,
    );
    assert!(
        w.matches(&out),
        "replay must reproduce the exact accounting"
    );
    println!(
        "replay: {} moves, {} rounds, reason {} — byte-identical to the explorer's DP \
         (peak activation {} processes/step)",
        out.moves_at_hit, out.rounds_at_hit, out.reason, peak.0
    );
}
