//! Anatomy of cooperation: concurrent resets negotiating via the
//! distance DAG.
//!
//! Three far-apart processes detect inconsistencies simultaneously and
//! each roots a reset. The example tracks the set of *alive roots*
//! (Definition 1) step by step: it only ever shrinks (Theorem 3), the
//! execution splits into at most n+1 segments (Remark 5), and every
//! process obeys the per-segment rule grammar of Corollary 3.
//!
//! Run with: `cargo run --example cooperative_resets`

use ssr::core::toys::Agreement;
use ssr::core::{alive_roots, Sdr, SegmentObserver};
use ssr::graph::generators;
use ssr::runtime::{Daemon, Observer, Simulator, StepOutcome};

/// Prints the alive-root set whenever it changes — cooperation made
/// visible, as a plug-in probe instead of a forked run loop.
struct RootWatch {
    last: usize,
}

impl Observer<Sdr<Agreement>> for RootWatch {
    fn on_step(&mut self, sim: &Simulator<'_, Sdr<Agreement>>, _outcome: &StepOutcome) {
        let roots = alive_roots(sim.algorithm(), sim.graph(), sim.states());
        if roots.len() != self.last {
            println!(
                "step {:>4}: {} alive root(s): {:?}",
                sim.stats().steps,
                roots.len(),
                roots.iter().collect::<Vec<_>>()
            );
            self.last = roots.len();
        }
    }
}

fn main() {
    let n = 30usize;
    let g = generators::ring(n);
    let sdr = Sdr::new(Agreement::new(4));
    let check = Sdr::new(Agreement::new(4));

    // A clean network, except three scattered disagreeing processes.
    let mut init = sdr.initial_config(&g);
    for (node, value) in [(0usize, 1u32), (10, 2), (20, 3)] {
        init[node].inner = value;
    }

    let mut segments = SegmentObserver::new(&sdr, &g, &init);
    let mut sim = Simulator::new(&g, sdr, init, Daemon::RandomSubset { p: 0.35 }, 3);

    println!("ring of {n}; inconsistencies at processes 0, 10, 20\n");
    let roots = alive_roots(sim.algorithm(), sim.graph(), sim.states());
    println!(
        "step {:>4}: {} alive root(s): {:?}",
        0,
        roots.len(),
        roots.iter().collect::<Vec<_>>()
    );
    // One execution, two probes: the structural-theorem checker and
    // the live root trace ride the same loop.
    sim.execution()
        .observe(&mut segments)
        .observe(RootWatch { last: roots.len() })
        .until(|gr, st| check.is_normal_config(gr, st))
        .run();

    let report = segments.report();
    println!(
        "\nstabilized in {} rounds / {} moves",
        sim.stats().completed_rounds + 1,
        sim.stats().moves
    );
    println!(
        "segments: {} (bound n+1 = {}); alive roots per segment: {:?}",
        report.segments,
        n + 1,
        report.alive_roots_per_segment
    );
    assert!(
        report.ok(),
        "structural theorems violated: {:?}",
        report.violations
    );
    println!("Theorem 3 (no root creation), Remark 5, Corollary 3: all verified ✓");

    // Cooperation visible in the outcome: every process was reset by
    // exactly one of the three concurrent resets (all values are 0 and
    // each process executed at most one broadcast move).
    assert!(sim.states().iter().all(|s| s.inner == 0));
    println!("all three concurrent resets merged without overlap ✓");
}
