//! Bring your own algorithm: define a brand-new input algorithm,
//! compose it with SDR, register it as a first-class family, and run
//! a full stochastic campaign **plus** an E13-style exhaustive
//! schedule-space sweep — without touching a single workspace crate.
//!
//! The paper's headline result is that SDR is a *transformer*: it
//! self-stabilizes **any** input algorithm satisfying the §3.5
//! requirements, not just the published unison/alliance
//! instantiations. This example is that claim at the API level. The
//! input here — `Cooldown`, a relaxation process where local maxima
//! decrement toward zero — exists nowhere in the workspace; ten lines
//! of `ResetInput` plus one `composed()` call give it:
//!
//! * the generic paper verdicts (Cor. 5: ≤ 3n recovery rounds; Cor. 4:
//!   ≤ 3n+3 SDR moves per process) checked on every campaign run,
//! * a registry label (`cooldown`) usable on any campaign axis next to
//!   the standard families,
//! * exhaustive exploration with exact worst cases, witness replay,
//!   and the stochastic-domination cross-check.
//!
//! Run with: `cargo run --release --example custom_family`

use std::sync::Arc;

use ssr::analyze;
use ssr::campaign::{engine, families, Campaign, InitPlan, Scenario, TopologySpec};
use ssr::core::family::composed;
use ssr::core::{validate, ResetInput};
use ssr::explore::campaign::{explore_scenario_in, stochastic_max_in, ScenarioExploreOptions};
use ssr::graph::NodeId;
use ssr::runtime::family::{AlgorithmSpec, FamilyRegistry};
use ssr::runtime::rng::Xoshiro256StarStar;
use ssr::runtime::{AnalyzeOptions, Daemon, RuleId, RuleMask, StateView};

/// The new input algorithm: a bounded *relaxation* process. Every
/// process holds `x ∈ {0, …, cap}`; a process that is a local maximum
/// with `x > 0` decrements. The system is silent exactly when every
/// value is zero.
///
/// Requirements (§3.5): 2b/2e — `P_reset ≡ x = 0`, the reset value;
/// 2d — an all-zero closed neighborhood has unit gaps, so
/// `P_ICorrect` holds; 2a — a decrementing local maximum keeps all
/// its own gaps within one (no neighbor exceeds it before the move),
/// so `P_ICorrect` is closed under the rule.
#[derive(Clone, Debug)]
struct Cooldown {
    cap: u32,
}

impl Cooldown {
    fn new(cap: u32) -> Self {
        Cooldown { cap }
    }
}

impl ResetInput for Cooldown {
    type State = u32;

    fn rule_count(&self) -> usize {
        1
    }

    fn rule_name(&self, _: RuleId) -> &'static str {
        "rule_dec"
    }

    fn enabled_mask<V: StateView<u32>>(&self, u: NodeId, view: &V) -> RuleMask {
        let x = *view.state(u);
        let local_max = view
            .graph()
            .neighbors(u)
            .iter()
            .all(|&v| *view.state(v) <= x);
        RuleMask::from_bool(x > 0 && local_max)
    }

    fn apply<V: StateView<u32>>(&self, u: NodeId, view: &V, _: RuleId) -> u32 {
        *view.state(u) - 1
    }

    fn p_icorrect<V: StateView<u32>>(&self, u: NodeId, view: &V) -> bool {
        let x = *view.state(u);
        view.graph()
            .neighbors(u)
            .iter()
            .all(|&v| view.state(v).abs_diff(x) <= 1)
    }

    fn p_reset(&self, _: NodeId, state: &u32) -> bool {
        *state == 0
    }

    fn reset_state(&self, _: NodeId) -> u32 {
        0
    }

    fn arbitrary_state(&self, _: NodeId, rng: &mut Xoshiro256StarStar) -> u32 {
        rng.below(self.cap as u64 + 1) as u32
    }
}

fn main() {
    let threads = std::thread::available_parallelism().map_or(2, |n| n.get());

    // ---- 1. Compose and register ------------------------------------
    //
    // `composed()` wraps the input into `Cooldown ∘ SDR` with the
    // input-independent Cor. 4/5 verdicts; `Cooldown::State = u32`
    // already has a canonical `ExploreState` encoding, so the family
    // is exhaustively explorable for free. The registry starts from
    // the standard families, so the new label lives next to
    // `unison-sdr` and friends on the same campaign axes.
    let mut registry: FamilyRegistry = families::standard_families();
    registry.register(Arc::new(composed("cooldown", |_| Some(Cooldown::new(2)))));

    let spec: AlgorithmSpec = "cooldown".parse().unwrap();
    assert_eq!(spec.label(), "cooldown", "labels round-trip");
    let family = registry.resolve(&spec).expect("registered");

    // The §3.5 requirement checks guard against mis-registration, and
    // the 2a closure probe samples real executions.
    let g = TopologySpec::Ring.build(8, 0);
    family
        .requirements(&g)
        .expect("composed families are checkable")
        .expect("Cooldown satisfies requirements 2d/2e");
    let input = Cooldown::new(2);
    let init = validate::arbitrary_standalone_config(&input, &g, 7);
    validate::check_icorrect_closed_on_run(&input, &g, init, Daemon::Synchronous, 7, 5_000)
        .expect("requirement 2a holds along executions");
    println!(
        "registered family {:?} — §3.5 requirements verified\n",
        family.id()
    );

    // ---- 2. A full stochastic campaign ------------------------------
    //
    // The new family on a standard grid, side by side with U ∘ SDR:
    // same axes, same engine, same determinism contract — resolved
    // through the caller's registry with `engine::run_in`.
    let campaign = Campaign::new("cooldown-campaign")
        .topologies(vec![
            TopologySpec::Ring,
            TopologySpec::Star,
            TopologySpec::RandTree,
        ])
        .sizes(vec![6, 10])
        .algorithms(vec![spec.clone(), families::unison_sdr()])
        .daemons(vec![Daemon::Central, Daemon::RandomSubset { p: 0.5 }])
        .inits(vec![InitPlan::Arbitrary, InitPlan::Normal])
        .trials(2)
        .step_cap(2_000_000)
        .seed(0xC001);
    let records = engine::run_in(&registry, &campaign, threads);
    println!(
        "campaign '{}': {} runs on {} threads",
        campaign.id(),
        records.len(),
        threads
    );
    for rec in records.iter().filter(|r| r.algorithm == "cooldown").take(4) {
        println!(
            "  {:<9} n={:<2} {:<9} {:<9} rounds={:<3} ≤ 3n={} moves/proc={} verdict={}",
            rec.topology,
            rec.nodes,
            rec.daemon,
            rec.init,
            rec.rounds,
            rec.bound_rounds.unwrap(),
            rec.max_moves_per_process,
            rec.verdict
        );
    }
    assert!(
        records.iter().all(|r| r.verdict.ok()),
        "every run satisfies the generic Cor. 4/5 bounds"
    );
    let worst = records
        .iter()
        .filter(|r| r.algorithm == "cooldown")
        .map(|r| r.rounds)
        .max()
        .unwrap();
    println!("  … worst cooldown recovery over the whole grid: {worst} rounds\n");

    // ---- 3. An E13-style exhaustive sweep ----------------------------
    //
    // Exactly what experiment E13 does for the built-in families:
    // exhaust every distributed-daemon schedule from the family's
    // canonical seed set, check the exact worst case against the
    // closed-form bound, replay the witnesses, and cross-validate that
    // stochastic maxima over the same initial configurations never
    // exceed the exact optimum.
    let opts = ScenarioExploreOptions::default();
    println!("exhaustive sweep (every distributed-daemon schedule):");
    for (topology, n) in [
        (TopologySpec::Path, 4),
        (TopologySpec::Ring, 4),
        (TopologySpec::Star, 4),
        (TopologySpec::Caterpillar, 5),
    ] {
        let sc = Scenario {
            index: 0,
            topology,
            n,
            algorithm: spec.clone(),
            daemon: Daemon::Central,
            init: InitPlan::Arbitrary,
            trial: 0,
            seed: 0xE13,
            step_cap: 1_000_000,
            intra_threads: 1,
        };
        let exact = explore_scenario_in(&registry, &sc, &opts).expect("cooldown explores");
        let stoch = stochastic_max_in(&registry, &sc, &opts).expect("cooldown explores");
        assert!(
            exact.ok(),
            "closure + convergence + bounds + replay: {exact:?}"
        );
        assert!(stoch.all_reached);
        assert!(stoch.moves <= exact.exact_moves && stoch.rounds <= exact.exact_rounds);
        println!(
            "  {:<11} n={} states={:<6} exact moves/rounds={}/{} (bound rounds {}), \
             stochastic max {}/{} — verified",
            exact.topology,
            exact.nodes,
            exact.states,
            exact.exact_moves,
            exact.exact_rounds,
            exact.bound_rounds.unwrap(),
            stoch.moves,
            stoch.rounds
        );
    }

    // ---- 4. Static soundness certification ---------------------------
    //
    // The step pipeline's fast paths are only correct for families
    // that honor locality, non-adjacent commutativity, and RNG
    // discipline (DESIGN.md §11). A registered `composed()` family
    // gets the analysis hook for free — certify it exactly the way
    // the CI gate certifies the standard registry.
    let report = analyze::analyze_family(family.as_ref(), &AnalyzeOptions::default());
    assert!(
        report.analyzable && report.certified(),
        "cooldown must satisfy the §11 soundness obligations: {:?}",
        report.findings().collect::<Vec<_>>()
    );
    println!(
        "static analysis: certified on {} graphs ({} configurations, {} findings)",
        report.graphs.len(),
        report.graphs.iter().map(|g| g.configs).sum::<usize>(),
        report.error_count() + report.warning_count(),
    );

    println!("\nCooldown ∘ SDR: a family the workspace has never heard of, verified end to end.");
}
