//! Property 1 of Dourado et al. (§6.1), cross-validated on executable
//! instances:
//!
//! 1. every minimal (f,g)-alliance is 1-minimal;
//! 2. if `f(u) ≥ g(u)` for every `u`, every 1-minimal (f,g)-alliance is
//!    minimal.
//!
//! Part 2 is why the FGA outputs for the `f > g` presets are not just
//! irreducible-by-one but genuinely minimal (no proper subset works).

use ssr_alliance::{presets, verify, Fga};
use ssr_core::Standalone;
use ssr_graph::{generators, Graph};
use ssr_runtime::{Daemon, Simulator};

fn small_graphs() -> Vec<(&'static str, Graph)> {
    vec![
        ("ring6", generators::ring(6)),
        ("path7", generators::path(7)),
        ("star6", generators::star(6)),
        ("k5", generators::complete(5)),
        ("grid2x3", generators::grid(2, 3)),
    ]
}

fn run_fga(g: &Graph, fga: Fga) -> Vec<bool> {
    let alg = Standalone::new(fga);
    let init = alg.initial_config(g);
    let mut sim = Simulator::new(g, alg, init, Daemon::Central, 5);
    assert!(sim.execution().cap(5_000_000).run().terminal);
    verify::members(sim.states().iter())
}

/// Part 1, brute force: enumerate all vertex subsets on tiny graphs;
/// every minimal alliance must be 1-minimal.
#[test]
fn minimal_implies_one_minimal_exhaustive() {
    for (label, g) in small_graphs() {
        let n = g.node_count();
        let fga = presets::domination(&g).unwrap();
        for mask in 0u32..(1 << n) {
            let set: Vec<bool> = (0..n).map(|i| mask & (1 << i) != 0).collect();
            if set.iter().filter(|&&b| b).count() > 12 {
                continue; // keep the exhaustive inner check cheap
            }
            if verify::is_alliance(&g, fga.f(), fga.g(), &set)
                && verify::is_minimal_alliance(&g, fga.f(), fga.g(), &set)
            {
                assert!(
                    verify::is_one_minimal(&g, fga.f(), fga.g(), &set),
                    "{label}: minimal alliance {set:?} not 1-minimal"
                );
            }
        }
    }
}

/// Part 2 on FGA outputs: with `f ≥ g` pointwise (here the strict
/// `f > g` presets), the produced 1-minimal alliances are minimal.
#[test]
fn fga_outputs_minimal_when_f_ge_g() {
    for (label, g) in small_graphs() {
        for (plabel, fga) in presets::all_presets(&g) {
            let strict = fga.f().iter().zip(fga.g()).all(|(f, g_)| f >= g_);
            if !strict {
                continue;
            }
            let f = fga.f().to_vec();
            let gg = fga.g().to_vec();
            let members = run_fga(&g, fga);
            if members.iter().filter(|&&b| b).count() > 12 {
                continue;
            }
            if verify::is_one_minimal(&g, &f, &gg, &members) {
                assert!(
                    verify::is_minimal_alliance(&g, &f, &gg, &members),
                    "{label}/{plabel}: 1-minimal output is not minimal despite f ≥ g"
                );
            }
        }
    }
}

/// The paper's warning made concrete: a 1-minimal alliance is *not*
/// necessarily minimal when f < g somewhere.
#[test]
fn one_minimal_not_minimal_when_f_lt_g() {
    // On a path a-b-c with f≡0 and g(b)=1 for the middle: {a, b} is an
    // alliance (a has b; b has a; c needs f=0). Removing a breaks b's
    // g-demand; removing b leaves {a} fine for everyone (f≡0)… so tune:
    // take f≡0, g≡1 on K3: {a,b} is an alliance (each has the other);
    // dropping either member breaks the survivor's g-demand, so {a,b}
    // is 1-minimal; yet the proper subset ∅ is an alliance (f≡0).
    let g = generators::complete(3);
    let f = vec![0u32; 3];
    let gg = vec![1u32; 3];
    let set = vec![true, true, false];
    assert!(verify::is_alliance(&g, &f, &gg, &set));
    assert!(verify::is_one_minimal(&g, &f, &gg, &set));
    assert!(
        !verify::is_minimal_alliance(&g, &f, &gg, &set),
        "∅ is a proper-subset alliance, so {{a, b}} is not minimal"
    );
}
