//! Property-based tests for the (f,g)-alliance machinery.

use proptest::prelude::*;
use ssr_alliance::{fga_sdr, verify, Fga};
use ssr_core::{ResetInput, Standalone};
use ssr_graph::generators;
use ssr_runtime::rng::Xoshiro256StarStar;
use ssr_runtime::{Daemon, NodeId, Simulator};

/// Random instance: graph + valid (f, g) functions (δ ≥ max(f, g)).
fn random_instance(n: usize, gseed: u64, fseed: u64) -> (ssr_graph::Graph, Fga) {
    let g = generators::random_connected(n, n / 2, gseed);
    let mut rng = Xoshiro256StarStar::seed_from_u64(fseed);
    let f: Vec<u32> = g
        .nodes()
        .map(|u| rng.below(g.degree(u) as u64 + 1) as u32)
        .collect();
    let gg: Vec<u32> = g
        .nodes()
        .map(|u| rng.below(g.degree(u) as u64 + 1) as u32)
        .collect();
    let fga = Fga::new(&g, f, gg).expect("valid by construction");
    (g, fga)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The full vertex set is always an (f,g)-alliance when
    /// δ ≥ max(f, g) — the existence guarantee behind γ_init.
    #[test]
    fn full_set_is_alliance(n in 2usize..16, gseed in 0u64..50, fseed in 0u64..50) {
        let (g, fga) = random_instance(n, gseed, fseed);
        let all = vec![true; g.node_count()];
        prop_assert!(verify::is_alliance(&g, fga.f(), fga.g(), &all));
    }

    /// 1-minimality implies alliance-hood (structure of the definition).
    #[test]
    fn one_minimal_implies_alliance(n in 2usize..12, gseed in 0u64..30, mask in 0u64..4096) {
        let (g, fga) = random_instance(n, gseed, 7);
        let set: Vec<bool> = (0..g.node_count()).map(|i| (mask >> i) & 1 == 1).collect();
        if verify::is_one_minimal(&g, fga.f(), fga.g(), &set) {
            prop_assert!(verify::is_alliance(&g, fga.f(), fga.g(), &set));
            prop_assert!(verify::removable_members(&g, fga.f(), fga.g(), &set).is_empty());
        }
    }

    /// Arbitrary FGA states stay within the declared variable domains.
    #[test]
    fn arbitrary_states_in_domain(n in 2usize..12, gseed in 0u64..30, sseed in 0u64..100) {
        let (g, fga) = random_instance(n, gseed, 3);
        let mut rng = Xoshiro256StarStar::seed_from_u64(sseed);
        for u in g.nodes() {
            let s = fga.arbitrary_state(u, &mut rng);
            prop_assert!((-1..=1).contains(&s.scr));
            if let Some(w) = s.ptr {
                prop_assert!(w == u || g.are_neighbors(u, w), "ptr must stay in N[u]");
            }
        }
    }

    /// Standalone FGA terminates from γ_init with an alliance, and any
    /// 1-minimality gap is the documented corner.
    #[test]
    fn standalone_terminates_with_alliance(
        n in 2usize..10,
        gseed in 0u64..20,
        fseed in 0u64..20,
        dseed in 0u64..20,
    ) {
        let (g, fga) = random_instance(n, gseed, fseed);
        let f = fga.f().to_vec();
        let gg = fga.g().to_vec();
        let ids = fga.ids().to_vec();
        let alg = Standalone::new(fga);
        let init = alg.initial_config(&g);
        let mut sim = Simulator::new(&g, alg, init, Daemon::RandomSubset { p: 0.5 }, dseed);
        let out = sim.execution().cap(5_000_000).run();
        prop_assert!(out.terminal);
        let members = verify::members(sim.states().iter());
        prop_assert!(verify::is_alliance(&g, &f, &gg, &members));
        prop_assert!(verify::gap_explained_by_gslack_corner(&g, &f, &gg, &ids, &members));
    }

    /// FGA ∘ SDR is silent from arbitrary configurations with a valid
    /// alliance at termination (Theorems 11–12, randomized).
    #[test]
    fn composition_silent_from_arbitrary(
        n in 2usize..9,
        gseed in 0u64..15,
        fseed in 0u64..15,
        cseed in 0u64..30,
    ) {
        let (g, fga) = random_instance(n, gseed, fseed);
        let f = fga.f().to_vec();
        let gg = fga.g().to_vec();
        let ids = fga.ids().to_vec();
        let algo = fga_sdr(fga);
        let init = algo.arbitrary_config(&g, cseed);
        let mut sim = Simulator::new(&g, algo, init, Daemon::Central, cseed);
        let out = sim.execution().cap(5_000_000).run();
        prop_assert!(out.terminal, "silence violated");
        let members = verify::members(sim.states().iter().map(|s| &s.inner));
        prop_assert!(verify::is_alliance(&g, &f, &gg, &members));
        prop_assert!(verify::gap_explained_by_gslack_corner(&g, &f, &gg, &ids, &members));
    }

    /// `realScr` matches a direct recomputation on arbitrary
    /// configurations (macro correctness).
    #[test]
    fn real_scr_matches_definition(n in 2usize..12, gseed in 0u64..30, sseed in 0u64..100) {
        let (g, fga) = random_instance(n, gseed, 11);
        let mut rng = Xoshiro256StarStar::seed_from_u64(sseed);
        let states: Vec<_> = g.nodes().map(|u| fga.arbitrary_state(u, &mut rng)).collect();
        let view = ssr_runtime::ConfigView::new(&g, &states);
        for u in g.nodes() {
            let have = g
                .neighbors(u)
                .iter()
                .filter(|&&v| states[v.index()].col)
                .count() as u32;
            let need = if states[u.index()].col {
                fga.g()[u.index()]
            } else {
                fga.f()[u.index()]
            };
            let expected = if have < need { -1 } else if have == need { 0 } else { 1 };
            prop_assert_eq!(fga.real_scr(u, &view), expected);
        }
    }
}

/// Non-proptest helper check: NodeId import used by signature above.
#[test]
fn node_id_reexport_compiles() {
    let _ = NodeId(0);
}
