//! Integration tests for FGA (§6.4) and `FGA ∘ SDR` (§6.5):
//! Theorems 8–14 plus the six classical instantiations.

use ssr_alliance::{fga_sdr, presets, verify, Fga};
use ssr_core::Standalone;
use ssr_graph::{generators, Graph};
use ssr_runtime::rng::Xoshiro256StarStar;
use ssr_runtime::{Daemon, Simulator};

fn pointwise_f_gt_g(fga: &Fga) -> bool {
    fga.f().iter().zip(fga.g()).all(|(f, g)| f > g)
}

/// Runs standalone FGA from γ_init; returns (members, rounds, stats).
fn run_standalone(g: &Graph, fga: Fga, daemon: Daemon, seed: u64) -> (Vec<bool>, u64, u64, u64) {
    let alg = Standalone::new(fga);
    let init = alg.initial_config(g);
    let mut sim = Simulator::new(g, alg, init, daemon, seed);
    let out = sim.execution().cap(50_000_000).run();
    assert!(out.terminal, "FGA must terminate (Theorem 9)");
    let members = verify::members(sim.states().iter());
    (
        members,
        sim.stats().completed_rounds + 1,
        sim.stats().moves,
        sim.stats().max_moves_per_process(),
    )
}

/// Theorems 8–10 / Corollaries 10–12 on the standalone algorithm.
#[test]
fn standalone_fga_terminates_with_valid_output_and_bounds() {
    let topologies: Vec<(&str, Graph)> = vec![
        ("ring", generators::ring(10)),
        ("star", generators::star(9)),
        ("complete", generators::complete(7)),
        ("grid", generators::grid(3, 3)),
        ("random", generators::random_connected(10, 10, 21)),
    ];
    for (label, g) in &topologies {
        let n = g.node_count() as u64;
        let m = g.edge_count() as u64;
        let delta = g.max_degree() as u64;
        for (preset_label, fga) in presets::all_presets(g) {
            let f = fga.f().to_vec();
            let gg = fga.g().to_vec();
            let ids = fga.ids().to_vec();
            let strict = pointwise_f_gt_g(&fga);
            let (members, rounds, moves, max_pp) =
                run_standalone(g, fga, Daemon::RandomSubset { p: 0.5 }, 11);
            assert!(
                verify::is_alliance(g, &f, &gg, &members),
                "{label}/{preset_label}: output is not an alliance"
            );
            if strict {
                assert!(
                    verify::is_one_minimal(g, &f, &gg, &members),
                    "{label}/{preset_label}: output not 1-minimal (f > g pointwise)"
                );
            } else {
                // Documented corner: the minimum-id removable member
                // must lack g-slack (see crate docs).
                assert!(
                    verify::gap_explained_by_gslack_corner(g, &f, &gg, &ids, &members),
                    "{label}/{preset_label}: 1-minimality failed outside the documented corner"
                );
            }
            assert!(
                rounds <= verify::corollary12_round_bound(n),
                "{label}/{preset_label}: Corollary 12 violated ({rounds} > 5n+4)"
            );
            assert!(
                moves <= verify::corollary11_move_bound(n, m, delta),
                "{label}/{preset_label}: Corollary 11 violated"
            );
            let delta_max_bound = verify::lemma25_move_bound(delta, delta);
            assert!(
                max_pp <= delta_max_bound,
                "{label}/{preset_label}: Lemma 25 violated ({max_pp} > {delta_max_bound})"
            );
        }
    }
}

/// Theorem 11–14: `FGA ∘ SDR` is silent and self-stabilizing, within
/// the move/round bounds, from arbitrary configurations.
#[test]
fn composed_fga_sdr_is_silent_self_stabilizing() {
    let g = generators::random_connected(10, 8, 5);
    let n = g.node_count() as u64;
    let m = g.edge_count() as u64;
    let delta = g.max_degree() as u64;
    for daemon in [
        Daemon::Synchronous,
        Daemon::Central,
        Daemon::RandomSubset { p: 0.4 },
        Daemon::PreferHighRules,
    ] {
        for seed in 0..4 {
            let fga = presets::domination(&g).unwrap();
            let f = fga.f().to_vec();
            let gg = fga.g().to_vec();
            let algo = fga_sdr(fga);
            let init = algo.arbitrary_config(&g, seed * 71 + 3);
            let mut sim = Simulator::new(&g, algo, init, daemon.clone(), seed);
            let out = sim.execution().cap(50_000_000).run();
            assert!(out.terminal, "silence (Theorem 12) under {daemon:?}");
            assert!(
                sim.stats().moves <= verify::theorem12_move_bound(n, m, delta),
                "Theorem 12 move bound violated under {daemon:?}"
            );
            assert!(
                sim.stats().completed_rounds < verify::theorem14_round_bound(n),
                "Theorem 14 violated under {daemon:?}: {} rounds",
                sim.stats().completed_rounds + 1
            );
            let members = verify::members(sim.states().iter().map(|s| &s.inner));
            assert!(
                verify::is_alliance(&g, &f, &gg, &members),
                "terminal config not an alliance under {daemon:?}"
            );
            assert!(
                verify::is_one_minimal(&g, &f, &gg, &members),
                "terminal config not 1-minimal under {daemon:?} (Theorem 11)"
            );
        }
    }
}

/// E9: preset outputs satisfy the classical definitions they reduce to.
#[test]
fn presets_satisfy_classical_definitions() {
    let g = generators::torus(3, 3); // 4-regular: all presets valid
    for (label, fga) in presets::all_presets(&g) {
        let (members, _, _, _) = run_standalone(&g, fga, Daemon::Central, 5);
        let ok = match label {
            "domination(1,0)" => verify::is_dominating_set(&g, &members),
            "2-domination(2,0)" => verify::is_k_dominating_set(&g, &members, 2),
            "2-tuple(2,1)" => verify::is_k_tuple_dominating_set(&g, &members, 2),
            "offensive" => verify::is_global_offensive_alliance(&g, &members),
            "defensive" => verify::is_global_defensive_alliance(&g, &members),
            "powerful" => verify::is_global_powerful_alliance(&g, &members),
            other => panic!("unknown preset {other}"),
        };
        assert!(ok, "{label}: classical definition violated");
    }
}

/// Identifier assignment must drive the outcome, not array order: with
/// shuffled ids the result is still a valid 1-minimal alliance, and on
/// a symmetric graph the quitting order follows the ids.
#[test]
fn identifiers_not_indices_drive_removals() {
    let g = generators::complete(6);
    let n = g.node_count();
    // Reverse ids: node 5 has the smallest id.
    let ids: Vec<u64> = (0..n as u64).rev().collect();
    let fga = Fga::with_ids(&g, vec![1; n], vec![0; n], ids).unwrap();
    let f = fga.f().to_vec();
    let gg = fga.g().to_vec();
    let (members, _, _, _) = run_standalone(&g, fga, Daemon::Central, 3);
    assert!(verify::is_one_minimal(&g, &f, &gg, &members));
    // On K6 with (1,0), the 1-minimal alliance is a single node; the
    // survivor must be the one with the *largest* id = index 0.
    let survivors: Vec<usize> = members
        .iter()
        .enumerate()
        .filter(|(_, &b)| b)
        .map(|(i, _)| i)
        .collect();
    assert_eq!(survivors, vec![0], "the largest-id process survives on K_n");
}

/// Local centrality of removals (§6.4): per step, at most one process
/// of any closed neighborhood executes `rule_Clr`.
#[test]
fn removals_are_locally_central() {
    let g = generators::random_connected(12, 10, 8);
    let fga = presets::domination(&g).unwrap();
    let alg = Standalone::new(fga);
    let init = alg.initial_config(&g);
    let mut sim = Simulator::new(&g, alg, init, Daemon::Synchronous, 2);
    for _ in 0..10_000 {
        match sim.step() {
            ssr_runtime::StepOutcome::Terminal => break,
            ssr_runtime::StepOutcome::Progress { .. } => {
                let clears: Vec<_> = sim
                    .last_activated()
                    .iter()
                    .filter(|&&(_, r)| r == ssr_alliance::RULE_CLR)
                    .map(|&(u, _)| u)
                    .collect();
                for (i, &u) in clears.iter().enumerate() {
                    for &v in &clears[i + 1..] {
                        assert!(
                            u != v && !sim.graph().are_neighbors(u, v),
                            "neighbors {u:?} and {v:?} quit in the same step"
                        );
                    }
                }
            }
        }
    }
}

/// `realScr(u) ≥ 0` stays closed from clean configurations — the
/// invariant the approval machinery protects (Lemma 22).
#[test]
fn real_scr_nonnegative_closed_from_gamma_init() {
    let g = generators::random_connected(10, 8, 13);
    let fga = presets::global_powerful(&g).unwrap();
    let probe = fga.clone();
    let alg = Standalone::new(fga);
    let init = alg.initial_config(&g);
    let mut sim = Simulator::new(&g, alg, init, Daemon::RandomSubset { p: 0.6 }, 4);
    for _ in 0..20_000 {
        match sim.step() {
            ssr_runtime::StepOutcome::Terminal => break,
            ssr_runtime::StepOutcome::Progress { .. } => {
                let view = sim.view();
                for u in sim.graph().nodes() {
                    assert!(
                        probe.real_scr(u, &view) >= 0,
                        "realScr({u:?}) went negative"
                    );
                }
            }
        }
    }
}

/// Random valid (f,g) pairs — not just the presets — produce verified
/// alliances through the composition.
#[test]
fn random_fg_functions_through_composition() {
    let g = generators::random_connected(9, 8, 17);
    let mut rng = Xoshiro256StarStar::seed_from_u64(99);
    for trial in 0..6 {
        let f: Vec<u32> = g
            .nodes()
            .map(|u| rng.below(g.degree(u) as u64 + 1) as u32)
            .collect();
        let gg: Vec<u32> = g
            .nodes()
            .map(|u| rng.below(g.degree(u) as u64 + 1) as u32)
            .collect();
        let fga = Fga::new(&g, f.clone(), gg.clone()).expect("δ ≥ max(f,g) by construction");
        let ids = fga.ids().to_vec();
        let algo = fga_sdr(fga);
        let init = algo.arbitrary_config(&g, trial * 7 + 1);
        let mut sim = Simulator::new(&g, algo, init, Daemon::Central, trial);
        let out = sim.execution().cap(50_000_000).run();
        assert!(out.terminal);
        let members = verify::members(sim.states().iter().map(|s| &s.inner));
        assert!(
            verify::is_alliance(&g, &f, &gg, &members),
            "trial {trial}: not an alliance"
        );
        assert!(
            verify::gap_explained_by_gslack_corner(&g, &f, &gg, &ids, &members),
            "trial {trial}: failure outside documented corner"
        );
    }
}

/// The star/defensive counterexample from the crate docs, reproduced
/// end to end.
#[test]
fn defensive_star_exhibits_documented_corner() {
    let g = generators::star(5);
    let fga = presets::global_defensive(&g).unwrap();
    let f = fga.f().to_vec();
    let gg = fga.g().to_vec();
    let (members, _, _, _) = run_standalone(&g, fga, Daemon::Central, 1);
    assert!(verify::is_alliance(&g, &f, &gg, &members));
    assert!(members.iter().all(|&b| b), "terminal config is A = V");
    assert!(
        !verify::is_one_minimal(&g, &f, &gg, &members),
        "the corner exists: V is not 1-minimal on the star"
    );
    let removable = verify::removable_members(&g, &f, &gg, &members);
    assert_eq!(verify::one_minimality_gap(&g, &f, &gg, &members), removable);
}
