//! Algorithm FGA (Algorithm 3 of the paper) as a [`ResetInput`].

use std::error::Error;
use std::fmt;

use ssr_core::{ResetInput, Sdr};
use ssr_graph::{Graph, NodeId};
use ssr_runtime::rng::Xoshiro256StarStar;
use ssr_runtime::{RuleId, RuleMask, StateView};

/// `rule_Clr(u)`: leave the alliance (requires full approval).
pub const RULE_CLR: RuleId = RuleId(0);
/// `rule_P1(u)`: retract the pointer (`ptr_u := ⊥`) before re-aiming.
pub const RULE_P1: RuleId = RuleId(1);
/// `rule_P2(u)`: aim the pointer at `bestPtr(u)`.
pub const RULE_P2: RuleId = RuleId(2);
/// `rule_Q(u)`: refresh `scr_u` / `canQ_u` after neighborhood changes.
pub const RULE_Q: RuleId = RuleId(3);

/// The composition `FGA ∘ SDR` (§6.5).
pub type FgaSdr = Sdr<Fga>;

/// Composes Algorithm FGA with SDR.
pub fn fga_sdr(fga: Fga) -> FgaSdr {
    Sdr::new(fga)
}

/// FGA's four shared variables for one process (§6.4).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FgaState {
    /// `col_u`: `u` belongs to the alliance iff `col_u`.
    pub col: bool,
    /// `scr_u ∈ {−1, 0, 1}`: `scr_u ≤ 0` iff no neighbor of `u` may
    /// quit the alliance.
    pub scr: i8,
    /// `canQ_u`: whether `u` may quit the alliance.
    pub can_q: bool,
    /// `ptr_u ∈ N[u] ∪ {⊥}`: the member of `u`'s closed neighborhood
    /// that `u` currently approves for removal (`None` is `⊥`).
    pub ptr: Option<NodeId>,
}

impl FgaState {
    /// The pre-defined reset / initial state: in the alliance, full
    /// score, quittable, no approval.
    pub fn reset() -> Self {
        FgaState {
            col: true,
            scr: 1,
            can_q: true,
            ptr: None,
        }
    }
}

impl Default for FgaState {
    fn default() -> Self {
        FgaState::reset()
    }
}

impl fmt::Display for FgaState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}→{}",
            if self.col { "●" } else { "○" },
            self.scr,
            if self.can_q { "q" } else { "·" },
            match self.ptr {
                None => "⊥".to_string(),
                Some(w) => w.to_string(),
            }
        )
    }
}

/// Construction errors for [`Fga`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FgaError {
    /// `f`/`g`/`ids` length differs from the node count.
    LengthMismatch {
        /// What was mis-sized.
        what: &'static str,
        /// Provided length.
        got: usize,
        /// Expected node count.
        expected: usize,
    },
    /// The solvability requirement `δ_u ≥ max(f(u), g(u))` fails at `node`.
    DegreeTooSmall {
        /// The offending process.
        node: NodeId,
        /// Its degree.
        degree: usize,
        /// `max(f(u), g(u))`.
        needed: u32,
    },
    /// Two processes share an identifier.
    DuplicateId {
        /// The repeated identifier.
        id: u64,
    },
}

impl fmt::Display for FgaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FgaError::LengthMismatch { what, got, expected } => {
                write!(f, "{what} has length {got}, expected {expected}")
            }
            FgaError::DegreeTooSmall { node, degree, needed } => write!(
                f,
                "node {node:?} has degree {degree} < max(f, g) = {needed}; no (f,g)-alliance is guaranteed"
            ),
            FgaError::DuplicateId { id } => write!(f, "duplicate process identifier {id}"),
        }
    }
}

impl Error for FgaError {}

/// Algorithm FGA: silent 1-minimal (f,g)-alliance construction for
/// identified networks (Algorithm 3).
///
/// All processes start in the alliance (`γ_init` = every variable at its
/// reset value) and leave one by one. A process `u` may leave only with
/// *full approval*: `#InAll(u) ≥ f(u)`, every neighbor has score 1
/// (they tolerate losing `u`), and every member of `N[u]` — including
/// `u` itself — points at `u`. The pointers make removals **locally
/// central**: at most one process per closed neighborhood leaves per
/// step, which keeps `realScr ≥ 0` closed.
///
/// See [`crate::presets`] for the classical instantiations and
/// [`crate::verify`] for checkers; compose with SDR via [`fga_sdr`] for
/// the self-stabilizing version.
#[derive(Clone, Debug)]
pub struct Fga {
    ids: Vec<u64>,
    f: Vec<u32>,
    g: Vec<u32>,
    /// Closed neighborhoods (for the `ptr` domain of
    /// [`ResetInput::arbitrary_state`]).
    closed_nbrs: Vec<Vec<NodeId>>,
}

impl Fga {
    /// Builds an FGA instance over `graph` with identifiers equal to
    /// node indices.
    ///
    /// # Errors
    ///
    /// Returns an [`FgaError`] if vector lengths mismatch or some node
    /// violates `δ_u ≥ max(f(u), g(u))`.
    pub fn new(graph: &Graph, f: Vec<u32>, g: Vec<u32>) -> Result<Self, FgaError> {
        let ids = (0..graph.node_count() as u64).collect();
        Fga::with_ids(graph, f, g, ids)
    }

    /// Builds an FGA instance with explicit unique identifiers.
    ///
    /// # Errors
    ///
    /// As [`Fga::new`], plus [`FgaError::DuplicateId`].
    pub fn with_ids(
        graph: &Graph,
        f: Vec<u32>,
        g: Vec<u32>,
        ids: Vec<u64>,
    ) -> Result<Self, FgaError> {
        let n = graph.node_count();
        for (what, len) in [("f", f.len()), ("g", g.len()), ("ids", ids.len())] {
            if len != n {
                return Err(FgaError::LengthMismatch {
                    what,
                    got: len,
                    expected: n,
                });
            }
        }
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        for w in sorted.windows(2) {
            if w[0] == w[1] {
                return Err(FgaError::DuplicateId { id: w[0] });
            }
        }
        for u in graph.nodes() {
            let needed = f[u.index()].max(g[u.index()]);
            if (graph.degree(u) as u32) < needed {
                return Err(FgaError::DegreeTooSmall {
                    node: u,
                    degree: graph.degree(u),
                    needed,
                });
            }
        }
        let closed_nbrs = graph
            .nodes()
            .map(|u| graph.closed_neighborhood(u).collect())
            .collect();
        Ok(Fga {
            ids,
            f,
            g,
            closed_nbrs,
        })
    }

    /// The identifier of process `u`.
    pub fn id(&self, u: NodeId) -> u64 {
        self.ids[u.index()]
    }

    /// All identifiers, indexed by node (for verification).
    pub fn ids(&self) -> &[u64] {
        &self.ids
    }

    /// The per-node demand `f` (for verification).
    pub fn f(&self) -> &[u32] {
        &self.f
    }

    /// The per-node demand `g` (for verification).
    pub fn g(&self) -> &[u32] {
        &self.g
    }

    // ---- macros of Algorithm 3 ----

    /// `#InAll(u) = |{w ∈ N(u) | col_w}|`.
    pub fn in_all<V: StateView<FgaState>>(&self, u: NodeId, view: &V) -> u32 {
        view.graph()
            .neighbors(u)
            .iter()
            .filter(|&&w| view.state(w).col)
            .count() as u32
    }

    /// `realScr(u)` for an explicit membership bit (used mid-action by
    /// `rule_Clr`, whose `upd(u)` runs after `col_u := false`).
    pub fn real_scr_with_col<V: StateView<FgaState>>(&self, u: NodeId, view: &V, col: bool) -> i8 {
        let have = self.in_all(u, view);
        let need = if col {
            self.g[u.index()]
        } else {
            self.f[u.index()]
        };
        match have.cmp(&need) {
            std::cmp::Ordering::Less => -1,
            std::cmp::Ordering::Equal => 0,
            std::cmp::Ordering::Greater => 1,
        }
    }

    /// `realScr(u)` as in the paper (against `u`'s stored `col_u`).
    pub fn real_scr<V: StateView<FgaState>>(&self, u: NodeId, view: &V) -> i8 {
        self.real_scr_with_col(u, view, view.state(u).col)
    }

    /// `P_canQuit(u) ≡ col_u ∧ #InAll(u) ≥ f(u) ∧ (∀v ∈ N(u), scr_v = 1)`.
    pub fn p_can_quit<V: StateView<FgaState>>(&self, u: NodeId, view: &V) -> bool {
        self.p_can_quit_with_col(u, view, view.state(u).col)
    }

    /// `P_canQuit` with an explicit membership bit (mid-action form).
    pub fn p_can_quit_with_col<V: StateView<FgaState>>(
        &self,
        u: NodeId,
        view: &V,
        col: bool,
    ) -> bool {
        col && self.in_all(u, view) >= self.f[u.index()]
            && view
                .graph()
                .neighbors(u)
                .iter()
                .all(|&v| view.state(v).scr == 1)
    }

    /// `bestPtr(u)` parameterized by `u`'s (possibly freshly computed)
    /// own `scr`/`canQ`; neighbors are read from the configuration.
    ///
    /// Returns `⊥` when `scr_u ≤ 0` or nobody in `N[u]` can quit;
    /// otherwise the minimum-identifier member of `N[u]` with `canQ`.
    pub fn best_ptr<V: StateView<FgaState>>(
        &self,
        u: NodeId,
        view: &V,
        self_scr: i8,
        self_can_q: bool,
    ) -> Option<NodeId> {
        if self_scr <= 0 {
            return None;
        }
        let mut best: Option<(u64, NodeId)> = None;
        let mut consider = |v: NodeId, can_q: bool| {
            if can_q {
                let key = (self.id(v), v);
                if best.is_none_or(|b| key.0 < b.0) {
                    best = Some(key);
                }
            }
        };
        consider(u, self_can_q);
        for &v in view.graph().neighbors(u) {
            consider(v, view.state(v).can_q);
        }
        best.map(|(_, v)| v)
    }

    /// `bestPtr(u)` on the stored configuration (guard form).
    pub fn best_ptr_stored<V: StateView<FgaState>>(&self, u: NodeId, view: &V) -> Option<NodeId> {
        let s = view.state(u);
        self.best_ptr(u, view, s.scr, s.can_q)
    }

    /// `P_toQuit(u) ≡ P_canQuit(u) ∧ (∀v ∈ N[u], ptr_v = u)` — full
    /// approval from the closed neighborhood, self included.
    pub fn p_to_quit<V: StateView<FgaState>>(&self, u: NodeId, view: &V) -> bool {
        self.p_can_quit(u, view)
            && view
                .graph()
                .closed_neighborhood(u)
                .all(|v| view.state(v).ptr == Some(u))
    }

    /// `P_updPtr(u) ≡ ¬P_toQuit(u) ∧ ptr_u ≠ bestPtr(u)`.
    pub fn p_upd_ptr<V: StateView<FgaState>>(&self, u: NodeId, view: &V) -> bool {
        !self.p_to_quit(u, view) && view.state(u).ptr != self.best_ptr_stored(u, view)
    }

    /// `cmpVar(u)`-then-`bestPtr(u)` (the `upd(u)` macro), with an
    /// explicit membership bit.
    fn upd(&self, u: NodeId, view: &impl StateView<FgaState>, col: bool) -> FgaState {
        let scr = self.real_scr_with_col(u, view, col);
        let can_q = self.p_can_quit_with_col(u, view, col);
        let ptr = self.best_ptr(u, view, scr, can_q);
        FgaState {
            col,
            scr,
            can_q,
            ptr,
        }
    }
}

impl ResetInput for Fga {
    type State = FgaState;

    fn rule_count(&self) -> usize {
        4
    }

    fn rule_name(&self, rule: RuleId) -> &'static str {
        match rule {
            RULE_CLR => "rule_Clr",
            RULE_P1 => "rule_P1",
            RULE_P2 => "rule_P2",
            _ => "rule_Q",
        }
    }

    fn enabled_mask<V: StateView<FgaState>>(&self, u: NodeId, view: &V) -> RuleMask {
        let s = view.state(u);
        let to_quit = self.p_to_quit(u, view);
        let upd_ptr = !to_quit && s.ptr != self.best_ptr_stored(u, view);
        let stale = s.scr != self.real_scr(u, view) || s.can_q != self.p_can_quit(u, view);
        RuleMask::NONE
            .with_if(RULE_CLR, to_quit)
            .with_if(RULE_P1, upd_ptr && s.ptr.is_some())
            .with_if(RULE_P2, upd_ptr && s.ptr.is_none())
            .with_if(RULE_Q, !to_quit && !upd_ptr && stale)
    }

    fn apply<V: StateView<FgaState>>(&self, u: NodeId, view: &V, rule: RuleId) -> FgaState {
        let s = *view.state(u);
        match rule {
            // col_u := false; upd(u)  (upd sees the new col).
            RULE_CLR => self.upd(u, view, false),
            // ptr_u := ⊥; cmpVar(u).
            RULE_P1 => FgaState {
                col: s.col,
                scr: self.real_scr(u, view),
                can_q: self.p_can_quit(u, view),
                ptr: None,
            },
            // upd(u).
            RULE_P2 => self.upd(u, view, s.col),
            // cmpVar(u); if realScr(u) ≤ 0 then ptr_u := ⊥.
            _ => {
                let scr = self.real_scr(u, view);
                FgaState {
                    col: s.col,
                    scr,
                    can_q: self.p_can_quit(u, view),
                    ptr: if scr <= 0 { None } else { s.ptr },
                }
            }
        }
    }

    fn p_icorrect<V: StateView<FgaState>>(&self, u: NodeId, view: &V) -> bool {
        let s = view.state(u);
        let real = self.real_scr(u, view);
        real >= 0
            && ((s.scr == 1 && real == 1)
                || s.ptr.is_none()
                || s.ptr.is_some_and(|w| s.scr == 1 && !view.state(w).col))
    }

    fn p_reset(&self, _: NodeId, state: &FgaState) -> bool {
        state.col && state.ptr.is_none() && state.can_q && state.scr == 1
    }

    fn reset_state(&self, _: NodeId) -> FgaState {
        FgaState::reset()
    }

    fn arbitrary_state(&self, u: NodeId, rng: &mut Xoshiro256StarStar) -> FgaState {
        let nbrs = &self.closed_nbrs[u.index()];
        let ptr = if rng.chance(0.5) {
            None
        } else {
            Some(*rng.choose(nbrs))
        };
        FgaState {
            col: rng.chance(0.5),
            scr: (rng.below(3) as i8) - 1,
            can_q: rng.chance(0.5),
            ptr,
        }
    }
}

impl ssr_runtime::exhaustive::ExploreState for FgaState {
    /// One word packing `col`, `scr + 1` (2 bits), `can_q`, and the
    /// pointer (`⊥` ↦ `u32::MAX`).
    #[inline]
    fn encode(&self, out: &mut Vec<u64>) {
        let ptr = self.ptr.map_or(u32::MAX, |v| v.0);
        out.push(
            (self.col as u64)
                | (((self.scr + 1) as u64) << 1)
                | ((self.can_q as u64) << 3)
                | ((ptr as u64) << 4),
        );
    }
}

#[cfg(test)]
mod encode_tests {
    use super::*;
    use ssr_runtime::exhaustive::ExploreState;

    fn words(s: &FgaState) -> Vec<u64> {
        let mut out = Vec::new();
        s.encode(&mut out);
        out
    }

    /// The packed word must distinguish every field — a collision
    /// would silently merge distinct explorer states.
    #[test]
    fn fga_state_fields_are_distinguished() {
        let base = FgaState::reset();
        let mut seen = vec![words(&base)];
        for s in [
            FgaState { col: false, ..base },
            FgaState { scr: -1, ..base },
            FgaState {
                can_q: false,
                ..base
            },
            FgaState {
                ptr: Some(NodeId(0)),
                ..base
            },
            FgaState {
                ptr: Some(NodeId(1)),
                ..base
            },
        ] {
            let w = words(&s);
            assert!(!seen.contains(&w), "{s:?} collides");
            seen.push(w);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_graph::generators;
    use ssr_runtime::{ConfigView, Daemon, Simulator};

    fn domination(g: &Graph) -> Fga {
        let n = g.node_count();
        Fga::new(g, vec![1; n], vec![0; n]).unwrap()
    }

    #[test]
    fn construction_validates() {
        let g = generators::path(3);
        assert!(matches!(
            Fga::new(&g, vec![1, 1], vec![0, 0, 0]),
            Err(FgaError::LengthMismatch { what: "f", .. })
        ));
        // Endpoint of a path has degree 1 < f = 2.
        assert!(matches!(
            Fga::new(&g, vec![2, 2, 2], vec![0, 0, 0]),
            Err(FgaError::DegreeTooSmall { .. })
        ));
        assert!(matches!(
            Fga::with_ids(&g, vec![1, 1, 1], vec![0, 0, 0], vec![5, 5, 6]),
            Err(FgaError::DuplicateId { id: 5 })
        ));
        assert!(Fga::new(&g, vec![1, 1, 1], vec![0, 0, 0]).is_ok());
    }

    #[test]
    fn real_scr_cases() {
        let g = generators::path(3);
        let fga = Fga::new(&g, vec![1, 2, 1], vec![0, 1, 0]).unwrap();
        // Node 1 in the alliance with both neighbors in: #InAll = 2 > g = 1.
        let all_in = vec![FgaState::reset(); 3];
        let v = ConfigView::new(&g, &all_in);
        assert_eq!(fga.real_scr(NodeId(1), &v), 1);
        // Node 1 out of the alliance: compare against f = 2 -> equal.
        let mut states = all_in.clone();
        states[1].col = false;
        let v = ConfigView::new(&g, &states);
        assert_eq!(fga.real_scr(NodeId(1), &v), 0);
        // Node 0 (col) with its only neighbor out: 0 = g(0) -> 0.
        assert_eq!(fga.real_scr(NodeId(0), &v), 0);
        // Node 0 out as well: 0 < f(0) = 1 -> −1.
        states[0].col = false;
        let v = ConfigView::new(&g, &states);
        assert_eq!(fga.real_scr(NodeId(0), &v), -1);
    }

    #[test]
    fn best_ptr_prefers_smallest_id() {
        let g = generators::star(4); // hub 0, leaves 1..3
        let fga = Fga::with_ids(
            &g,
            vec![1; 4],
            vec![0; 4],
            vec![10, 3, 2, 5], // leaf 2 has the smallest id
        )
        .unwrap();
        let states = vec![FgaState::reset(); 4];
        let v = ConfigView::new(&g, &states);
        assert_eq!(fga.best_ptr_stored(NodeId(0), &v), Some(NodeId(2)));
        // A leaf only sees itself and the hub.
        assert_eq!(fga.best_ptr_stored(NodeId(1), &v), Some(NodeId(1)));
    }

    #[test]
    fn best_ptr_blocked_without_slack_or_candidates() {
        let g = generators::path(2);
        let fga = domination(&g);
        let mut states = vec![FgaState::reset(); 2];
        states[0].scr = 0;
        let v = ConfigView::new(&g, &states);
        assert_eq!(fga.best_ptr_stored(NodeId(0), &v), None, "scr ≤ 0 blocks");
        states[0].scr = 1;
        states[0].can_q = false;
        states[1].can_q = false;
        let v = ConfigView::new(&g, &states);
        assert_eq!(fga.best_ptr_stored(NodeId(0), &v), None, "no candidate");
    }

    #[test]
    fn to_quit_needs_closed_neighborhood_approval() {
        let g = generators::path(2);
        let fga = domination(&g);
        let mut states = vec![FgaState::reset(); 2];
        states[1].ptr = Some(NodeId(0));
        let v = ConfigView::new(&g, &states);
        assert!(!fga.p_to_quit(NodeId(0), &v), "self-approval missing");
        states[0].ptr = Some(NodeId(0));
        let v = ConfigView::new(&g, &states);
        assert!(fga.p_to_quit(NodeId(0), &v));
    }

    #[test]
    fn clr_updates_own_variables_against_new_col() {
        let g = generators::path(2);
        let fga = domination(&g);
        let states = vec![
            FgaState {
                ptr: Some(NodeId(0)),
                ..FgaState::reset()
            },
            FgaState {
                ptr: Some(NodeId(0)),
                ..FgaState::reset()
            },
        ];
        let v = ConfigView::new(&g, &states);
        assert!(fga.p_to_quit(NodeId(0), &v));
        let after = fga.apply(NodeId(0), &v, RULE_CLR);
        assert!(!after.col);
        // Out of the alliance: #InAll = 1 = f -> scr 0; canQuit needs col.
        assert_eq!(after.scr, 0);
        assert!(!after.can_q);
        assert_eq!(after.ptr, None, "scr ≤ 0 retracts the pointer");
    }

    #[test]
    fn p1_retracts_then_p2_aims() {
        let g = generators::path(2);
        let fga = domination(&g);
        // Node 0 points at a stale target while bestPtr says node 0
        // itself (ids 0 < 1).
        let mut states = vec![FgaState::reset(); 2];
        states[0].ptr = Some(NodeId(1));
        let v = ConfigView::new(&g, &states);
        let mask = fga.enabled_mask(NodeId(0), &v);
        assert!(mask.contains(RULE_P1));
        let mid = fga.apply(NodeId(0), &v, RULE_P1);
        assert_eq!(mid.ptr, None);
        states[0] = mid;
        let v = ConfigView::new(&g, &states);
        let mask = fga.enabled_mask(NodeId(0), &v);
        assert!(mask.contains(RULE_P2));
        let fin = fga.apply(NodeId(0), &v, RULE_P2);
        assert_eq!(fin.ptr, Some(NodeId(0)));
    }

    #[test]
    fn rules_mutually_exclusive() {
        let g = generators::random_connected(8, 5, 2);
        let fga = domination(&g);
        let mut rng = Xoshiro256StarStar::seed_from_u64(77);
        for _ in 0..300 {
            let states: Vec<FgaState> = g
                .nodes()
                .map(|u| fga.arbitrary_state(u, &mut rng))
                .collect();
            let v = ConfigView::new(&g, &states);
            for u in g.nodes() {
                assert!(fga.enabled_mask(u, &v).count() <= 1);
            }
        }
    }

    #[test]
    fn k2_domination_scenario() {
        // The worked example: on K2 with (1,0), the smaller id quits.
        let g = generators::path(2);
        let fga = domination(&g);
        let alg = ssr_core::Standalone::new(fga);
        let init = alg.initial_config(&g);
        let mut sim = Simulator::new(&g, alg, init, Daemon::Central, 1);
        let out = sim.execution().cap(1_000).run();
        assert!(out.terminal);
        assert!(!sim.states()[0].col, "min id leaves");
        assert!(sim.states()[1].col);
    }

    #[test]
    fn reset_state_is_gamma_init() {
        let g = generators::ring(4);
        let fga = domination(&g);
        ssr_core::validate::check_requirements(&fga, &g).unwrap();
        assert_eq!(fga.reset_state(NodeId(0)), FgaState::reset());
    }

    #[test]
    fn arbitrary_state_respects_ptr_domain() {
        let g = generators::path(3);
        let fga = domination(&g);
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        for _ in 0..200 {
            let s = fga.arbitrary_state(NodeId(0), &mut rng);
            if let Some(w) = s.ptr {
                assert!(w == NodeId(0) || g.are_neighbors(NodeId(0), w));
            }
            assert!((-1..=1).contains(&s.scr));
        }
    }

    #[test]
    fn display_forms() {
        let s = FgaState::reset();
        assert_eq!(s.to_string(), "●1q→⊥");
        let t = FgaState {
            col: false,
            scr: -1,
            can_q: false,
            ptr: Some(NodeId(3)),
        };
        assert_eq!(t.to_string(), "○-1·→3");
    }
}
