//! 1-minimal (f,g)-alliance (§6 of the SDR paper).
//!
//! Given non-negative node functions `f` and `g`, a set `A ⊆ V` is an
//! **(f,g)-alliance** iff every `u ∉ A` has at least `f(u)` neighbors in
//! `A` and every `v ∈ A` has at least `g(v)` neighbors in `A`. `A` is
//! **1-minimal** iff removing any single member breaks the alliance.
//! The problem generalizes domination, k-domination, k-tuple domination,
//! and global offensive/defensive/powerful alliances (§6.1).
//!
//! This crate provides:
//!
//! * [`Fga`] — Algorithm FGA (Algorithm 3): a *non-self-stabilizing*
//!   1-minimal (f,g)-alliance construction for identified networks with
//!   `δ_u ≥ max(f(u), g(u))`, terminating in `O(Δ·m)` moves (Theorem 9)
//!   and `5n + 4` rounds (Corollary 12) from `γ_init`;
//! * the silent self-stabilizing composition `FGA ∘ SDR` via
//!   [`fga_sdr`]: terminal configurations are 1-minimal
//!   (f,g)-alliances (Theorem 11), reached within `O(Δ·n·m)` moves
//!   (Theorem 12) and `8n + 4` rounds (Theorem 14);
//! * [`presets`] — the six classical instantiations of §6.1;
//! * [`verify`] — independent checkers (alliance, 1-minimality, and the
//!   classical definitions) and the paper's bounds in closed form.
//!
//! # A reproduction finding
//!
//! The published `bestPtr(u)` macro returns `⊥` whenever `scr_u ≤ 0`,
//! which blocks *self*-approval of members with zero g-slack
//! (`#InAll(u) = g(u)`). When `f(u) ≤ g(u)` such a member may be
//! removable even though the algorithm cannot elect it (the proof of
//! Theorem 8 asserts `realScr(m) = 1` for the minimum-identifier
//! removable member `m`, which only follows from `#InAll(m) ≥ f(m)`
//! when `f(m) > g(m)`). When the minimum-id removable member stalls
//! this way, higher-id removable members can be blocked *transitively*
//! (approval pointers keep aiming at the stalled smaller id).
//! Concretely: a global *defensive* alliance on a star terminates at
//! `A = V`, which is not 1-minimal. All presets with pointwise `f > g`
//! (domination, k-domination, k-tuple, offensive) verify 1-minimality
//! on every tested instance; defensive/powerful instances verify
//! alliance-ness always, and every observed 1-minimality gap is
//! explained by the corner — see
//! [`verify::gap_explained_by_gslack_corner`].
//!
//! # Examples
//!
//! ```
//! use ssr_alliance::{fga_sdr, presets, verify};
//! use ssr_graph::generators;
//! use ssr_runtime::{Daemon, Simulator};
//!
//! let g = generators::random_connected(12, 8, 5);
//! let fga = presets::domination(&g)?; // (1,0)-alliance
//! let algo = fga_sdr(fga.clone());
//! let init = algo.arbitrary_config(&g, 99);
//! let mut sim = Simulator::new(&g, algo, init, Daemon::Central, 7);
//! let out = sim.execution().cap(10_000_000).run();
//! assert!(out.terminal, "FGA ∘ SDR is silent");
//! let members = verify::members(sim.states().iter().map(|s| &s.inner));
//! assert!(verify::is_alliance(&g, fga.f(), fga.g(), &members));
//! assert!(verify::is_one_minimal(&g, fga.f(), fga.g(), &members));
//! assert!(verify::is_dominating_set(&g, &members));
//! # Ok::<(), ssr_alliance::FgaError>(())
//! ```

#![forbid(unsafe_code)]

pub mod columns;
pub mod family;
mod fga;
pub mod presets;
pub mod verify;

pub use columns::FgaColumns;
pub use family::{FgaSdrFamily, FgaStandaloneFamily};
pub use fga::{fga_sdr, Fga, FgaError, FgaSdr, FgaState, RULE_CLR, RULE_P1, RULE_P2, RULE_Q};
pub use presets::PresetSpec;
