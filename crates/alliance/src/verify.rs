//! Independent verification of alliance outputs and the paper's bounds
//! in closed form.
//!
//! Everything here is definition-level (no reuse of algorithm code), so
//! a bug in [`crate::Fga`] cannot hide behind a matching bug in its
//! checker.

use ssr_core::Standalone;
use ssr_graph::{Graph, NodeId};
use ssr_runtime::{Observer, RunOutcome, Simulator};

use crate::fga::{Fga, FgaSdr, FgaState};

/// Extracts the membership vector (`col` bits) from FGA states.
pub fn members<'a, I: IntoIterator<Item = &'a FgaState>>(states: I) -> Vec<bool> {
    states.into_iter().map(|s| s.col).collect()
}

/// Number of neighbors of `u` inside the set.
fn in_set_neighbors(graph: &Graph, set: &[bool], u: NodeId) -> u32 {
    graph
        .neighbors(u)
        .iter()
        .filter(|&&v| set[v.index()])
        .count() as u32
}

/// Whether `set` is an (f,g)-alliance (§6.1): every outsider `u` has
/// `≥ f(u)` member neighbors, every member `v` has `≥ g(v)` member
/// neighbors.
///
/// # Examples
///
/// ```
/// use ssr_alliance::verify::is_alliance;
/// use ssr_graph::generators;
///
/// let g = generators::path(3);
/// // Middle node dominates both endpoints.
/// assert!(is_alliance(&g, &[1, 1, 1], &[0, 0, 0], &[false, true, false]));
/// assert!(!is_alliance(&g, &[1, 1, 1], &[0, 0, 0], &[true, false, false]));
/// ```
pub fn is_alliance(graph: &Graph, f: &[u32], g: &[u32], set: &[bool]) -> bool {
    graph.nodes().all(|u| {
        let have = in_set_neighbors(graph, set, u);
        if set[u.index()] {
            have >= g[u.index()]
        } else {
            have >= f[u.index()]
        }
    })
}

/// The members whose individual removal keeps the set an alliance
/// (witnesses against 1-minimality).
pub fn removable_members(graph: &Graph, f: &[u32], g: &[u32], set: &[bool]) -> Vec<NodeId> {
    let mut out = Vec::new();
    let mut probe = set.to_vec();
    for u in graph.nodes() {
        if set[u.index()] {
            probe[u.index()] = false;
            if is_alliance(graph, f, g, &probe) {
                out.push(u);
            }
            probe[u.index()] = true;
        }
    }
    out
}

/// Whether `set` is a **1-minimal** (f,g)-alliance: an alliance from
/// which no single member can be removed.
pub fn is_one_minimal(graph: &Graph, f: &[u32], g: &[u32], set: &[bool]) -> bool {
    is_alliance(graph, f, g, set) && removable_members(graph, f, g, set).is_empty()
}

/// The zero-g-slack removable members: those the published algorithm
/// cannot elect because `#InAll(u) = g(u)`, hence `realScr(u) = 0` and
/// `bestPtr(u) = ⊥` (see the crate-root note).
pub fn one_minimality_gap(graph: &Graph, f: &[u32], g: &[u32], set: &[bool]) -> Vec<NodeId> {
    removable_members(graph, f, g, set)
        .into_iter()
        .filter(|&u| in_set_neighbors(graph, set, u) == g[u.index()])
        .collect()
}

/// Whether a terminal configuration's 1-minimality gap is fully
/// explained by the documented corner.
///
/// In a terminal configuration, `canQ_w ⇔ A−{w}` is an alliance (for
/// members), so Theorem 8's argument elects the *minimum-identifier*
/// removable member `m*` — unless `m*` lacks g-slack
/// (`#InAll(m*) = g(m*)`), which stalls `bestPtr(m*)` and can block all
/// other removable members transitively. A faithful implementation
/// therefore guarantees: either the set is 1-minimal, or the minimum-id
/// removable member has zero g-slack. Returns `true` exactly in those
/// cases.
pub fn gap_explained_by_gslack_corner(
    graph: &Graph,
    f: &[u32],
    g: &[u32],
    ids: &[u64],
    set: &[bool],
) -> bool {
    let removable = removable_members(graph, f, g, set);
    match removable.iter().min_by_key(|&&u| ids[u.index()]) {
        None => true,
        Some(&m) => in_set_neighbors(graph, set, m) == g[m.index()],
    }
}

/// Whether `set` is a **minimal** (f,g)-alliance: an alliance none of
/// whose *proper subsets* is an alliance.
///
/// Exponential in `|set|` (exhaustive subset check) — intended for the
/// Property 1 cross-validation on small instances.
///
/// # Panics
///
/// Panics if `set` has more than 20 members (2²⁰ subsets).
pub fn is_minimal_alliance(graph: &Graph, f: &[u32], g: &[u32], set: &[bool]) -> bool {
    if !is_alliance(graph, f, g, set) {
        return false;
    }
    let members: Vec<NodeId> = graph.nodes().filter(|&u| set[u.index()]).collect();
    assert!(
        members.len() <= 20,
        "exhaustive minimality check limited to 20 members"
    );
    let mut probe = vec![false; graph.node_count()];
    // Every proper subset of the member set must fail.
    for mask in 0..(1u32 << members.len()) - 1 {
        probe.fill(false);
        for (i, &u) in members.iter().enumerate() {
            if mask & (1 << i) != 0 {
                probe[u.index()] = true;
            }
        }
        if is_alliance(graph, f, g, &probe) {
            return false;
        }
    }
    true
}

// ---- classical definitions (§6.1 items 1–6), stated independently ----

/// Item 1: every node outside `set` has a neighbor in `set`.
pub fn is_dominating_set(graph: &Graph, set: &[bool]) -> bool {
    graph
        .nodes()
        .all(|u| set[u.index()] || in_set_neighbors(graph, set, u) >= 1)
}

/// Item 2: every node outside `set` has ≥ k neighbors in `set`.
pub fn is_k_dominating_set(graph: &Graph, set: &[bool], k: u32) -> bool {
    graph
        .nodes()
        .all(|u| set[u.index()] || in_set_neighbors(graph, set, u) >= k)
}

/// Item 3 (\[38\]): every node has `|N[v] ∩ set| ≥ k`.
pub fn is_k_tuple_dominating_set(graph: &Graph, set: &[bool], k: u32) -> bool {
    graph.nodes().all(|u| {
        let closed = in_set_neighbors(graph, set, u) + u32::from(set[u.index()]);
        closed >= k
    })
}

/// Item 4: every node outside `set` has ≥ ⌈(δ_u + 1)/2⌉ neighbors in
/// `set` (majority of its closed neighborhood attacks it).
pub fn is_global_offensive_alliance(graph: &Graph, set: &[bool]) -> bool {
    graph.nodes().all(|u| {
        set[u.index()]
            || in_set_neighbors(graph, set, u) >= (graph.degree(u) + 1).div_ceil(2) as u32
    })
}

/// Item 5: `set` is dominating and every member has ≥ ⌈(δ_u + 1)/2⌉
/// member neighbors.
pub fn is_global_defensive_alliance(graph: &Graph, set: &[bool]) -> bool {
    is_dominating_set(graph, set)
        && graph.nodes().all(|u| {
            !set[u.index()]
                || in_set_neighbors(graph, set, u) >= (graph.degree(u) + 1).div_ceil(2) as u32
        })
}

/// Item 6: offensive and defensive thresholds combined
/// (`f = ⌈(δ+1)/2⌉`, `g = ⌈δ/2⌉`).
pub fn is_global_powerful_alliance(graph: &Graph, set: &[bool]) -> bool {
    graph.nodes().all(|u| {
        let have = in_set_neighbors(graph, set, u);
        if set[u.index()] {
            have >= graph.degree(u).div_ceil(2) as u32
        } else {
            have >= (graph.degree(u) + 1).div_ceil(2) as u32
        }
    })
}

/// What [`AllianceObserver`] found in the final configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllianceVerdict {
    /// Membership vector of the final configuration.
    pub members: Vec<bool>,
    /// Whether the set is an (f,g)-alliance.
    pub alliance: bool,
    /// Whether the set is 1-minimal.
    pub one_minimal: bool,
    /// Whether any 1-minimality gap is explained by the zero-g-slack
    /// corner (see [`gap_explained_by_gslack_corner`]).
    pub corner_ok: bool,
}

impl AllianceVerdict {
    /// Number of members in the set.
    pub fn member_count(&self) -> usize {
        self.members.iter().filter(|&&b| b).count()
    }
}

/// Verification sampling as a plug-in [`Observer`]: attach it to an
/// execution of standalone FGA or `FGA ∘ SDR` and it checks the final
/// configuration against the definition-level verifiers when the run
/// ends — whatever the termination reason.
///
/// # Examples
///
/// ```
/// use ssr_alliance::{presets, verify::AllianceObserver};
/// use ssr_core::Standalone;
/// use ssr_graph::generators;
/// use ssr_runtime::{Daemon, Simulator};
///
/// let g = generators::random_connected(10, 6, 3);
/// let fga = presets::domination(&g)?;
/// let mut probe = AllianceObserver::new(&fga);
/// let alg = Standalone::new(fga);
/// let init = alg.initial_config(&g);
/// let mut sim = Simulator::new(&g, alg, init, Daemon::Central, 7);
/// let out = sim.execution().cap(10_000_000).observe(&mut probe).run();
/// assert!(out.terminal);
/// let verdict = probe.verdict().expect("sampled at run end");
/// assert!(verdict.alliance && verdict.one_minimal);
/// # Ok::<(), ssr_alliance::FgaError>(())
/// ```
#[derive(Clone, Debug)]
pub struct AllianceObserver {
    f: Vec<u32>,
    g: Vec<u32>,
    ids: Vec<u64>,
    verdict: Option<AllianceVerdict>,
}

impl AllianceObserver {
    /// Builds a verifier for `fga`'s (f,g) pair and identifiers.
    pub fn new(fga: &Fga) -> Self {
        AllianceObserver {
            f: fga.f().to_vec(),
            g: fga.g().to_vec(),
            ids: fga.ids().to_vec(),
            verdict: None,
        }
    }

    /// The verdict sampled at run end (`None` before the first run).
    pub fn verdict(&self) -> Option<&AllianceVerdict> {
        self.verdict.as_ref()
    }

    /// Consumes the observer, yielding the verdict.
    pub fn into_verdict(self) -> Option<AllianceVerdict> {
        self.verdict
    }

    fn sample(&mut self, graph: &Graph, members: Vec<bool>) {
        self.verdict = Some(AllianceVerdict {
            alliance: is_alliance(graph, &self.f, &self.g, &members),
            one_minimal: is_one_minimal(graph, &self.f, &self.g, &members),
            corner_ok: gap_explained_by_gslack_corner(graph, &self.f, &self.g, &self.ids, &members),
            members,
        });
    }
}

impl Observer<Standalone<Fga>> for AllianceObserver {
    fn on_run_end(&mut self, sim: &Simulator<'_, Standalone<Fga>>, _outcome: &RunOutcome) {
        let set = members(sim.states().iter());
        self.sample(sim.graph(), set);
    }
}

impl Observer<FgaSdr> for AllianceObserver {
    fn on_run_end(&mut self, sim: &Simulator<'_, FgaSdr>, _outcome: &RunOutcome) {
        let set = members(sim.states().iter().map(|s| &s.inner));
        self.sample(sim.graph(), set);
    }
}

// ---- the paper's bounds in closed form ----

/// Lemma 25: a process `v` executes at most `8·δ_v·Δ + 18·δ_v + 24`
/// moves in any standalone FGA execution.
pub fn lemma25_move_bound(delta_v: u64, max_degree: u64) -> u64 {
    8 * delta_v * max_degree + 18 * delta_v + 24
}

/// Corollary 11: any standalone FGA execution has at most
/// `16·Δ·m + 36·m + 24·n` moves.
pub fn corollary11_move_bound(n: u64, m: u64, max_degree: u64) -> u64 {
    16 * max_degree * m + 36 * m + 24 * n
}

/// Corollary 12: standalone FGA terminates within `5n + 4` rounds from
/// any configuration satisfying `P5` (in particular from `γ_init`).
pub fn corollary12_round_bound(n: u64) -> u64 {
    5 * n + 4
}

/// Theorem 12: any `FGA ∘ SDR` execution has at most
/// `(n+1)·(16·m·Δ + 36·m + 27·n)` moves.
pub fn theorem12_move_bound(n: u64, m: u64, max_degree: u64) -> u64 {
    (n + 1) * (16 * m * max_degree + 36 * m + 27 * n)
}

/// Theorem 14: `FGA ∘ SDR` stabilizes within `8n + 4` rounds.
pub fn theorem14_round_bound(n: u64) -> u64 {
    8 * n + 4
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_graph::generators;

    #[test]
    fn alliance_definition() {
        let g = generators::ring(4);
        let f = vec![1; 4];
        let gg = vec![0; 4];
        assert!(is_alliance(&g, &f, &gg, &[true, false, true, false]));
        assert!(!is_alliance(&g, &f, &gg, &[true, false, false, false]));
        assert!(is_alliance(&g, &f, &gg, &[true, true, true, true]));
    }

    #[test]
    fn one_minimality() {
        let g = generators::ring(4);
        let f = vec![1; 4];
        let gg = vec![0; 4];
        // Opposite corners: minimal dominating set of C4.
        assert!(is_one_minimal(&g, &f, &gg, &[true, false, true, false]));
        // Everything: removing any node keeps an alliance.
        assert!(!is_one_minimal(&g, &f, &gg, &[true, true, true, true]));
        assert_eq!(removable_members(&g, &f, &gg, &[true; 4]).len(), 4);
    }

    #[test]
    fn one_minimal_not_necessarily_minimum() {
        // A 1-minimal alliance needn't have minimum cardinality — the
        // star's leaves form a 1-minimal dominating set of size n−1.
        let g = generators::star(4);
        let f = vec![1; 4];
        let gg = vec![0; 4];
        let leaves = [false, true, true, true];
        assert!(is_one_minimal(&g, &f, &gg, &leaves));
        let hub = [true, false, false, false];
        assert!(is_one_minimal(&g, &f, &gg, &hub));
    }

    #[test]
    fn classical_checkers_agree_with_alliance_formulation() {
        let g = generators::random_connected(10, 8, 3);
        // Enumerate a few random sets; alliance-based and classical
        // formulations must agree.
        let mut lcg = 12345u64;
        for _ in 0..100 {
            let set: Vec<bool> = (0..10)
                .map(|_| {
                    lcg = lcg
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    lcg >> 63 == 1
                })
                .collect();
            let f1: Vec<u32> = vec![1; 10];
            let g0: Vec<u32> = vec![0; 10];
            assert_eq!(is_alliance(&g, &f1, &g0, &set), is_dominating_set(&g, &set));
            let f_off: Vec<u32> = g
                .nodes()
                .map(|u| (g.degree(u) + 1).div_ceil(2) as u32)
                .collect();
            assert_eq!(
                is_alliance(&g, &f_off, &g0, &set),
                is_global_offensive_alliance(&g, &set)
            );
            let f2: Vec<u32> = vec![2; 10];
            let g1: Vec<u32> = vec![1; 10];
            assert_eq!(
                is_alliance(&g, &f2, &g1, &set),
                is_k_tuple_dominating_set(&g, &set, 2)
            );
        }
    }

    #[test]
    fn k_tuple_counts_closed_neighborhood() {
        let g = generators::path(3);
        // {0, 1}: |N[0]∩S| = 2, |N[1]∩S| = 2, |N[2]∩S| = 1.
        assert!(is_k_tuple_dominating_set(&g, &[true, true, false], 1));
        assert!(!is_k_tuple_dominating_set(&g, &[true, true, false], 2));
        assert!(is_k_tuple_dominating_set(&g, &[true, true, true], 2));
    }

    #[test]
    fn defensive_requires_domination_too() {
        let g = generators::path(4);
        // {0, 1} dominates 2 but not 3.
        assert!(!is_global_defensive_alliance(
            &g,
            &[true, true, false, false]
        ));
        assert!(is_global_defensive_alliance(&g, &[true, true, true, true]));
    }

    #[test]
    fn bounds_closed_forms() {
        assert_eq!(lemma25_move_bound(3, 5), 8 * 15 + 54 + 24);
        assert_eq!(corollary12_round_bound(10), 54);
        assert_eq!(theorem14_round_bound(10), 84);
        assert!(theorem12_move_bound(10, 20, 4) > corollary11_move_bound(10, 20, 4));
    }

    #[test]
    fn gap_characterization() {
        // The star/defensive counterexample: A = V is terminal, every
        // leaf is removable, and every removable member lacks g-slack.
        let g = generators::star(5);
        let f = vec![1; 5];
        let gg: Vec<u32> = g
            .nodes()
            .map(|u| (g.degree(u) + 1).div_ceil(2) as u32)
            .collect();
        let all = vec![true; 5];
        let removable = removable_members(&g, &f, &gg, &all);
        assert_eq!(removable.len(), 4, "every leaf is removable");
        let gap = one_minimality_gap(&g, &f, &gg, &all);
        assert_eq!(gap, removable, "all failures are g-slack corners");
        let ids: Vec<u64> = (0..5).collect();
        assert!(gap_explained_by_gslack_corner(&g, &f, &gg, &ids, &all));
    }

    #[test]
    fn corner_explanation_requires_min_id_slackless() {
        // One-minimal sets are trivially explained (no removable member).
        let g = generators::ring(4);
        let f = vec![1; 4];
        let gg = vec![0; 4];
        let ids: Vec<u64> = (0..4).collect();
        assert!(gap_explained_by_gslack_corner(
            &g,
            &f,
            &gg,
            &ids,
            &[true, false, true, false]
        ));
        // All-in on C4 with (1,0): node 0 is removable with slack
        // (#InAll = 2 > g = 0) — NOT explained by the corner; a faithful
        // terminal configuration can never look like this.
        assert!(!gap_explained_by_gslack_corner(
            &g, &f, &gg, &ids, &[true; 4]
        ));
    }
}
