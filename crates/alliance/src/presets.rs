//! The six classical instantiations of the (f,g)-alliance problem
//! (§6.1, items 1–6).
//!
//! Each constructor derives the per-node `f`/`g` vectors from the graph
//! and returns a ready-to-run [`Fga`]; construction fails with
//! [`FgaError::DegreeTooSmall`] on graphs where the solvability
//! requirement `δ_u ≥ max(f(u), g(u))` does not hold (e.g. 2-domination
//! on a path).

use ssr_graph::Graph;

use crate::fga::{Fga, FgaError};

/// `⌈x / 2⌉` for the offensive/defensive/powerful thresholds.
fn half_up(x: usize) -> u32 {
    x.div_ceil(2) as u32
}

/// Item 1 — dominating set: `(1, 0)`-alliance.
pub fn domination(graph: &Graph) -> Result<Fga, FgaError> {
    let n = graph.node_count();
    Fga::new(graph, vec![1; n], vec![0; n])
}

/// Item 2 — k-dominating set: `(k, 0)`-alliance.
pub fn k_domination(graph: &Graph, k: u32) -> Result<Fga, FgaError> {
    let n = graph.node_count();
    Fga::new(graph, vec![k; n], vec![0; n])
}

/// Item 3 — k-tuple dominating set: `(k, k−1)`-alliance.
///
/// # Panics
///
/// Panics if `k == 0` (a 0-tuple dominating set is meaningless).
pub fn k_tuple_domination(graph: &Graph, k: u32) -> Result<Fga, FgaError> {
    assert!(k >= 1, "k-tuple domination requires k >= 1");
    let n = graph.node_count();
    Fga::new(graph, vec![k; n], vec![k - 1; n])
}

/// Item 4 — global offensive alliance: `(f, 0)` with
/// `f(u) = ⌈(δ_u + 1) / 2⌉`.
pub fn global_offensive(graph: &Graph) -> Result<Fga, FgaError> {
    let f = graph
        .nodes()
        .map(|u| half_up(graph.degree(u) + 1))
        .collect();
    let g = vec![0; graph.node_count()];
    Fga::new(graph, f, g)
}

/// Item 5 — global defensive alliance: `(1, g)` with
/// `g(u) = ⌈(δ_u + 1) / 2⌉`.
///
/// Note: defensive alliances have `f ≤ g`, the regime of the
/// 1-minimality corner documented at the crate root.
pub fn global_defensive(graph: &Graph) -> Result<Fga, FgaError> {
    let f = vec![1; graph.node_count()];
    let g = graph
        .nodes()
        .map(|u| half_up(graph.degree(u) + 1))
        .collect();
    Fga::new(graph, f, g)
}

/// Item 6 — global powerful alliance: `f(u) = ⌈(δ_u + 1) / 2⌉`,
/// `g(u) = ⌈δ_u / 2⌉`.
pub fn global_powerful(graph: &Graph) -> Result<Fga, FgaError> {
    let f = graph
        .nodes()
        .map(|u| half_up(graph.degree(u) + 1))
        .collect();
    let g = graph.nodes().map(|u| half_up(graph.degree(u))).collect();
    Fga::new(graph, f, g)
}

/// All six presets with labels (the E9 sweep).
///
/// Presets whose requirement fails on `graph` are skipped (e.g.
/// `k`-domination needs minimum degree ≥ k).
pub fn all_presets(graph: &Graph) -> Vec<(&'static str, Fga)> {
    let candidates: Vec<(&'static str, Result<Fga, FgaError>)> = vec![
        ("domination(1,0)", domination(graph)),
        ("2-domination(2,0)", k_domination(graph, 2)),
        ("2-tuple(2,1)", k_tuple_domination(graph, 2)),
        ("offensive", global_offensive(graph)),
        ("defensive", global_defensive(graph)),
        ("powerful", global_powerful(graph)),
    ];
    candidates
        .into_iter()
        .filter_map(|(label, r)| r.ok().map(|fga| (label, fga)))
        .collect()
}

/// A declarative handle for one of the six §6.1 (f,g)-alliance
/// reductions — the parameter vocabulary of the `fga-sdr`/`fga`
/// algorithm families.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PresetSpec {
    /// Domination: `(1, 0)`.
    Domination,
    /// 2-domination: `(2, 0)`.
    TwoDomination,
    /// 2-tuple domination: `(2, 1)`.
    TwoTuple,
    /// Global offensive alliance.
    Offensive,
    /// Global defensive alliance.
    Defensive,
    /// Global powerful alliance.
    Powerful,
}

impl PresetSpec {
    /// All six presets in the §6.1 order.
    pub fn all() -> [PresetSpec; 6] {
        [
            PresetSpec::Domination,
            PresetSpec::TwoDomination,
            PresetSpec::TwoTuple,
            PresetSpec::Offensive,
            PresetSpec::Defensive,
            PresetSpec::Powerful,
        ]
    }

    /// Label matching [`all_presets`].
    pub fn label(&self) -> &'static str {
        match self {
            PresetSpec::Domination => "domination(1,0)",
            PresetSpec::TwoDomination => "2-domination(2,0)",
            PresetSpec::TwoTuple => "2-tuple(2,1)",
            PresetSpec::Offensive => "offensive",
            PresetSpec::Defensive => "defensive",
            PresetSpec::Powerful => "powerful",
        }
    }

    /// Parses a [`PresetSpec::label`] back to its preset — the inverse
    /// the string-addressable family registry resolves parameters
    /// with.
    pub fn from_label(label: &str) -> Option<PresetSpec> {
        PresetSpec::all().into_iter().find(|p| p.label() == label)
    }

    /// Instantiates the preset on `graph`, `None` when the (f,g) pair
    /// is not valid there.
    pub fn build(&self, graph: &Graph) -> Option<Fga> {
        match self {
            PresetSpec::Domination => domination(graph).ok(),
            PresetSpec::TwoDomination => k_domination(graph, 2).ok(),
            PresetSpec::TwoTuple => k_tuple_domination(graph, 2).ok(),
            PresetSpec::Offensive => global_offensive(graph).ok(),
            PresetSpec::Defensive => global_defensive(graph).ok(),
            PresetSpec::Powerful => global_powerful(graph).ok(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_graph::generators;

    #[test]
    fn domination_thresholds() {
        let g = generators::ring(5);
        let fga = domination(&g).unwrap();
        assert!(fga.f().iter().all(|&x| x == 1));
        assert!(fga.g().iter().all(|&x| x == 0));
    }

    #[test]
    fn k_domination_requires_degree() {
        let g = generators::path(4); // endpoints have degree 1
        assert!(k_domination(&g, 2).is_err());
        let r = generators::ring(4);
        assert!(k_domination(&r, 2).is_ok());
    }

    #[test]
    fn offensive_thresholds_on_star() {
        let g = generators::star(5); // hub degree 4, leaves 1
        let fga = global_offensive(&g).unwrap();
        assert_eq!(fga.f()[0], 3); // ⌈5/2⌉
        assert_eq!(fga.f()[1], 1); // ⌈2/2⌉
        assert!(fga.g().iter().all(|&x| x == 0));
    }

    #[test]
    fn defensive_has_f_le_g() {
        let g = generators::ring(6);
        let fga = global_defensive(&g).unwrap();
        for (f, g_) in fga.f().iter().zip(fga.g()) {
            assert!(f <= g_);
        }
    }

    #[test]
    fn powerful_thresholds() {
        let g = generators::complete(5); // δ = 4
        let fga = global_powerful(&g).unwrap();
        assert!(fga.f().iter().all(|&x| x == 3)); // ⌈5/2⌉
        assert!(fga.g().iter().all(|&x| x == 2)); // ⌈4/2⌉
    }

    #[test]
    fn all_presets_skips_unsatisfiable() {
        let g = generators::path(4);
        let presets = all_presets(&g);
        let labels: Vec<_> = presets.iter().map(|(l, _)| *l).collect();
        assert!(labels.contains(&"domination(1,0)"));
        assert!(!labels.contains(&"2-domination(2,0)")); // endpoints too weak
        let r = generators::torus(3, 3);
        assert_eq!(all_presets(&r).len(), 6);
    }

    #[test]
    #[should_panic(expected = "k-tuple domination requires k >= 1")]
    fn zero_tuple_panics() {
        let g = generators::ring(4);
        let _ = k_tuple_domination(&g, 0);
    }
}
