//! Columnar layout for [`FgaState`] (see `ssr_runtime::soa`).
//!
//! FGA's four shared variables transpose into three flat arrays: a
//! packed flag byte (`col`, `canQ`, and the sign structure of `scr`
//! all fit in two bits plus two), kept split here as one byte of flags
//! plus the raw `scr` byte for clarity, and a `u32` pointer array with
//! `u32::MAX` standing in for `⊥` — 6 bytes per node against the
//! 12-byte padded row.

use ssr_graph::NodeId;
use ssr_runtime::StateColumns;

use crate::fga::FgaState;

const FLAG_COL: u8 = 1;
const FLAG_CAN_Q: u8 = 2;
const PTR_BOT: u32 = u32::MAX;

/// Columnar [`FgaState`]: packed boolean flags, scores, and approval
/// pointers in parallel arrays.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FgaColumns {
    flags: Vec<u8>,
    scrs: Vec<i8>,
    ptrs: Vec<u32>,
}

impl FgaColumns {
    /// The flag bytes: bit 0 is `col_u`, bit 1 is `canQ_u`.
    pub fn flags(&self) -> &[u8] {
        &self.flags
    }

    /// The scores `scr_u ∈ {−1, 0, 1}`.
    pub fn scrs(&self) -> &[i8] {
        &self.scrs
    }

    /// The approval pointers; `u32::MAX` encodes `⊥`.
    pub fn ptrs(&self) -> &[u32] {
        &self.ptrs
    }

    /// Number of alliance members (`col_u` set) — a one-pass census
    /// over the flag column.
    pub fn member_count(&self) -> usize {
        self.flags.iter().filter(|&&f| f & FLAG_COL != 0).count()
    }
}

impl StateColumns for FgaColumns {
    type State = FgaState;

    fn clear(&mut self) {
        self.flags.clear();
        self.scrs.clear();
        self.ptrs.clear();
    }

    fn push(&mut self, state: &FgaState) {
        let mut flags = 0u8;
        if state.col {
            flags |= FLAG_COL;
        }
        if state.can_q {
            flags |= FLAG_CAN_Q;
        }
        self.flags.push(flags);
        self.scrs.push(state.scr);
        self.ptrs.push(state.ptr.map_or(PTR_BOT, |v| v.0));
    }

    fn len(&self) -> usize {
        self.flags.len()
    }

    fn get(&self, i: usize) -> FgaState {
        FgaState {
            col: self.flags[i] & FLAG_COL != 0,
            scr: self.scrs[i],
            can_q: self.flags[i] & FLAG_CAN_Q != 0,
            ptr: match self.ptrs[i] {
                PTR_BOT => None,
                v => Some(NodeId(v)),
            },
        }
    }

    fn heap_bytes(&self) -> usize {
        self.flags.capacity()
            + self.scrs.capacity()
            + self.ptrs.capacity() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<FgaState> {
        vec![
            FgaState::reset(),
            FgaState {
                col: false,
                scr: -1,
                can_q: false,
                ptr: Some(NodeId(3)),
            },
            FgaState {
                col: true,
                scr: 0,
                can_q: false,
                ptr: None,
            },
        ]
    }

    #[test]
    fn fga_columns_round_trip() {
        let states = sample();
        let cols = FgaColumns::from_states(&states);
        assert_eq!(cols.len(), 3);
        assert_eq!(cols.to_states(), states);
        assert_eq!(cols.flags(), &[FLAG_COL | FLAG_CAN_Q, 0, FLAG_COL]);
        assert_eq!(cols.scrs(), &[1, -1, 0]);
        assert_eq!(cols.ptrs(), &[u32::MAX, 3, u32::MAX]);
        assert_eq!(cols.member_count(), 2);
    }

    #[test]
    fn fga_columns_clear_and_reuse() {
        let mut cols = FgaColumns::from_states(&sample());
        cols.clear();
        assert!(cols.is_empty());
        cols.push(&FgaState::reset());
        assert_eq!(cols.get(0), FgaState::reset());
        assert!(cols.heap_bytes() > 0);
    }
}
