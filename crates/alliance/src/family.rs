//! The (f,g)-alliance algorithm families: the silent composition
//! `FGA ∘ SDR` (labels `fga-sdr:<preset>`) and standalone FGA from
//! `γ_init` (labels `fga:<preset>`), one family instance per §6.1
//! preset, registrable in any
//! [`FamilyRegistry`](ssr_runtime::family::FamilyRegistry).

use ssr_core::{validate, ResetInput, Standalone};
use ssr_graph::Graph;
use ssr_runtime::analysis::{
    audit_runs, collect_footprints, AnalyzeFamily, AnalyzeOptions, GraphAnalysis, RngAudit,
};
use ssr_runtime::exhaustive::ExploreOptions;
use ssr_runtime::family::{
    explore_sample_seeds, explore_with_replay, stochastic_max_runs, AlgorithmSpec, Bounds,
    ExecBudget, ExploreFamily, ExploreReport, Family, FamilyProbe, FamilyRunOutcome, InitPlan,
    ProbeBridge, RunSeeds, StochasticMax, Verdict,
};
use ssr_runtime::rng::Xoshiro256StarStar;
use ssr_runtime::{Algorithm, ConfigView, Daemon, Simulator};

use crate::fga::{fga_sdr, FgaSdr};
use crate::presets::PresetSpec;
use crate::verify::{self, AllianceObserver};

/// The spec handle `fga-sdr:<preset>`.
pub fn fga_sdr_spec(preset: PresetSpec) -> AlgorithmSpec {
    AlgorithmSpec::colon("fga-sdr", preset.label())
}

/// The spec handle `fga:<preset>` (standalone FGA).
pub fn fga_standalone_spec(preset: PresetSpec) -> AlgorithmSpec {
    AlgorithmSpec::colon("fga", preset.label())
}

/// The family `FGA ∘ SDR` for one (f,g) preset — silent and
/// self-stabilizing (Theorems 11–14).
///
/// `Normal` starts from `γ_init`; every other plan falls back to the
/// adversarial sampler. The run goes to termination (FGA ∘ SDR is
/// silent); the verdict additionally demands the terminal
/// configuration be a sound alliance (the [`AllianceObserver`]'s
/// corner-aware 1-minimality check) within Thm 14 (rounds) and Thm 12
/// (moves).
#[derive(Clone, Debug)]
pub struct FgaSdrFamily {
    preset: PresetSpec,
    id: String,
}

impl FgaSdrFamily {
    /// The family for `preset`.
    pub fn new(preset: PresetSpec) -> Self {
        FgaSdrFamily {
            preset,
            id: fga_sdr_spec(preset).label(),
        }
    }

    /// The underlying preset.
    pub fn preset(&self) -> PresetSpec {
        self.preset
    }

    fn thm_bounds(graph: &Graph) -> Bounds {
        let nn = graph.node_count() as u64;
        let m = graph.edge_count() as u64;
        let delta = graph.max_degree() as u64;
        Bounds {
            rounds: Some(verify::theorem14_round_bound(nn)),
            moves: Some(verify::theorem12_move_bound(nn, m, delta)),
        }
    }

    /// The canonical exploration seed set: `γ_init`, the broadcast
    /// chain, and `samples` adversarial draws.
    fn seed_set(
        &self,
        graph: &Graph,
        scenario_seed: u64,
        samples: usize,
    ) -> (FgaSdr, Vec<Vec<<FgaSdr as Algorithm>::State>>) {
        let fga = self
            .preset
            .build(graph)
            .expect("caller checked instantiability");
        let algo = fga_sdr(fga);
        let mut inits = vec![
            algo.initial_config(graph),
            ssr_core::workloads::sdr_broadcast_chain(&algo, graph),
        ];
        inits.extend(
            explore_sample_seeds(scenario_seed, samples)
                .iter()
                .map(|&s| algo.arbitrary_config(graph, s)),
        );
        (algo, inits)
    }
}

impl Family for FgaSdrFamily {
    fn id(&self) -> &str {
        &self.id
    }

    fn instantiable(&self, graph: &Graph) -> bool {
        self.preset.build(graph).is_some()
    }

    fn bounds(&self, graph: &Graph) -> Bounds {
        Self::thm_bounds(graph)
    }

    fn run(
        &self,
        graph: &Graph,
        init: &InitPlan,
        daemon: &Daemon,
        seeds: RunSeeds,
        budget: ExecBudget,
        probe: Option<&mut dyn FamilyProbe>,
    ) -> FamilyRunOutcome {
        let fga = self
            .preset
            .build(graph)
            .expect("caller checked instantiability (Family::instantiable)");
        let mut verdict_probe = AllianceObserver::new(&fga);
        let algo = fga_sdr(fga);
        let init_cfg = match init {
            InitPlan::Normal => algo.initial_config(graph),
            _ => algo.arbitrary_config(graph, seeds.init),
        };
        let mut bridge = ProbeBridge::new(probe);
        let mut sim = Simulator::new(graph, algo, init_cfg, daemon.clone(), seeds.sim);
        bridge.install_trace(&mut sim);
        let out = sim
            .execution()
            .cap(budget.cap)
            .intra_threads(budget.intra_threads)
            .observe(&mut verdict_probe)
            .observe(&mut bridge)
            .run();
        bridge.collect_trace(&mut sim);
        let mut fo = FamilyRunOutcome::from_run(&out, sim.stats().steps);
        fo.max_moves_per_process = sim.stats().max_moves_per_process();
        let v = verdict_probe.into_verdict().expect("sampled at run end");
        let sound = v.alliance && v.corner_ok;
        // Thm 14 (rounds) and Thm 12 (moves).
        let bounds = Self::thm_bounds(graph);
        let (rb, mb) = (bounds.rounds.unwrap(), bounds.moves.unwrap());
        fo.bound_rounds = Some(rb);
        fo.bound_moves = Some(mb);
        fo.verdict = if out.terminal && sound && fo.rounds <= rb && fo.moves <= mb {
            Verdict::Pass
        } else {
            Verdict::Fail
        };
        fo
    }

    fn requirements(&self, graph: &Graph) -> Option<Result<(), String>> {
        match self.preset.build(graph) {
            // Preset invalid here: vacuously fine on this graph.
            None => Some(Ok(())),
            Some(fga) => Some(validate::check_requirements(&fga, graph).map_err(|e| e.to_string())),
        }
    }

    fn explore(&self) -> Option<&dyn ExploreFamily> {
        Some(self)
    }

    fn analysis(&self) -> Option<&dyn AnalyzeFamily> {
        Some(self)
    }
}

impl AnalyzeFamily for FgaSdrFamily {
    fn rule_names(&self, graph: &Graph) -> Vec<String> {
        let fga = self
            .preset
            .build(graph)
            .expect("caller checked instantiability");
        ssr_runtime::analysis::rule_names(&fga_sdr(fga))
    }

    fn footprints(&self, graph: &Graph, graph_name: &str, opts: &AnalyzeOptions) -> GraphAnalysis {
        let (algo, inits) = self.seed_set(graph, opts.scenario_seed, opts.samples);
        collect_footprints(graph, graph_name, &algo, &inits, opts)
    }

    fn audit(&self, graph: &Graph, opts: &AnalyzeOptions) -> RngAudit {
        let (algo, inits) = self.seed_set(graph, opts.scenario_seed, opts.samples);
        audit_runs(graph, &algo, &inits, opts)
    }
}

impl ExploreFamily for FgaSdrFamily {
    fn bounds(&self, graph: &Graph) -> Bounds {
        Self::thm_bounds(graph)
    }

    fn explore(
        &self,
        graph: &Graph,
        scenario_seed: u64,
        samples: usize,
        opts: &ExploreOptions,
    ) -> ExploreReport {
        let (algo, inits) = self.seed_set(graph, scenario_seed, samples);
        let check = algo.clone();
        // FGA ∘ SDR is silent: legitimate = terminal (Thm 11), so the
        // target predicate is terminality.
        explore_with_replay(
            graph,
            &algo,
            &inits,
            move |gr: &Graph, st: &[_]| {
                let view = ConfigView::new(gr, st);
                gr.nodes().all(|u| check.enabled_mask(u, &view).is_empty())
            },
            opts,
        )
    }

    fn stochastic_max(
        &self,
        graph: &Graph,
        scenario_seed: u64,
        samples: usize,
        trials: u64,
        cap: u64,
    ) -> StochasticMax {
        let (algo, inits) = self.seed_set(graph, scenario_seed, samples);
        let check = algo.clone();
        stochastic_max_runs(
            graph,
            &algo,
            &inits,
            move |gr: &Graph, st: &[_]| {
                let view = ConfigView::new(gr, st);
                gr.nodes().all(|u| check.enabled_mask(u, &view).is_empty())
            },
            scenario_seed,
            trials,
            cap,
        )
    }
}

/// Standalone FGA from `γ_init` for one (f,g) preset (Theorems 9/10,
/// Corollaries 11/12), gated on `P_ICorrect` by the shared
/// [`Standalone`] wrapper — the single home of that gate.
///
/// The standalone theorems quantify over `γ_init` only, so every init
/// plan starts there. The verdict checks Cor. 12 (rounds) and Cor. 11
/// (moves) plus the corner-aware alliance soundness.
#[derive(Clone, Debug)]
pub struct FgaStandaloneFamily {
    preset: PresetSpec,
    id: String,
}

impl FgaStandaloneFamily {
    /// The family for `preset`.
    pub fn new(preset: PresetSpec) -> Self {
        FgaStandaloneFamily {
            preset,
            id: fga_standalone_spec(preset).label(),
        }
    }

    /// The underlying preset.
    pub fn preset(&self) -> PresetSpec {
        self.preset
    }

    fn cor_bounds(graph: &Graph) -> Bounds {
        let nn = graph.node_count() as u64;
        let m = graph.edge_count() as u64;
        let delta = graph.max_degree() as u64;
        Bounds {
            rounds: Some(verify::corollary12_round_bound(nn)),
            moves: Some(verify::corollary11_move_bound(nn, m, delta)),
        }
    }

    /// The analysis seed set: `γ_init` plus `samples` arbitrary state
    /// vectors (the standalone theorems quantify over `γ_init` only,
    /// but the soundness obligations must hold from *any* state).
    fn seed_set(
        &self,
        graph: &Graph,
        scenario_seed: u64,
        samples: usize,
    ) -> (Standalone<crate::fga::Fga>, Vec<Vec<crate::fga::FgaState>>) {
        let fga = self
            .preset
            .build(graph)
            .expect("caller checked instantiability");
        let algo = Standalone::new(fga);
        let mut inits = vec![algo.initial_config(graph)];
        for s in explore_sample_seeds(scenario_seed, samples) {
            let mut rng = Xoshiro256StarStar::seed_from_u64(s);
            inits.push(
                graph
                    .nodes()
                    .map(|u| algo.inner().arbitrary_state(u, &mut rng))
                    .collect(),
            );
        }
        (algo, inits)
    }
}

impl Family for FgaStandaloneFamily {
    fn id(&self) -> &str {
        &self.id
    }

    fn instantiable(&self, graph: &Graph) -> bool {
        self.preset.build(graph).is_some()
    }

    fn bounds(&self, graph: &Graph) -> Bounds {
        Self::cor_bounds(graph)
    }

    fn run(
        &self,
        graph: &Graph,
        _init: &InitPlan,
        daemon: &Daemon,
        seeds: RunSeeds,
        budget: ExecBudget,
        probe: Option<&mut dyn FamilyProbe>,
    ) -> FamilyRunOutcome {
        let fga = self
            .preset
            .build(graph)
            .expect("caller checked instantiability (Family::instantiable)");
        let mut verdict_probe = AllianceObserver::new(&fga);
        let algo = Standalone::new(fga);
        // The standalone theorems quantify over γ_init only.
        let init_cfg = algo.initial_config(graph);
        let mut bridge = ProbeBridge::new(probe);
        let mut sim = Simulator::new(graph, algo, init_cfg, daemon.clone(), seeds.sim);
        bridge.install_trace(&mut sim);
        let out = sim
            .execution()
            .cap(budget.cap)
            .intra_threads(budget.intra_threads)
            .observe(&mut verdict_probe)
            .observe(&mut bridge)
            .run();
        bridge.collect_trace(&mut sim);
        let mut fo = FamilyRunOutcome::from_run(&out, sim.stats().steps);
        fo.max_moves_per_process = sim.stats().max_moves_per_process();
        let v = verdict_probe.into_verdict().expect("sampled at run end");
        let sound = v.alliance && v.corner_ok;
        // Cor. 12 (rounds) and Cor. 11 (moves).
        let bounds = Self::cor_bounds(graph);
        let (rb, mb) = (bounds.rounds.unwrap(), bounds.moves.unwrap());
        fo.bound_rounds = Some(rb);
        fo.bound_moves = Some(mb);
        fo.verdict = if out.terminal && sound && fo.rounds <= rb && fo.moves <= mb {
            Verdict::Pass
        } else {
            Verdict::Fail
        };
        fo
    }

    fn requirements(&self, graph: &Graph) -> Option<Result<(), String>> {
        match self.preset.build(graph) {
            None => Some(Ok(())),
            Some(fga) => Some(validate::check_requirements(&fga, graph).map_err(|e| e.to_string())),
        }
    }

    fn analysis(&self) -> Option<&dyn AnalyzeFamily> {
        Some(self)
    }
}

impl AnalyzeFamily for FgaStandaloneFamily {
    fn rule_names(&self, graph: &Graph) -> Vec<String> {
        let fga = self
            .preset
            .build(graph)
            .expect("caller checked instantiability");
        ssr_runtime::analysis::rule_names(&Standalone::new(fga))
    }

    fn footprints(&self, graph: &Graph, graph_name: &str, opts: &AnalyzeOptions) -> GraphAnalysis {
        let (algo, inits) = self.seed_set(graph, opts.scenario_seed, opts.samples);
        collect_footprints(graph, graph_name, &algo, &inits, opts)
    }

    fn audit(&self, graph: &Graph, opts: &AnalyzeOptions) -> RngAudit {
        let (algo, inits) = self.seed_set(graph, opts.scenario_seed, opts.samples);
        audit_runs(graph, &algo, &inits, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_graph::generators;

    fn seeds() -> RunSeeds {
        RunSeeds {
            init: 5,
            sim: 6,
            fault: 7,
        }
    }

    #[test]
    fn fga_families_terminate_within_bounds() {
        let g = generators::ring(8);
        for out in [
            FgaSdrFamily::new(PresetSpec::Domination).run(
                &g,
                &InitPlan::Arbitrary,
                &Daemon::RandomSubset { p: 0.5 },
                seeds(),
                2_000_000.into(),
                None,
            ),
            FgaStandaloneFamily::new(PresetSpec::Domination).run(
                &g,
                &InitPlan::Arbitrary,
                &Daemon::RandomSubset { p: 0.5 },
                seeds(),
                2_000_000.into(),
                None,
            ),
        ] {
            assert_eq!(out.verdict, Verdict::Pass, "{out:?}");
            assert!(out.terminal);
        }
    }

    #[test]
    fn invalid_presets_are_not_instantiable() {
        // 2-domination needs δ ≥ 2 everywhere; a path's endpoints fail.
        let g = generators::path(5);
        let fam = FgaSdrFamily::new(PresetSpec::TwoDomination);
        assert!(!fam.instantiable(&g));
        assert_eq!(fam.requirements(&g), Some(Ok(())), "vacuous off-graph");
        let r = generators::ring(5);
        assert!(fam.instantiable(&r));
        assert_eq!(fam.requirements(&r), Some(Ok(())));
    }

    #[test]
    fn fga_sdr_explores_terminality() {
        let g = generators::path(3);
        let fam = FgaSdrFamily::new(PresetSpec::Domination);
        let ef = Family::explore(&fam).unwrap();
        let report = ef.explore(&g, 0xE13, 2, &ExploreOptions::default());
        let (summary, replay_ok) = report.result.expect("tiny path fits");
        assert!(summary.verified && replay_ok);
        let bounds = ExploreFamily::bounds(&fam, &g);
        let worst = summary.worst.unwrap();
        assert!(worst.rounds <= bounds.rounds.unwrap());
        assert!(worst.moves <= bounds.moves.unwrap());
    }

    #[test]
    fn spec_handles_round_trip() {
        for preset in PresetSpec::all() {
            let sdr = fga_sdr_spec(preset);
            let alone = fga_standalone_spec(preset);
            assert_eq!(sdr.label().parse::<AlgorithmSpec>().unwrap(), sdr);
            assert_eq!(alone.label().parse::<AlgorithmSpec>().unwrap(), alone);
            assert_eq!(
                PresetSpec::from_label(sdr.params_str().unwrap()),
                Some(preset)
            );
        }
        assert_eq!(
            FgaSdrFamily::new(PresetSpec::Domination).id(),
            "fga-sdr:domination(1,0)"
        );
        assert_eq!(
            FgaStandaloneFamily::new(PresetSpec::Powerful).id(),
            "fga:powerful"
        );
    }
}
