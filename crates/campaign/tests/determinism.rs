//! The engine's determinism contract: running any campaign with 1
//! thread and with 4 threads yields identical serialized results.

use proptest::prelude::*;
use ssr_campaign::{engine, families, output, Amount, Campaign, InitPlan, TopologySpec};
use ssr_runtime::Daemon;

proptest! {
    /// Serialized campaign results are byte-identical across thread
    /// counts, for random quick grids over mixed families/inits.
    #[test]
    fn one_thread_equals_four_threads(
        master_seed in 0u64..10_000,
        trials in 1u64..3,
        size in 5usize..9,
        daemon_pick in 0usize..3,
        init_pick in 0usize..3,
    ) {
        let daemons = match daemon_pick {
            0 => vec![Daemon::Central],
            1 => vec![Daemon::Synchronous, Daemon::Central],
            _ => vec![Daemon::RandomSubset { p: 0.5 }],
        };
        let inits = match init_pick {
            0 => vec![InitPlan::Arbitrary],
            1 => vec![InitPlan::Arbitrary, InitPlan::Normal],
            _ => vec![InitPlan::Tear { gap: Amount::HalfN }],
        };
        let campaign = Campaign::new("prop-determinism")
            .topologies(vec![TopologySpec::Ring, TopologySpec::RandTree])
            .sizes(vec![size])
            .algorithms(vec![families::sdr_agreement(4), families::unison_sdr()])
            .daemons(daemons)
            .inits(inits)
            .trials(trials)
            .step_cap(500_000)
            .seed(master_seed);
        let sequential = engine::run(&campaign, 1);
        let parallel = engine::run(&campaign, 4);
        prop_assert_eq!(&sequential, &parallel);
        prop_assert_eq!(output::jsonl(&sequential), output::jsonl(&parallel));
        prop_assert_eq!(output::csv(&sequential), output::csv(&parallel));
    }
}

/// A fixed heavier grid (all families, fault plans, adversarial
/// daemons) once — the deterministic anchor for the property above.
#[test]
fn mixed_family_grid_is_thread_invariant() {
    let campaign = Campaign::new("anchor")
        .topologies(vec![
            TopologySpec::Ring,
            TopologySpec::Star,
            TopologySpec::RandSparse,
        ])
        .sizes(vec![6, 9])
        .algorithms(vec![
            families::unison_sdr(),
            families::cfg_unison(),
            families::mono_reset(),
            families::fga_sdr(ssr_campaign::PresetSpec::Domination),
        ])
        .daemons(vec![Daemon::Central, Daemon::RandomSubset { p: 0.3 }])
        .inits(vec![
            InitPlan::Arbitrary,
            InitPlan::CorruptClocks {
                k: Amount::QuarterN,
            },
        ])
        .trials(1)
        .step_cap(2_000_000)
        .seed(0xA11CE);
    let sequential = engine::run(&campaign, 1);
    for threads in [2, 4, 8] {
        assert_eq!(
            output::jsonl(&sequential),
            output::jsonl(&engine::run(&campaign, threads)),
            "threads={threads}"
        );
    }
    // And the sweep is sound: nothing failed its bound.
    assert!(sequential.iter().all(|r| r.verdict.ok()));
}
