//! The cache-consistency contract: a campaign served cold (all
//! misses), warm (all hits), or half-warm (any mix) produces
//! byte-identical JSONL and CSV artifacts, at any thread count — and a
//! fully-warm run never touches the simulator.

use proptest::prelude::*;
use ssr_campaign::{
    engine, families, output, Amount, CacheLayer, Campaign, CampaignObs, InitPlan, RecordCache,
    TopologySpec,
};
use ssr_runtime::Daemon;

fn quick_grid(master_seed: u64, trials: u64, daemon_pick: usize) -> Campaign {
    let daemons = match daemon_pick {
        0 => vec![Daemon::Central],
        1 => vec![Daemon::Synchronous],
        _ => vec![Daemon::RandomSubset { p: 0.5 }],
    };
    Campaign::new("prop-cache")
        .topologies(vec![TopologySpec::Ring, TopologySpec::Star])
        .sizes(vec![6])
        .algorithms(vec![families::unison_sdr(), families::sdr_agreement(4)])
        .daemons(daemons)
        .inits(vec![
            InitPlan::Arbitrary,
            InitPlan::Tear { gap: Amount::HalfN },
        ])
        .trials(trials)
        .step_cap(500_000)
        .seed(master_seed)
}

fn run_cached(
    campaign: &Campaign,
    threads: usize,
    cache: &RecordCache,
) -> (String, String, Option<u64>) {
    let mut obs = CampaignObs::new().with_metrics();
    let layer = CacheLayer {
        cache,
        checkpoint: None,
    };
    let records = engine::run_obs_cached(campaign, threads, &mut obs, layer);
    let metrics = obs.take_metrics().expect("metrics are on");
    (
        output::jsonl(&records),
        output::csv(&records),
        metrics.counter_value("pipeline.steps"),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Cold vs fully-warm vs half-warm, at 1 and 4 worker threads: six
    /// executions, one byte-for-byte artifact set.
    #[test]
    fn cold_warm_and_half_warm_artifacts_are_byte_identical(
        master_seed in 0u64..10_000,
        trials in 1u64..3,
        daemon_pick in 0usize..3,
    ) {
        let campaign = quick_grid(master_seed, trials, daemon_pick);
        let total = campaign.len();

        // Cold: an empty cache misses everything and simulates.
        let cold_cache = RecordCache::new();
        let (cold_jsonl, cold_csv, cold_steps) = run_cached(&campaign, 1, &cold_cache);
        prop_assert_eq!(cold_cache.misses(), total as u64);
        prop_assert!(cold_steps.unwrap_or(0) > 0, "cold run must simulate");

        // Warm: the same cache now hits everything — zero simulator
        // steps — and returns the same bytes.
        for threads in [1usize, 4] {
            let (jsonl, csv, steps) = run_cached(&campaign, threads, &cold_cache);
            prop_assert_eq!(&jsonl, &cold_jsonl, "warm threads={}", threads);
            prop_assert_eq!(&csv, &cold_csv, "warm threads={}", threads);
            prop_assert_eq!(steps, None, "warm run must not simulate (threads={})", threads);
        }

        // Half-warm: seed a fresh cache with the first half of the
        // grid's records, so the run mixes hits and misses.
        for threads in [1usize, 4] {
            let half_cache = RecordCache::new();
            let records = engine::run(&campaign, 1);
            for (i, rec) in records.iter().take(total / 2).enumerate() {
                half_cache.insert(campaign.scenario(i).fingerprint(), rec);
            }
            let (jsonl, csv, _) = run_cached(&campaign, threads, &half_cache);
            prop_assert_eq!(half_cache.hits(), (total / 2) as u64);
            prop_assert_eq!(half_cache.misses(), (total - total / 2) as u64);
            prop_assert_eq!(&jsonl, &cold_jsonl, "half-warm threads={}", threads);
            prop_assert_eq!(&csv, &cold_csv, "half-warm threads={}", threads);
        }
    }
}

/// The cached entry points are observationally identical to the plain
/// engine: same records, same artifacts — caching is transparent.
#[test]
fn cached_run_equals_uncached_run() {
    let campaign = quick_grid(0xC0FFEE, 2, 0);
    let plain = engine::run(&campaign, 2);
    let cache = RecordCache::new();
    let (jsonl, csv, _) = run_cached(&campaign, 2, &cache);
    assert_eq!(jsonl, output::jsonl(&plain));
    assert_eq!(csv, output::csv(&plain));
    // And a rerun through the now-warm cache still matches.
    let (warm_jsonl, _, steps) = run_cached(&campaign, 2, &cache);
    assert_eq!(warm_jsonl, jsonl);
    assert_eq!(steps, None);
}
