//! Kill-and-resume: a sweep interrupted at an arbitrary point — even
//! mid-write, leaving a torn final line — resumes from its checkpoint
//! journal and produces artifacts byte-identical to an uninterrupted
//! run, re-simulating only what the journal had not yet recorded.

use std::path::{Path, PathBuf};

use ssr_campaign::{
    checkpoint, engine, families, output, CacheLayer, Campaign, CampaignObs, CheckpointWriter,
    RecordCache, TopologySpec,
};
use ssr_runtime::Daemon;

fn sweep(id: &str) -> Campaign {
    Campaign::new(id)
        .topologies(vec![
            TopologySpec::Ring,
            TopologySpec::Star,
            TopologySpec::Path,
        ])
        .sizes(vec![6])
        .algorithms(vec![families::unison_sdr()])
        .daemons(vec![Daemon::Central])
        .trials(2)
        .step_cap(500_000)
        .seed(0xDEAD)
}

fn temp_journal(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ssr-resume-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("journal.jsonl");
    let _ = std::fs::remove_file(&path);
    path
}

fn run_journaled(campaign: &Campaign, path: &Path, cache: &RecordCache) -> String {
    let writer = CheckpointWriter::open(path).unwrap();
    let mut obs = CampaignObs::new();
    let layer = CacheLayer {
        cache,
        checkpoint: Some(&writer),
    };
    output::jsonl(&engine::run_obs_cached(campaign, 2, &mut obs, layer))
}

/// Simulates the kill at every interesting cut point: after the
/// header, after k whole records, and mid-line (a torn write).
#[test]
fn resuming_from_any_truncation_reproduces_the_uninterrupted_bytes() {
    let campaign = sweep("resume");
    let total = campaign.len();
    let path = temp_journal("cuts");

    // The uninterrupted reference run, journaled in full.
    let reference = run_journaled(&campaign, &path, &RecordCache::new());
    let full = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = full.lines().collect();
    assert_eq!(lines.len(), total + 1, "header plus one line per scenario");

    for keep in 0..=total {
        // Cut the journal to the header plus `keep` records…
        let mut cut: String = lines[..=keep].join("\n");
        cut.push('\n');
        // …and for interior cuts, also leave a torn half of the next
        // line, as a kill mid-`write` would.
        if keep < total {
            let torn = &lines[keep + 1][..lines[keep + 1].len() / 2];
            cut.push_str(torn);
        }
        std::fs::write(&path, &cut).unwrap();

        // "Restart": a fresh cache replays the journal, the sweep
        // reruns, and only the missing scenarios simulate.
        let cache = RecordCache::new();
        let replayed = checkpoint::replay_into(&path, &cache).unwrap();
        assert_eq!(replayed, keep, "torn tail is dropped on replay");
        let resumed = run_journaled(&campaign, &path, &cache);
        assert_eq!(resumed, reference, "cut at {keep} records");
        assert_eq!(cache.hits(), keep as u64);
        assert_eq!(cache.misses(), (total - keep) as u64);

        // The healed journal is complete and strictly valid again.
        let healed = std::fs::read_to_string(&path).unwrap();
        assert_eq!(checkpoint::validate(&healed).unwrap(), total);
    }
    let _ = std::fs::remove_file(&path);
}

/// The resumed journal also serves a *second* restart: replaying the
/// healed file yields a fully-warm cache and identical bytes again.
#[test]
fn a_second_restart_is_all_hits() {
    let campaign = sweep("resume-twice");
    let path = temp_journal("twice");
    let reference = run_journaled(&campaign, &path, &RecordCache::new());

    let cache = RecordCache::new();
    let replayed = checkpoint::replay_into(&path, &cache).unwrap();
    assert_eq!(replayed, campaign.len());
    let resumed = run_journaled(&campaign, &path, &cache);
    assert_eq!(resumed, reference);
    assert_eq!(cache.misses(), 0, "nothing re-simulates");

    // Journaling on an all-hit run appends nothing: fresh records
    // only. The journal still validates at its original length.
    let text = std::fs::read_to_string(&path).unwrap();
    assert_eq!(checkpoint::validate(&text).unwrap(), campaign.len());
    let _ = std::fs::remove_file(&path);
}
