//! Observability never steers: campaign records with every obs channel
//! enabled are identical to a bare run, and the merged metrics
//! snapshot is deterministic across thread counts.

use std::path::PathBuf;

use ssr_campaign::{engine, families, Campaign, CampaignObs, TopologySpec};
use ssr_obs::progress::{JsonlProgress, Progress};
use ssr_obs::trace::validate_jsonl_line;
use ssr_runtime::Daemon;

fn tiny() -> Campaign {
    Campaign::new("obs-equivalence")
        .topologies(vec![TopologySpec::Ring, TopologySpec::Star])
        .sizes(vec![6, 8])
        .algorithms(vec![families::unison_sdr(), families::sdr_agreement(4)])
        .daemons(vec![Daemon::Central, Daemon::Synchronous])
        .trials(1)
        .step_cap(500_000)
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ssr-obs-test-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn obs_channels_do_not_change_records() {
    let c = tiny();
    let bare = engine::run(&c, 2);

    let dir = scratch_dir("records");
    let mut obs = CampaignObs::new()
        .with_metrics()
        .with_trace_dir(&dir)
        .with_progress(Box::new(JsonlProgress::new(std::io::sink())));
    let observed = engine::run_obs(&c, 2, &mut obs);
    assert_eq!(bare, observed, "obs channels must be read-only");

    // Every scenario left a validating trace file behind.
    for i in 0..c.len() {
        let path = obs.trace_path(i).unwrap();
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing trace {path:?}: {e}"));
        for line in text.lines() {
            validate_jsonl_line(line).unwrap_or_else(|err| panic!("{path:?}: {err}"));
        }
        assert!(
            text.lines()
                .last()
                .unwrap()
                .contains("\"event\":\"run-ended\""),
            "trace {path:?} must close with run-ended"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn merged_metrics_are_deterministic_across_thread_counts() {
    let c = tiny();
    let snapshot_at = |threads: usize| {
        let mut obs = CampaignObs::new().with_metrics();
        engine::run_obs(&c, threads, &mut obs);
        obs.metrics_snapshot().unwrap().to_json()
    };
    let seq = snapshot_at(1);
    assert!(seq.contains("\"schema\":\"ssr-metrics-v1\""));
    assert!(seq.contains("pipeline.steps"));
    assert!(seq.contains("campaign.scenarios"));
    for threads in [2, 4] {
        assert_eq!(seq, snapshot_at(threads), "threads={threads}");
    }
}

#[test]
fn progress_sees_every_scenario_exactly_once() {
    #[derive(Default)]
    struct CountingProgress {
        begun: Option<usize>,
        done: Vec<usize>,
        finished: bool,
    }
    impl Progress for CountingProgress {
        fn begin(&mut self, total: usize) {
            self.begun = Some(total);
        }
        fn item_done(&mut self, index: usize, _label: &str, ok: bool) {
            assert!(ok);
            self.done.push(index);
        }
        fn finish(&mut self) {
            self.finished = true;
        }
    }

    // `run_obs` owns the reporter; recover it through a shared cell.
    use std::sync::{Arc, Mutex};
    #[derive(Clone, Default)]
    struct Shared(Arc<Mutex<CountingProgress>>);
    impl Progress for Shared {
        fn begin(&mut self, total: usize) {
            self.0.lock().unwrap().begin(total);
        }
        fn item_done(&mut self, index: usize, label: &str, ok: bool) {
            self.0.lock().unwrap().item_done(index, label, ok);
        }
        fn finish(&mut self) {
            self.0.lock().unwrap().finish();
        }
    }

    let c = tiny();
    let shared = Shared::default();
    let mut obs = CampaignObs::new().with_progress(Box::new(shared.clone()));
    engine::run_obs(&c, 3, &mut obs);
    let inner = shared.0.lock().unwrap();
    assert_eq!(inner.begun, Some(c.len()));
    assert!(inner.finished);
    let mut done = inner.done.clone();
    done.sort_unstable();
    assert_eq!(done, (0..c.len()).collect::<Vec<_>>());
}
