//! The intra-run parallelism contract at the campaign level: records
//! are byte-identical at any `intra_threads` value, for every family.
//!
//! Across-run engine determinism (worker threads) is pinned by
//! `determinism.rs`; this file pins the *within-run* axis introduced
//! with the staged step pipeline. Small grids exercise the plumbing
//! (hooks installed, nothing changes); the large-ring test crosses the
//! simulator's parallel-dispatch threshold so the scoped-thread
//! kernels genuinely run.

use ssr_campaign::{
    engine, families, output, run_scenario, Amount, Campaign, InitPlan, PresetSpec, TopologySpec,
};
use ssr_runtime::Daemon;

/// A mixed-family grid: every built-in family, fault plans, two
/// daemons.
fn mixed_campaign(intra: Vec<usize>) -> Campaign {
    Campaign::new("intra")
        .topologies(vec![TopologySpec::Ring, TopologySpec::RandSparse])
        .sizes(vec![8])
        .algorithms(vec![
            families::sdr_agreement(4),
            families::unison_sdr(),
            families::cfg_unison(),
            families::mono_reset(),
            families::fga_sdr(PresetSpec::Domination),
            families::fga_standalone(PresetSpec::Defensive),
        ])
        .daemons(vec![Daemon::Central, Daemon::RandomSubset { p: 0.5 }])
        .inits(vec![
            InitPlan::Arbitrary,
            InitPlan::CorruptClocks {
                k: Amount::QuarterN,
            },
        ])
        .step_cap(2_000_000)
        .seed(0x177A)
        .intra_threads(intra)
}

/// Sweeping the thread axis replicates every cell as the *same run*:
/// stripping the grid index, the records at 2, 4, and 8 intra-run
/// threads are byte-identical to the sequential ones.
#[test]
fn mixed_family_records_are_identical_across_intra_threads() {
    let base = engine::run(&mixed_campaign(vec![1]), 2);
    let swept = engine::run(&mixed_campaign(vec![1, 2, 4, 8]), 2);
    assert_eq!(swept.len(), 4 * base.len());
    for (cell, rec) in base.iter().enumerate() {
        for replica in 0..4 {
            let mut other = swept[4 * cell + replica].clone();
            other.index = rec.index;
            assert_eq!(&other, rec, "cell {cell} replica {replica}");
        }
    }
    // Serialized surfaces agree too (JSONL carries the index, so
    // compare the singleton sweep against the base directly).
    let explicit = engine::run(&mixed_campaign(vec![1]), 4);
    assert_eq!(output::jsonl(&base), output::jsonl(&explicit));
    assert_eq!(output::csv(&base), output::csv(&explicit));
}

/// A ring big enough that synchronous steps push thousands of nodes
/// through the apply and guard kernels — past the simulator's
/// parallel-dispatch threshold — so this compares *actually parallel*
/// runs against the sequential one, not just installed-but-idle hooks.
#[test]
fn large_ring_crosses_the_parallel_threshold() {
    let scenario = |threads: usize| ssr_campaign::Scenario {
        index: 0,
        topology: TopologySpec::Ring,
        n: 3_000,
        algorithm: families::unison_sdr(),
        daemon: Daemon::Synchronous,
        init: InitPlan::Arbitrary,
        trial: 0,
        seed: 0xB16,
        step_cap: 400,
        intra_threads: threads,
    };
    let sequential = run_scenario(scenario(1));
    assert!(sequential.steps > 0);
    for threads in [2, 4, 8] {
        let parallel = run_scenario(scenario(threads));
        assert_eq!(parallel, sequential, "threads={threads}");
    }
}
