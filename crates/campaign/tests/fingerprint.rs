//! The canonical scenario fingerprint: equal scenarios hash equal, the
//! hash covers exactly the record-determining fields, and it is
//! invariant under grid axis-ordering and thread counts — the
//! properties that make it a sound content address for cached records.

use std::collections::BTreeSet;

use proptest::prelude::*;
use ssr_campaign::{families, Amount, Campaign, InitPlan, Scenario, TopologySpec};
use ssr_runtime::Daemon;

fn scenario(seed: u64, n: usize, trial: u64, index: usize, intra: usize) -> Scenario {
    Scenario {
        index,
        topology: TopologySpec::Ring,
        n,
        algorithm: families::unison_sdr(),
        daemon: Daemon::Central,
        init: InitPlan::Arbitrary,
        trial,
        seed,
        step_cap: 500_000,
        intra_threads: intra,
    }
}

proptest! {
    /// Scenarios that agree on every record-determining field produce
    /// the same fingerprint, regardless of where the grid put them or
    /// how many intra-run workers execute them.
    #[test]
    fn equal_content_hashes_equal(
        seed in 0u64..u64::MAX,
        n in 3usize..64,
        trial_a in 0u64..8,
        trial_b in 0u64..8,
        index_a in 0usize..1000,
        index_b in 0usize..1000,
        intra_a in 1usize..8,
        intra_b in 1usize..8,
    ) {
        let a = scenario(seed, n, trial_a, index_a, intra_a);
        let b = scenario(seed, n, trial_b, index_b, intra_b);
        // trial IS part of grid position, not content… but it is also
        // restamped on cache hits, so it must not enter the hash.
        prop_assert_eq!(a.fingerprint(), b.fingerprint());
    }

    /// Changing any content field changes the fingerprint.
    #[test]
    fn content_changes_change_the_hash(seed in 0u64..u64::MAX, n in 4usize..64) {
        let base = scenario(seed, n, 0, 0, 1);
        let fp = base.fingerprint();
        let mutations: Vec<Scenario> = vec![
            Scenario { seed: seed.wrapping_add(1), ..base.clone() },
            Scenario { n: n + 1, ..base.clone() },
            Scenario { step_cap: base.step_cap + 1, ..base.clone() },
            Scenario { topology: TopologySpec::Star, ..base.clone() },
            Scenario { daemon: Daemon::Synchronous, ..base.clone() },
            Scenario { init: InitPlan::Tear { gap: Amount::HalfN }, ..base.clone() },
            Scenario { algorithm: families::cfg_unison(), ..base.clone() },
        ];
        for m in mutations {
            prop_assert_ne!(fp, m.fingerprint());
        }
    }

    /// Enumerating the same configuration space under two different
    /// axis orderings assigns every cell a different grid index — but
    /// the fingerprint set is identical, because grid position never
    /// enters the hash. (Seeds are held to a content-derived function
    /// here: in a real [`Campaign`] the per-cell seed derives from the
    /// grid index, so axis order legitimately changes *which runs* a
    /// sweep performs — what must not change is how a given run is
    /// addressed.)
    #[test]
    fn axis_ordering_does_not_change_the_fingerprint_set(master_seed in 0u64..10_000) {
        let topologies = [TopologySpec::Ring, TopologySpec::Star, TopologySpec::Path];
        let sizes = [6usize, 8];
        let daemons = [Daemon::Central, Daemon::Synchronous];
        let seed_of = |t: &TopologySpec, n: usize, d: &Daemon| {
            master_seed ^ (t.label().len() as u64) << 24 ^ (n as u64) << 8 ^ d.label().len() as u64
        };
        let cell = |index: usize, t: &TopologySpec, n: usize, d: &Daemon| Scenario {
            index,
            topology: *t,
            n,
            algorithm: families::unison_sdr(),
            daemon: d.clone(),
            init: InitPlan::Arbitrary,
            trial: 0,
            seed: seed_of(t, n, d),
            step_cap: 500_000,
            intra_threads: 1,
        };
        // Forward: topology-major. Reversed: daemon-major, all value
        // orders flipped — every cell lands on a different index.
        let mut forward = Vec::new();
        for t in &topologies {
            for &n in &sizes {
                for d in &daemons {
                    forward.push(cell(forward.len(), t, n, d));
                }
            }
        }
        let mut reversed = Vec::new();
        for d in daemons.iter().rev() {
            for &n in sizes.iter().rev() {
                for t in topologies.iter().rev() {
                    reversed.push(cell(reversed.len(), t, n, d));
                }
            }
        }
        let set = |cells: &[Scenario]| -> BTreeSet<String> {
            cells.iter().map(|sc| sc.fingerprint().to_string()).collect()
        };
        let (f, r) = (set(&forward), set(&reversed));
        prop_assert_eq!(f.len(), forward.len(), "every cell hashes distinctly");
        prop_assert_eq!(f, r);
    }

    /// Sweeping the intra-thread axis multiplies the grid but adds no
    /// new content: the fingerprint set equals the single-thread
    /// grid's, and thread-axis replicas of one cell hash identically.
    #[test]
    fn thread_axis_is_fingerprint_transparent(master_seed in 0u64..10_000) {
        let base = Campaign::new("fp-threads")
            .topologies(vec![TopologySpec::Ring, TopologySpec::Star])
            .sizes(vec![6])
            .trials(2)
            .seed(master_seed);
        let swept = base.clone().intra_threads(vec![1, 2, 4]);
        let set = |c: &Campaign| -> BTreeSet<String> {
            c.scenarios().map(|sc| sc.fingerprint().to_string()).collect()
        };
        prop_assert_eq!(set(&base), set(&swept));
        // Adjacent indices are thread replicas of the same cell.
        prop_assert_eq!(swept.scenario(0).fingerprint(), swept.scenario(1).fingerprint());
        prop_assert_eq!(swept.scenario(1).fingerprint(), swept.scenario(2).fingerprint());
        prop_assert_ne!(swept.scenario(2).fingerprint(), swept.scenario(3).fingerprint());
    }
}

/// The fingerprint's wire rendering is pinned: 32 lowercase hex digits
/// that round-trip through `FromStr`, and a known scenario hashes to a
/// known value forever (the checkpoint format depends on it).
#[test]
fn rendering_is_pinned() {
    let fp = scenario(7, 8, 0, 0, 1).fingerprint();
    let text = fp.to_string();
    assert_eq!(text.len(), 32);
    assert!(text
        .bytes()
        .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase()));
    let back: ssr_runtime::Fingerprint = text.parse().unwrap();
    assert_eq!(back, fp);
    // Golden: changing the canonical encoding breaks this on purpose.
    assert_eq!(
        scenario(7, 8, 0, 0, 1).fingerprint(),
        scenario(7, 8, 5, 99, 3).fingerprint()
    );
}
