//! Hand-rolled structured-result writers (JSONL / CSV / JSON values).
//!
//! The build is offline, so instead of serde this module carries a
//! tiny JSON value tree with deterministic rendering — enough for the
//! campaign records and the experiment harness's `BENCH_`-style result
//! files, and reusable by anything else that needs machine-readable
//! output.

use std::fmt;

use crate::runner::ScenarioRecord;

/// A JSON value with deterministic rendering (object keys keep their
/// insertion order; floats use Rust's shortest round-trip formatting).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float (`null` when not finite).
    F64(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for object members.
    pub fn obj<const N: usize>(members: [(&str, Json); N]) -> Json {
        Json::Obj(
            members
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Convenience constructor for strings.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::U64(v) => write!(f, "{v}"),
            Json::I64(v) => write!(f, "{v}"),
            Json::F64(v) if v.is_finite() => write!(f, "{v}"),
            Json::F64(_) => write!(f, "null"),
            Json::Str(s) => write!(f, "\"{}\"", escape_json(s)),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Obj(members) => {
                write!(f, "{{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "\"{}\":{v}", escape_json(k))?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Escapes a string for inclusion in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn opt_u64(v: Option<u64>) -> Json {
    v.map_or(Json::Null, Json::U64)
}

impl ScenarioRecord {
    /// The record as a JSON object (one JSONL line's worth).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("campaign", Json::str(&self.campaign)),
            ("index", Json::U64(self.index as u64)),
            ("topology", Json::str(&self.topology)),
            ("n", Json::U64(self.n as u64)),
            ("nodes", Json::U64(self.nodes)),
            ("edges", Json::U64(self.edges)),
            ("max_degree", Json::U64(self.max_degree)),
            ("diameter", Json::U64(self.diameter)),
            ("algorithm", Json::str(&self.algorithm)),
            ("daemon", Json::str(&self.daemon)),
            ("init", Json::str(&self.init)),
            ("trial", Json::U64(self.trial)),
            ("seed", Json::U64(self.seed)),
            ("reached", Json::Bool(self.reached)),
            ("terminal", Json::Bool(self.terminal)),
            (
                "reason",
                self.reason.map_or(Json::Null, |r| Json::str(r.to_string())),
            ),
            ("steps", Json::U64(self.steps)),
            ("moves", Json::U64(self.moves)),
            ("rounds", Json::U64(self.rounds)),
            (
                "max_moves_per_process",
                Json::U64(self.max_moves_per_process),
            ),
            ("bound_rounds", opt_u64(self.bound_rounds)),
            ("bound_moves", opt_u64(self.bound_moves)),
            ("verdict", Json::str(self.verdict.to_string())),
        ])
    }
}

/// Serializes records as JSON Lines (one object per line, grid order).
pub fn jsonl(records: &[ScenarioRecord]) -> String {
    let mut out = String::new();
    for rec in records {
        out.push_str(&rec.to_json().to_string());
        out.push('\n');
    }
    out
}

const CSV_HEADER: &str = "campaign,index,topology,n,nodes,edges,max_degree,diameter,algorithm,\
                          daemon,init,trial,seed,reached,terminal,reason,steps,moves,rounds,\
                          max_moves_per_process,bound_rounds,bound_moves,verdict";

fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Serializes records as CSV with a header row (RFC-4180 quoting).
pub fn csv(records: &[ScenarioRecord]) -> String {
    let mut out = String::from(CSV_HEADER);
    out.push('\n');
    for r in records {
        let fields: Vec<String> = vec![
            csv_field(&r.campaign),
            r.index.to_string(),
            csv_field(&r.topology),
            r.n.to_string(),
            r.nodes.to_string(),
            r.edges.to_string(),
            r.max_degree.to_string(),
            r.diameter.to_string(),
            csv_field(&r.algorithm),
            csv_field(&r.daemon),
            csv_field(&r.init),
            r.trial.to_string(),
            r.seed.to_string(),
            r.reached.to_string(),
            r.terminal.to_string(),
            r.reason.map(|v| v.to_string()).unwrap_or_default(),
            r.steps.to_string(),
            r.moves.to_string(),
            r.rounds.to_string(),
            r.max_moves_per_process.to_string(),
            r.bound_rounds.map(|v| v.to_string()).unwrap_or_default(),
            r.bound_moves.map(|v| v.to_string()).unwrap_or_default(),
            r.verdict.to_string(),
        ];
        out.push_str(&fields.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Verdict;

    #[test]
    fn json_escaping() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
        assert_eq!(escape_json("plain"), "plain");
    }

    #[test]
    fn json_rendering() {
        let v = Json::obj([
            ("s", Json::str("x\"y")),
            ("n", Json::U64(3)),
            ("f", Json::F64(1.5)),
            ("nan", Json::F64(f64::NAN)),
            ("a", Json::Arr(vec![Json::Bool(true), Json::Null])),
        ]);
        assert_eq!(
            v.to_string(),
            r#"{"s":"x\"y","n":3,"f":1.5,"nan":null,"a":[true,null]}"#
        );
    }

    #[test]
    fn jsonl_one_line_per_record() {
        let mut rec = crate::test_support::record("ring", 8);
        rec.bound_rounds = Some(24);
        rec.verdict = Verdict::Pass;
        let text = jsonl(&[rec.clone(), rec]);
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
            assert!(line.contains("\"bound_rounds\":24"));
            assert!(line.contains("\"verdict\":\"pass\""));
        }
    }

    #[test]
    fn csv_quotes_commas() {
        let mut rec = crate::test_support::record("ring", 8);
        rec.algorithm = "fga:domination(1,0)".into();
        let text = csv(&[rec]);
        let mut lines = text.lines();
        assert!(lines.next().unwrap().starts_with("campaign,index,topology"));
        let row = lines.next().unwrap();
        assert!(row.contains("\"fga:domination(1,0)\""));
        // Header and row have the same arity (quoted comma not split).
        let arity = |line: &str| {
            let mut in_quotes = false;
            let mut count = 1;
            for c in line.chars() {
                match c {
                    '"' => in_quotes = !in_quotes,
                    ',' if !in_quotes => count += 1,
                    _ => {}
                }
            }
            count
        };
        assert_eq!(arity(CSV_HEADER), arity(row));
    }
}
