//! The [`Campaign`]: a cartesian grid of scenarios, expanded lazily.
//!
//! A campaign never materializes its scenario list — [`Campaign::scenario`]
//! decodes a grid index (mixed-radix over the axes) into a [`Scenario`]
//! on demand, so a million-cell sweep costs no memory until workers pull
//! cells from the queue. Per-scenario seeds are derived from the master
//! seed and the *index*, never from execution order, which is what makes
//! parallel and sequential runs byte-identical.

use ssr_runtime::rng::splitmix64;
use ssr_runtime::Daemon;

use crate::scenario::{AlgorithmSpec, InitPlan, Scenario, TopologySpec};

/// A declarative sweep: the cartesian product of axis values × trials.
///
/// Built with a fluent API; empty axes are invalid (every `Campaign`
/// starts with sensible defaults, so only the axes you sweep need
/// setting).
///
/// # Examples
///
/// ```
/// use ssr_campaign::{families, Campaign, TopologySpec};
///
/// let c = Campaign::new("demo")
///     .topologies(vec![TopologySpec::Ring, TopologySpec::Star])
///     .sizes(vec![8, 16])
///     .algorithms(vec![families::unison_sdr()])
///     .trials(3);
/// assert_eq!(c.len(), 2 * 2 * 3);
/// let sc = c.scenario(0);
/// assert_eq!(sc.index, 0);
/// ```
#[derive(Clone, Debug)]
pub struct Campaign {
    id: String,
    topologies: Vec<TopologySpec>,
    sizes: Vec<usize>,
    algorithms: Vec<AlgorithmSpec>,
    daemons: Vec<Daemon>,
    inits: Vec<InitPlan>,
    trials: u64,
    step_cap: u64,
    intra_threads: Vec<usize>,
    master_seed: u64,
}

impl Campaign {
    /// Starts a campaign with defaults: ring × size 8 × `U ∘ SDR` ×
    /// `RandomSubset{0.5}` × arbitrary init, one trial, 5M-step cap.
    pub fn new(id: impl Into<String>) -> Self {
        Campaign {
            id: id.into(),
            topologies: vec![TopologySpec::Ring],
            sizes: vec![8],
            algorithms: vec![crate::families::unison_sdr()],
            daemons: vec![Daemon::RandomSubset { p: 0.5 }],
            inits: vec![InitPlan::Arbitrary],
            trials: 1,
            step_cap: 5_000_000,
            intra_threads: vec![1],
            master_seed: 0x5D12_CA3B,
        }
    }

    /// Sets the topology axis (must be non-empty).
    pub fn topologies(mut self, axis: Vec<TopologySpec>) -> Self {
        assert!(!axis.is_empty(), "topology axis must be non-empty");
        self.topologies = axis;
        self
    }

    /// Sets the size axis (must be non-empty).
    pub fn sizes(mut self, axis: Vec<usize>) -> Self {
        assert!(!axis.is_empty(), "size axis must be non-empty");
        self.sizes = axis;
        self
    }

    /// Sets the algorithm axis (must be non-empty).
    pub fn algorithms(mut self, axis: Vec<AlgorithmSpec>) -> Self {
        assert!(!axis.is_empty(), "algorithm axis must be non-empty");
        self.algorithms = axis;
        self
    }

    /// Sets the daemon axis (must be non-empty).
    pub fn daemons(mut self, axis: Vec<Daemon>) -> Self {
        assert!(!axis.is_empty(), "daemon axis must be non-empty");
        self.daemons = axis;
        self
    }

    /// Sets the init-plan axis (must be non-empty).
    pub fn inits(mut self, axis: Vec<InitPlan>) -> Self {
        assert!(!axis.is_empty(), "init axis must be non-empty");
        self.inits = axis;
        self
    }

    /// Sets the number of trials per grid cell (must be ≥ 1).
    pub fn trials(mut self, trials: u64) -> Self {
        assert!(trials >= 1, "at least one trial per cell");
        self.trials = trials;
        self
    }

    /// Sets the per-run step budget.
    pub fn step_cap(mut self, cap: u64) -> Self {
        self.step_cap = cap;
        self
    }

    /// Sets the intra-run thread axis (must be non-empty; values are
    /// clamped to ≥ 1). The default singleton `[1]` leaves every grid
    /// index, seed, and record identical to a campaign without the
    /// axis; sweeping it only changes throughput, never results.
    pub fn intra_threads(mut self, axis: Vec<usize>) -> Self {
        assert!(!axis.is_empty(), "intra-thread axis must be non-empty");
        self.intra_threads = axis.into_iter().map(|t| t.max(1)).collect();
        self
    }

    /// Sets the master seed all per-scenario seeds derive from.
    pub fn seed(mut self, master_seed: u64) -> Self {
        self.master_seed = master_seed;
        self
    }

    /// The campaign id (stamped into records).
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Total number of scenarios in the grid.
    pub fn len(&self) -> usize {
        self.topologies.len()
            * self.sizes.len()
            * self.algorithms.len()
            * self.daemons.len()
            * self.inits.len()
            * self.trials as usize
            * self.intra_threads.len()
    }

    /// Whether the grid is empty (never true: all axes are non-empty).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Decodes grid index `index` into its scenario (lazy expansion).
    ///
    /// Axis order, fastest-varying last: topology, size, algorithm,
    /// daemon, init, trial, intra-threads. The thread axis is
    /// innermost so that the default singleton `[1]` reproduces the
    /// exact indices (and hence seeds and records) of grids that
    /// predate it.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn scenario(&self, index: usize) -> Scenario {
        assert!(index < self.len(), "scenario index out of range");
        let mut rest = index;
        let intra_threads = self.intra_threads[rest % self.intra_threads.len()];
        rest /= self.intra_threads.len();
        // The seed is keyed on the index with the thread axis divided
        // out: thread-axis replicas of one cell are the *same run* at
        // different worker counts (byte-identical results), and the
        // default singleton reproduces the historical index == key.
        let seed_key = rest;
        let trial = (rest % self.trials as usize) as u64;
        rest /= self.trials as usize;
        let init = self.inits[rest % self.inits.len()];
        rest /= self.inits.len();
        let daemon = self.daemons[rest % self.daemons.len()].clone();
        rest /= self.daemons.len();
        let algorithm = self.algorithms[rest % self.algorithms.len()].clone();
        rest /= self.algorithms.len();
        let n = self.sizes[rest % self.sizes.len()];
        rest /= self.sizes.len();
        let topology = self.topologies[rest];
        // Index-keyed seed: identical no matter which worker runs it.
        let mut state = self
            .master_seed
            .wrapping_add((seed_key as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let seed = splitmix64(&mut state);
        Scenario {
            index,
            topology,
            n,
            algorithm,
            daemon,
            init,
            trial,
            seed,
            step_cap: self.step_cap,
            intra_threads,
        }
    }

    /// Iterates all scenarios in index order (still lazy per item).
    pub fn scenarios(&self) -> impl Iterator<Item = Scenario> + '_ {
        (0..self.len()).map(|i| self.scenario(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Amount;

    fn grid() -> Campaign {
        Campaign::new("t")
            .topologies(vec![
                TopologySpec::Ring,
                TopologySpec::Path,
                TopologySpec::Star,
            ])
            .sizes(vec![8, 12])
            .algorithms(vec![
                crate::families::unison_sdr(),
                crate::families::cfg_unison(),
            ])
            .daemons(vec![Daemon::Central, Daemon::Synchronous])
            .inits(vec![
                InitPlan::Arbitrary,
                InitPlan::Tear { gap: Amount::HalfN },
            ])
            .trials(3)
    }

    #[test]
    fn len_is_axis_product() {
        assert_eq!(grid().len(), 3 * 2 * 2 * 2 * 2 * 3);
    }

    #[test]
    fn every_index_decodes_to_a_unique_scenario() {
        let c = grid();
        let all: Vec<Scenario> = c.scenarios().collect();
        assert_eq!(all.len(), c.len());
        for (i, sc) in all.iter().enumerate() {
            assert_eq!(sc.index, i);
            assert_eq!(&c.scenario(i), sc, "decode must be a pure function");
        }
        // The full cartesian product is covered: count distinct cells.
        let mut cells: Vec<String> = all
            .iter()
            .map(|sc| {
                format!(
                    "{}|{}|{}|{}|{}|{}",
                    sc.topology.label(),
                    sc.n,
                    sc.algorithm.label(),
                    sc.daemon.label(),
                    sc.init.label(),
                    sc.trial
                )
            })
            .collect();
        cells.sort();
        cells.dedup();
        assert_eq!(cells.len(), c.len());
    }

    #[test]
    fn seeds_differ_across_indices() {
        let c = grid();
        let mut seeds: Vec<u64> = c.scenarios().map(|sc| sc.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), c.len(), "per-scenario seeds must be distinct");
    }

    #[test]
    fn master_seed_changes_all_seeds() {
        let a = grid().seed(1).scenario(0).seed;
        let b = grid().seed(2).scenario(0).seed;
        assert_ne!(a, b);
    }

    #[test]
    fn intra_thread_axis_is_innermost_and_transparent() {
        // The default singleton is invisible: same length, same
        // scenarios, same seeds as an explicit [1].
        let plain: Vec<Scenario> = grid().scenarios().collect();
        let explicit: Vec<Scenario> = grid().intra_threads(vec![1]).scenarios().collect();
        assert_eq!(plain, explicit);
        // A real axis multiplies the grid and varies fastest, keeping
        // every other field of adjacent scenarios identical.
        let c = grid().intra_threads(vec![1, 4]);
        assert_eq!(c.len(), 2 * plain.len());
        let a = c.scenario(0);
        let b = c.scenario(1);
        assert_eq!(a.intra_threads, 1);
        assert_eq!(b.intra_threads, 4);
        assert_eq!((a.topology, a.n, a.trial), (b.topology, b.n, b.trial));
        // Thread replicas of a cell share the seed: same run, more
        // workers.
        assert_eq!(a.seed, b.seed);
        assert_ne!(a.seed, c.scenario(2).seed, "different cells still differ");
        assert_eq!(c.scenario(2).intra_threads, 1);
        // Clamping: 0 is nonsense, treat it as sequential.
        assert_eq!(grid().intra_threads(vec![0]).scenario(0).intra_threads, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let c = grid();
        let _ = c.scenario(c.len());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_axis_rejected() {
        let _ = Campaign::new("t").sizes(vec![]);
    }
}
