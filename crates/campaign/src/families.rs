//! The standard family registry and label constructors.
//!
//! [`standard_families`] assembles the workspace's built-in algorithm
//! families into one [`FamilyRegistry`]:
//!
//! | key | params | family | home crate |
//! |-----|--------|--------|-----------|
//! | `sdr-agreement` | domain, e.g. `sdr-agreement(8)` | pure SDR over the rule-less agreement input | `ssr-core` |
//! | `unison-sdr` | — | `U ∘ SDR` (Thm 6/7) | `ssr-unison` |
//! | `unison` | — | standalone Algorithm U | `ssr-unison` |
//! | `cfg-unison` | — | uncoordinated-local-reset baseline | `ssr-baselines` |
//! | `mono-reset` | — | mono-initiator reset baseline | `ssr-baselines` |
//! | `fga-sdr` | §6.1 preset, e.g. `fga-sdr:domination(1,0)` | `FGA ∘ SDR` (Thm 12/14) | `ssr-alliance` |
//! | `fga` | §6.1 preset, e.g. `fga:powerful` | standalone FGA (Cor. 11/12) | `ssr-alliance` |
//!
//! The registry is **open**: build your own input algorithm, wrap it
//! with [`ssr_core::family::composed`], and register it next to the
//! standard ones — `examples/custom_family.rs` runs a full campaign
//! plus an exhaustive sweep over a family defined entirely outside the
//! workspace. [`default_registry`] is the shared instance behind
//! [`crate::run_scenario`] and the experiment harness.

use std::sync::{Arc, OnceLock};

use ssr_alliance::{FgaSdrFamily, FgaStandaloneFamily, PresetSpec};
use ssr_baselines::{CfgUnisonFamily, MonoResetFamily};
use ssr_core::family::sdr_agreement_family;
use ssr_runtime::family::{AlgorithmSpec, Family, FamilyRegistry};
use ssr_unison::{UnisonFamily, UnisonSdrFamily};

/// Builds a fresh registry holding every standard family.
pub fn standard_families() -> FamilyRegistry {
    let mut registry = FamilyRegistry::new();
    registry.register_parametric(
        "sdr-agreement",
        vec![sdr_agreement(8).label()],
        Box::new(|params| {
            let domain: u32 = params?.parse().ok()?;
            (domain > 0).then(|| Arc::new(sdr_agreement_family(domain)) as Arc<dyn Family>)
        }),
    );
    registry.register(Arc::new(UnisonSdrFamily));
    registry.register(Arc::new(UnisonFamily));
    registry.register(Arc::new(CfgUnisonFamily));
    registry.register(Arc::new(MonoResetFamily));
    registry.register_parametric(
        "fga-sdr",
        PresetSpec::all()
            .iter()
            .map(|p| fga_sdr(*p).label())
            .collect(),
        Box::new(|params| {
            let preset = PresetSpec::from_label(params?)?;
            Some(Arc::new(FgaSdrFamily::new(preset)) as Arc<dyn Family>)
        }),
    );
    registry.register_parametric(
        "fga",
        PresetSpec::all()
            .iter()
            .map(|p| fga_standalone(*p).label())
            .collect(),
        Box::new(|params| {
            let preset = PresetSpec::from_label(params?)?;
            Some(Arc::new(FgaStandaloneFamily::new(preset)) as Arc<dyn Family>)
        }),
    );
    registry
}

/// The shared standard registry ([`standard_families`], built once) —
/// what [`crate::run_scenario`] and the experiment harness resolve
/// against. To *extend* the set, build your own registry with
/// [`standard_families`] + [`FamilyRegistry::register`] and drive it
/// through [`crate::engine::run_in`].
pub fn default_registry() -> &'static FamilyRegistry {
    static REGISTRY: OnceLock<FamilyRegistry> = OnceLock::new();
    REGISTRY.get_or_init(standard_families)
}

/// The handle `sdr-agreement(domain)`: pure SDR over the rule-less
/// agreement input.
pub fn sdr_agreement(domain: u32) -> AlgorithmSpec {
    ssr_core::family::sdr_agreement_spec(domain)
}

/// The handle `unison-sdr`: self-stabilizing unison `U ∘ SDR`.
pub fn unison_sdr() -> AlgorithmSpec {
    ssr_unison::family::unison_sdr_spec()
}

/// The handle `unison`: standalone Algorithm U.
pub fn unison() -> AlgorithmSpec {
    ssr_unison::family::unison_spec()
}

/// The handle `cfg-unison`: the uncoordinated-local-reset baseline.
pub fn cfg_unison() -> AlgorithmSpec {
    ssr_baselines::family::cfg_unison_spec()
}

/// The handle `mono-reset`: the mono-initiator reset baseline.
pub fn mono_reset() -> AlgorithmSpec {
    ssr_baselines::family::mono_reset_spec()
}

/// The handle `fga-sdr:<preset>`: the silent composition `FGA ∘ SDR`.
pub fn fga_sdr(preset: PresetSpec) -> AlgorithmSpec {
    ssr_alliance::family::fga_sdr_spec(preset)
}

/// The handle `fga:<preset>`: standalone FGA from `γ_init`.
pub fn fga_standalone(preset: PresetSpec) -> AlgorithmSpec {
    ssr_alliance::family::fga_standalone_spec(preset)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_standard_label_resolves_to_its_own_id() {
        let registry = standard_families();
        let labels = registry.labels();
        assert_eq!(labels.len(), 5 + 2 * PresetSpec::all().len());
        for label in labels {
            let family = registry
                .resolve_label(&label)
                .unwrap_or_else(|| panic!("{label:?} must resolve"));
            assert_eq!(family.id(), label, "id/label agreement for {label:?}");
        }
    }

    #[test]
    fn every_standard_label_round_trips_through_parsing() {
        for label in standard_families().labels() {
            let spec: AlgorithmSpec = label.parse().unwrap();
            assert_eq!(spec.label(), label, "round-trip of {label:?}");
        }
    }

    #[test]
    fn constructors_match_registry_keys() {
        let registry = default_registry();
        for spec in [
            sdr_agreement(5),
            unison_sdr(),
            unison(),
            cfg_unison(),
            mono_reset(),
            fga_sdr(PresetSpec::Defensive),
            fga_standalone(PresetSpec::TwoTuple),
        ] {
            assert!(
                registry.resolve(&spec).is_some(),
                "{} must resolve",
                spec.label()
            );
        }
    }

    #[test]
    fn bad_parameters_do_not_resolve() {
        let registry = default_registry();
        assert!(registry.resolve_label("sdr-agreement(0)").is_none());
        assert!(registry.resolve_label("sdr-agreement(x)").is_none());
        assert!(registry.resolve_label("sdr-agreement").is_none());
        assert!(registry.resolve_label("fga-sdr:unknown").is_none());
        assert!(registry.resolve_label("nope").is_none());
    }

    /// Every standard label exposes the analysis hook — the release
    /// gate (`analyze` bin) certifies them at full depth; here a
    /// debug-affordable slice must already come back clean.
    #[test]
    fn standard_families_are_analyzable_and_a_sample_certifies() {
        use ssr_runtime::analysis::AnalyzeOptions;

        let registry = default_registry();
        for label in registry.labels() {
            let family = registry.resolve_label(&label).unwrap();
            assert!(
                family.analysis().is_some(),
                "{label} must expose the analysis hook"
            );
        }
        let opts = AnalyzeOptions {
            max_configs: 200,
            samples: 2,
            audit_runs: 1,
            audit_steps: 15,
            ..AnalyzeOptions::default()
        };
        for label in ["unison-sdr", "cfg-unison", "fga:domination(1,0)"] {
            let family = registry.resolve_label(label).unwrap();
            let analyze = family.analysis().unwrap();
            let g = ssr_graph::generators::path(3);
            let fp = analyze.footprints(&g, "path3", &opts);
            assert!(
                fp.findings.is_empty(),
                "{label} on path3 must be clean: {:?}",
                fp.findings
            );
            let audit = analyze.audit(&g, &opts);
            assert!(
                audit.findings.is_empty(),
                "{label} audit must be clean: {:?}",
                audit.findings
            );
            assert_eq!(audit.apply_draws + audit.guards_draws, 0);
        }
    }
}
