//! Aggregation of scenario records into campaign summaries.

use std::collections::BTreeMap;

use crate::runner::{ScenarioRecord, Verdict};

/// Five-number-plus summary of a metric across runs.
#[derive(Clone, Debug, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Minimum.
    pub min: u64,
    /// Maximum.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (nearest-rank).
    pub p50: u64,
    /// 90th percentile (nearest-rank).
    pub p90: u64,
    /// 99th percentile (nearest-rank).
    pub p99: u64,
}

impl Summary {
    fn empty() -> Self {
        Summary {
            count: 0,
            min: 0,
            max: 0,
            mean: 0.0,
            p50: 0,
            p90: 0,
            p99: 0,
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted slice (`q` in
/// `[0, 1]`); 0 on an empty slice.
pub fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Summarizes a metric stream (any order).
pub fn summarize<I: IntoIterator<Item = u64>>(values: I) -> Summary {
    let mut v: Vec<u64> = values.into_iter().collect();
    v.sort_unstable();
    if v.is_empty() {
        return Summary::empty();
    }
    let count = v.len();
    let sum: u128 = v.iter().map(|&x| x as u128).sum();
    Summary {
        count,
        min: v[0],
        max: v[count - 1],
        mean: sum as f64 / count as f64,
        p50: percentile(&v, 0.50),
        p90: percentile(&v, 0.90),
        p99: percentile(&v, 0.99),
    }
}

/// Per-group aggregate over a set of scenario records.
#[derive(Clone, Debug, PartialEq)]
pub struct GroupSummary {
    /// The grouping key.
    pub key: String,
    /// Records in the group (skips excluded).
    pub runs: usize,
    /// Records with [`Verdict::Fail`].
    pub failed: usize,
    /// Records with [`Verdict::Skip`].
    pub skipped: usize,
    /// Rounds across the group's runs.
    pub rounds: Summary,
    /// Moves across the group's runs.
    pub moves: Summary,
}

impl GroupSummary {
    /// Whether no run in the group violated a bound.
    pub fn all_ok(&self) -> bool {
        self.failed == 0
    }
}

/// Groups records by `key` and summarizes each group; groups come back
/// sorted by key (deterministic regardless of record order).
pub fn summarize_by(
    records: &[ScenarioRecord],
    key: impl Fn(&ScenarioRecord) -> String,
) -> Vec<GroupSummary> {
    let mut groups: BTreeMap<String, Vec<&ScenarioRecord>> = BTreeMap::new();
    for rec in records {
        groups.entry(key(rec)).or_default().push(rec);
    }
    groups
        .into_iter()
        .map(|(key, recs)| {
            let live: Vec<&&ScenarioRecord> =
                recs.iter().filter(|r| r.verdict != Verdict::Skip).collect();
            GroupSummary {
                key,
                runs: live.len(),
                failed: live.iter().filter(|r| r.verdict == Verdict::Fail).count(),
                skipped: recs.len() - live.len(),
                rounds: summarize(live.iter().map(|r| r.rounds)),
                moves: summarize(live.iter().map(|r| r.moves)),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_values() {
        let s = summarize([4u64, 1, 3, 2, 5]);
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert_eq!(s.p50, 3);
        assert_eq!(s.p90, 5);
        assert_eq!(s.p99, 5);
    }

    #[test]
    fn summary_of_empty() {
        let s = summarize(std::iter::empty());
        assert_eq!(s.count, 0);
        assert_eq!(s.max, 0);
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = [10u64, 20, 30, 40];
        assert_eq!(percentile(&v, 0.0), 10);
        assert_eq!(percentile(&v, 0.25), 10);
        assert_eq!(percentile(&v, 0.5), 20);
        assert_eq!(percentile(&v, 0.75), 30);
        assert_eq!(percentile(&v, 1.0), 40);
        assert_eq!(percentile(&[], 0.5), 0);
    }

    #[test]
    fn grouping_is_sorted_and_counts_verdicts() {
        let mut base = crate::test_support::record("b", 8);
        base.rounds = 10;
        let mut fail = crate::test_support::record("a", 8);
        fail.verdict = Verdict::Fail;
        let mut skip = crate::test_support::record("a", 8);
        skip.verdict = Verdict::Skip;
        let groups = summarize_by(&[base, fail, skip], |r| r.topology.clone());
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].key, "a");
        assert_eq!(groups[0].runs, 1);
        assert_eq!(groups[0].failed, 1);
        assert_eq!(groups[0].skipped, 1);
        assert!(!groups[0].all_ok());
        assert_eq!(groups[1].key, "b");
        assert_eq!(groups[1].rounds.max, 10);
        assert!(groups[1].all_ok());
    }
}
