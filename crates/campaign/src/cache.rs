//! The content-addressed result cache: fingerprint → record.
//!
//! A [`RecordCache`] maps [`Scenario::fingerprint`] digests to the
//! [`ScenarioRecord`]s they produced, so overlapping or repeated
//! sweeps return cached results byte-identically instead of
//! re-running the simulator. Records are stored *normalized* — grid
//! position (`index`, `trial`) zeroed and the campaign id cleared,
//! exactly the fields the fingerprint excludes — and a hit re-stamps
//! them from the requesting scenario, so a record served from cache is
//! byte-for-byte the record a fresh run would have produced (pinned by
//! `tests/cache_equivalence.rs`).
//!
//! Concurrency: one mutex around the map, taken once per scenario
//! (never inside the step loop); hit/miss counters are atomics so the
//! status path can read them without the lock. Duplicate inserts of
//! the same fingerprint are benign — both workers computed the same
//! record.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use ssr_runtime::fingerprint::Fingerprint;

use crate::runner::ScenarioRecord;
use crate::scenario::Scenario;

/// A thread-safe fingerprint → [`ScenarioRecord`] store.
///
/// # Examples
///
/// ```
/// use ssr_campaign::cache::RecordCache;
///
/// let cache = RecordCache::new();
/// assert_eq!((cache.len(), cache.hits(), cache.misses()), (0, 0, 0));
/// ```
#[derive(Default)]
pub struct RecordCache {
    map: Mutex<HashMap<u128, ScenarioRecord>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl RecordCache {
    /// An empty cache.
    pub fn new() -> Self {
        RecordCache::default()
    }

    /// Looks up `fp`, re-stamping the stored record with `sc`'s grid
    /// position on a hit. Counts a hit or a miss either way.
    pub fn lookup(&self, fp: Fingerprint, sc: &Scenario) -> Option<ScenarioRecord> {
        let found = self.map.lock().unwrap().get(&fp.0).cloned();
        match found {
            Some(mut rec) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                rec.index = sc.index;
                rec.trial = sc.trial;
                Some(rec)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts `rec` under `fp`, normalized (grid position zeroed,
    /// campaign id cleared).
    pub fn insert(&self, fp: Fingerprint, rec: &ScenarioRecord) {
        let mut rec = rec.clone();
        rec.index = 0;
        rec.trial = 0;
        rec.campaign.clear();
        self.map.lock().unwrap().insert(fp.0, rec);
    }

    /// Number of distinct fingerprints stored.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups that found a record.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families;
    use crate::scenario::{InitPlan, TopologySpec};
    use ssr_runtime::Daemon;

    fn sc(index: usize, trial: u64) -> Scenario {
        Scenario {
            index,
            topology: TopologySpec::Ring,
            n: 8,
            algorithm: families::unison_sdr(),
            daemon: Daemon::Central,
            init: InitPlan::Arbitrary,
            trial,
            seed: 7,
            step_cap: 1000,
            intra_threads: 1,
        }
    }

    #[test]
    fn hit_restamps_grid_position() {
        let cache = RecordCache::new();
        let a = sc(3, 1);
        let mut rec = crate::test_support::record("ring", 8);
        rec.index = 3;
        rec.trial = 1;
        cache.insert(a.fingerprint(), &rec);

        // Same content at a different grid position: hit, re-stamped.
        let b = sc(12, 2);
        assert_eq!(b.fingerprint(), a.fingerprint());
        let served = cache.lookup(b.fingerprint(), &b).expect("hit");
        assert_eq!(served.index, 12);
        assert_eq!(served.trial, 2);
        assert_eq!(served.campaign, "", "campaign is stamped by the engine");
        assert_eq!((cache.hits(), cache.misses()), (1, 0));

        // Different content: miss.
        let mut c = sc(0, 0);
        c.seed = 8;
        assert!(cache.lookup(c.fingerprint(), &c).is_none());
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
    }
}
