//! The `ssr-checkpoint/v1` store: an append-only JSONL journal of
//! finished scenarios, making long sweeps resumable across restarts.
//!
//! Layout: a header line `{"schema":"ssr-checkpoint/v1"}` followed by
//! one line per finished scenario,
//! `{"fingerprint":"<32 hex>","record":{...}}`, where the record
//! object is exactly [`ScenarioRecord::to_json`]. The writer appends
//! and flushes line-atomically under a mutex, so a crash can tear at
//! most the final line.
//!
//! Reading comes in two strengths. [`load`] is the *resume* path: it
//! tolerates a torn final line (the expected wound of a kill) but
//! rejects corruption anywhere else. [`validate`] is the *audit* path
//! used by `obs_validate --kind checkpoint`: every line must parse.
//!
//! Replayed records go through [`replay_into`] straight into a
//! [`RecordCache`], which is how the serve orchestrator (and the
//! `experiments --checkpoint` batch path) resumes: cache hits skip the
//! simulator entirely, so a restarted sweep recomputes only what the
//! journal is missing.

use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

use ssr_obs::json::{self, Value};
use ssr_runtime::fingerprint::Fingerprint;
use ssr_runtime::{TerminationReason, Verdict};

use crate::cache::RecordCache;
use crate::output::Json;
use crate::runner::ScenarioRecord;

/// The schema tag of the checkpoint journal.
pub const SCHEMA: &str = "ssr-checkpoint/v1";

/// Append-only checkpoint journal writer (line-atomic, flushed per
/// append).
pub struct CheckpointWriter {
    inner: Mutex<BufWriter<std::fs::File>>,
}

impl CheckpointWriter {
    /// Opens `path` for appending, writing the schema header first if
    /// the file is new or empty.
    ///
    /// A torn final line (the file does not end in `\n` — a previous
    /// process died mid-append) is truncated away first, so resumed
    /// appends always start on a fresh line. This mirrors what [`load`]
    /// drops in memory: open the writer *after* loading and the two
    /// views agree.
    pub fn open(path: &Path) -> std::io::Result<CheckpointWriter> {
        use std::io::{Read, Seek, SeekFrom};
        let mut file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        let mut fresh = len == 0;
        if len > 0 {
            file.seek(SeekFrom::End(-1))?;
            let mut last = [0u8; 1];
            file.read_exact(&mut last)?;
            if last[0] != b'\n' {
                file.seek(SeekFrom::Start(0))?;
                let mut text = String::new();
                file.read_to_string(&mut text)?;
                let keep = text.rfind('\n').map_or(0, |i| i + 1);
                file.set_len(keep as u64)?;
                fresh = keep == 0;
            }
            file.seek(SeekFrom::End(0))?;
        }
        let mut w = BufWriter::new(file);
        if fresh {
            writeln!(w, "{{\"schema\":\"{SCHEMA}\"}}")?;
            w.flush()?;
        }
        Ok(CheckpointWriter {
            inner: Mutex::new(w),
        })
    }

    /// Appends one finished scenario and flushes, so the line is
    /// durable before the next scenario can complete.
    pub fn append(&self, fp: Fingerprint, rec: &ScenarioRecord) -> std::io::Result<()> {
        let line = Json::obj([
            ("fingerprint", Json::str(fp.to_string())),
            ("record", rec.to_json()),
        ]);
        let mut w = self.inner.lock().unwrap();
        writeln!(w, "{line}")?;
        w.flush()
    }
}

/// Parses one [`ScenarioRecord::to_json`] object back into a record.
pub fn record_from_json(v: &Value) -> Result<ScenarioRecord, String> {
    let what = "record";
    let opt_u64 = |key: &str| -> Result<Option<u64>, String> {
        match json::field(v, key, what)? {
            Value::Null => Ok(None),
            other => other
                .as_u64()
                .map(Some)
                .ok_or_else(|| format!("{what}.{key} must be an unsigned integer or null")),
        }
    };
    let reason = match json::field(v, "reason", what)? {
        Value::Null => None,
        other => {
            let s = other
                .as_str()
                .ok_or_else(|| format!("{what}.reason must be a string or null"))?;
            Some(s.parse::<TerminationReason>()?)
        }
    };
    Ok(ScenarioRecord {
        campaign: json::str_field(v, "campaign", what)?,
        index: json::u64_field(v, "index", what)? as usize,
        topology: json::str_field(v, "topology", what)?,
        n: json::u64_field(v, "n", what)? as usize,
        nodes: json::u64_field(v, "nodes", what)?,
        edges: json::u64_field(v, "edges", what)?,
        max_degree: json::u64_field(v, "max_degree", what)?,
        diameter: json::u64_field(v, "diameter", what)?,
        algorithm: json::str_field(v, "algorithm", what)?,
        daemon: json::str_field(v, "daemon", what)?,
        init: json::str_field(v, "init", what)?,
        trial: json::u64_field(v, "trial", what)?,
        seed: json::u64_field(v, "seed", what)?,
        reached: json::bool_field(v, "reached", what)?,
        terminal: json::bool_field(v, "terminal", what)?,
        reason,
        steps: json::u64_field(v, "steps", what)?,
        moves: json::u64_field(v, "moves", what)?,
        rounds: json::u64_field(v, "rounds", what)?,
        max_moves_per_process: json::u64_field(v, "max_moves_per_process", what)?,
        bound_rounds: opt_u64("bound_rounds")?,
        bound_moves: opt_u64("bound_moves")?,
        verdict: json::str_field(v, "verdict", what)?.parse::<Verdict>()?,
    })
}

fn parse_entry(line: &str) -> Result<(Fingerprint, ScenarioRecord), String> {
    let v = json::parse(line)?;
    let fp = json::str_field(&v, "fingerprint", "entry")?.parse::<Fingerprint>()?;
    let rec = record_from_json(json::field(&v, "record", "entry")?)?;
    Ok((fp, rec))
}

/// Loads a checkpoint journal for **resume**: the header must be
/// intact, interior lines must parse, and only the *final* line may be
/// torn (a kill mid-append) — it is silently dropped. A missing or
/// empty file loads as zero entries.
pub fn load(path: &Path) -> Result<Vec<(Fingerprint, ScenarioRecord)>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("{}: {e}", path.display())),
    };
    if text.trim().is_empty() {
        return Ok(Vec::new());
    }
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    check_header(lines[0])?;
    // A torn tail is only possible on the physically last line; a line
    // is complete iff the writer got its trailing newline out.
    let tail_torn = !text.ends_with('\n');
    let mut out = Vec::new();
    for (i, line) in lines.iter().enumerate().skip(1) {
        match parse_entry(line) {
            Ok(entry) => out.push(entry),
            Err(_) if tail_torn && i == lines.len() - 1 => {}
            Err(e) => return Err(format!("line {}: {e}", i + 1)),
        }
    }
    Ok(out)
}

/// Replays a checkpoint journal into `cache`, returning how many
/// records were absorbed. The resume entry point: after this, a re-run
/// of the same campaign hits the cache for every journaled scenario.
pub fn replay_into(path: &Path, cache: &RecordCache) -> Result<usize, String> {
    let entries = load(path)?;
    let n = entries.len();
    for (fp, rec) in entries {
        cache.insert(fp, &rec);
    }
    Ok(n)
}

fn check_header(line: &str) -> Result<(), String> {
    let v = json::parse(line).map_err(|e| format!("header: {e}"))?;
    let schema = json::str_field(&v, "schema", "header")?;
    if schema != SCHEMA {
        return Err(format!("header schema must be {SCHEMA:?}, got {schema:?}"));
    }
    Ok(())
}

/// Strictly validates checkpoint text (the audit path): header plus
/// every entry must parse. Returns the entry count.
pub fn validate(text: &str) -> Result<usize, String> {
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    let Some(first) = lines.first() else {
        return Err("empty checkpoint".into());
    };
    check_header(first)?;
    for (i, line) in lines.iter().enumerate().skip(1) {
        parse_entry(line).map_err(|e| format!("line {}: {e}", i + 1))?;
    }
    Ok(lines.len() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(trial: u64) -> ScenarioRecord {
        let mut r = crate::test_support::record("ring", 8);
        r.trial = trial;
        r.bound_rounds = Some(24);
        r
    }

    fn fp(n: u128) -> Fingerprint {
        Fingerprint(n)
    }

    #[test]
    fn records_round_trip_through_json() {
        for r in [
            rec(0),
            {
                let mut r = rec(1);
                r.reason = None;
                r.bound_rounds = None;
                r.bound_moves = Some(9);
                r.verdict = Verdict::Skip;
                r
            },
            {
                let mut r = rec(2);
                r.reason = Some(TerminationReason::CapExhausted);
                r.verdict = Verdict::Fail;
                r
            },
        ] {
            let v = json::parse(&r.to_json().to_string()).unwrap();
            assert_eq!(record_from_json(&v).unwrap(), r);
        }
    }

    #[test]
    fn write_load_round_trips() {
        let dir = std::env::temp_dir().join(format!("ssr-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("round-trip.jsonl");
        let _ = std::fs::remove_file(&path);

        {
            let w = CheckpointWriter::open(&path).unwrap();
            w.append(fp(1), &rec(0)).unwrap();
            w.append(fp(2), &rec(1)).unwrap();
        }
        // Re-opening appends without re-writing the header.
        {
            let w = CheckpointWriter::open(&path).unwrap();
            w.append(fp(3), &rec(2)).unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(validate(&text).unwrap(), 3);
        let entries = load(&path).unwrap();
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0].0, fp(1));
        assert_eq!(entries[2].1, rec(2));

        std::fs::remove_file(&path).unwrap();
        assert_eq!(load(&path).unwrap(), Vec::new(), "missing file is empty");
    }

    #[test]
    fn torn_tail_is_dropped_on_load_but_rejected_by_validate() {
        let dir = std::env::temp_dir().join(format!("ssr-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let w = CheckpointWriter::open(&path).unwrap();
            w.append(fp(1), &rec(0)).unwrap();
            w.append(fp(2), &rec(1)).unwrap();
        }
        // Simulate a kill mid-append: chop the file mid-way through
        // the final line (no trailing newline).
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 20]).unwrap();

        let entries = load(&path).unwrap();
        assert_eq!(entries.len(), 1, "torn tail dropped");
        assert_eq!(entries[0].0, fp(1));
        let torn = std::fs::read_to_string(&path).unwrap();
        assert!(validate(&torn).is_err(), "audit path stays strict");

        // Resume: re-opening the writer truncates the torn tail, so
        // the re-append lands on a fresh line and the journal is clean
        // again.
        {
            let w = CheckpointWriter::open(&path).unwrap();
            w.append(fp(2), &rec(1)).unwrap();
        }
        let entries = load(&path).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[1].0, fp(2));
        let healed = std::fs::read_to_string(&path).unwrap();
        assert_eq!(validate(&healed).unwrap(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn replay_fills_the_cache() {
        let dir = std::env::temp_dir().join(format!("ssr-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("replay.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let w = CheckpointWriter::open(&path).unwrap();
            w.append(fp(10), &rec(0)).unwrap();
            w.append(fp(11), &rec(1)).unwrap();
        }
        let cache = RecordCache::new();
        assert_eq!(replay_into(&path, &cache).unwrap(), 2);
        assert_eq!(cache.len(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_headers_and_bodies_are_rejected() {
        assert!(validate("").is_err());
        assert!(validate("{\"schema\":\"wrong/v9\"}\n").is_err());
        assert!(validate("not json\n").is_err());
        let good = format!("{{\"schema\":\"{SCHEMA}\"}}\n");
        assert_eq!(validate(&good).unwrap(), 0);
        assert!(validate(&format!("{good}{{\"fingerprint\":\"xx\"}}\n")).is_err());
    }
}
