//! Declarative scenario campaigns with a deterministic parallel
//! execution engine.
//!
//! The experiment layer of this workspace needs systematic
//! configuration-space sweeps: topology × size × algorithm family ×
//! daemon × fault plan × seed. This crate turns one such sweep into a
//! [`Campaign`] — a lazily-expanded cartesian grid of [`Scenario`]s —
//! and drains it with scoped worker threads via an atomic cursor
//! ([`engine::run`]), no dependencies beyond `std`.
//!
//! Results come back as flat [`ScenarioRecord`]s with the paper's
//! closed-form bounds checked where they exist, ready for aggregation
//! ([`stats`]) and serialization as JSONL/CSV ([`output`]).
//!
//! # Determinism contract
//!
//! Parallel and sequential execution produce **byte-identical**
//! results: per-scenario seeds derive from the grid index, runners are
//! pure functions of their scenario, and records are returned in grid
//! order. See `tests/determinism.rs` for the property pinning this.
//!
//! # Examples
//!
//! ```
//! use ssr_campaign::{engine, families, output, Campaign, TopologySpec};
//! use ssr_runtime::Daemon;
//!
//! let campaign = Campaign::new("doc-demo")
//!     .topologies(vec![TopologySpec::Ring, TopologySpec::Star])
//!     .sizes(vec![6])
//!     .algorithms(vec![families::unison_sdr()])
//!     .daemons(vec![Daemon::Central])
//!     .trials(2)
//!     .step_cap(1_000_000);
//!
//! let records = engine::run(&campaign, 2);
//! assert_eq!(records.len(), campaign.len());
//! assert!(records.iter().all(|r| r.verdict.ok()));
//! // One JSONL line per run, in grid order, independent of threads.
//! assert_eq!(output::jsonl(&records).lines().count(), records.len());
//! ```

#![forbid(unsafe_code)]

pub mod cache;
pub mod checkpoint;
pub mod engine;
pub mod families;
mod grid;
pub mod obs;
pub mod output;
mod runner;
mod scenario;
pub mod stats;
pub mod workloads;

pub use cache::RecordCache;
pub use checkpoint::CheckpointWriter;
pub use engine::CacheLayer;
pub use grid::Campaign;
pub use obs::CampaignObs;
pub use runner::{
    run_scenario, run_scenario_in, run_scenario_probed, warm_up_and_corrupt_clocks, ScenarioRecord,
    Verdict,
};
pub use scenario::{AlgorithmSpec, Amount, InitPlan, Params, PresetSpec, Scenario, TopologySpec};

#[cfg(test)]
pub(crate) mod test_support {
    use crate::runner::{ScenarioRecord, Verdict};
    use ssr_runtime::TerminationReason;

    /// A plausible record for writer/aggregation tests.
    pub fn record(topology: &str, n: usize) -> ScenarioRecord {
        ScenarioRecord {
            index: 0,
            campaign: "test".into(),
            topology: topology.into(),
            n,
            nodes: n as u64,
            edges: n as u64,
            max_degree: 2,
            diameter: (n / 2).max(1) as u64,
            algorithm: "unison-sdr".into(),
            daemon: "central".into(),
            init: "arbitrary".into(),
            trial: 0,
            seed: 1,
            reached: true,
            terminal: false,
            reason: Some(TerminationReason::PredicateMet),
            steps: 5,
            moves: 5,
            rounds: 3,
            max_moves_per_process: 2,
            bound_rounds: None,
            bound_moves: None,
            verdict: Verdict::Pass,
        }
    }
}
