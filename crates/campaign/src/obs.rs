//! Campaign-level observability: live progress, merged pipeline
//! metrics, and per-scenario trace files, attached to the batch engine
//! without disturbing its determinism contract.
//!
//! [`CampaignObs`] bundles the three side channels; pass it to
//! [`engine::run_obs`](crate::engine::run_obs). Observability is
//! strictly read-only with respect to results: records produced with
//! any combination of channels enabled are identical to a bare
//! [`engine::run`](crate::engine::run) (pinned by
//! `tests/obs_equivalence.rs`).
//!
//! Metric accumulation is lock-free by ownership: each worker folds
//! its scenarios into a private [`MetricsSet`] and submits it to the
//! shared [`MetricsHub`] exactly once, when the worker retires. The
//! merged snapshot is deterministic across thread counts — counters
//! and histograms are partition-independent sums.

use std::path::{Path, PathBuf};

use ssr_obs::metrics::{MetricsHub, MetricsSet};
use ssr_obs::pipeline::{CompositeSink, PipelineMetrics};
use ssr_obs::progress::Progress;
use ssr_obs::trace::JsonlSink;
use ssr_runtime::family::FamilyProbe;
use ssr_runtime::trace::TraceSink;

use crate::scenario::Scenario;

/// The observability channels of one campaign run.
///
/// All channels default to off; each is enabled independently. After
/// the run, read the merged metrics via
/// [`CampaignObs::metrics_snapshot`].
#[derive(Default)]
pub struct CampaignObs {
    pub(crate) progress: Option<Box<dyn Progress>>,
    pub(crate) metrics: Option<MetricsHub>,
    pub(crate) trace_dir: Option<PathBuf>,
    /// Whether per-phase wall-time histograms are folded into the
    /// metrics (nondeterministic values; off by default so the merged
    /// snapshot stays a pure function of the campaign).
    pub(crate) phase_timing: bool,
}

impl CampaignObs {
    /// All channels off.
    pub fn new() -> Self {
        CampaignObs::default()
    }

    /// Streams scenario completion through `progress`.
    #[must_use]
    pub fn with_progress(mut self, progress: Box<dyn Progress>) -> Self {
        self.progress = Some(progress);
        self
    }

    /// Collects merged pipeline metrics (deterministic keys only).
    #[must_use]
    pub fn with_metrics(mut self) -> Self {
        self.metrics = Some(MetricsHub::new());
        self
    }

    /// Collects merged pipeline metrics *including* per-phase
    /// wall-time histograms (`phase.*.nanos` — nondeterministic).
    #[must_use]
    pub fn with_timed_metrics(mut self) -> Self {
        self.metrics = Some(MetricsHub::new());
        self.phase_timing = true;
        self
    }

    /// Writes one JSONL trace per scenario into `dir` as
    /// `trace-<index>.jsonl` (deterministic: no timing events).
    #[must_use]
    pub fn with_trace_dir(mut self, dir: impl AsRef<Path>) -> Self {
        self.trace_dir = Some(dir.as_ref().to_path_buf());
        self
    }

    /// Whether any channel needs a [`FamilyProbe`] built per scenario.
    pub(crate) fn wants_probe(&self) -> bool {
        self.metrics.is_some() || self.trace_dir.is_some()
    }

    /// The merged metrics so far (`None` when metrics are off).
    pub fn metrics_snapshot(&self) -> Option<ssr_obs::metrics::MetricsSnapshot> {
        self.metrics.as_ref().map(|hub| hub.snapshot())
    }

    /// Takes the merged metrics out (disabling the channel), for
    /// folding one campaign's results into a longer-lived aggregate.
    pub fn take_metrics(&mut self) -> Option<MetricsSet> {
        self.metrics.take().map(MetricsHub::into_inner)
    }

    /// The trace file path for scenario `index`, when tracing is on.
    pub fn trace_path(&self, index: usize) -> Option<PathBuf> {
        self.trace_dir
            .as_ref()
            .map(|d| d.join(format!("trace-{index:05}.jsonl")))
    }
}

/// The human label of one scenario, used in progress lines.
pub fn scenario_label(sc: &Scenario) -> String {
    format!(
        "{}/{}/n={}#{}",
        sc.algorithm.label(),
        sc.topology.label(),
        sc.n,
        sc.trial
    )
}

/// The per-scenario [`FamilyProbe`]: hands a
/// [`CompositeSink`](ssr_obs::pipeline::CompositeSink) to the family's
/// measured execution and folds what comes back into the worker-local
/// metrics.
pub(crate) struct ObsProbe<'m> {
    worker_metrics: Option<&'m mut MetricsSet>,
    trace_path: Option<PathBuf>,
    phase_timing: bool,
}

impl<'m> ObsProbe<'m> {
    pub(crate) fn new(
        worker_metrics: Option<&'m mut MetricsSet>,
        trace_path: Option<PathBuf>,
        phase_timing: bool,
    ) -> Self {
        ObsProbe {
            worker_metrics,
            trace_path,
            phase_timing,
        }
    }
}

impl FamilyProbe for ObsProbe<'_> {
    fn make_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        let metrics = self.worker_metrics.as_ref().map(|_| {
            if self.phase_timing {
                PipelineMetrics::new()
            } else {
                PipelineMetrics::without_timing()
            }
        });
        // A trace file that cannot be created degrades to "no trace":
        // observability must never fail the campaign.
        let file = self
            .trace_path
            .as_ref()
            .and_then(|p| JsonlSink::create(p).ok());
        let sink = CompositeSink::new(metrics, file);
        if sink.is_empty() {
            return None;
        }
        Some(Box::new(sink))
    }

    fn collect_trace_sink(&mut self, mut sink: Box<dyn TraceSink>) {
        let Some(obs) = sink
            .as_any_mut()
            .and_then(|a| a.downcast_mut::<CompositeSink>())
        else {
            return;
        };
        if let (Some(folded), Some(target)) =
            (obs.take_metrics(), self.worker_metrics.as_deref_mut())
        {
            target.merge(&folded);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{InitPlan, TopologySpec};
    use ssr_runtime::trace::TraceEvent;
    use ssr_runtime::Daemon;

    #[test]
    fn labels_identify_the_scenario() {
        let sc = Scenario {
            index: 3,
            topology: TopologySpec::Ring,
            n: 16,
            algorithm: crate::families::unison_sdr(),
            daemon: Daemon::Central,
            init: InitPlan::Arbitrary,
            trial: 2,
            seed: 7,
            step_cap: 1000,
            intra_threads: 1,
        };
        let label = scenario_label(&sc);
        assert!(label.contains("ring") && label.contains("n=16") && label.ends_with("#2"));
    }

    #[test]
    fn obs_probe_folds_metrics_through_the_sink_round_trip() {
        let mut worker = MetricsSet::new();
        let mut probe = ObsProbe::new(Some(&mut worker), None, false);
        let mut sink = probe.make_trace_sink().expect("metrics channel is on");
        assert!(!sink.wants_phase_timing(), "deterministic by default");
        sink.record(&TraceEvent::StepStarted {
            step: 0,
            enabled: 2,
        });
        sink.record(&TraceEvent::MovesApplied {
            step: 0,
            moves: 2,
            conflict_classes: None,
        });
        probe.collect_trace_sink(sink);
        assert_eq!(worker.counter_value("pipeline.steps"), Some(1));
        assert_eq!(worker.counter_value("pipeline.moves"), Some(2));
    }

    #[test]
    fn probe_without_channels_installs_nothing() {
        let mut probe = ObsProbe::new(None, None, false);
        assert!(probe.make_trace_sink().is_none());
    }

    #[test]
    fn trace_paths_are_stable_per_index() {
        let obs = CampaignObs::new().with_trace_dir("/tmp/x");
        assert_eq!(
            obs.trace_path(7).unwrap(),
            PathBuf::from("/tmp/x/trace-00007.jsonl")
        );
        assert_eq!(CampaignObs::new().trace_path(7), None);
    }
}
