//! Adversarial initial configurations used by the init plans.
//!
//! The workloads now live next to the algorithms that own them
//! (`ssr-core` for the SDR broadcast chain, `ssr-unison` for the clock
//! tears); this module keeps the historical re-export paths for the
//! experiment harness and external callers.

pub use ssr_core::workloads::sdr_broadcast_chain;
pub use ssr_unison::workloads::{unison_tear, unison_tear_plain};
