//! Adversarial initial configurations used by the init plans (and
//! re-exported to the experiment harness).

use ssr_core::{Composed, SdrState, Status};
use ssr_graph::Graph;

/// A "clock tear" workload for unison: a maximal legal gradient with a
/// discontinuity of `gap` in the middle — the classic locally-checkable
/// inconsistency (all reset variables clean).
pub fn unison_tear(graph: &Graph, period: u64, gap: u64) -> Vec<Composed<u64>> {
    let n = graph.node_count();
    graph
        .nodes()
        .map(|u| {
            let i = u.index();
            let clock = if i < n / 2 {
                (i as u64) % period
            } else {
                (i as u64 + gap) % period
            };
            Composed::new(SdrState::new(Status::C, 0), clock)
        })
        .collect()
}

/// Plain clock vector version of [`unison_tear`] (for the CFG baseline,
/// which has no reset variables).
pub fn unison_tear_plain(graph: &Graph, period: u64, gap: u64) -> Vec<u64> {
    unison_tear(graph, period, gap)
        .into_iter()
        .map(|c| c.inner)
        .collect()
}

/// A hand-crafted near-worst-case SDR configuration: one long reset
/// branch in mid-broadcast — node `i` has status `RB` with distance `i`
/// (a maximal-depth chain per Lemma 7), the far end already in
/// feedback, and the input reset everywhere.
///
/// Feedback must climb the whole chain before the completion wave walks
/// back down, which is the mechanism behind the `3n`-round bound.
pub fn sdr_broadcast_chain<I: ssr_core::ResetInput>(
    sdr: &ssr_core::Sdr<I>,
    graph: &Graph,
) -> Vec<Composed<I::State>> {
    let n = graph.node_count();
    graph
        .nodes()
        .map(|u| {
            let i = u.index();
            let status = if i + 1 == n { Status::RF } else { Status::RB };
            Composed::new(SdrState::new(status, i as u32), sdr.input().reset_state(u))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_graph::generators;

    #[test]
    fn tear_has_discontinuity() {
        let g = generators::path(8);
        let states = unison_tear(&g, 9, 4);
        // Left half is a unit gradient; the middle edge jumps by 4.
        assert_eq!(states[3].inner, 3);
        assert_eq!(states[4].inner, 8);
        let plain = unison_tear_plain(&g, 9, 4);
        assert_eq!(plain[4], 8);
    }

    #[test]
    fn tear_reset_variables_are_clean() {
        let g = generators::ring(10);
        for s in unison_tear(&g, 11, 5) {
            assert_eq!(s.sdr.status, Status::C);
            assert_eq!(s.sdr.dist, 0);
        }
    }
}
