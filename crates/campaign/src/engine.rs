//! The batch execution engine: scoped worker threads draining the
//! campaign grid through an atomic cursor.
//!
//! # Determinism contract
//!
//! Results are **byte-identical across thread counts**:
//!
//! 1. every scenario's seed derives from its grid *index* (not from
//!    worker identity or pop order);
//! 2. the runner is a pure function of the scenario;
//! 3. results are placed back by index, so the returned vector is in
//!    grid order regardless of which worker finished first.
//!
//! The property test in `tests/determinism.rs` pins this down.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use ssr_obs::metrics::MetricsSet;
use ssr_obs::progress::Progress;
use ssr_runtime::family::FamilyRegistry;

use crate::cache::RecordCache;
use crate::checkpoint::CheckpointWriter;
use crate::grid::Campaign;
use crate::obs::{scenario_label, CampaignObs, ObsProbe};
use crate::runner::{self, ScenarioRecord};
use crate::scenario::Scenario;

/// The optional content-addressed layer of a cached run: the record
/// cache consulted before every scenario, plus an optional checkpoint
/// journal appended after every fresh run.
#[derive(Clone, Copy)]
pub struct CacheLayer<'a> {
    /// Fingerprint → record store; hits skip the simulator entirely.
    pub cache: &'a RecordCache,
    /// Journal for crash-resumable sweeps (`ssr-checkpoint/v1`).
    pub checkpoint: Option<&'a CheckpointWriter>,
}

/// Runs every scenario of `campaign` through `runner` on up to
/// `threads` workers (clamped to `[1, campaign.len()]`), returning the
/// results in grid order.
///
/// The runner must be a pure function of the scenario for the
/// determinism contract to hold; it is invoked concurrently from
/// multiple threads, hence `Sync`.
pub fn run_with<R, F>(campaign: &Campaign, threads: usize, runner: F) -> Vec<R>
where
    R: Send,
    F: Fn(Scenario) -> R + Sync,
{
    let total = campaign.len();
    if total == 0 {
        return Vec::new();
    }
    let workers = threads.clamp(1, total);
    let cursor = AtomicUsize::new(0);
    let cursor = &cursor;
    let runner = &runner;
    let mut slots: Vec<Option<R>> = Vec::with_capacity(total);
    slots.resize_with(total, || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut done = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= total {
                            break;
                        }
                        done.push((i, runner(campaign.scenario(i))));
                    }
                    done
                })
            })
            .collect();
        for handle in handles {
            for (i, r) in handle.join().expect("campaign worker panicked") {
                slots[i] = Some(r);
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every scenario index was drained"))
        .collect()
}

/// Runs the campaign with the default runner
/// ([`runner::run_scenario`]) and stamps the campaign id into each
/// record.
pub fn run(campaign: &Campaign, threads: usize) -> Vec<ScenarioRecord> {
    run_in(crate::families::default_registry(), campaign, threads)
}

/// Like [`run`], but resolves algorithm families against a
/// caller-supplied registry — the entry point for campaigns over
/// user-registered families (see `examples/custom_family.rs`).
pub fn run_in(
    registry: &FamilyRegistry,
    campaign: &Campaign,
    threads: usize,
) -> Vec<ScenarioRecord> {
    let mut records = run_with(campaign, threads, |sc| {
        runner::run_scenario_in(registry, sc)
    });
    for rec in &mut records {
        rec.campaign = campaign.id().to_string();
    }
    records
}

/// [`run`] with observability channels attached: live progress,
/// merged pipeline metrics, and per-scenario trace files, per
/// whatever `obs` enables. Records are identical to a bare [`run`] —
/// the channels observe, they never steer.
pub fn run_obs(campaign: &Campaign, threads: usize, obs: &mut CampaignObs) -> Vec<ScenarioRecord> {
    run_in_obs(crate::families::default_registry(), campaign, threads, obs)
}

/// [`run_obs`] against a caller-supplied registry.
///
/// Scheduling of the side channels: progress notifications go through
/// one mutex (coarse, per scenario — never per step); each worker owns
/// a private [`MetricsSet`] and submits it to the hub once, on
/// retirement, so the metrics hot path takes no lock at all.
pub fn run_in_obs(
    registry: &FamilyRegistry,
    campaign: &Campaign,
    threads: usize,
    obs: &mut CampaignObs,
) -> Vec<ScenarioRecord> {
    run_core(registry, campaign, threads, obs, None)
}

/// [`run_obs`] with a [`CacheLayer`] consulted per scenario: hits are
/// served from the cache (zero simulator steps — the probe is never
/// even built), misses run normally, then feed the cache and the
/// checkpoint journal. Records are byte-identical to an uncached run
/// (pinned by `tests/cache_equivalence.rs`).
pub fn run_obs_cached(
    campaign: &Campaign,
    threads: usize,
    obs: &mut CampaignObs,
    layer: CacheLayer<'_>,
) -> Vec<ScenarioRecord> {
    run_in_obs_cached(
        crate::families::default_registry(),
        campaign,
        threads,
        obs,
        layer,
    )
}

/// [`run_obs_cached`] against a caller-supplied registry.
pub fn run_in_obs_cached(
    registry: &FamilyRegistry,
    campaign: &Campaign,
    threads: usize,
    obs: &mut CampaignObs,
    layer: CacheLayer<'_>,
) -> Vec<ScenarioRecord> {
    run_core(registry, campaign, threads, obs, Some(layer))
}

fn run_core(
    registry: &FamilyRegistry,
    campaign: &Campaign,
    threads: usize,
    obs: &mut CampaignObs,
    layer: Option<CacheLayer<'_>>,
) -> Vec<ScenarioRecord> {
    let total = campaign.len();
    if let Some(p) = obs.progress.as_deref_mut() {
        p.begin(total);
    }
    let mut records = if total == 0 {
        Vec::new()
    } else {
        let workers = threads.clamp(1, total);
        let cursor = AtomicUsize::new(0);
        let cursor = &cursor;
        let wants_probe = obs.wants_probe();
        let phase_timing = obs.phase_timing;
        let trace_dir = obs.trace_dir.clone();
        let trace_dir = &trace_dir;
        let hub = obs.metrics.as_ref();
        let progress: Mutex<Option<&mut dyn Progress>> = Mutex::new(obs.progress.as_deref_mut());
        let progress = &progress;
        let mut slots: Vec<Option<ScenarioRecord>> = Vec::with_capacity(total);
        slots.resize_with(total, || None);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    scope.spawn(move || {
                        let mut local = hub.map(|_| MetricsSet::new());
                        let mut done = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= total {
                                break;
                            }
                            let sc = campaign.scenario(i);
                            let label = scenario_label(&sc);
                            if let Some(p) = progress.lock().unwrap().as_deref_mut() {
                                p.item_started(w, i, &label);
                            }
                            let fp = layer.map(|_| sc.fingerprint());
                            let cached = match (layer, fp) {
                                (Some(layer), Some(fp)) => layer.cache.lookup(fp, &sc),
                                _ => None,
                            };
                            let hit = cached.is_some();
                            let rec = if let Some(rec) = cached {
                                // Cache hit: the simulator (and the
                                // probe feeding pipeline.* metrics)
                                // never runs.
                                rec
                            } else {
                                let rec = if wants_probe {
                                    let path = trace_dir
                                        .as_ref()
                                        .map(|d| d.join(format!("trace-{i:05}.jsonl")));
                                    let mut probe =
                                        ObsProbe::new(local.as_mut(), path, phase_timing);
                                    runner::run_scenario_probed(registry, sc, Some(&mut probe))
                                } else {
                                    runner::run_scenario_in(registry, sc)
                                };
                                if let (Some(layer), Some(fp)) = (layer, fp) {
                                    layer.cache.insert(fp, &rec);
                                    if let Some(journal) = layer.checkpoint {
                                        if let Err(e) = journal.append(fp, &rec) {
                                            eprintln!("checkpoint append failed: {e}");
                                        }
                                    }
                                }
                                rec
                            };
                            if let Some(m) = local.as_mut() {
                                m.inc("campaign.scenarios", 1);
                                if layer.is_some() {
                                    let key = if hit {
                                        "campaign.cache_hits"
                                    } else {
                                        "campaign.cache_misses"
                                    };
                                    m.inc(key, 1);
                                }
                                if !rec.verdict.ok() {
                                    m.inc("campaign.failed", 1);
                                }
                            }
                            if let Some(p) = progress.lock().unwrap().as_deref_mut() {
                                p.item_done(i, &label, rec.verdict.ok());
                            }
                            done.push((i, rec));
                        }
                        if let (Some(hub), Some(local)) = (hub, local) {
                            hub.submit(&local);
                        }
                        done
                    })
                })
                .collect();
            for handle in handles {
                for (i, r) in handle.join().expect("campaign worker panicked") {
                    slots[i] = Some(r);
                }
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("every scenario index was drained"))
            .collect()
    };
    if let Some(p) = obs.progress.as_deref_mut() {
        p.finish();
    }
    for rec in &mut records {
        rec.campaign = campaign.id().to_string();
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::TopologySpec;
    use ssr_runtime::Daemon;

    fn tiny() -> Campaign {
        Campaign::new("engine-test")
            .topologies(vec![TopologySpec::Ring, TopologySpec::Star])
            .sizes(vec![6, 8])
            .algorithms(vec![crate::families::sdr_agreement(4)])
            .daemons(vec![Daemon::Central, Daemon::Synchronous])
            .trials(2)
            .step_cap(500_000)
    }

    #[test]
    fn results_are_in_grid_order() {
        let c = tiny();
        let records = run(&c, 3);
        assert_eq!(records.len(), c.len());
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.index, i);
            assert_eq!(r.campaign, "engine-test");
        }
    }

    #[test]
    fn thread_counts_do_not_change_results() {
        let c = tiny();
        let seq = run(&c, 1);
        for threads in [2, 4, 7] {
            assert_eq!(seq, run(&c, threads), "threads={threads}");
        }
    }

    #[test]
    fn zero_threads_is_clamped_to_one() {
        let c = tiny();
        assert_eq!(run(&c, 0), run(&c, 1));
    }

    #[test]
    fn run_in_matches_run_on_the_standard_registry() {
        let c = tiny();
        let registry = crate::families::standard_families();
        assert_eq!(run_in(&registry, &c, 2), run(&c, 2));
    }

    #[test]
    fn run_with_custom_runner_sees_every_scenario() {
        let c = tiny();
        let indices = run_with(&c, 4, |sc| sc.index);
        assert_eq!(indices, (0..c.len()).collect::<Vec<_>>());
    }
}
