//! Declarative scenario descriptions.
//!
//! A [`Scenario`] names one simulation run without executing anything:
//! a topology spec × size, an algorithm family handle, a daemon, an
//! initial configuration plan, and a derived seed. Scenarios are plain
//! data (`Send + Sync`), so a campaign can hand them to worker threads
//! and every worker can expand its scenario into graphs, algorithms,
//! and simulators locally — nothing mutable is ever shared.
//!
//! The algorithm axis is the string-addressable
//! [`AlgorithmSpec`](ssr_runtime::family::AlgorithmSpec) handle,
//! resolved against a
//! [`FamilyRegistry`](ssr_runtime::family::FamilyRegistry) at run
//! time; [`crate::families`] provides the standard registry and
//! convenience constructors for the built-in labels.

use ssr_graph::{generators, Graph};
use ssr_runtime::rng::splitmix64;
use ssr_runtime::Daemon;

// The scenario vocabulary lives with the family abstraction in the
// runtime (so family implementations can consume it); campaign keeps
// re-exporting it under the historical paths.
pub use ssr_alliance::presets::PresetSpec;
pub use ssr_runtime::family::{AlgorithmSpec, Amount, InitPlan, Params};

/// Topology family, expanded into a concrete [`Graph`] on demand.
///
/// The first six mirror the classic experiment suite; the rest open
/// additional families for custom sweeps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopologySpec {
    /// Cycle on `max(n, 3)` nodes.
    Ring,
    /// Path on `n` nodes.
    Path,
    /// Star on `max(n, 2)` nodes.
    Star,
    /// Uniform random tree on `n` nodes.
    RandTree,
    /// Random connected graph with `n/2` extra edges beyond a tree.
    RandSparse,
    /// Random connected graph with `2n` extra edges beyond a tree.
    RandDense,
    /// Square grid with side `max(round(sqrt(n)), 2)`.
    Grid,
    /// Square torus with side `max(round(sqrt(n)), 3)`.
    Torus,
    /// Complete graph on `max(n, 2)` nodes.
    Complete,
    /// Hypercube of dimension `floor(log2(max(n, 2)))`.
    Hypercube,
    /// Clique of `max(n/2, 3)` nodes with a tail of the remainder.
    Lollipop,
    /// Caterpillar: spine of `max(n/2, 1)` nodes, one pendant leaf each.
    Caterpillar,
    /// Wheel on `max(n, 4)` nodes: hub 0 plus a rim cycle.
    Wheel,
    /// Connected Erdős–Rényi graph, edge probability `per_mille/1000`.
    Gnp {
        /// Edge probability in thousandths (kept integral so the spec
        /// stays `Eq` and hashable).
        per_mille: u32,
    },
}

impl TopologySpec {
    /// Short label used in records and report tables.
    pub fn label(&self) -> String {
        match self {
            TopologySpec::Ring => "ring".into(),
            TopologySpec::Path => "path".into(),
            TopologySpec::Star => "star".into(),
            TopologySpec::RandTree => "rand-tree".into(),
            TopologySpec::RandSparse => "rand-sparse".into(),
            TopologySpec::RandDense => "rand-dense".into(),
            TopologySpec::Grid => "grid".into(),
            TopologySpec::Torus => "torus".into(),
            TopologySpec::Complete => "complete".into(),
            TopologySpec::Hypercube => "hypercube".into(),
            TopologySpec::Lollipop => "lollipop".into(),
            TopologySpec::Caterpillar => "caterpillar".into(),
            TopologySpec::Wheel => "wheel".into(),
            TopologySpec::Gnp { per_mille } => format!("gnp({per_mille}e-3)"),
        }
    }

    /// Builds the concrete graph for nominal size `n`.
    ///
    /// `seed` only matters for the random families; deterministic
    /// topologies ignore it.
    pub fn build(&self, n: usize, seed: u64) -> Graph {
        let side = ((n as f64).sqrt().round() as usize).max(2);
        match self {
            TopologySpec::Ring => generators::ring(n.max(3)),
            TopologySpec::Path => generators::path(n.max(1)),
            TopologySpec::Star => generators::star(n.max(2)),
            TopologySpec::RandTree => generators::random_tree(n.max(1), seed),
            TopologySpec::RandSparse => generators::random_connected(n.max(1), n / 2, seed),
            TopologySpec::RandDense => generators::random_connected(n.max(1), 2 * n, seed),
            TopologySpec::Grid => generators::grid(side, side),
            TopologySpec::Torus => generators::torus(side.max(3), side.max(3)),
            TopologySpec::Complete => generators::complete(n.max(2)),
            TopologySpec::Hypercube => {
                let mut d = 0usize;
                while (2usize << d) <= n.max(2) {
                    d += 1;
                }
                generators::hypercube(d.max(1))
            }
            TopologySpec::Lollipop => {
                let clique = (n / 2).max(3);
                generators::lollipop(clique, n.saturating_sub(clique).max(1))
            }
            TopologySpec::Caterpillar => generators::caterpillar((n / 2).max(1), 1),
            TopologySpec::Wheel => generators::wheel(n.max(4)),
            TopologySpec::Gnp { per_mille } => {
                generators::gnp_connected(n.max(2), *per_mille as f64 / 1000.0, seed)
            }
        }
    }
}

/// One fully-specified run: the unit of work a campaign worker drains.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// Position in the campaign grid (also the determinism anchor:
    /// the seed is derived from it, never from worker identity).
    pub index: usize,
    /// Topology family.
    pub topology: TopologySpec,
    /// Nominal network size (the actual node count may differ by the
    /// family's clamping rules, see [`TopologySpec::build`]).
    pub n: usize,
    /// Algorithm family handle, resolved against a registry at run
    /// time.
    pub algorithm: AlgorithmSpec,
    /// Daemon strategy.
    pub daemon: Daemon,
    /// Initial-configuration plan.
    pub init: InitPlan,
    /// Trial number within the grid cell.
    pub trial: u64,
    /// Derived per-scenario master seed.
    pub seed: u64,
    /// Step budget for the run.
    pub step_cap: u64,
    /// Intra-run worker threads for the step pipeline (1 =
    /// sequential). Byte-identical results at any value — the axis
    /// exists for throughput sweeps, not semantics.
    pub intra_threads: usize,
}

impl Scenario {
    /// Derives `K` independent sub-seeds from the scenario seed
    /// (graph / init / simulator / faults, in whatever order the
    /// runner assigns them).
    pub fn seeds<const K: usize>(&self) -> [u64; K] {
        let mut state = self.seed;
        std::array::from_fn(|_| splitmix64(&mut state))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families;

    #[test]
    fn topology_labels_unique() {
        let all = [
            TopologySpec::Ring,
            TopologySpec::Path,
            TopologySpec::Star,
            TopologySpec::RandTree,
            TopologySpec::RandSparse,
            TopologySpec::RandDense,
            TopologySpec::Grid,
            TopologySpec::Torus,
            TopologySpec::Complete,
            TopologySpec::Hypercube,
            TopologySpec::Lollipop,
            TopologySpec::Caterpillar,
            TopologySpec::Wheel,
            TopologySpec::Gnp { per_mille: 300 },
        ];
        let mut labels: Vec<String> = all.iter().map(|t| t.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), all.len());
    }

    #[test]
    fn builds_are_connected_and_sized() {
        for spec in [
            TopologySpec::Ring,
            TopologySpec::Path,
            TopologySpec::Star,
            TopologySpec::RandTree,
            TopologySpec::RandSparse,
            TopologySpec::RandDense,
            TopologySpec::Grid,
            TopologySpec::Torus,
            TopologySpec::Complete,
            TopologySpec::Hypercube,
            TopologySpec::Lollipop,
            TopologySpec::Caterpillar,
            TopologySpec::Wheel,
            TopologySpec::Gnp { per_mille: 400 },
        ] {
            let g = spec.build(12, 7);
            assert!(g.node_count() >= 2, "{spec:?} too small");
            // Deterministic given (n, seed).
            let h = spec.build(12, 7);
            assert_eq!(g.node_count(), h.node_count(), "{spec:?} not deterministic");
            assert_eq!(g.edge_count(), h.edge_count(), "{spec:?} not deterministic");
        }
    }

    #[test]
    fn hypercube_dimension_is_floor_log2() {
        // n = 12 → dimension 3 → 8 nodes.
        let g = TopologySpec::Hypercube.build(12, 0);
        assert_eq!(g.node_count(), 8);
        let g = TopologySpec::Hypercube.build(16, 0);
        assert_eq!(g.node_count(), 16);
    }

    #[test]
    fn preset_labels_match_alliance_presets() {
        let g = generators::ring(8);
        let from_presets: Vec<&str> = ssr_alliance::presets::all_presets(&g)
            .into_iter()
            .map(|(label, _)| label)
            .collect();
        for spec in PresetSpec::all() {
            if spec.build(&g).is_some() {
                assert!(
                    from_presets.contains(&spec.label()),
                    "label {:?} unknown to all_presets",
                    spec.label()
                );
            }
        }
    }

    #[test]
    fn seed_derivation_is_stable() {
        let sc = Scenario {
            index: 5,
            topology: TopologySpec::Ring,
            n: 8,
            algorithm: families::unison_sdr(),
            daemon: Daemon::Central,
            init: InitPlan::Arbitrary,
            trial: 0,
            seed: 42,
            step_cap: 1000,
            intra_threads: 1,
        };
        let a: [u64; 4] = sc.seeds();
        let b: [u64; 4] = sc.seeds();
        assert_eq!(a, b);
        let mut dedup = a.to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 4, "sub-seeds must be distinct");
    }
}
