//! Declarative scenario descriptions.
//!
//! A [`Scenario`] names one simulation run without executing anything:
//! a topology spec × size, an algorithm family handle, a daemon, an
//! initial configuration plan, and a derived seed. Scenarios are plain
//! data (`Send + Sync`), so a campaign can hand them to worker threads
//! and every worker can expand its scenario into graphs, algorithms,
//! and simulators locally — nothing mutable is ever shared.
//!
//! The algorithm axis is the string-addressable
//! [`AlgorithmSpec`](ssr_runtime::family::AlgorithmSpec) handle,
//! resolved against a
//! [`FamilyRegistry`](ssr_runtime::family::FamilyRegistry) at run
//! time; [`crate::families`] provides the standard registry and
//! convenience constructors for the built-in labels.

use ssr_graph::{generators, Graph};
use ssr_runtime::fingerprint::{Canon, Fingerprint, FpEncoder};
use ssr_runtime::rng::splitmix64;
use ssr_runtime::Daemon;

// The scenario vocabulary lives with the family abstraction in the
// runtime (so family implementations can consume it); campaign keeps
// re-exporting it under the historical paths.
pub use ssr_alliance::presets::PresetSpec;
pub use ssr_runtime::family::{AlgorithmSpec, Amount, InitPlan, Params};

/// Topology family, expanded into a concrete [`Graph`] on demand.
///
/// The first six mirror the classic experiment suite; the rest open
/// additional families for custom sweeps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopologySpec {
    /// Cycle on `max(n, 3)` nodes.
    Ring,
    /// Path on `n` nodes.
    Path,
    /// Star on `max(n, 2)` nodes.
    Star,
    /// Uniform random tree on `n` nodes.
    RandTree,
    /// Random connected graph with `n/2` extra edges beyond a tree.
    RandSparse,
    /// Random connected graph with `2n` extra edges beyond a tree.
    RandDense,
    /// Square grid with side `max(round(sqrt(n)), 2)`.
    Grid,
    /// Square torus with side `max(round(sqrt(n)), 3)`.
    Torus,
    /// Complete graph on `max(n, 2)` nodes.
    Complete,
    /// Hypercube of dimension `floor(log2(max(n, 2)))`.
    Hypercube,
    /// Clique of `max(n/2, 3)` nodes with a tail of the remainder.
    Lollipop,
    /// Caterpillar: spine of `max(n/2, 1)` nodes, one pendant leaf each.
    Caterpillar,
    /// Wheel on `max(n, 4)` nodes: hub 0 plus a rim cycle.
    Wheel,
    /// Connected Erdős–Rényi graph, edge probability `per_mille/1000`.
    Gnp {
        /// Edge probability in thousandths (kept integral so the spec
        /// stays `Eq` and hashable).
        per_mille: u32,
    },
}

impl TopologySpec {
    /// Short label used in records and report tables.
    pub fn label(&self) -> String {
        match self {
            TopologySpec::Ring => "ring".into(),
            TopologySpec::Path => "path".into(),
            TopologySpec::Star => "star".into(),
            TopologySpec::RandTree => "rand-tree".into(),
            TopologySpec::RandSparse => "rand-sparse".into(),
            TopologySpec::RandDense => "rand-dense".into(),
            TopologySpec::Grid => "grid".into(),
            TopologySpec::Torus => "torus".into(),
            TopologySpec::Complete => "complete".into(),
            TopologySpec::Hypercube => "hypercube".into(),
            TopologySpec::Lollipop => "lollipop".into(),
            TopologySpec::Caterpillar => "caterpillar".into(),
            TopologySpec::Wheel => "wheel".into(),
            TopologySpec::Gnp { per_mille } => format!("gnp({per_mille}e-3)"),
        }
    }

    /// Parses a [`TopologySpec::label`] rendering back — the inverse
    /// used by campaign-spec deserialization (`None` on anything else).
    pub fn parse_label(s: &str) -> Option<TopologySpec> {
        match s {
            "ring" => return Some(TopologySpec::Ring),
            "path" => return Some(TopologySpec::Path),
            "star" => return Some(TopologySpec::Star),
            "rand-tree" => return Some(TopologySpec::RandTree),
            "rand-sparse" => return Some(TopologySpec::RandSparse),
            "rand-dense" => return Some(TopologySpec::RandDense),
            "grid" => return Some(TopologySpec::Grid),
            "torus" => return Some(TopologySpec::Torus),
            "complete" => return Some(TopologySpec::Complete),
            "hypercube" => return Some(TopologySpec::Hypercube),
            "lollipop" => return Some(TopologySpec::Lollipop),
            "caterpillar" => return Some(TopologySpec::Caterpillar),
            "wheel" => return Some(TopologySpec::Wheel),
            _ => {}
        }
        s.strip_prefix("gnp(")
            .and_then(|r| r.strip_suffix("e-3)"))
            .and_then(|p| p.parse::<u32>().ok())
            .map(|per_mille| TopologySpec::Gnp { per_mille })
    }

    /// Builds the concrete graph for nominal size `n`.
    ///
    /// `seed` only matters for the random families; deterministic
    /// topologies ignore it.
    pub fn build(&self, n: usize, seed: u64) -> Graph {
        let side = ((n as f64).sqrt().round() as usize).max(2);
        match self {
            TopologySpec::Ring => generators::ring(n.max(3)),
            TopologySpec::Path => generators::path(n.max(1)),
            TopologySpec::Star => generators::star(n.max(2)),
            TopologySpec::RandTree => generators::random_tree(n.max(1), seed),
            TopologySpec::RandSparse => generators::random_connected(n.max(1), n / 2, seed),
            TopologySpec::RandDense => generators::random_connected(n.max(1), 2 * n, seed),
            TopologySpec::Grid => generators::grid(side, side),
            TopologySpec::Torus => generators::torus(side.max(3), side.max(3)),
            TopologySpec::Complete => generators::complete(n.max(2)),
            TopologySpec::Hypercube => {
                let mut d = 0usize;
                while (2usize << d) <= n.max(2) {
                    d += 1;
                }
                generators::hypercube(d.max(1))
            }
            TopologySpec::Lollipop => {
                let clique = (n / 2).max(3);
                generators::lollipop(clique, n.saturating_sub(clique).max(1))
            }
            TopologySpec::Caterpillar => generators::caterpillar((n / 2).max(1), 1),
            TopologySpec::Wheel => generators::wheel(n.max(4)),
            TopologySpec::Gnp { per_mille } => {
                generators::gnp_connected(n.max(2), *per_mille as f64 / 1000.0, seed)
            }
        }
    }
}

impl Canon for TopologySpec {
    fn canon(&self, enc: &mut FpEncoder) {
        match self {
            TopologySpec::Ring => enc.tag(0),
            TopologySpec::Path => enc.tag(1),
            TopologySpec::Star => enc.tag(2),
            TopologySpec::RandTree => enc.tag(3),
            TopologySpec::RandSparse => enc.tag(4),
            TopologySpec::RandDense => enc.tag(5),
            TopologySpec::Grid => enc.tag(6),
            TopologySpec::Torus => enc.tag(7),
            TopologySpec::Complete => enc.tag(8),
            TopologySpec::Hypercube => enc.tag(9),
            TopologySpec::Lollipop => enc.tag(10),
            TopologySpec::Caterpillar => enc.tag(11),
            TopologySpec::Wheel => enc.tag(12),
            TopologySpec::Gnp { per_mille } => {
                enc.tag(13);
                enc.u64(u64::from(*per_mille));
            }
        }
    }
}

/// One fully-specified run: the unit of work a campaign worker drains.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// Position in the campaign grid (also the determinism anchor:
    /// the seed is derived from it, never from worker identity).
    pub index: usize,
    /// Topology family.
    pub topology: TopologySpec,
    /// Nominal network size (the actual node count may differ by the
    /// family's clamping rules, see [`TopologySpec::build`]).
    pub n: usize,
    /// Algorithm family handle, resolved against a registry at run
    /// time.
    pub algorithm: AlgorithmSpec,
    /// Daemon strategy.
    pub daemon: Daemon,
    /// Initial-configuration plan.
    pub init: InitPlan,
    /// Trial number within the grid cell.
    pub trial: u64,
    /// Derived per-scenario master seed.
    pub seed: u64,
    /// Step budget for the run.
    pub step_cap: u64,
    /// Intra-run worker threads for the step pipeline (1 =
    /// sequential). Byte-identical results at any value — the axis
    /// exists for throughput sweeps, not semantics.
    pub intra_threads: usize,
}

impl Scenario {
    /// Derives `K` independent sub-seeds from the scenario seed
    /// (graph / init / simulator / faults, in whatever order the
    /// runner assigns them).
    pub fn seeds<const K: usize>(&self) -> [u64; K] {
        let mut state = self.seed;
        std::array::from_fn(|_| splitmix64(&mut state))
    }

    /// The canonical content fingerprint: a stable 128-bit hash over
    /// the byte-canonical encoding of **what this run is** — topology
    /// × size × algorithm × daemon × init plan × seed × step cap.
    ///
    /// Grid bookkeeping is deliberately excluded: `index` and `trial`
    /// say *where* the scenario sits, not what it computes, and
    /// `intra_threads` is seed-transparent (runs are byte-identical at
    /// any value). Two scenarios with equal fingerprints therefore
    /// produce identical [`crate::ScenarioRecord`]s up to those
    /// position fields — the invariant the campaign result cache
    /// ([`crate::cache`]) and the `ssr-checkpoint/v1` store are built
    /// on.
    pub fn fingerprint(&self) -> Fingerprint {
        let mut enc = FpEncoder::new();
        enc.str("ssr-scenario/v1");
        self.topology.canon(&mut enc);
        enc.usize(self.n);
        self.algorithm.canon(&mut enc);
        self.daemon.canon(&mut enc);
        self.init.canon(&mut enc);
        enc.u64(self.seed);
        enc.u64(self.step_cap);
        enc.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families;

    #[test]
    fn topology_labels_unique() {
        let all = [
            TopologySpec::Ring,
            TopologySpec::Path,
            TopologySpec::Star,
            TopologySpec::RandTree,
            TopologySpec::RandSparse,
            TopologySpec::RandDense,
            TopologySpec::Grid,
            TopologySpec::Torus,
            TopologySpec::Complete,
            TopologySpec::Hypercube,
            TopologySpec::Lollipop,
            TopologySpec::Caterpillar,
            TopologySpec::Wheel,
            TopologySpec::Gnp { per_mille: 300 },
        ];
        let mut labels: Vec<String> = all.iter().map(|t| t.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), all.len());
    }

    #[test]
    fn builds_are_connected_and_sized() {
        for spec in [
            TopologySpec::Ring,
            TopologySpec::Path,
            TopologySpec::Star,
            TopologySpec::RandTree,
            TopologySpec::RandSparse,
            TopologySpec::RandDense,
            TopologySpec::Grid,
            TopologySpec::Torus,
            TopologySpec::Complete,
            TopologySpec::Hypercube,
            TopologySpec::Lollipop,
            TopologySpec::Caterpillar,
            TopologySpec::Wheel,
            TopologySpec::Gnp { per_mille: 400 },
        ] {
            let g = spec.build(12, 7);
            assert!(g.node_count() >= 2, "{spec:?} too small");
            // Deterministic given (n, seed).
            let h = spec.build(12, 7);
            assert_eq!(g.node_count(), h.node_count(), "{spec:?} not deterministic");
            assert_eq!(g.edge_count(), h.edge_count(), "{spec:?} not deterministic");
        }
    }

    #[test]
    fn hypercube_dimension_is_floor_log2() {
        // n = 12 → dimension 3 → 8 nodes.
        let g = TopologySpec::Hypercube.build(12, 0);
        assert_eq!(g.node_count(), 8);
        let g = TopologySpec::Hypercube.build(16, 0);
        assert_eq!(g.node_count(), 16);
    }

    #[test]
    fn preset_labels_match_alliance_presets() {
        let g = generators::ring(8);
        let from_presets: Vec<&str> = ssr_alliance::presets::all_presets(&g)
            .into_iter()
            .map(|(label, _)| label)
            .collect();
        for spec in PresetSpec::all() {
            if spec.build(&g).is_some() {
                assert!(
                    from_presets.contains(&spec.label()),
                    "label {:?} unknown to all_presets",
                    spec.label()
                );
            }
        }
    }

    #[test]
    fn topology_labels_round_trip_through_parse_label() {
        for spec in [
            TopologySpec::Ring,
            TopologySpec::Path,
            TopologySpec::Star,
            TopologySpec::RandTree,
            TopologySpec::RandSparse,
            TopologySpec::RandDense,
            TopologySpec::Grid,
            TopologySpec::Torus,
            TopologySpec::Complete,
            TopologySpec::Hypercube,
            TopologySpec::Lollipop,
            TopologySpec::Caterpillar,
            TopologySpec::Wheel,
            TopologySpec::Gnp { per_mille: 250 },
        ] {
            assert_eq!(TopologySpec::parse_label(&spec.label()), Some(spec));
        }
        assert_eq!(TopologySpec::parse_label("möbius"), None);
        assert_eq!(TopologySpec::parse_label("gnp(xe-3)"), None);
    }

    #[test]
    fn fingerprint_ignores_grid_position_but_not_content() {
        let base = Scenario {
            index: 5,
            topology: TopologySpec::Ring,
            n: 8,
            algorithm: families::unison_sdr(),
            daemon: Daemon::Central,
            init: InitPlan::Arbitrary,
            trial: 0,
            seed: 42,
            step_cap: 1000,
            intra_threads: 1,
        };
        let fp = base.fingerprint();
        let mut moved = base.clone();
        moved.index = 99;
        moved.trial = 3;
        moved.intra_threads = 4;
        assert_eq!(moved.fingerprint(), fp, "position fields are excluded");
        for (what, sc) in [
            ("seed", {
                let mut s = base.clone();
                s.seed = 43;
                s
            }),
            ("cap", {
                let mut s = base.clone();
                s.step_cap = 999;
                s
            }),
            ("n", {
                let mut s = base.clone();
                s.n = 9;
                s
            }),
            ("daemon", {
                let mut s = base.clone();
                s.daemon = Daemon::Synchronous;
                s
            }),
            ("init", {
                let mut s = base.clone();
                s.init = InitPlan::Normal;
                s
            }),
            ("topology", {
                let mut s = base.clone();
                s.topology = TopologySpec::Path;
                s
            }),
        ] {
            assert_ne!(sc.fingerprint(), fp, "{what} must be part of the key");
        }
    }

    #[test]
    fn seed_derivation_is_stable() {
        let sc = Scenario {
            index: 5,
            topology: TopologySpec::Ring,
            n: 8,
            algorithm: families::unison_sdr(),
            daemon: Daemon::Central,
            init: InitPlan::Arbitrary,
            trial: 0,
            seed: 42,
            step_cap: 1000,
            intra_threads: 1,
        };
        let a: [u64; 4] = sc.seeds();
        let b: [u64; 4] = sc.seeds();
        assert_eq!(a, b);
        let mut dedup = a.to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 4, "sub-seeds must be distinct");
    }
}
