//! The default scenario runner: a registry lookup plus one generic
//! body.
//!
//! [`run_scenario`] expands a [`Scenario`] into one simulation run by
//! resolving its [`AlgorithmSpec`](crate::AlgorithmSpec) against the
//! standard [`FamilyRegistry`](ssr_runtime::family::FamilyRegistry)
//! and delegating to the family's
//! [`run`](ssr_runtime::family::Family::run) — every per-family
//! decision (init-plan semantics, target predicate, paper bounds,
//! verdict) lives with the family in its home crate, not here.
//! [`run_scenario_in`] is the same body against a caller-supplied
//! registry, which is how user-registered families run campaigns
//! without touching any workspace crate.
//!
//! Custom probes (segment tracking, liveness windows, alliance
//! verification columns) belong to *callers*: run a campaign through
//! [`crate::engine::run_with`] with your own runner, reusing
//! [`Scenario::seeds`] and [`TopologySpec::build`](crate::TopologySpec)
//! so the determinism contract carries over — and attach
//! `ssr_runtime::Observer`s to the `Execution` instead of hand-rolling
//! a stepping loop. For family-agnostic probes there is also the
//! type-erased [`FamilyProbe`](ssr_runtime::family::FamilyProbe) hook
//! on `Family::run` itself.

use ssr_graph::{metrics, Graph};
use ssr_runtime::family::{ExecBudget, FamilyProbe, FamilyRegistry, FamilyRunOutcome, RunSeeds};
use ssr_runtime::TerminationReason;

use crate::families;
use crate::scenario::Scenario;

// Historical home of these types; the runner still re-exports them.
pub use ssr_runtime::family::Verdict;
pub use ssr_unison::workloads::warm_up_and_corrupt_clocks;

/// Flat result of one scenario run (serializable via
/// [`crate::output`]).
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioRecord {
    /// Grid index of the scenario.
    pub index: usize,
    /// Campaign id (stamped by [`crate::engine::run`]; empty for
    /// records produced by custom runners).
    pub campaign: String,
    /// Topology label.
    pub topology: String,
    /// Nominal size.
    pub n: usize,
    /// Actual node count.
    pub nodes: u64,
    /// Edge count.
    pub edges: u64,
    /// Maximum degree.
    pub max_degree: u64,
    /// Diameter (≥ 1).
    pub diameter: u64,
    /// Algorithm label.
    pub algorithm: String,
    /// Daemon label.
    pub daemon: String,
    /// Init-plan label.
    pub init: String,
    /// Trial number.
    pub trial: u64,
    /// Scenario seed (for exact replay).
    pub seed: u64,
    /// Whether the target predicate was reached.
    pub reached: bool,
    /// Whether the final configuration is terminal.
    pub terminal: bool,
    /// Why the run stopped (cap exhaustion is explicit — never
    /// inferred from step counts); `None` for skipped scenarios that
    /// never ran.
    pub reason: Option<TerminationReason>,
    /// Steps executed.
    pub steps: u64,
    /// Total moves until the target was hit.
    pub moves: u64,
    /// Rounds until the target was hit.
    pub rounds: u64,
    /// Worst per-process count of *SDR-rule* moves (equals the overall
    /// per-process maximum for families without an SDR layer).
    pub max_moves_per_process: u64,
    /// Closed-form round bound, when the family has one.
    pub bound_rounds: Option<u64>,
    /// Closed-form move bound, when the family has one.
    pub bound_moves: Option<u64>,
    /// Bound-check outcome.
    pub verdict: Verdict,
}

impl ScenarioRecord {
    fn skeleton(sc: &Scenario, g: &Graph) -> Self {
        ScenarioRecord {
            index: sc.index,
            campaign: String::new(),
            topology: sc.topology.label(),
            n: sc.n,
            nodes: g.node_count() as u64,
            edges: g.edge_count() as u64,
            max_degree: g.max_degree() as u64,
            diameter: metrics::diameter(g).max(1) as u64,
            algorithm: sc.algorithm.label(),
            daemon: sc.daemon.label(),
            init: sc.init.label(),
            trial: sc.trial,
            seed: sc.seed,
            reached: false,
            terminal: false,
            reason: None,
            steps: 0,
            moves: 0,
            rounds: 0,
            max_moves_per_process: 0,
            bound_rounds: None,
            bound_moves: None,
            verdict: Verdict::Skip,
        }
    }

    fn apply(&mut self, out: &FamilyRunOutcome) {
        self.reached = out.reached;
        self.terminal = out.terminal;
        self.reason = Some(out.reason);
        self.steps = out.steps;
        self.moves = out.moves;
        self.rounds = out.rounds;
        self.max_moves_per_process = out.max_moves_per_process;
        self.bound_rounds = out.bound_rounds;
        self.bound_moves = out.bound_moves;
        self.verdict = out.verdict;
    }
}

/// Runs one scenario to completion against the standard family
/// registry and checks the applicable paper bound. Pure: the record
/// depends only on the scenario (never on which thread runs it or
/// when).
pub fn run_scenario(sc: Scenario) -> ScenarioRecord {
    run_scenario_in(families::default_registry(), sc)
}

/// [`run_scenario`] against a caller-supplied registry — the body is
/// nothing but a lookup, an instantiability check, and the family's
/// own `run`. Unresolvable or non-instantiable scenarios come back
/// with [`Verdict::Skip`].
pub fn run_scenario_in(registry: &FamilyRegistry, sc: Scenario) -> ScenarioRecord {
    run_scenario_probed(registry, sc, None)
}

/// [`run_scenario_in`] with a [`FamilyProbe`] threaded through to the
/// family's measured execution — how the observability layer
/// ([`crate::obs`]) attaches trace sinks and metrics without touching
/// the record. The record is identical to the probe-less run: probes
/// observe, they never steer.
pub fn run_scenario_probed(
    registry: &FamilyRegistry,
    sc: Scenario,
    probe: Option<&mut dyn FamilyProbe>,
) -> ScenarioRecord {
    let [graph_seed, init_seed, sim_seed, fault_seed] = sc.seeds::<4>();
    let g = sc.topology.build(sc.n, graph_seed);
    let mut rec = ScenarioRecord::skeleton(&sc, &g);
    let Some(family) = registry.resolve(&sc.algorithm) else {
        return rec; // Verdict::Skip
    };
    if !family.instantiable(&g) {
        return rec; // Verdict::Skip
    }
    let out = family.run(
        &g,
        &sc.init,
        &sc.daemon,
        RunSeeds {
            init: init_seed,
            sim: sim_seed,
            fault: fault_seed,
        },
        ExecBudget::steps(sc.step_cap).with_intra_threads(sc.intra_threads),
        probe,
    );
    rec.apply(&out);
    rec
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families;
    use crate::scenario::{AlgorithmSpec, Amount, InitPlan, PresetSpec, TopologySpec};
    use ssr_runtime::Daemon;

    fn sc(algorithm: AlgorithmSpec, init: InitPlan) -> Scenario {
        Scenario {
            index: 0,
            topology: TopologySpec::Ring,
            n: 8,
            algorithm,
            daemon: Daemon::RandomSubset { p: 0.5 },
            init,
            trial: 0,
            seed: 0xFEED,
            step_cap: 2_000_000,
            intra_threads: 1,
        }
    }

    #[test]
    fn sdr_agreement_passes_its_bounds() {
        let rec = run_scenario(sc(families::sdr_agreement(5), InitPlan::Arbitrary));
        assert_eq!(rec.verdict, Verdict::Pass, "{rec:?}");
        assert!(rec.reached);
        assert_eq!(rec.bound_rounds, Some(3 * rec.nodes));
    }

    #[test]
    fn unison_sdr_all_init_plans_pass() {
        for init in [
            InitPlan::Arbitrary,
            InitPlan::Normal,
            InitPlan::Tear { gap: Amount::HalfN },
            InitPlan::CorruptClocks {
                k: Amount::QuarterN,
            },
        ] {
            let rec = run_scenario(sc(families::unison_sdr(), init));
            assert_eq!(rec.verdict, Verdict::Pass, "{init:?}: {rec:?}");
        }
    }

    #[test]
    fn normal_init_is_instant_for_unison() {
        let rec = run_scenario(sc(families::unison_sdr(), InitPlan::Normal));
        assert_eq!(rec.moves, 0, "γ_init is already normal");
        assert_eq!(rec.rounds, 0);
    }

    #[test]
    fn cfg_baseline_reports_no_bound() {
        let rec = run_scenario(sc(families::cfg_unison(), InitPlan::Arbitrary));
        assert_eq!(rec.verdict, Verdict::NoBound);
        assert!(rec.reached, "small rings recover within the cap");
    }

    #[test]
    fn mono_reset_recovers_from_corruption() {
        let rec = run_scenario(sc(
            families::mono_reset(),
            InitPlan::CorruptClocks {
                k: Amount::Fixed(2),
            },
        ));
        assert_eq!(rec.verdict, Verdict::NoBound);
        assert!(rec.reached, "{rec:?}");
    }

    #[test]
    fn fga_families_terminate_within_bounds() {
        for algorithm in [
            families::fga_sdr(PresetSpec::Domination),
            families::fga_standalone(PresetSpec::Domination),
        ] {
            let rec = run_scenario(sc(algorithm.clone(), InitPlan::Arbitrary));
            assert_eq!(rec.verdict, Verdict::Pass, "{algorithm:?}: {rec:?}");
            assert!(rec.terminal);
        }
    }

    #[test]
    fn unknown_families_are_skipped_not_failed() {
        let rec = run_scenario(sc(AlgorithmSpec::plain("no-such-family"), InitPlan::Normal));
        assert_eq!(rec.verdict, Verdict::Skip);
        assert_eq!(rec.reason, None);
        assert_eq!(rec.algorithm, "no-such-family");
        assert!(rec.verdict.ok(), "skips never fail a campaign");
    }

    #[test]
    fn non_instantiable_presets_are_skipped() {
        // 2-domination needs δ ≥ 2 everywhere; a star's leaves fail.
        let mut scenario = sc(
            families::fga_sdr(PresetSpec::TwoDomination),
            InitPlan::Normal,
        );
        scenario.topology = TopologySpec::Star;
        let rec = run_scenario(scenario);
        assert_eq!(rec.verdict, Verdict::Skip);
    }

    #[test]
    fn record_is_independent_of_everything_but_the_scenario() {
        let a = run_scenario(sc(families::unison_sdr(), InitPlan::Arbitrary));
        let b = run_scenario(sc(families::unison_sdr(), InitPlan::Arbitrary));
        assert_eq!(a, b);
    }

    #[test]
    fn custom_registries_drive_the_same_body() {
        let registry = families::standard_families();
        let a = run_scenario_in(&registry, sc(families::unison_sdr(), InitPlan::Arbitrary));
        let b = run_scenario(sc(families::unison_sdr(), InitPlan::Arbitrary));
        assert_eq!(a, b);
    }
}
