//! The default scenario runner: expands a [`Scenario`] into one
//! simulation run and returns a flat, serializable [`ScenarioRecord`]
//! with the paper's closed-form bound checked where one exists.
//!
//! Init-plan semantics per family:
//!
//! * `Arbitrary` — the family's arbitrary-configuration sampler;
//!   [`AlgorithmSpec::FgaStandalone`] has none (the standalone theorems
//!   quantify over `γ_init` only) and uses `γ_init` instead.
//! * `Normal` — `γ_init` (all-zero clocks for the unison families).
//! * `Tear` — unison families only (a clock gradient with a
//!   discontinuity); other families fall back to `Arbitrary`.
//! * `CorruptClocks` — unison families only: start legitimate, warm up,
//!   corrupt `k` random clocks, reset counters, measure recovery;
//!   other families fall back to `Arbitrary`.
//!
//! Custom probes (segment tracking, liveness windows, alliance
//! verification columns) belong to *callers*: run a campaign through
//! [`crate::engine::run_with`] with your own runner, reusing
//! [`Scenario::seeds`] and [`TopologySpec::build`] so the determinism
//! contract carries over — and attach `ssr_runtime::Observer`s to the
//! `Execution` instead of hand-rolling a stepping loop.

use std::fmt;

use ssr_alliance::verify::AllianceObserver;
use ssr_baselines::{CfgUnison, MonoReset, MonoState, Phase};
use ssr_core::{toys::Agreement, Sdr, Standalone, RULE_C, RULE_R, RULE_RB, RULE_RF};
use ssr_graph::{metrics, Graph, NodeId};
use ssr_runtime::rng::Xoshiro256StarStar;
use ssr_runtime::{Algorithm, Simulator, TerminationReason};
use ssr_unison::{spec, unison_sdr, Unison};

use crate::scenario::{AlgorithmSpec, InitPlan, Scenario};
use crate::workloads::{unison_tear, unison_tear_plain};

/// Outcome of checking a run against its closed-form bound.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The run reached its target within every applicable bound.
    Pass,
    /// The run missed its target or violated a bound.
    Fail,
    /// The run reached its target; no closed-form bound applies
    /// (baseline families).
    NoBound,
    /// The scenario is not instantiable (e.g. an (f,g) preset invalid
    /// on this graph) and was skipped.
    Skip,
}

impl Verdict {
    /// Whether the record counts against a campaign's overall pass.
    pub fn ok(&self) -> bool {
        !matches!(self, Verdict::Fail)
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Verdict::Pass => "pass",
            Verdict::Fail => "fail",
            Verdict::NoBound => "no-bound",
            Verdict::Skip => "skip",
        };
        write!(f, "{s}")
    }
}

/// Flat result of one scenario run (serializable via
/// [`crate::output`]).
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioRecord {
    /// Grid index of the scenario.
    pub index: usize,
    /// Campaign id (stamped by [`crate::engine::run`]; empty for
    /// records produced by custom runners).
    pub campaign: String,
    /// Topology label.
    pub topology: String,
    /// Nominal size.
    pub n: usize,
    /// Actual node count.
    pub nodes: u64,
    /// Edge count.
    pub edges: u64,
    /// Maximum degree.
    pub max_degree: u64,
    /// Diameter (≥ 1).
    pub diameter: u64,
    /// Algorithm label.
    pub algorithm: String,
    /// Daemon label.
    pub daemon: String,
    /// Init-plan label.
    pub init: String,
    /// Trial number.
    pub trial: u64,
    /// Scenario seed (for exact replay).
    pub seed: u64,
    /// Whether the target predicate was reached.
    pub reached: bool,
    /// Whether the final configuration is terminal.
    pub terminal: bool,
    /// Why the run stopped (cap exhaustion is explicit — never
    /// inferred from step counts); `None` for skipped scenarios that
    /// never ran.
    pub reason: Option<TerminationReason>,
    /// Steps executed.
    pub steps: u64,
    /// Total moves until the target was hit.
    pub moves: u64,
    /// Rounds until the target was hit.
    pub rounds: u64,
    /// Worst per-process count of *SDR-rule* moves (equals the overall
    /// per-process maximum for families without an SDR layer).
    pub max_moves_per_process: u64,
    /// Closed-form round bound, when the family has one.
    pub bound_rounds: Option<u64>,
    /// Closed-form move bound, when the family has one.
    pub bound_moves: Option<u64>,
    /// Bound-check outcome.
    pub verdict: Verdict,
}

impl ScenarioRecord {
    fn skeleton(sc: &Scenario, g: &Graph) -> Self {
        ScenarioRecord {
            index: sc.index,
            campaign: String::new(),
            topology: sc.topology.label(),
            n: sc.n,
            nodes: g.node_count() as u64,
            edges: g.edge_count() as u64,
            max_degree: g.max_degree() as u64,
            diameter: metrics::diameter(g).max(1) as u64,
            algorithm: sc.algorithm.label(),
            daemon: sc.daemon.label(),
            init: sc.init.label(),
            trial: sc.trial,
            seed: sc.seed,
            reached: false,
            terminal: false,
            reason: None,
            steps: 0,
            moves: 0,
            rounds: 0,
            max_moves_per_process: 0,
            bound_rounds: None,
            bound_moves: None,
            verdict: Verdict::Skip,
        }
    }
}

/// Runs one scenario to completion and checks the applicable paper
/// bound. Pure: the record depends only on the scenario (never on
/// which thread runs it or when).
pub fn run_scenario(sc: Scenario) -> ScenarioRecord {
    let [graph_seed, init_seed, sim_seed, fault_seed] = sc.seeds::<4>();
    let g = sc.topology.build(sc.n, graph_seed);
    let mut rec = ScenarioRecord::skeleton(&sc, &g);
    let nn = rec.nodes;
    match sc.algorithm {
        AlgorithmSpec::SdrAgreement { domain } => {
            let sdr = Sdr::new(Agreement::new(domain));
            let rc = sdr.rule_count();
            let init = match sc.init {
                InitPlan::Normal => sdr.initial_config(&g),
                _ => sdr.arbitrary_config(&g, init_seed),
            };
            let check = Sdr::new(Agreement::new(domain));
            let mut sim = Simulator::new(&g, sdr, init, sc.daemon.clone(), sim_seed);
            let out = sim
                .execution()
                .cap(sc.step_cap)
                .until(|gr, st| check.is_normal_config(gr, st))
                .run();
            let pp = max_sdr_moves_per_process(&g, sim.stats(), rc);
            rec.fill(&out, sim.stats().steps);
            rec.max_moves_per_process = pp;
            // Cor. 5 (rounds) and Cor. 4 (per-process SDR moves).
            rec.bound_rounds = Some(3 * nn);
            rec.verdict = if out.reached && out.rounds_at_hit <= 3 * nn && pp <= 3 * nn + 3 {
                Verdict::Pass
            } else {
                Verdict::Fail
            };
        }
        AlgorithmSpec::UnisonSdr => {
            let algo = unison_sdr(Unison::for_graph(&g));
            let period = algo.input().period();
            let rc = algo.rule_count();
            let check = unison_sdr(Unison::for_graph(&g));
            let init = match sc.init {
                InitPlan::Normal | InitPlan::CorruptClocks { .. } => algo.initial_config(&g),
                InitPlan::Tear { gap } => unison_tear(&g, period, gap.resolve(nn)),
                InitPlan::Arbitrary => algo.arbitrary_config(&g, init_seed),
            };
            let mut sim = Simulator::new(&g, algo, init, sc.daemon.clone(), sim_seed);
            if let InitPlan::CorruptClocks { k } = sc.init {
                let mut rng = Xoshiro256StarStar::seed_from_u64(fault_seed);
                warm_up_and_corrupt_clocks(&mut sim, k.resolve(nn), period, &mut rng);
            }
            let out = sim
                .execution()
                .cap(sc.step_cap)
                .until(|gr, st| check.is_normal_config(gr, st))
                .run();
            let pp = max_sdr_moves_per_process(&g, sim.stats(), rc);
            rec.fill(&out, sim.stats().steps);
            rec.max_moves_per_process = pp;
            // Thm 7 (rounds) and Thm 6 (moves).
            let rb = spec::theorem7_round_bound(nn);
            let mb = spec::theorem6_move_bound(nn, rec.diameter);
            rec.bound_rounds = Some(rb);
            rec.bound_moves = Some(mb);
            rec.verdict = if out.reached && out.rounds_at_hit <= rb && out.moves_at_hit <= mb {
                Verdict::Pass
            } else {
                Verdict::Fail
            };
        }
        AlgorithmSpec::CfgUnison => {
            let cfg = CfgUnison::for_graph(&g);
            let period = cfg.period();
            let init = match sc.init {
                InitPlan::Normal | InitPlan::CorruptClocks { .. } => cfg.initial_config(&g),
                InitPlan::Tear { gap } => unison_tear_plain(&g, period, gap.resolve(nn)),
                InitPlan::Arbitrary => cfg.arbitrary_config(&g, init_seed),
            };
            let mut sim = Simulator::new(&g, cfg, init, sc.daemon.clone(), sim_seed);
            if let InitPlan::CorruptClocks { k } = sc.init {
                let mut rng = Xoshiro256StarStar::seed_from_u64(fault_seed);
                ssr_runtime::faults::corrupt_random(
                    &mut sim,
                    k.resolve(nn).min(nn) as usize,
                    &mut rng,
                    |_, r| r.below(period),
                );
                sim.reset_stats();
            }
            let out = sim
                .execution()
                .cap(sc.step_cap)
                .until(|gr, st| spec::safety_holds(gr, st, period))
                .run();
            rec.fill(&out, sim.stats().steps);
            rec.max_moves_per_process = sim.stats().max_moves_per_process();
            // No closed-form bound: blowing the cap is a finding, not
            // a campaign failure.
            rec.verdict = Verdict::NoBound;
        }
        AlgorithmSpec::MonoReset => {
            let mono = MonoReset::new(&g, Unison::for_graph(&g), NodeId(0));
            let period = mono.input().period();
            let check = MonoReset::new(&g, Unison::for_graph(&g), NodeId(0));
            let init = mono.initial_config(&g);
            let mut sim = Simulator::new(&g, mono, init, sc.daemon.clone(), sim_seed);
            if let InitPlan::CorruptClocks { k } = sc.init {
                let mut rng = Xoshiro256StarStar::seed_from_u64(fault_seed);
                ssr_runtime::faults::corrupt_random(
                    &mut sim,
                    k.resolve(nn).min(nn) as usize,
                    &mut rng,
                    |_, r| MonoState {
                        phase: Phase::Idle,
                        inner: r.below(period),
                    },
                );
                sim.reset_stats();
            }
            let out = sim
                .execution()
                .cap(sc.step_cap)
                .until(|gr, st| check.is_normal_config(gr, st))
                .run();
            rec.fill(&out, sim.stats().steps);
            rec.max_moves_per_process = sim.stats().max_moves_per_process();
            rec.verdict = Verdict::NoBound;
        }
        AlgorithmSpec::FgaSdr { preset } => {
            let Some(fga) = preset.build(&g) else {
                return rec; // Verdict::Skip
            };
            let mut probe = AllianceObserver::new(&fga);
            let algo = ssr_alliance::fga_sdr(fga);
            let init = match sc.init {
                InitPlan::Normal => algo.initial_config(&g),
                _ => algo.arbitrary_config(&g, init_seed),
            };
            let mut sim = Simulator::new(&g, algo, init, sc.daemon.clone(), sim_seed);
            let out = sim.execution().cap(sc.step_cap).observe(&mut probe).run();
            rec.fill(&out, sim.stats().steps);
            rec.max_moves_per_process = sim.stats().max_moves_per_process();
            let v = probe.into_verdict().expect("sampled at run end");
            let sound = v.alliance && v.corner_ok;
            // Thm 14 (rounds) and Thm 12 (moves).
            let rb = ssr_alliance::verify::theorem14_round_bound(nn);
            let mb = ssr_alliance::verify::theorem12_move_bound(nn, rec.edges, rec.max_degree);
            rec.bound_rounds = Some(rb);
            rec.bound_moves = Some(mb);
            rec.verdict = if out.terminal && sound && rec.rounds <= rb && rec.moves <= mb {
                Verdict::Pass
            } else {
                Verdict::Fail
            };
        }
        AlgorithmSpec::FgaStandalone { preset } => {
            let Some(fga) = preset.build(&g) else {
                return rec; // Verdict::Skip
            };
            let mut probe = AllianceObserver::new(&fga);
            let algo = Standalone::new(fga);
            // The standalone theorems quantify over γ_init only.
            let init = algo.initial_config(&g);
            let mut sim = Simulator::new(&g, algo, init, sc.daemon.clone(), sim_seed);
            let out = sim.execution().cap(sc.step_cap).observe(&mut probe).run();
            rec.fill(&out, sim.stats().steps);
            rec.max_moves_per_process = sim.stats().max_moves_per_process();
            let v = probe.into_verdict().expect("sampled at run end");
            let sound = v.alliance && v.corner_ok;
            // Cor. 12 (rounds) and Cor. 11 (moves).
            let rb = ssr_alliance::verify::corollary12_round_bound(nn);
            let mb = ssr_alliance::verify::corollary11_move_bound(nn, rec.edges, rec.max_degree);
            rec.bound_rounds = Some(rb);
            rec.bound_moves = Some(mb);
            rec.verdict = if out.terminal && sound && rec.rounds <= rb && rec.moves <= mb {
                Verdict::Pass
            } else {
                Verdict::Fail
            };
        }
    }
    rec
}

/// Worst per-process count of SDR-rule moves (Cor. 4's measure),
/// shared by the reset-composed families.
fn max_sdr_moves_per_process(g: &Graph, stats: &ssr_runtime::RunStats, rule_count: usize) -> u64 {
    g.nodes()
        .map(|u| {
            [RULE_RB, RULE_RF, RULE_C, RULE_R]
                .iter()
                .map(|&r| stats.moves_of(u, r, rule_count))
                .sum::<u64>()
        })
        .max()
        .unwrap_or(0)
}

impl ScenarioRecord {
    fn fill(&mut self, out: &ssr_runtime::RunOutcome, steps: u64) {
        self.reached = out.reached;
        self.terminal = out.terminal;
        self.reason = Some(out.reason);
        self.steps = steps;
        self.moves = out.moves_at_hit;
        self.rounds = out.rounds_at_hit;
    }
}

/// E11-style clock corruption: run the legitimate system for `10n`
/// steps, then overwrite the clocks of `k` distinct random processes
/// (reset variables stay clean) and zero the counters so the run
/// measures recovery in isolation.
pub fn warm_up_and_corrupt_clocks(
    sim: &mut Simulator<'_, ssr_unison::UnisonSdr>,
    k: u64,
    period: u64,
    rng: &mut Xoshiro256StarStar,
) {
    let n = sim.graph().node_count();
    sim.execution().cap(10 * n as u64).run();
    let k = (k as usize).min(n);
    // Clock-only corruption: keep each victim's reset variables,
    // overwrite its inner clock. Victim selection is shared with
    // callers that need the same fault pattern across systems — any
    // `corrupt_random` call on an equally-seeded RNG picks the same
    // victims.
    let snapshot = sim.states().to_vec();
    ssr_runtime::faults::corrupt_random(sim, k, rng, |u, r| {
        let mut s = snapshot[u.index()];
        s.inner = r.below(period);
        s
    });
    sim.reset_stats();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Amount, PresetSpec, TopologySpec};
    use ssr_runtime::Daemon;

    fn sc(algorithm: AlgorithmSpec, init: InitPlan) -> Scenario {
        Scenario {
            index: 0,
            topology: TopologySpec::Ring,
            n: 8,
            algorithm,
            daemon: Daemon::RandomSubset { p: 0.5 },
            init,
            trial: 0,
            seed: 0xFEED,
            step_cap: 2_000_000,
        }
    }

    #[test]
    fn sdr_agreement_passes_its_bounds() {
        let rec = run_scenario(sc(
            AlgorithmSpec::SdrAgreement { domain: 5 },
            InitPlan::Arbitrary,
        ));
        assert_eq!(rec.verdict, Verdict::Pass, "{rec:?}");
        assert!(rec.reached);
        assert_eq!(rec.bound_rounds, Some(3 * rec.nodes));
    }

    #[test]
    fn unison_sdr_all_init_plans_pass() {
        for init in [
            InitPlan::Arbitrary,
            InitPlan::Normal,
            InitPlan::Tear { gap: Amount::HalfN },
            InitPlan::CorruptClocks {
                k: Amount::QuarterN,
            },
        ] {
            let rec = run_scenario(sc(AlgorithmSpec::UnisonSdr, init));
            assert_eq!(rec.verdict, Verdict::Pass, "{init:?}: {rec:?}");
        }
    }

    #[test]
    fn normal_init_is_instant_for_unison() {
        let rec = run_scenario(sc(AlgorithmSpec::UnisonSdr, InitPlan::Normal));
        assert_eq!(rec.moves, 0, "γ_init is already normal");
        assert_eq!(rec.rounds, 0);
    }

    #[test]
    fn cfg_baseline_reports_no_bound() {
        let rec = run_scenario(sc(AlgorithmSpec::CfgUnison, InitPlan::Arbitrary));
        assert_eq!(rec.verdict, Verdict::NoBound);
        assert!(rec.reached, "small rings recover within the cap");
    }

    #[test]
    fn mono_reset_recovers_from_corruption() {
        let rec = run_scenario(sc(
            AlgorithmSpec::MonoReset,
            InitPlan::CorruptClocks {
                k: Amount::Fixed(2),
            },
        ));
        assert_eq!(rec.verdict, Verdict::NoBound);
        assert!(rec.reached, "{rec:?}");
    }

    #[test]
    fn fga_families_terminate_within_bounds() {
        for algorithm in [
            AlgorithmSpec::FgaSdr {
                preset: PresetSpec::Domination,
            },
            AlgorithmSpec::FgaStandalone {
                preset: PresetSpec::Domination,
            },
        ] {
            let rec = run_scenario(sc(algorithm, InitPlan::Arbitrary));
            assert_eq!(rec.verdict, Verdict::Pass, "{algorithm:?}: {rec:?}");
            assert!(rec.terminal);
        }
    }

    #[test]
    fn record_is_independent_of_everything_but_the_scenario() {
        let a = run_scenario(sc(AlgorithmSpec::UnisonSdr, InitPlan::Arbitrary));
        let b = run_scenario(sc(AlgorithmSpec::UnisonSdr, InitPlan::Arbitrary));
        assert_eq!(a, b);
    }
}
