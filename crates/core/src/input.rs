//! The [`ResetInput`] trait — the paper's Requirements on the input
//! algorithm `I` (§3.5) — and the [`Standalone`] wrapper for running an
//! input algorithm on its own from its pre-defined initial configuration.

use ssr_graph::{Graph, NodeId};
use ssr_runtime::rng::Xoshiro256StarStar;
use ssr_runtime::{Algorithm, RuleId, RuleMask, StateView};

/// An input algorithm `I` suitable for composition with SDR.
///
/// The trait encodes §3.5's requirements:
///
/// 1. `I` cannot write SDR's variables — structural: implementations
///    only ever see their own state component.
/// 2. `I` provides `P_ICorrect(u)`, `P_reset(u)`, and `reset(u)`:
///    * (2a) [`ResetInput::p_icorrect`] reads only `I`'s variables
///      (structural: the view carries inner states only) and must be
///      *closed* by `I`'s rules — checked by
///      [`crate::validate::check_requirements`] and property tests;
///    * (2b) [`ResetInput::p_reset`] reads only `u`'s own inner state
///      (structural: it receives exactly that state);
///    * (2c) rules are disabled whenever `¬P_ICorrect(u) ∨ ¬P_Clean(u)`
///      — the composition enforces this by gating
///      [`ResetInput::enabled_mask`], so implementations write their
///      guards *without* the gate;
///    * (2d) if every member of `N[u]` satisfies `P_reset`, then
///      `P_ICorrect(u)` holds — semantic, checked by
///      [`crate::validate::check_requirements`];
///    * (2e) executing `reset(u)` establishes `P_reset(u)` — semantic,
///      checked likewise (the reset state is a constant per node here,
///      which is how both of the paper's instantiations behave).
pub trait ResetInput {
    /// Per-process state of the input algorithm.
    type State: Clone + PartialEq + std::fmt::Debug;

    /// Number of rules of `I`.
    fn rule_count(&self) -> usize;

    /// Rule label for traces and reports.
    fn rule_name(&self, rule: RuleId) -> &'static str;

    /// Guards of `I`'s rules, **without** the `P_Clean ∧ P_ICorrect`
    /// gate (the composition conjoins it per Requirement 2c).
    fn enabled_mask<V: StateView<Self::State>>(&self, u: NodeId, view: &V) -> RuleMask;

    /// Action of rule `rule` for process `u`.
    fn apply<V: StateView<Self::State>>(&self, u: NodeId, view: &V, rule: RuleId) -> Self::State;

    /// `P_ICorrect(u)`: `u`'s state is consistent with its neighbors'.
    fn p_icorrect<V: StateView<Self::State>>(&self, u: NodeId, view: &V) -> bool;

    /// `P_reset(u)`: `u` is in the pre-defined initial state of `I`.
    fn p_reset(&self, u: NodeId, state: &Self::State) -> bool;

    /// The pre-defined state installed by the `reset(u)` macro.
    fn reset_state(&self, u: NodeId) -> Self::State;

    /// `u`'s state in the algorithm's designated initial configuration
    /// `γ_init` (used for non-self-stabilizing standalone runs).
    ///
    /// Defaults to the reset state, which is `γ_init` for both of the
    /// paper's instantiations.
    fn initial_state(&self, u: NodeId) -> Self::State {
        self.reset_state(u)
    }

    /// A uniformly random state *within `I`'s variable domains*, used by
    /// adversarial initial-configuration samplers (self-stabilization
    /// assumes transient faults corrupt values, not types).
    ///
    /// Defaults to the reset state (i.e. no corruption); override to get
    /// meaningful adversarial workloads.
    fn arbitrary_state(&self, u: NodeId, rng: &mut Xoshiro256StarStar) -> Self::State {
        let _ = rng;
        self.reset_state(u)
    }
}

/// Runs an input algorithm *alone* (no reset layer), with its rules
/// gated by `P_ICorrect` only.
///
/// This models the paper's standalone analyses (e.g. Theorem 5: `U` is a
/// correct distributed unison from `γ_init`; Theorem 9/10: `FGA`
/// terminates from `γ_init`): in those sections every process implicitly
/// satisfies `P_Clean` because no reset exists, and the guards of the
/// instantiations all contain `P_ICorrect` (explicitly for FGA,
/// implied for U).
///
/// # Examples
///
/// ```
/// use ssr_core::{toys::BoundedCounter, Standalone};
/// use ssr_graph::generators;
/// use ssr_runtime::{Daemon, Simulator};
///
/// let g = generators::path(4);
/// let alg = Standalone::new(BoundedCounter::new(3));
/// let init = alg.initial_config(&g);
/// let mut sim = Simulator::new(&g, alg, init, Daemon::Synchronous, 0);
/// let out = sim.execution().cap(10_000).run();
/// assert!(out.terminal); // counters all reach the cap
/// ```
#[derive(Clone, Debug)]
pub struct Standalone<I> {
    inner: I,
}

impl<I: ResetInput> Standalone<I> {
    /// Wraps `inner` for standalone execution.
    pub fn new(inner: I) -> Self {
        Standalone { inner }
    }

    /// The wrapped input algorithm.
    pub fn inner(&self) -> &I {
        &self.inner
    }

    /// The designated initial configuration `γ_init`.
    pub fn initial_config(&self, graph: &Graph) -> Vec<I::State> {
        graph.nodes().map(|u| self.inner.initial_state(u)).collect()
    }
}

impl<I: ResetInput> Algorithm for Standalone<I> {
    type State = I::State;

    fn rule_count(&self) -> usize {
        self.inner.rule_count()
    }

    fn rule_name(&self, rule: RuleId) -> &'static str {
        self.inner.rule_name(rule)
    }

    fn enabled_mask<V: StateView<Self::State>>(&self, u: NodeId, view: &V) -> RuleMask {
        if self.inner.p_icorrect(u, view) {
            self.inner.enabled_mask(u, view)
        } else {
            RuleMask::NONE
        }
    }

    fn apply<V: StateView<Self::State>>(&self, u: NodeId, view: &V, rule: RuleId) -> Self::State {
        self.inner.apply(u, view, rule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toys::BoundedCounter;
    use ssr_graph::generators;
    use ssr_runtime::{Daemon, Simulator};

    #[test]
    fn standalone_runs_input_from_gamma_init() {
        let g = generators::ring(5);
        let alg = Standalone::new(BoundedCounter::new(4));
        let init = alg.initial_config(&g);
        assert!(init.iter().all(|&x| x == 0));
        let mut sim = Simulator::new(&g, alg, init, Daemon::RandomSubset { p: 0.7 }, 3);
        let out = sim.execution().cap(100_000).run();
        assert!(out.terminal);
        assert!(sim.states().iter().all(|&x| x == 4));
    }

    #[test]
    fn standalone_gates_on_icorrect() {
        // A locally inconsistent pair (gap 2) freezes both processes.
        let g = generators::path(2);
        let alg = Standalone::new(BoundedCounter::new(9));
        let sim = Simulator::new(&g, alg, vec![0, 2], Daemon::Central, 0);
        assert!(sim.is_terminal());
        assert_eq!(sim.states(), &[0, 2]);
    }

    #[test]
    fn default_initial_state_is_reset_state() {
        let c = BoundedCounter::new(5);
        assert_eq!(c.initial_state(NodeId(0)), c.reset_state(NodeId(0)));
    }
}
