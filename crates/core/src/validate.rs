//! Runtime checks of the paper's Requirements on input algorithms
//! (§3.5).
//!
//! Requirements 1, 2b and 2c are structural in this implementation
//! (types prevent violating them). Requirements 2d and 2e are semantic:
//! [`check_requirements`] verifies them on a concrete graph.
//! Requirement 2a (closure of `P_ICorrect` under `I`) is a temporal
//! property; [`check_icorrect_closed_on_run`] probes it along a random
//! standalone execution — used by the property-test suites of the
//! instantiation crates.

use std::error::Error;
use std::fmt;

use ssr_graph::Graph;
use ssr_runtime::rng::Xoshiro256StarStar;
use ssr_runtime::{ConfigView, Daemon, NodeId, Simulator, StepOutcome};

use crate::input::{ResetInput, Standalone};

/// A violated requirement, reported by the checkers in this module.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RequirementError {
    /// Requirement 2e: `reset(u)` did not establish `P_reset(u)`.
    ResetStateNotPReset {
        /// The offending process.
        node: NodeId,
    },
    /// Requirement 2d: with `P_reset` everywhere in `N[u]`,
    /// `P_ICorrect(u)` still failed.
    ResetNeighborhoodNotICorrect {
        /// The offending process.
        node: NodeId,
    },
    /// Requirement 2a probe: a step of `I` falsified `P_ICorrect(u)`.
    ICorrectNotClosed {
        /// The offending process.
        node: NodeId,
        /// Step index at which closure failed.
        step: u64,
    },
}

impl fmt::Display for RequirementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequirementError::ResetStateNotPReset { node } => {
                write!(
                    f,
                    "requirement 2e: reset state of {node:?} does not satisfy P_reset"
                )
            }
            RequirementError::ResetNeighborhoodNotICorrect { node } => write!(
                f,
                "requirement 2d: all-reset closed neighborhood of {node:?} is not P_ICorrect"
            ),
            RequirementError::ICorrectNotClosed { node, step } => write!(
                f,
                "requirement 2a: P_ICorrect({node:?}) falsified by an input step (step {step})"
            ),
        }
    }
}

impl Error for RequirementError {}

/// Checks Requirements 2d and 2e of §3.5 on `graph`.
///
/// # Errors
///
/// Returns the first violated requirement.
///
/// # Examples
///
/// ```
/// use ssr_core::{toys::BoundedCounter, validate};
/// use ssr_graph::generators;
///
/// let g = generators::ring(6);
/// validate::check_requirements(&BoundedCounter::new(5), &g)?;
/// # Ok::<(), ssr_core::validate::RequirementError>(())
/// ```
pub fn check_requirements<I: ResetInput>(input: &I, graph: &Graph) -> Result<(), RequirementError> {
    // Requirement 2e: the state installed by reset(u) satisfies P_reset.
    for u in graph.nodes() {
        if !input.p_reset(u, &input.reset_state(u)) {
            return Err(RequirementError::ResetStateNotPReset { node: u });
        }
    }
    // Requirement 2d: if P_reset holds on all of N[u], P_ICorrect(u)
    // holds. With constant reset states it suffices to check the
    // all-reset configuration.
    let all_reset: Vec<I::State> = graph.nodes().map(|u| input.reset_state(u)).collect();
    let view = ConfigView::new(graph, &all_reset);
    for u in graph.nodes() {
        if !input.p_icorrect(u, &view) {
            return Err(RequirementError::ResetNeighborhoodNotICorrect { node: u });
        }
    }
    Ok(())
}

/// Probes Requirement 2a (closure of `P_ICorrect` by `I`) along one
/// standalone execution of up to `max_steps` steps from `init`.
///
/// After every step, any process whose `P_ICorrect` held before the
/// step must still satisfy it.
///
/// # Errors
///
/// Returns [`RequirementError::ICorrectNotClosed`] at the first
/// violation.
pub fn check_icorrect_closed_on_run<I: ResetInput + Clone>(
    input: &I,
    graph: &Graph,
    init: Vec<I::State>,
    daemon: Daemon,
    seed: u64,
    max_steps: u64,
) -> Result<(), RequirementError> {
    let standalone = Standalone::new(input.clone());
    let mut sim = Simulator::new(graph, standalone, init, daemon, seed);
    let holding = |sim: &Simulator<'_, Standalone<I>>| -> Vec<bool> {
        let view = sim.view();
        graph.nodes().map(|u| input.p_icorrect(u, &view)).collect()
    };
    let mut before = holding(&sim);
    for step in 0..max_steps {
        match sim.step() {
            StepOutcome::Terminal => break,
            StepOutcome::Progress { .. } => {
                let after = holding(&sim);
                for u in graph.nodes() {
                    if before[u.index()] && !after[u.index()] {
                        return Err(RequirementError::ICorrectNotClosed { node: u, step });
                    }
                }
                before = after;
            }
        }
    }
    Ok(())
}

/// Generates a random standalone configuration from
/// [`ResetInput::arbitrary_state`] (workload helper for the closure
/// probe and the experiment harness).
pub fn arbitrary_standalone_config<I: ResetInput>(
    input: &I,
    graph: &Graph,
    seed: u64,
) -> Vec<I::State> {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    graph
        .nodes()
        .map(|u| input.arbitrary_state(u, &mut rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toys::{Agreement, BoundedCounter};
    use ssr_graph::generators;
    use ssr_runtime::{RuleId, RuleMask, StateView};

    #[test]
    fn toys_pass_static_requirements() {
        let g = generators::grid(3, 3);
        check_requirements(&Agreement::new(4), &g).unwrap();
        check_requirements(&BoundedCounter::new(3), &g).unwrap();
    }

    #[test]
    fn icorrect_closure_probe_passes_for_counter() {
        let g = generators::random_connected(12, 6, 5);
        let input = BoundedCounter::new(9);
        for seed in 0..5 {
            let init = arbitrary_standalone_config(&input, &g, seed);
            check_icorrect_closed_on_run(
                &input,
                &g,
                init,
                Daemon::RandomSubset { p: 0.6 },
                seed,
                5_000,
            )
            .unwrap();
        }
    }

    /// An intentionally broken input: reset state violates `P_reset`.
    #[derive(Clone, Debug)]
    struct BrokenReset;

    impl ResetInput for BrokenReset {
        type State = u32;
        fn rule_count(&self) -> usize {
            0
        }
        fn rule_name(&self, _: RuleId) -> &'static str {
            unreachable!()
        }
        fn enabled_mask<V: StateView<u32>>(&self, _: NodeId, _: &V) -> RuleMask {
            RuleMask::NONE
        }
        fn apply<V: StateView<u32>>(&self, _: NodeId, _: &V, _: RuleId) -> u32 {
            unreachable!()
        }
        fn p_icorrect<V: StateView<u32>>(&self, _: NodeId, _: &V) -> bool {
            true
        }
        fn p_reset(&self, _: NodeId, state: &u32) -> bool {
            *state == 0
        }
        fn reset_state(&self, _: NodeId) -> u32 {
            1 // violates 2e
        }
    }

    #[test]
    fn broken_reset_detected() {
        let g = generators::path(2);
        let err = check_requirements(&BrokenReset, &g).unwrap_err();
        assert!(matches!(err, RequirementError::ResetStateNotPReset { .. }));
        assert!(err.to_string().contains("requirement 2e"));
    }

    /// An intentionally broken input: all-reset neighborhood is judged
    /// incorrect (violates 2d).
    #[derive(Clone, Debug)]
    struct BrokenICorrect;

    impl ResetInput for BrokenICorrect {
        type State = u32;
        fn rule_count(&self) -> usize {
            0
        }
        fn rule_name(&self, _: RuleId) -> &'static str {
            unreachable!()
        }
        fn enabled_mask<V: StateView<u32>>(&self, _: NodeId, _: &V) -> RuleMask {
            RuleMask::NONE
        }
        fn apply<V: StateView<u32>>(&self, _: NodeId, _: &V, _: RuleId) -> u32 {
            unreachable!()
        }
        fn p_icorrect<V: StateView<u32>>(&self, _: NodeId, _: &V) -> bool {
            false
        }
        fn p_reset(&self, _: NodeId, state: &u32) -> bool {
            *state == 0
        }
        fn reset_state(&self, _: NodeId) -> u32 {
            0
        }
    }

    #[test]
    fn broken_icorrect_detected() {
        let g = generators::path(2);
        let err = check_requirements(&BrokenICorrect, &g).unwrap_err();
        assert!(matches!(
            err,
            RequirementError::ResetNeighborhoodNotICorrect { .. }
        ));
    }

    #[test]
    fn arbitrary_config_respects_domain() {
        let g = generators::ring(8);
        let input = BoundedCounter::new(4);
        let cfg = arbitrary_standalone_config(&input, &g, 9);
        assert!(cfg.iter().all(|&x| x <= 4));
    }
}
