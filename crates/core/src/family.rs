//! Generic [`Family`] scaffolding for SDR compositions: wrap **any**
//! [`ResetInput`] into a registrable, explorable algorithm family with
//! the paper's input-independent bounds checked out of the box.
//!
//! The paper's Corollaries 4 and 5 hold for *every* composition
//! `I ∘ SDR` (≤ `3n` recovery rounds; ≤ `3n + 3` SDR moves per
//! process), so [`composed`] can attach a meaningful verdict to any
//! input algorithm without knowing anything about it. Families with
//! sharper input-specific theorems (`U ∘ SDR`, `FGA ∘ SDR`) implement
//! [`Family`] directly in their home crates instead.
//!
//! This is the "bring your own algorithm" entry point: implement
//! [`ResetInput`], call [`composed`], register the result — no
//! workspace crate needs editing. See `examples/custom_family.rs` at
//! the repository root.

use ssr_graph::Graph;
use ssr_runtime::analysis::{
    audit_runs, collect_footprints, AnalyzeFamily, AnalyzeOptions, GraphAnalysis, RngAudit,
};
use ssr_runtime::exhaustive::{ExploreOptions, ExploreState};
use ssr_runtime::family::{
    explore_sample_seeds, explore_with_replay, stochastic_max_runs, AlgorithmSpec, Bounds,
    ExecBudget, ExploreFamily, ExploreReport, Family, FamilyProbe, FamilyRunOutcome, InitPlan,
    ProbeBridge, RunSeeds, StochasticMax, Verdict,
};
use ssr_runtime::{Algorithm, Daemon, RunStats, Simulator};

use crate::input::ResetInput;
use crate::sdr::{Sdr, RULE_C, RULE_R, RULE_RB, RULE_RF};
use crate::state::Composed;
use crate::toys::Agreement;
use crate::validate;
use crate::workloads::sdr_broadcast_chain;

/// Worst per-process count of SDR-rule moves (Corollary 4's measure),
/// shared by every reset-composed family.
pub fn max_sdr_moves_per_process(g: &Graph, stats: &RunStats, rule_count: usize) -> u64 {
    g.nodes()
        .map(|u| {
            [RULE_RB, RULE_RF, RULE_C, RULE_R]
                .iter()
                .map(|&r| stats.moves_of(u, r, rule_count))
                .sum::<u64>()
        })
        .max()
        .unwrap_or(0)
}

/// A graph-parameterized constructor of the input algorithm (`None`
/// when the input is not instantiable on the graph).
pub type InputFactory<I> = Box<dyn Fn(&Graph) -> Option<I> + Send + Sync>;

/// A graph-parameterized closed-form bound.
type BoundFn = Box<dyn Fn(&Graph) -> u64 + Send + Sync>;

/// A composed algorithm plus its exploration seed set.
type SeedSet<I> = (Sdr<I>, Vec<Vec<Composed<<I as ResetInput>::State>>>);

/// The generic family `I ∘ SDR` for any [`ResetInput`], built by
/// [`composed`].
///
/// Semantics:
///
/// * **init plans** — `Normal` starts from `γ_init`; every other plan
///   falls back to the adversarial sampler
///   ([`Sdr::arbitrary_config`]), the self-stabilization quantifier;
/// * **target** — the normal configurations
///   ([`Sdr::is_normal_config`]), which are exactly SDR's terminal
///   configurations (Theorem 1);
/// * **verdict** — `Pass` iff the target was reached within `3n`
///   rounds (Cor. 5) with ≤ `3n + 3` SDR moves per process (Cor. 4) —
///   bounds that hold for *any* conforming input;
/// * **exploration** — seed set `γ_init` + the broadcast-chain
///   workload + adversarial samples, exhausted against the Cor. 5
///   round bound (plus a family-specific move bound when one was
///   supplied via [`ComposedFamily::with_explore_move_bound`]).
pub struct ComposedFamily<I> {
    id: String,
    make: InputFactory<I>,
    explore_move_bound: Option<BoundFn>,
}

/// Wraps an input-algorithm factory into the generic composed family
/// `I ∘ SDR` with id `id`.
///
/// # Examples
///
/// ```
/// use ssr_core::family::composed;
/// use ssr_core::toys::BoundedCounter;
/// use ssr_runtime::family::{Family, FamilyRegistry};
/// use std::sync::Arc;
///
/// let family = composed("counter-sdr", |_| Some(BoundedCounter::new(3)));
/// assert_eq!(family.id(), "counter-sdr");
/// let mut registry = FamilyRegistry::new();
/// registry.register(Arc::new(family));
/// assert!(registry.resolve_label("counter-sdr").is_some());
/// ```
pub fn composed<I, F>(id: impl Into<String>, make: F) -> ComposedFamily<I>
where
    I: ResetInput,
    F: Fn(&Graph) -> Option<I> + Send + Sync + 'static,
{
    ComposedFamily {
        id: id.into(),
        make: Box::new(make),
        explore_move_bound: None,
    }
}

impl<I: ResetInput> ComposedFamily<I> {
    /// Attaches a closed-form bound on the *total* moves to normality,
    /// checked by exhaustive exploration. Only sound when the input
    /// contributes no unbounded moves of its own (e.g. the rule-less
    /// [`Agreement`] input, where every move is an SDR move).
    #[must_use]
    pub fn with_explore_move_bound<F>(mut self, bound: F) -> Self
    where
        F: Fn(&Graph) -> u64 + Send + Sync + 'static,
    {
        self.explore_move_bound = Some(Box::new(bound));
        self
    }

    fn instantiate(&self, graph: &Graph) -> Sdr<I> {
        Sdr::new((self.make)(graph).unwrap_or_else(|| {
            panic!(
                "family {:?} run on a graph it is not instantiable on \
                 (callers must check Family::instantiable first)",
                self.id
            )
        }))
    }
}

impl<I> Family for ComposedFamily<I>
where
    I: ResetInput + Clone + Send + Sync + 'static,
    I::State: ExploreState + Send + Sync,
{
    fn id(&self) -> &str {
        &self.id
    }

    fn instantiable(&self, graph: &Graph) -> bool {
        (self.make)(graph).is_some()
    }

    fn bounds(&self, graph: &Graph) -> Bounds {
        Bounds {
            rounds: Some(3 * graph.node_count() as u64),
            moves: None,
        }
    }

    fn run(
        &self,
        graph: &Graph,
        init: &InitPlan,
        daemon: &Daemon,
        seeds: RunSeeds,
        budget: ExecBudget,
        probe: Option<&mut dyn FamilyProbe>,
    ) -> FamilyRunOutcome {
        let nn = graph.node_count() as u64;
        let sdr = self.instantiate(graph);
        let rc = sdr.rule_count();
        let init = match init {
            InitPlan::Normal => sdr.initial_config(graph),
            _ => sdr.arbitrary_config(graph, seeds.init),
        };
        let check = self.instantiate(graph);
        let mut bridge = ProbeBridge::new(probe);
        let mut sim = Simulator::new(graph, sdr, init, daemon.clone(), seeds.sim);
        bridge.install_trace(&mut sim);
        let out = sim
            .execution()
            .cap(budget.cap)
            .intra_threads(budget.intra_threads)
            .observe(&mut bridge)
            .until(|gr, st| check.is_normal_config(gr, st))
            .run();
        bridge.collect_trace(&mut sim);
        let pp = max_sdr_moves_per_process(graph, sim.stats(), rc);
        let mut fo = FamilyRunOutcome::from_run(&out, sim.stats().steps);
        fo.max_moves_per_process = pp;
        // Cor. 5 (rounds) and Cor. 4 (per-process SDR moves).
        fo.bound_rounds = Some(3 * nn);
        fo.verdict = if out.reached && out.rounds_at_hit <= 3 * nn && pp <= 3 * nn + 3 {
            Verdict::Pass
        } else {
            Verdict::Fail
        };
        fo
    }

    fn requirements(&self, graph: &Graph) -> Option<Result<(), String>> {
        match (self.make)(graph) {
            // Not instantiable here: vacuously fine on this graph.
            None => Some(Ok(())),
            Some(input) => {
                Some(validate::check_requirements(&input, graph).map_err(|e| e.to_string()))
            }
        }
    }

    fn explore(&self) -> Option<&dyn ExploreFamily> {
        Some(self)
    }

    fn analysis(&self) -> Option<&dyn AnalyzeFamily> {
        Some(self)
    }
}

impl<I> ComposedFamily<I>
where
    I: ResetInput + Clone + Send + Sync + 'static,
    I::State: ExploreState + Send + Sync,
{
    /// The canonical exploration seed set: `γ_init`, the broadcast
    /// chain, and `samples` adversarial draws.
    fn seed_set(&self, graph: &Graph, scenario_seed: u64, samples: usize) -> SeedSet<I> {
        let algo = self.instantiate(graph);
        let mut inits = vec![
            algo.initial_config(graph),
            sdr_broadcast_chain(&algo, graph),
        ];
        inits.extend(
            explore_sample_seeds(scenario_seed, samples)
                .iter()
                .map(|&s| algo.arbitrary_config(graph, s)),
        );
        (algo, inits)
    }
}

impl<I> ExploreFamily for ComposedFamily<I>
where
    I: ResetInput + Clone + Send + Sync + 'static,
    I::State: ExploreState + Send + Sync,
{
    fn bounds(&self, graph: &Graph) -> Bounds {
        Bounds {
            rounds: Some(3 * graph.node_count() as u64),
            moves: self.explore_move_bound.as_ref().map(|f| f(graph)),
        }
    }

    fn explore(
        &self,
        graph: &Graph,
        scenario_seed: u64,
        samples: usize,
        opts: &ExploreOptions,
    ) -> ExploreReport {
        let (algo, inits) = self.seed_set(graph, scenario_seed, samples);
        let check = self.instantiate(graph);
        explore_with_replay(
            graph,
            &algo,
            &inits,
            move |gr, st| check.is_normal_config(gr, st),
            opts,
        )
    }

    fn stochastic_max(
        &self,
        graph: &Graph,
        scenario_seed: u64,
        samples: usize,
        trials: u64,
        cap: u64,
    ) -> StochasticMax {
        let (algo, inits) = self.seed_set(graph, scenario_seed, samples);
        let check = self.instantiate(graph);
        stochastic_max_runs(
            graph,
            &algo,
            &inits,
            move |gr, st| check.is_normal_config(gr, st),
            scenario_seed,
            trials,
            cap,
        )
    }
}

impl<I> AnalyzeFamily for ComposedFamily<I>
where
    I: ResetInput + Clone + Send + Sync + 'static,
    I::State: ExploreState + Send + Sync,
{
    fn rule_names(&self, graph: &Graph) -> Vec<String> {
        ssr_runtime::analysis::rule_names(&self.instantiate(graph))
    }

    fn footprints(&self, graph: &Graph, graph_name: &str, opts: &AnalyzeOptions) -> GraphAnalysis {
        let (algo, inits) = self.seed_set(graph, opts.scenario_seed, opts.samples);
        collect_footprints(graph, graph_name, &algo, &inits, opts)
    }

    fn audit(&self, graph: &Graph, opts: &AnalyzeOptions) -> RngAudit {
        let (algo, inits) = self.seed_set(graph, opts.scenario_seed, opts.samples);
        audit_runs(graph, &algo, &inits, opts)
    }
}

/// The pure-SDR family over the rule-less [`Agreement`] input (label
/// `sdr-agreement(domain)`): every move is an SDR move, so exhaustive
/// exploration additionally checks the summed Cor. 4 total-move bound
/// `n · (3n + 3)`.
pub fn sdr_agreement_family(domain: u32) -> ComposedFamily<Agreement> {
    composed(sdr_agreement_spec(domain).label(), move |_| {
        Some(Agreement::new(domain))
    })
    .with_explore_move_bound(|g| {
        let nn = g.node_count() as u64;
        nn * (3 * nn + 3)
    })
}

/// The spec handle `sdr-agreement(domain)`.
pub fn sdr_agreement_spec(domain: u32) -> AlgorithmSpec {
    AlgorithmSpec::paren("sdr-agreement", domain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toys::BoundedCounter;
    use ssr_graph::generators;

    fn seeds() -> RunSeeds {
        RunSeeds {
            init: 0xFACE,
            sim: 0xBEEF,
            fault: 0xF00D,
        }
    }

    #[test]
    fn composed_family_passes_generic_bounds() {
        let fam = composed("counter-sdr", |_| Some(BoundedCounter::new(4)));
        let g = generators::ring(8);
        assert!(fam.instantiable(&g));
        let out = fam.run(
            &g,
            &InitPlan::Arbitrary,
            &Daemon::RandomSubset { p: 0.5 },
            seeds(),
            2_000_000.into(),
            None,
        );
        assert_eq!(out.verdict, Verdict::Pass, "{out:?}");
        assert!(out.reached);
        assert_eq!(out.bound_rounds, Some(24));
    }

    #[test]
    fn composed_family_normal_init_is_instant() {
        let fam = composed("counter-sdr", |_| Some(BoundedCounter::new(2)));
        let g = generators::path(4);
        let out = fam.run(
            &g,
            &InitPlan::Normal,
            &Daemon::Central,
            seeds(),
            100_000.into(),
            None,
        );
        assert_eq!(out.rounds, 0, "γ_init is already normal");
        assert_eq!(out.verdict, Verdict::Pass);
    }

    #[test]
    fn composed_family_checks_requirements() {
        let fam = composed("counter-sdr", |_| Some(BoundedCounter::new(3)));
        let g = generators::star(5);
        assert_eq!(fam.requirements(&g), Some(Ok(())));
    }

    #[test]
    fn composed_family_explores_exactly() {
        let fam = sdr_agreement_family(2);
        let g = generators::path(3);
        let ef = Family::explore(&fam).expect("composed families explore");
        let report = ef.explore(&g, 0xE13, 2, &ExploreOptions::default());
        let (summary, replay_ok) = report.result.expect("within limits");
        assert!(summary.verified);
        assert!(replay_ok);
        let worst = summary.worst.unwrap();
        let bounds = ExploreFamily::bounds(&fam, &g);
        assert!(worst.rounds <= bounds.rounds.unwrap());
        assert!(worst.moves <= bounds.moves.unwrap());
        let stoch = ef.stochastic_max(&g, 0xE13, 2, 1, 100_000);
        assert!(stoch.all_reached);
        assert!(stoch.moves <= worst.moves);
        assert!(stoch.rounds <= worst.rounds);
    }

    #[test]
    fn sdr_agreement_labels() {
        assert_eq!(sdr_agreement_spec(8).label(), "sdr-agreement(8)");
        assert_eq!(sdr_agreement_family(8).id(), "sdr-agreement(8)");
    }

    #[test]
    #[should_panic(expected = "not instantiable")]
    fn run_panics_without_instantiability_check() {
        let fam = composed("never", |_| None::<BoundedCounter>);
        let g = generators::path(2);
        let _ = fam.run(
            &g,
            &InitPlan::Normal,
            &Daemon::Central,
            seeds(),
            10.into(),
            None,
        );
    }
}
