//! Structured adversarial SDR configurations shared by campaigns,
//! explorers, and benches.

use ssr_graph::Graph;

use crate::input::ResetInput;
use crate::sdr::Sdr;
use crate::state::{Composed, SdrState, Status};

/// A hand-crafted near-worst-case SDR configuration: one long reset
/// branch in mid-broadcast — node `i` has status `RB` with distance `i`
/// (a maximal-depth chain per Lemma 7), the far end already in
/// feedback, and the input reset everywhere.
///
/// Feedback must climb the whole chain before the completion wave walks
/// back down, which is the mechanism behind the `3n`-round bound.
pub fn sdr_broadcast_chain<I: ResetInput>(sdr: &Sdr<I>, graph: &Graph) -> Vec<Composed<I::State>> {
    let n = graph.node_count();
    graph
        .nodes()
        .map(|u| {
            let i = u.index();
            let status = if i + 1 == n { Status::RF } else { Status::RB };
            Composed::new(SdrState::new(status, i as u32), sdr.input().reset_state(u))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toys::Agreement;
    use ssr_graph::generators;

    #[test]
    fn broadcast_chain_shape() {
        let g = generators::path(5);
        let sdr = Sdr::new(Agreement::new(3));
        let cfg = sdr_broadcast_chain(&sdr, &g);
        assert_eq!(cfg[0].sdr, SdrState::new(Status::RB, 0));
        assert_eq!(cfg[3].sdr, SdrState::new(Status::RB, 3));
        assert_eq!(cfg[4].sdr, SdrState::new(Status::RF, 4));
        assert!(cfg.iter().all(|c| c.inner == 0), "input reset everywhere");
    }
}
