//! Flat struct-of-arrays columns for SDR states (see
//! `ssr_runtime::soa`).
//!
//! [`SdrColumns`] packs the status into one byte per node and keeps the
//! reset distances in their own `u32` array — 5 bytes of column data
//! per node instead of the 8-byte padded [`SdrState`] row, and each
//! analysis pass (status census, distance histogram) streams exactly
//! the array it reads. [`ComposedColumns`] transposes the product state
//! `I ∘ SDR` into SDR columns plus whatever column set the input
//! algorithm provides, composing layouts the same way [`Composed`]
//! composes states.
//!
//! # Examples
//!
//! ```
//! use ssr_core::columns::SdrColumns;
//! use ssr_core::{SdrState, Status};
//! use ssr_runtime::StateColumns;
//!
//! let cols = SdrColumns::from_states(&[SdrState::clean(), SdrState::root()]);
//! assert_eq!(cols.statuses(), &[0, 1]);
//! assert_eq!(cols.get(1), SdrState::root());
//! ```

use ssr_runtime::StateColumns;

use crate::state::{Composed, SdrState, Status};

const STATUS_C: u8 = 0;
const STATUS_RB: u8 = 1;
const STATUS_RF: u8 = 2;

fn encode_status(status: Status) -> u8 {
    match status {
        Status::C => STATUS_C,
        Status::RB => STATUS_RB,
        Status::RF => STATUS_RF,
    }
}

fn decode_status(byte: u8) -> Status {
    match byte {
        STATUS_C => Status::C,
        STATUS_RB => Status::RB,
        STATUS_RF => Status::RF,
        _ => unreachable!("SdrColumns only stores encoded statuses"),
    }
}

/// Columnar [`SdrState`]: one status byte and one `u32` distance per
/// node, in parallel arrays.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SdrColumns {
    statuses: Vec<u8>,
    dists: Vec<u32>,
}

impl SdrColumns {
    /// The status bytes (`0 = C`, `1 = RB`, `2 = RF`), one per node.
    pub fn statuses(&self) -> &[u8] {
        &self.statuses
    }

    /// The reset distances, one per node (arbitrary where the status
    /// is `C`, exactly as in the row form).
    pub fn dists(&self) -> &[u32] {
        &self.dists
    }

    /// Counts nodes with each status, in `(C, RB, RF)` order — the
    /// canonical one-pass census over the status column.
    pub fn status_census(&self) -> (usize, usize, usize) {
        let mut counts = [0usize; 3];
        for &b in &self.statuses {
            counts[b as usize] += 1;
        }
        (counts[0], counts[1], counts[2])
    }
}

impl StateColumns for SdrColumns {
    type State = SdrState;

    fn clear(&mut self) {
        self.statuses.clear();
        self.dists.clear();
    }

    fn push(&mut self, state: &SdrState) {
        self.statuses.push(encode_status(state.status));
        self.dists.push(state.dist);
    }

    fn len(&self) -> usize {
        self.statuses.len()
    }

    fn get(&self, i: usize) -> SdrState {
        SdrState {
            status: decode_status(self.statuses[i]),
            dist: self.dists[i],
        }
    }

    fn heap_bytes(&self) -> usize {
        self.statuses.capacity() + self.dists.capacity() * std::mem::size_of::<u32>()
    }
}

/// Columnar product state `I ∘ SDR`: SDR columns next to the input
/// algorithm's own column set, mirroring how [`Composed`] pairs the
/// states.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ComposedColumns<C> {
    sdr: SdrColumns,
    inner: C,
}

impl<C> ComposedColumns<C> {
    /// The SDR component columns.
    pub fn sdr(&self) -> &SdrColumns {
        &self.sdr
    }

    /// The input-algorithm component columns.
    pub fn inner(&self) -> &C {
        &self.inner
    }
}

impl<C: StateColumns> StateColumns for ComposedColumns<C> {
    type State = Composed<C::State>;

    fn clear(&mut self) {
        self.sdr.clear();
        self.inner.clear();
    }

    fn push(&mut self, state: &Composed<C::State>) {
        self.sdr.push(&state.sdr);
        self.inner.push(&state.inner);
    }

    fn len(&self) -> usize {
        self.sdr.len()
    }

    fn get(&self, i: usize) -> Composed<C::State> {
        Composed {
            sdr: self.sdr.get(i),
            inner: self.inner.get(i),
        }
    }

    fn heap_bytes(&self) -> usize {
        self.sdr.heap_bytes() + self.inner.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_runtime::ScalarColumns;

    fn sample() -> Vec<SdrState> {
        vec![
            SdrState::clean(),
            SdrState::root(),
            SdrState::new(Status::RF, 7),
            SdrState::new(Status::RB, 3),
        ]
    }

    #[test]
    fn sdr_columns_round_trip() {
        let states = sample();
        let cols = SdrColumns::from_states(&states);
        assert_eq!(cols.len(), states.len());
        assert_eq!(cols.to_states(), states);
        assert_eq!(cols.statuses(), &[0, 1, 2, 1]);
        assert_eq!(cols.dists(), &[0, 0, 7, 3]);
        assert_eq!(cols.status_census(), (1, 2, 1));
        assert!(cols.heap_bytes() >= 4 + 4 * 4);
    }

    #[test]
    fn sdr_columns_clear_and_reuse() {
        let mut cols = SdrColumns::from_states(&sample());
        cols.clear();
        assert!(cols.is_empty());
        cols.push(&SdrState::root());
        assert_eq!(cols.get(0), SdrState::root());
    }

    #[test]
    fn composed_columns_round_trip() {
        let states: Vec<Composed<u64>> = vec![
            Composed::clean(11),
            Composed::new(SdrState::root(), 22),
            Composed::new(SdrState::new(Status::RF, 2), 33),
        ];
        let cols: ComposedColumns<ScalarColumns<u64>> = ComposedColumns::from_states(&states);
        assert_eq!(cols.len(), 3);
        assert_eq!(cols.to_states(), states);
        assert_eq!(cols.sdr().statuses(), &[0, 1, 2]);
        assert_eq!(cols.inner().values(), &[11, 22, 33]);
        assert_eq!(
            cols.heap_bytes(),
            cols.sdr().heap_bytes() + cols.inner().heap_bytes()
        );
    }
}
