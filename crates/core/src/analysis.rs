//! Execution analysis for `I ∘ SDR` (§4): alive/dead roots, reset
//! branches, segments, and the per-segment rule language of
//! Corollary 3.
//!
//! These are *observers*: they never influence the execution, they
//! verify that it conforms to the paper's structural theorems:
//!
//! * Theorem 3 / Remark 4 — alive roots are never created, so the alive
//!   root set shrinks monotonically;
//! * Remark 5 — at most `n + 1` segments per execution;
//! * Corollary 3 — per process and segment, the executed rules form a
//!   word of `(C + ε) · words_I · (RB + R + ε) · (RF + ε)`.

use std::collections::BTreeSet;

use ssr_graph::{Graph, NodeId};
use ssr_runtime::{ConfigView, Observer, RuleId, Simulator, StepOutcome};

use crate::input::ResetInput;
use crate::sdr::{Sdr, RULE_C, RULE_R, RULE_RB, RULE_RF};
use crate::state::Composed;

/// Classification of a composed rule for segment-language checking.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RuleKind {
    /// SDR `rule_C`.
    Clean,
    /// SDR `rule_RB`.
    Broadcast,
    /// SDR `rule_R`.
    Root,
    /// SDR `rule_RF`.
    Feedback,
    /// Any rule of the input algorithm.
    Inner,
}

impl RuleKind {
    /// Classifies a composed rule id.
    pub fn of(rule: RuleId) -> RuleKind {
        match rule {
            RULE_RB => RuleKind::Broadcast,
            RULE_RF => RuleKind::Feedback,
            RULE_C => RuleKind::Clean,
            RULE_R => RuleKind::Root,
            _ => RuleKind::Inner,
        }
    }

    /// Whether this is one of SDR's four rules.
    pub fn is_sdr(self) -> bool {
        !matches!(self, RuleKind::Inner)
    }
}

/// All alive roots (Definition 1) of a configuration.
pub fn alive_roots<I: ResetInput>(
    sdr: &Sdr<I>,
    graph: &Graph,
    states: &[Composed<I::State>],
) -> BTreeSet<NodeId> {
    let view = ConfigView::new(graph, states);
    graph
        .nodes()
        .filter(|&u| sdr.is_alive_root(u, &view))
        .collect()
}

/// All dead roots (Definition 1) of a configuration.
pub fn dead_roots<I: ResetInput>(
    sdr: &Sdr<I>,
    graph: &Graph,
    states: &[Composed<I::State>],
) -> BTreeSet<NodeId> {
    let view = ConfigView::new(graph, states);
    graph
        .nodes()
        .filter(|&u| sdr.is_dead_root(u, &view))
        .collect()
}

/// The reset parents of `u` (Definition 4): neighbors `v` with
/// `RParent(v, u)`.
pub fn reset_parents<I: ResetInput>(
    sdr: &Sdr<I>,
    graph: &Graph,
    states: &[Composed<I::State>],
    u: NodeId,
) -> Vec<NodeId> {
    let view = ConfigView::new(graph, states);
    graph
        .neighbors(u)
        .iter()
        .copied()
        .filter(|&v| sdr.is_reset_parent(v, u, &view))
        .collect()
}

/// The reset children of `v`: neighbors `u` with `RParent(v, u)`.
pub fn reset_children<I: ResetInput>(
    sdr: &Sdr<I>,
    graph: &Graph,
    states: &[Composed<I::State>],
    v: NodeId,
) -> Vec<NodeId> {
    let view = ConfigView::new(graph, states);
    graph
        .neighbors(v)
        .iter()
        .copied()
        .filter(|&u| sdr.is_reset_parent(v, u, &view))
        .collect()
}

/// Maximum depth over all reset branches (Definition 5); the root sits
/// at depth 0, so Lemma 7.1 bounds the result by `n − 1`.
///
/// Returns `None` when the configuration has no branch (no root).
pub fn max_branch_depth<I: ResetInput>(
    sdr: &Sdr<I>,
    graph: &Graph,
    states: &[Composed<I::State>],
) -> Option<usize> {
    let view = ConfigView::new(graph, states);
    let n = graph.node_count();
    // RParent edges strictly increase `dist`, so processing nodes by
    // ascending dist yields a topological order of the branch DAG.
    let mut order: Vec<NodeId> = graph.nodes().collect();
    order.sort_by_key(|&u| states[u.index()].sdr.dist);
    let mut depth: Vec<Option<usize>> = vec![None; n];
    for &u in &order {
        if sdr.is_alive_root(u, &view) || sdr.is_dead_root(u, &view) {
            depth[u.index()] = Some(0);
        }
    }
    for &u in &order {
        for &v in graph.neighbors(u) {
            if sdr.is_reset_parent(v, u, &view) {
                if let Some(dv) = depth[v.index()] {
                    let candidate = dv + 1;
                    if depth[u.index()].is_none_or(|du| du < candidate) {
                        depth[u.index()] = Some(candidate);
                    }
                }
            }
        }
    }
    depth.into_iter().flatten().max()
}

/// Per-process automaton for the segment rule language of Corollary 3:
/// `(rule_C + ε) · words_I · (rule_RB + rule_R + ε) · (rule_RF + ε)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// Nothing consumed: `rule_C` still allowed.
    Fresh,
    /// Inside `words_I` (after `rule_C` or an inner move).
    Words,
    /// After `rule_RB`/`rule_R`: only `rule_RF` may follow.
    Reset,
    /// After `rule_RF`: nothing may follow within this segment.
    Done,
}

impl Phase {
    fn advance(self, kind: RuleKind) -> Result<Phase, ()> {
        use Phase::*;
        use RuleKind::*;
        match (self, kind) {
            (Fresh, Clean) => Ok(Words),
            (Fresh | Words, Inner) => Ok(Words),
            (Fresh | Words, Broadcast | Root) => Ok(Reset),
            (Fresh | Words | Reset, Feedback) => Ok(Done),
            _ => Err(()),
        }
    }
}

/// Summary emitted by [`SegmentTracker::report`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SegmentReport {
    /// Number of segments observed so far (≥ 1; Remark 5 bounds it by
    /// `n + 1`).
    pub segments: u64,
    /// Alive-root counts at each segment boundary (strictly decreasing).
    pub alive_roots_per_segment: Vec<usize>,
    /// Human-readable descriptions of every violated theorem (empty in
    /// a correct implementation).
    pub violations: Vec<String>,
}

impl SegmentReport {
    /// Whether every checked theorem held.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Observes an `I ∘ SDR` execution step by step, checking Theorem 3
/// (alive-root monotonicity), Remark 5 (segment count), and Corollary 3
/// (per-segment rule language).
///
/// Drive it manually:
///
/// ```
/// use ssr_core::{toys::Agreement, Sdr, SegmentTracker};
/// use ssr_graph::generators;
/// use ssr_runtime::{Daemon, Simulator, StepOutcome};
///
/// let g = generators::ring(5);
/// let sdr = Sdr::new(Agreement::new(3));
/// let init = sdr.arbitrary_config(&g, 99);
/// let mut tracker = SegmentTracker::new(&sdr, &g, &init);
/// let mut sim = Simulator::new(&g, sdr, init, Daemon::Central, 1);
/// while let StepOutcome::Progress { .. } = sim.step() {
///     tracker.after_step(
///         sim.algorithm(),
///         sim.graph(),
///         sim.states(),
///         sim.last_activated(),
///     );
/// }
/// let report = tracker.report();
/// assert!(report.ok(), "{:?}", report.violations);
/// assert!(report.segments <= 5 + 1); // Remark 5
/// ```
#[derive(Clone, Debug)]
pub struct SegmentTracker {
    alive: BTreeSet<NodeId>,
    segments: u64,
    alive_history: Vec<usize>,
    phases: Vec<Phase>,
    violations: Vec<String>,
    n: usize,
}

impl SegmentTracker {
    /// Starts tracking from the initial configuration.
    pub fn new<I: ResetInput>(sdr: &Sdr<I>, graph: &Graph, states: &[Composed<I::State>]) -> Self {
        let alive = alive_roots(sdr, graph, states);
        let n = graph.node_count();
        SegmentTracker {
            alive_history: vec![alive.len()],
            alive,
            segments: 1,
            phases: vec![Phase::Fresh; n],
            violations: Vec::new(),
            n,
        }
    }

    /// Records one step: `states` is the configuration *after* the step
    /// and `activated` the `(process, rule)` moves that produced it.
    pub fn after_step<I: ResetInput>(
        &mut self,
        sdr: &Sdr<I>,
        graph: &Graph,
        states: &[Composed<I::State>],
        activated: &[(NodeId, RuleId)],
    ) {
        // Corollary 3: the moves of this step extend the current
        // segment's per-process words (the boundary step still belongs
        // to the segment it ends, Definition 3).
        for &(u, rule) in activated {
            let kind = RuleKind::of(rule);
            match self.phases[u.index()].advance(kind) {
                Ok(next) => self.phases[u.index()] = next,
                Err(()) => self.violations.push(format!(
                    "Corollary 3 violated: {u:?} executed {kind:?} in phase {:?} (segment {})",
                    self.phases[u.index()],
                    self.segments
                )),
            }
        }

        // Theorem 3 / Remark 4: no alive root is ever created.
        let now = alive_roots(sdr, graph, states);
        if !now.is_subset(&self.alive) {
            let created: Vec<_> = now.difference(&self.alive).collect();
            self.violations.push(format!(
                "Theorem 3 violated: alive roots created: {created:?}"
            ));
        }

        // Definition 3: segment boundary when |AR| decreases.
        if now.len() < self.alive.len() {
            self.segments += 1;
            self.alive_history.push(now.len());
            self.phases.fill(Phase::Fresh);
            if self.segments > (self.n as u64) + 1 {
                self.violations.push(format!(
                    "Remark 5 violated: {} segments on {} processes",
                    self.segments, self.n
                ));
            }
        }
        self.alive = now;
    }

    /// The summary so far.
    pub fn report(&self) -> SegmentReport {
        SegmentReport {
            segments: self.segments,
            alive_roots_per_segment: self.alive_history.clone(),
            violations: self.violations.clone(),
        }
    }
}

/// [`SegmentTracker`] as a plug-in [`Observer`]: attach it to an
/// execution and every step feeds the Theorem 3 / Remark 5 /
/// Corollary 3 checks — no hand-rolled stepping loop required.
///
/// # Examples
///
/// ```
/// use ssr_core::{toys::Agreement, Sdr, SegmentObserver};
/// use ssr_graph::generators;
/// use ssr_runtime::{Daemon, Simulator};
///
/// let g = generators::ring(5);
/// let sdr = Sdr::new(Agreement::new(3));
/// let init = sdr.arbitrary_config(&g, 99);
/// let mut probe = SegmentObserver::new(&sdr, &g, &init);
/// let mut sim = Simulator::new(&g, sdr, init, Daemon::Central, 1);
/// sim.execution().cap(100_000).observe(&mut probe).run();
/// let report = probe.report();
/// assert!(report.ok(), "{:?}", report.violations);
/// assert!(report.segments <= 5 + 1); // Remark 5
/// ```
#[derive(Clone, Debug)]
pub struct SegmentObserver {
    tracker: SegmentTracker,
}

impl SegmentObserver {
    /// Starts tracking from the initial configuration (the same
    /// arguments as [`SegmentTracker::new`]).
    pub fn new<I: ResetInput>(sdr: &Sdr<I>, graph: &Graph, states: &[Composed<I::State>]) -> Self {
        SegmentObserver {
            tracker: SegmentTracker::new(sdr, graph, states),
        }
    }

    /// The summary so far.
    pub fn report(&self) -> SegmentReport {
        self.tracker.report()
    }

    /// The underlying tracker (for incremental inspection).
    pub fn tracker(&self) -> &SegmentTracker {
        &self.tracker
    }
}

impl<I: ResetInput> Observer<Sdr<I>> for SegmentObserver {
    fn on_step(&mut self, sim: &Simulator<'_, Sdr<I>>, _outcome: &StepOutcome) {
        self.tracker.after_step(
            sim.algorithm(),
            sim.graph(),
            sim.states(),
            sim.last_activated(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{SdrState, Status};
    use crate::toys::{Agreement, BoundedCounter};
    use ssr_graph::generators;
    use ssr_runtime::{Daemon, Simulator, StepOutcome};

    type St = Composed<u32>;

    fn mk(status: Status, dist: u32, x: u32) -> St {
        Composed::new(SdrState::new(status, dist), x)
    }

    #[test]
    fn alive_roots_found() {
        let g = generators::path(3);
        let sdr = Sdr::new(Agreement::new(3));
        // Node 0: RB root (d=0); node 1: RB d=1 (child); node 2: clean but
        // inconsistent with nobody (all zeros) -> not a root.
        let states = vec![
            mk(Status::RB, 0, 0),
            mk(Status::RB, 1, 0),
            mk(Status::C, 0, 0),
        ];
        let roots = alive_roots(&sdr, &g, &states);
        assert!(roots.contains(&NodeId(0)));
        assert!(!roots.contains(&NodeId(1)));
        assert!(!roots.contains(&NodeId(2)));
    }

    #[test]
    fn dead_roots_found() {
        let g = generators::path(2);
        let sdr = Sdr::new(Agreement::new(3));
        let states = vec![mk(Status::RF, 0, 0), mk(Status::RF, 1, 0)];
        let dead = dead_roots(&sdr, &g, &states);
        assert_eq!(dead.into_iter().collect::<Vec<_>>(), vec![NodeId(0)]);
    }

    #[test]
    fn reset_parent_relation() {
        let g = generators::path(3);
        let sdr = Sdr::new(Agreement::new(3));
        let states = vec![
            mk(Status::RB, 0, 0),
            mk(Status::RB, 1, 0),
            mk(Status::RB, 2, 0),
        ];
        assert_eq!(reset_parents(&sdr, &g, &states, NodeId(1)), vec![NodeId(0)]);
        assert_eq!(reset_parents(&sdr, &g, &states, NodeId(2)), vec![NodeId(1)]);
        assert!(reset_parents(&sdr, &g, &states, NodeId(0)).is_empty());
        assert_eq!(
            reset_children(&sdr, &g, &states, NodeId(0)),
            vec![NodeId(1)]
        );
    }

    #[test]
    fn rf_child_of_rb_parent_is_branch_edge() {
        // Definition 4 allows st_u = RF with st_v = RB (the RB∗RF∗ shape
        // of Lemma 7.2).
        let g = generators::path(2);
        let sdr = Sdr::new(Agreement::new(3));
        let states = vec![mk(Status::RB, 0, 0), mk(Status::RF, 1, 0)];
        assert_eq!(reset_parents(&sdr, &g, &states, NodeId(1)), vec![NodeId(0)]);
    }

    #[test]
    fn branch_depth_bounded_by_lemma_7() {
        let g = generators::path(4);
        let sdr = Sdr::new(Agreement::new(3));
        let states = vec![
            mk(Status::RB, 0, 0),
            mk(Status::RB, 1, 0),
            mk(Status::RB, 2, 0),
            mk(Status::RB, 3, 0),
        ];
        assert_eq!(max_branch_depth(&sdr, &g, &states), Some(3));
        let clean: Vec<St> = (0..4).map(|_| mk(Status::C, 0, 0)).collect();
        assert_eq!(max_branch_depth(&sdr, &g, &clean), None);
    }

    #[test]
    fn rule_kind_classification() {
        assert_eq!(RuleKind::of(RULE_RB), RuleKind::Broadcast);
        assert_eq!(RuleKind::of(RULE_RF), RuleKind::Feedback);
        assert_eq!(RuleKind::of(RULE_C), RuleKind::Clean);
        assert_eq!(RuleKind::of(RULE_R), RuleKind::Root);
        assert_eq!(RuleKind::of(RuleId(4)), RuleKind::Inner);
        assert!(RuleKind::of(RULE_R).is_sdr());
        assert!(!RuleKind::of(RuleId(7)).is_sdr());
    }

    #[test]
    fn phase_automaton_accepts_canonical_words() {
        use RuleKind::*;
        let accept = |word: &[RuleKind]| {
            let mut p = Phase::Fresh;
            for &k in word {
                p = p.advance(k).expect("word should be accepted");
            }
        };
        accept(&[Clean, Inner, Inner, Broadcast, Feedback]);
        accept(&[Root, Feedback]);
        accept(&[Inner, Inner]);
        accept(&[Feedback]);
        accept(&[Clean]);
    }

    #[test]
    fn phase_automaton_rejects_bad_words() {
        use RuleKind::*;
        let reject = |word: &[RuleKind]| {
            let mut p = Phase::Fresh;
            let mut failed = false;
            for &k in word {
                match p.advance(k) {
                    Ok(next) => p = next,
                    Err(()) => {
                        failed = true;
                        break;
                    }
                }
            }
            assert!(failed, "word {word:?} should be rejected");
        };
        reject(&[Clean, Clean]);
        reject(&[Broadcast, Inner]);
        reject(&[Feedback, Clean]);
        reject(&[Broadcast, Root]);
        reject(&[Inner, Clean]);
    }

    fn run_tracked(n: usize, seed: u64, daemon: Daemon) -> SegmentReport {
        let g = generators::random_connected(n, n / 2, seed);
        let sdr = Sdr::new(BoundedCounter::new(6));
        let init = sdr.arbitrary_config(&g, seed ^ 0xF00D);
        let mut tracker = SegmentTracker::new(&sdr, &g, &init);
        let mut sim = Simulator::new(&g, sdr, init, daemon, seed);
        for _ in 0..100_000 {
            match sim.step() {
                StepOutcome::Terminal => break,
                StepOutcome::Progress { .. } => tracker.after_step(
                    sim.algorithm(),
                    sim.graph(),
                    sim.states(),
                    sim.last_activated(),
                ),
            }
        }
        tracker.report()
    }

    #[test]
    fn tracked_runs_satisfy_structural_theorems() {
        for seed in 0..8 {
            let report = run_tracked(10, seed, Daemon::RandomSubset { p: 0.5 });
            assert!(report.ok(), "seed {seed}: {:?}", report.violations);
            assert!(report.segments <= 11, "Remark 5 violated");
            // Alive-root counts weakly decrease across boundaries.
            for w in report.alive_roots_per_segment.windows(2) {
                assert!(w[1] < w[0], "boundaries must shrink the root set");
            }
        }
    }

    #[test]
    fn observer_reproduces_manual_tracking() {
        for seed in 0..4 {
            let manual = run_tracked(10, seed, Daemon::RandomSubset { p: 0.5 });
            let g = generators::random_connected(10, 5, seed);
            let sdr = Sdr::new(BoundedCounter::new(6));
            let init = sdr.arbitrary_config(&g, seed ^ 0xF00D);
            let mut probe = SegmentObserver::new(&sdr, &g, &init);
            let mut sim = Simulator::new(&g, sdr, init, Daemon::RandomSubset { p: 0.5 }, seed);
            sim.execution().cap(100_000).observe(&mut probe).run();
            assert_eq!(probe.report(), manual, "seed {seed}");
        }
    }

    #[test]
    fn tracked_runs_under_adversarial_daemons() {
        for daemon in [
            Daemon::PreferHighRules,
            Daemon::PreferLowRules,
            Daemon::LexMin,
        ] {
            let report = run_tracked(8, 3, daemon.clone());
            assert!(report.ok(), "{daemon:?}: {:?}", report.violations);
        }
    }
}
