//! **Algorithm SDR** — the Self-stabilizing Distributed cooperative Reset
//! of Devismes & Johnen (ICDCS 2019), §3 of the paper, plus the analysis
//! machinery of §4.
//!
//! SDR reinitializes an input algorithm `I` when inconsistencies are
//! locally detected. It is *multi-initiator* (any process detecting an
//! inconsistency may start a reset) and *cooperative* (concurrent resets
//! coordinate through a distance DAG so they do not overlap). The
//! composition `I ∘ SDR` is self-stabilizing for `I`'s specification:
//! within at most `3n` rounds the system reaches a *normal configuration*
//! (every process satisfies `P_Clean ∧ P_ICorrect`), and each process
//! executes at most `3n + 3` SDR moves along the way.
//!
//! # Using the crate
//!
//! 1. Implement [`ResetInput`] for your algorithm: its rules (written
//!    *without* the `P_Clean ∧ P_ICorrect` gate — the composition adds
//!    it, enforcing the paper's Requirement 2c), the local-checkability
//!    predicate `P_ICorrect`, the reset predicate `P_reset`, and the
//!    pre-defined reset state.
//! 2. Wrap it in [`Sdr`] and run it with `ssr_runtime::Simulator`.
//!
//! ```
//! use ssr_core::{toys::BoundedCounter, Sdr};
//! use ssr_graph::generators;
//! use ssr_runtime::{Daemon, Simulator};
//!
//! let g = generators::ring(6);
//! let algo = Sdr::new(BoundedCounter::new(8));
//! // An adversarial initial configuration: every process gets an
//! // arbitrary state (counter values AND reset variables).
//! let init = algo.arbitrary_config(&g, 0xBAD_5EED);
//! let mut sim = Simulator::new(&g, algo, init, Daemon::RandomSubset { p: 0.5 }, 7);
//! let out = sim
//!     .execution()
//!     .cap(100_000)
//!     .until(|graph, states| Sdr::new(BoundedCounter::new(8)).is_normal_config(graph, states))
//!     .run();
//! assert!(out.reached);
//! assert!(out.rounds_at_hit <= 3 * 6); // Corollary 5: ≤ 3n rounds
//! ```

#![forbid(unsafe_code)]

mod analysis;
pub mod columns;
pub mod family;
mod input;
mod sdr;
mod state;
pub mod toys;
pub mod validate;
pub mod workloads;

pub use analysis::{
    alive_roots, dead_roots, max_branch_depth, reset_children, reset_parents, RuleKind,
    SegmentObserver, SegmentReport, SegmentTracker,
};
pub use columns::{ComposedColumns, SdrColumns};
pub use family::{composed, ComposedFamily};
pub use input::{ResetInput, Standalone};
pub use sdr::{Sdr, RULE_C, RULE_R, RULE_RB, RULE_RF, SDR_RULE_COUNT};
pub use state::{Composed, SdrState, Status};
