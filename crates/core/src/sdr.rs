//! Algorithm 1 of the paper: SDR's predicates, macros, and rules, and
//! the composition `I ∘ SDR` as a runtime [`Algorithm`].

use ssr_graph::{Graph, NodeId};
use ssr_runtime::rng::Xoshiro256StarStar;
use ssr_runtime::{Algorithm, ConfigView, MapView, RuleId, RuleMask, StateView};

use crate::input::ResetInput;
use crate::state::{Composed, SdrState, Status};

/// `rule_RB(u) : P_RB(u) → compute(u); reset(u);`
pub const RULE_RB: RuleId = RuleId(0);
/// `rule_RF(u) : P_RF(u) → st_u := RF;`
pub const RULE_RF: RuleId = RuleId(1);
/// `rule_C(u) : P_C(u) → st_u := C;`
pub const RULE_C: RuleId = RuleId(2);
/// `rule_R(u) : P_Up(u) → beRoot(u); reset(u);`
pub const RULE_R: RuleId = RuleId(3);
/// SDR has four rules; composed input rules are offset by this amount.
pub const SDR_RULE_COUNT: usize = 4;

/// Projects the inner component out of a composed state (for
/// [`MapView`]).
fn inner_of<S>(c: &Composed<S>) -> &S {
    &c.inner
}

/// The composition `I ∘ SDR` (§2.5 + Algorithm 1).
///
/// Rules `0..4` are SDR's (`RB`, `RF`, `C`, `R`); rules `4..` are the
/// input algorithm's, gated by `P_Clean(u) ∧ P_ICorrect(u)`
/// (Requirement 2c). All of the paper's predicates are exposed as public
/// methods so analyses and tests can evaluate them on any configuration.
///
/// See the crate-level documentation for an end-to-end example.
#[derive(Clone, Debug)]
pub struct Sdr<I> {
    input: I,
}

impl<I: ResetInput> Sdr<I> {
    /// Composes `input` with SDR.
    pub fn new(input: I) -> Self {
        Sdr { input }
    }

    /// The input algorithm.
    pub fn input(&self) -> &I {
        &self.input
    }

    // ---- small accessors ----

    #[inline]
    fn st<V: StateView<Composed<I::State>>>(&self, view: &V, v: NodeId) -> Status {
        view.state(v).sdr.status
    }

    #[inline]
    fn dist<V: StateView<Composed<I::State>>>(&self, view: &V, v: NodeId) -> u32 {
        view.state(v).sdr.dist
    }

    // ---- input-algorithm predicates lifted to composed states ----

    /// `P_ICorrect(u)` of the input algorithm, on the inner components.
    pub fn p_icorrect<V: StateView<Composed<I::State>>>(&self, u: NodeId, view: &V) -> bool {
        let iv = MapView::new(view, inner_of);
        self.input.p_icorrect(u, &iv)
    }

    /// `P_reset(v)` of the input algorithm, on `v`'s inner component.
    pub fn p_reset<V: StateView<Composed<I::State>>>(&self, v: NodeId, view: &V) -> bool {
        self.input.p_reset(v, &view.state(v).inner)
    }

    // ---- Algorithm 1 predicates ----

    /// `P_Correct(u) ≡ st_u = C ⇒ P_ICorrect(u)`.
    pub fn p_correct<V: StateView<Composed<I::State>>>(&self, u: NodeId, view: &V) -> bool {
        self.st(view, u) != Status::C || self.p_icorrect(u, view)
    }

    /// `P_Clean(u) ≡ ∀v ∈ N[u], st_v = C`.
    pub fn p_clean<V: StateView<Composed<I::State>>>(&self, u: NodeId, view: &V) -> bool {
        view.graph()
            .closed_neighborhood(u)
            .all(|v| self.st(view, v) == Status::C)
    }

    /// `P_R1(u) ≡ st_u = C ∧ ¬P_reset(u) ∧ (∃v ∈ N(u) | st_v = RF)`.
    pub fn p_r1<V: StateView<Composed<I::State>>>(&self, u: NodeId, view: &V) -> bool {
        self.st(view, u) == Status::C
            && !self.p_reset(u, view)
            && view
                .graph()
                .neighbors(u)
                .iter()
                .any(|&v| self.st(view, v) == Status::RF)
    }

    /// `P_RB(u) ≡ st_u = C ∧ (∃v ∈ N(u) | st_v = RB)`.
    pub fn p_rb<V: StateView<Composed<I::State>>>(&self, u: NodeId, view: &V) -> bool {
        self.st(view, u) == Status::C
            && view
                .graph()
                .neighbors(u)
                .iter()
                .any(|&v| self.st(view, v) == Status::RB)
    }

    /// `P_RF(u) ≡ st_u = RB ∧ P_reset(u) ∧ (∀v ∈ N(u), (st_v = RB ∧
    /// d_v ≤ d_u) ∨ (st_v = RF ∧ P_reset(v)))`.
    pub fn p_rf<V: StateView<Composed<I::State>>>(&self, u: NodeId, view: &V) -> bool {
        self.st(view, u) == Status::RB
            && self.p_reset(u, view)
            && view.graph().neighbors(u).iter().all(|&v| {
                (self.st(view, v) == Status::RB && self.dist(view, v) <= self.dist(view, u))
                    || (self.st(view, v) == Status::RF && self.p_reset(v, view))
            })
    }

    /// `P_C(u) ≡ st_u = RF ∧ (∀v ∈ N[u], P_reset(v) ∧ ((st_v = RF ∧
    /// d_v ≥ d_u) ∨ (st_v = C)))`.
    pub fn p_c<V: StateView<Composed<I::State>>>(&self, u: NodeId, view: &V) -> bool {
        self.st(view, u) == Status::RF
            && view.graph().closed_neighborhood(u).all(|v| {
                self.p_reset(v, view)
                    && ((self.st(view, v) == Status::RF
                        && self.dist(view, v) >= self.dist(view, u))
                        || self.st(view, v) == Status::C)
            })
    }

    /// `P_R2(u) ≡ st_u ≠ C ∧ ¬P_reset(u)`.
    pub fn p_r2<V: StateView<Composed<I::State>>>(&self, u: NodeId, view: &V) -> bool {
        self.st(view, u) != Status::C && !self.p_reset(u, view)
    }

    /// `P_Up(u) ≡ ¬P_RB(u) ∧ (P_R1(u) ∨ P_R2(u) ∨ ¬P_Correct(u))`.
    pub fn p_up<V: StateView<Composed<I::State>>>(&self, u: NodeId, view: &V) -> bool {
        !self.p_rb(u, view)
            && (self.p_r1(u, view) || self.p_r2(u, view) || !self.p_correct(u, view))
    }

    /// `P_root(u) ≡ st_u = RB ∧ (∀v ∈ N(u), st_v = RB ⇒ d_v ≥ d_u)`
    /// (Definition 1).
    pub fn p_root<V: StateView<Composed<I::State>>>(&self, u: NodeId, view: &V) -> bool {
        self.st(view, u) == Status::RB
            && view.graph().neighbors(u).iter().all(|&v| {
                self.st(view, v) != Status::RB || self.dist(view, v) >= self.dist(view, u)
            })
    }

    /// Alive root (Definition 1): `P_Up(u) ∨ P_root(u)`.
    pub fn is_alive_root<V: StateView<Composed<I::State>>>(&self, u: NodeId, view: &V) -> bool {
        self.p_up(u, view) || self.p_root(u, view)
    }

    /// Dead root (Definition 1): `st_u = RF ∧ (∀v ∈ N(u), st_v ≠ C ⇒
    /// d_v ≥ d_u)`.
    pub fn is_dead_root<V: StateView<Composed<I::State>>>(&self, u: NodeId, view: &V) -> bool {
        self.st(view, u) == Status::RF
            && view
                .graph()
                .neighbors(u)
                .iter()
                .all(|&v| self.st(view, v) == Status::C || self.dist(view, v) >= self.dist(view, u))
    }

    /// `RParent(v, u)` (Definition 4): `v ∈ N(u) ∧ st_u ≠ C ∧
    /// P_reset(u) ∧ d_u > d_v ∧ (st_u = st_v ∨ st_v = RB)`.
    pub fn is_reset_parent<V: StateView<Composed<I::State>>>(
        &self,
        v: NodeId,
        u: NodeId,
        view: &V,
    ) -> bool {
        view.graph().are_neighbors(v, u)
            && self.st(view, u) != Status::C
            && self.p_reset(u, view)
            && self.dist(view, u) > self.dist(view, v)
            && (self.st(view, u) == self.st(view, v) || self.st(view, v) == Status::RB)
    }

    /// Whether `u` satisfies `P_Clean(u) ∧ P_ICorrect(u)`.
    pub fn is_normal_at<V: StateView<Composed<I::State>>>(&self, u: NodeId, view: &V) -> bool {
        self.p_clean(u, view) && self.p_icorrect(u, view)
    }

    /// Whether the configuration is *normal* (Corollary 5 / Theorem 1:
    /// exactly the terminal configurations of SDR).
    pub fn is_normal_config(&self, graph: &Graph, states: &[Composed<I::State>]) -> bool {
        let view = ConfigView::new(graph, states);
        graph.nodes().all(|u| self.is_normal_at(u, &view))
    }

    // ---- configuration constructors ----

    /// The designated initial configuration: every process clean, input
    /// in `γ_init`.
    pub fn initial_config(&self, graph: &Graph) -> Vec<Composed<I::State>> {
        graph
            .nodes()
            .map(|u| Composed::clean(self.input.initial_state(u)))
            .collect()
    }

    /// An adversarial configuration: uniformly random status, distance
    /// in `0..2n`, and input-algorithm states drawn from
    /// [`ResetInput::arbitrary_state`].
    pub fn arbitrary_config(&self, graph: &Graph, seed: u64) -> Vec<Composed<I::State>> {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let n = graph.node_count() as u64;
        graph
            .nodes()
            .map(|u| {
                let status = match rng.below(3) {
                    0 => Status::C,
                    1 => Status::RB,
                    _ => Status::RF,
                };
                let dist = rng.below(2 * n) as u32;
                Composed::new(
                    SdrState::new(status, dist),
                    self.input.arbitrary_state(u, &mut rng),
                )
            })
            .collect()
    }

    // ---- macros (§3 Algorithm 1) ----

    /// `compute(u)`: `st_u := RB; d_u := min { d_v | v ∈ N(u), st_v =
    /// RB } + 1`.
    fn compute<V: StateView<Composed<I::State>>>(&self, u: NodeId, view: &V) -> SdrState {
        let min_rb = view
            .graph()
            .neighbors(u)
            .iter()
            .filter(|&&v| self.st(view, v) == Status::RB)
            .map(|&v| self.dist(view, v))
            .min()
            .expect("compute(u) requires an RB neighbor (P_RB guard)");
        SdrState::new(Status::RB, min_rb.saturating_add(1))
    }
}

impl<I: ResetInput> Algorithm for Sdr<I> {
    type State = Composed<I::State>;

    fn rule_count(&self) -> usize {
        SDR_RULE_COUNT + self.input.rule_count()
    }

    fn rule_name(&self, rule: RuleId) -> &'static str {
        match rule {
            RULE_RB => "rule_RB",
            RULE_RF => "rule_RF",
            RULE_C => "rule_C",
            RULE_R => "rule_R",
            r => self.input.rule_name(RuleId(r.0 - SDR_RULE_COUNT as u8)),
        }
    }

    fn enabled_mask<V: StateView<Self::State>>(&self, u: NodeId, view: &V) -> RuleMask {
        let sdr = RuleMask::NONE
            .with_if(RULE_RB, self.p_rb(u, view))
            .with_if(RULE_RF, self.p_rf(u, view))
            .with_if(RULE_C, self.p_c(u, view))
            .with_if(RULE_R, self.p_up(u, view));
        // Requirement 2c: the input algorithm runs only under
        // P_Clean ∧ P_ICorrect — in which case SDR itself is disabled
        // (Remark 2).
        if self.p_clean(u, view) && self.p_icorrect(u, view) {
            debug_assert!(
                sdr.is_empty(),
                "Remark 2 violated: SDR enabled under P_Clean ∧ P_ICorrect"
            );
            let iv = MapView::new(view, inner_of);
            RuleMask(self.input.enabled_mask(u, &iv).0 << SDR_RULE_COUNT)
        } else {
            sdr
        }
    }

    fn apply<V: StateView<Self::State>>(&self, u: NodeId, view: &V, rule: RuleId) -> Self::State {
        let current = view.state(u);
        match rule {
            RULE_RB => Composed::new(self.compute(u, view), self.input.reset_state(u)),
            RULE_RF => Composed::new(
                SdrState::new(Status::RF, current.sdr.dist),
                current.inner.clone(),
            ),
            RULE_C => Composed::new(
                SdrState::new(Status::C, current.sdr.dist),
                current.inner.clone(),
            ),
            RULE_R => Composed::new(SdrState::root(), self.input.reset_state(u)),
            r => {
                let iv = MapView::new(view, inner_of);
                let inner = self.input.apply(u, &iv, RuleId(r.0 - SDR_RULE_COUNT as u8));
                Composed::new(current.sdr, inner)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toys::{Agreement, BoundedCounter};
    use ssr_graph::generators;
    use ssr_runtime::{Daemon, Simulator};

    type St = Composed<u32>;

    fn agreement() -> Sdr<Agreement> {
        Sdr::new(Agreement::new(4))
    }

    fn cfg(states: Vec<St>) -> Vec<St> {
        states
    }

    fn mk(status: Status, dist: u32, x: u32) -> St {
        Composed::new(SdrState::new(status, dist), x)
    }

    /// Path of 3; middle node broadcasting.
    #[test]
    fn p_rb_requires_c_status_and_rb_neighbor() {
        let g = generators::path(3);
        let sdr = agreement();
        let states = cfg(vec![
            mk(Status::C, 0, 0),
            mk(Status::RB, 0, 0),
            mk(Status::RF, 1, 0),
        ]);
        let v = ConfigView::new(&g, &states);
        assert!(sdr.p_rb(NodeId(0), &v));
        assert!(!sdr.p_rb(NodeId(1), &v)); // not status C
        assert!(!sdr.p_rb(NodeId(2), &v)); // not status C
    }

    #[test]
    fn p_clean_examines_closed_neighborhood() {
        let g = generators::path(3);
        let sdr = agreement();
        let states = cfg(vec![
            mk(Status::C, 0, 0),
            mk(Status::C, 0, 0),
            mk(Status::RB, 0, 0),
        ]);
        let v = ConfigView::new(&g, &states);
        assert!(sdr.p_clean(NodeId(0), &v));
        assert!(!sdr.p_clean(NodeId(1), &v)); // neighbor 2 is RB
        assert!(!sdr.p_clean(NodeId(2), &v)); // itself RB
    }

    #[test]
    fn p_rf_needs_all_neighbors_in_reset() {
        let g = generators::path(3);
        let sdr = agreement();
        // Node 1 is RB with d=1; node 0 is RB root (d=0, ≤), node 2 is C.
        let states = cfg(vec![
            mk(Status::RB, 0, 0),
            mk(Status::RB, 1, 0),
            mk(Status::C, 0, 0),
        ]);
        let v = ConfigView::new(&g, &states);
        assert!(!sdr.p_rf(NodeId(1), &v), "a C neighbor blocks the feedback");
        // Replace node 2 with a deeper RF neighbor in reset state.
        let states = cfg(vec![
            mk(Status::RB, 0, 0),
            mk(Status::RB, 1, 0),
            mk(Status::RF, 2, 0),
        ]);
        let v = ConfigView::new(&g, &states);
        assert!(sdr.p_rf(NodeId(1), &v));
        // A deeper RB neighbor (d_v > d_u) blocks the feedback.
        let states = cfg(vec![
            mk(Status::RB, 0, 0),
            mk(Status::RB, 1, 0),
            mk(Status::RB, 2, 0),
        ]);
        let v = ConfigView::new(&g, &states);
        assert!(!sdr.p_rf(NodeId(1), &v));
    }

    #[test]
    fn p_rf_requires_reset_state() {
        let g = generators::path(2);
        let sdr = agreement();
        let states = cfg(vec![mk(Status::RB, 0, 3), mk(Status::RB, 1, 0)]);
        let v = ConfigView::new(&g, &states);
        assert!(!sdr.p_rf(NodeId(0), &v), "P_reset(u) fails (x=3)");
        assert!(sdr.p_rf(NodeId(1), &v));
    }

    #[test]
    fn p_c_propagates_down_from_root() {
        let g = generators::path(3);
        let sdr = agreement();
        // Feedback done everywhere: root (d=0) may clean first.
        let states = cfg(vec![
            mk(Status::RF, 0, 0),
            mk(Status::RF, 1, 0),
            mk(Status::RF, 2, 0),
        ]);
        let v = ConfigView::new(&g, &states);
        assert!(sdr.p_c(NodeId(0), &v));
        assert!(!sdr.p_c(NodeId(1), &v), "shallower RF neighbor blocks");
        // After the root cleans:
        let states = cfg(vec![
            mk(Status::C, 0, 0),
            mk(Status::RF, 1, 0),
            mk(Status::RF, 2, 0),
        ]);
        let v = ConfigView::new(&g, &states);
        assert!(sdr.p_c(NodeId(1), &v));
        assert!(!sdr.p_c(NodeId(2), &v));
    }

    #[test]
    fn p_c_requires_neighbors_reset() {
        let g = generators::path(2);
        let sdr = agreement();
        let states = cfg(vec![mk(Status::RF, 0, 0), mk(Status::C, 0, 2)]);
        let v = ConfigView::new(&g, &states);
        assert!(!sdr.p_c(NodeId(0), &v), "C neighbor not in reset state");
    }

    #[test]
    fn p_up_detects_inconsistency() {
        let g = generators::path(2);
        let sdr = agreement();
        // Agreement(4): x values differ -> ¬P_ICorrect -> ¬P_Correct for C.
        let states = cfg(vec![mk(Status::C, 0, 1), mk(Status::C, 0, 2)]);
        let v = ConfigView::new(&g, &states);
        assert!(sdr.p_up(NodeId(0), &v));
        assert!(sdr.p_up(NodeId(1), &v));
        // Consistent values: nobody wants a reset.
        let states = cfg(vec![mk(Status::C, 0, 2), mk(Status::C, 0, 2)]);
        let v = ConfigView::new(&g, &states);
        assert!(!sdr.p_up(NodeId(0), &v));
    }

    #[test]
    fn p_up_yields_to_existing_broadcast() {
        let g = generators::path(2);
        let sdr = agreement();
        // Node 0 inconsistent but neighbor already broadcasting: join,
        // don't initiate (¬P_RB conjunct of P_Up).
        let states = cfg(vec![mk(Status::C, 0, 1), mk(Status::RB, 0, 0)]);
        let v = ConfigView::new(&g, &states);
        assert!(!sdr.p_up(NodeId(0), &v));
        assert!(sdr.p_rb(NodeId(0), &v));
    }

    #[test]
    fn p_r1_and_p_r2_detect_reset_incoherence() {
        let g = generators::path(2);
        let sdr = agreement();
        // R1: clean process not in reset state adjacent to RF.
        let states = cfg(vec![mk(Status::C, 0, 3), mk(Status::RF, 0, 0)]);
        let v = ConfigView::new(&g, &states);
        assert!(sdr.p_r1(NodeId(0), &v));
        // R2: broadcasting process whose inner state is not reset.
        let states = cfg(vec![mk(Status::RB, 0, 3), mk(Status::C, 0, 0)]);
        let v = ConfigView::new(&g, &states);
        assert!(sdr.p_r2(NodeId(0), &v));
        assert!(!sdr.p_r2(NodeId(1), &v));
    }

    #[test]
    fn rules_pairwise_mutually_exclusive_lemma_5() {
        // Lemma 5 + Remark 2: on any sampled configuration, at most one
        // rule of the composition is enabled per process.
        let g = generators::random_connected(12, 8, 3);
        let sdr = Sdr::new(BoundedCounter::new(6));
        for seed in 0..200 {
            let states = sdr.arbitrary_config(&g, seed);
            let v = ConfigView::new(&g, &states);
            for u in g.nodes() {
                let m = sdr.enabled_mask(u, &v);
                assert!(
                    m.count() <= 1,
                    "seed {seed}, node {u:?}: multiple rules enabled: {m:?}"
                );
            }
        }
    }

    #[test]
    fn terminal_iff_normal_theorem_1() {
        let g = generators::random_connected(10, 5, 1);
        let sdr = Sdr::new(Agreement::new(3));
        for seed in 0..300 {
            let states = sdr.arbitrary_config(&g, seed);
            let v = ConfigView::new(&g, &states);
            let terminal = g.nodes().all(|u| sdr.enabled_mask(u, &v).is_empty());
            let normal = sdr.is_normal_config(&g, &states);
            assert_eq!(terminal, normal, "seed {seed}: Theorem 1 violated");
        }
    }

    #[test]
    fn typical_execution_resets_to_consistency() {
        // §3.3: from all-C with inconsistent inner states, resets drive
        // the system to a normal configuration.
        let g = generators::ring(8);
        let sdr = Sdr::new(Agreement::new(5));
        let states: Vec<St> = (0..8).map(|i| mk(Status::C, 0, i % 5)).collect();
        let check = Sdr::new(Agreement::new(5));
        let mut sim = Simulator::new(&g, sdr, states, Daemon::Synchronous, 0);
        let out = sim
            .execution()
            .cap(10_000)
            .until(|graph, st| check.is_normal_config(graph, st))
            .run();
        assert!(out.reached);
        assert!(out.rounds_at_hit <= 3 * 8, "Corollary 5: ≤ 3n rounds");
        // Agreement resets to 0: afterwards everyone agrees on 0.
        assert!(sim.states().iter().all(|s| s.inner == 0));
    }

    #[test]
    fn stabilizes_from_arbitrary_configs_all_daemons() {
        let g = generators::random_connected(10, 6, 9);
        let n = g.node_count() as u64;
        for daemon in Daemon::all_strategies() {
            for seed in 0..5 {
                let sdr = Sdr::new(BoundedCounter::new(20));
                let init = sdr.arbitrary_config(&g, seed * 31 + 7);
                let check = Sdr::new(BoundedCounter::new(20));
                let mut sim = Simulator::new(&g, sdr, init, daemon.clone(), seed);
                let out = sim
                    .execution()
                    .cap(200_000)
                    .until(|graph, st| check.is_normal_config(graph, st))
                    .run();
                assert!(
                    out.reached,
                    "did not stabilize under {daemon:?} (seed {seed})"
                );
                assert!(
                    out.rounds_at_hit <= 3 * n,
                    "Corollary 5 violated under {daemon:?}: {} > {}",
                    out.rounds_at_hit,
                    3 * n
                );
            }
        }
    }

    #[test]
    fn normal_configs_closed_under_composition() {
        // Corollary 5: the set of normal configurations is closed.
        let g = generators::ring(6);
        let sdr = Sdr::new(BoundedCounter::new(4));
        let init = sdr.initial_config(&g);
        let check = Sdr::new(BoundedCounter::new(4));
        let mut sim = Simulator::new(&g, sdr, init, Daemon::RandomSubset { p: 0.5 }, 2);
        for _ in 0..500 {
            assert!(check.is_normal_config(sim.graph(), sim.states()));
            if let ssr_runtime::StepOutcome::Terminal = sim.step() {
                break;
            }
        }
    }

    #[test]
    fn per_process_sdr_moves_bounded_corollary_4() {
        let g = generators::random_connected(12, 8, 4);
        let n = g.node_count() as u64;
        for seed in 0..10 {
            let sdr = Sdr::new(Agreement::new(3));
            let rc = sdr.rule_count();
            let init = sdr.arbitrary_config(&g, seed);
            let check = Sdr::new(Agreement::new(3));
            let mut sim = Simulator::new(&g, sdr, init, Daemon::RandomSubset { p: 0.4 }, seed);
            let out = sim
                .execution()
                .cap(500_000)
                .until(|graph, st| check.is_normal_config(graph, st))
                .run();
            assert!(out.reached);
            for u in g.nodes() {
                let sdr_moves: u64 = [RULE_RB, RULE_RF, RULE_C, RULE_R]
                    .iter()
                    .map(|&r| sim.stats().moves_of(u, r, rc))
                    .sum();
                assert!(
                    sdr_moves <= 3 * n + 3,
                    "Corollary 4 violated at {u:?}: {sdr_moves} > {}",
                    3 * n + 3
                );
            }
        }
    }

    #[test]
    fn rule_names_cover_composition() {
        let sdr = Sdr::new(BoundedCounter::new(2));
        assert_eq!(sdr.rule_name(RULE_RB), "rule_RB");
        assert_eq!(sdr.rule_name(RULE_RF), "rule_RF");
        assert_eq!(sdr.rule_name(RULE_C), "rule_C");
        assert_eq!(sdr.rule_name(RULE_R), "rule_R");
        assert_eq!(sdr.rule_name(RuleId(4)), "rule_inc");
        assert_eq!(sdr.rule_count(), 5);
    }

    #[test]
    fn initial_config_is_normal() {
        let g = generators::grid(3, 3);
        let sdr = Sdr::new(BoundedCounter::new(5));
        let init = sdr.initial_config(&g);
        assert!(sdr.is_normal_config(&g, &init));
    }
}
