//! SDR per-process state (§3.2): the status `st_u ∈ {C, RB, RF}` and the
//! reset distance `d_u ∈ ℕ`, plus the product state of a composition.

use std::fmt;

use ssr_runtime::exhaustive::ExploreState;

/// The reset status of a process (variable `st_u`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub enum Status {
    /// `C` — correct: not currently involved in a reset.
    #[default]
    C,
    /// `RB` — reset broadcast: propagating a reset down the DAG.
    RB,
    /// `RF` — reset feedback: reset acknowledged, propagating back up.
    RF,
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Status::C => write!(f, "C"),
            Status::RB => write!(f, "RB"),
            Status::RF => write!(f, "RF"),
        }
    }
}

/// SDR's two variables for one process.
///
/// `dist` is meaningless while `status == C` (§3.2); the paper leaves it
/// arbitrary, and so do we — predicates never read it in that case.
///
/// # Examples
///
/// ```
/// use ssr_core::{SdrState, Status};
/// let clean = SdrState::clean();
/// assert_eq!(clean.status, Status::C);
/// let root = SdrState::root();
/// assert_eq!((root.status, root.dist), (Status::RB, 0));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct SdrState {
    /// Status `st_u`.
    pub status: Status,
    /// Distance `d_u` within the reset DAG.
    pub dist: u32,
}

impl SdrState {
    /// State of a process not involved in any reset (`st = C`).
    pub fn clean() -> Self {
        SdrState {
            status: Status::C,
            dist: 0,
        }
    }

    /// State right after `beRoot(u)`: `(RB, 0)`.
    pub fn root() -> Self {
        SdrState {
            status: Status::RB,
            dist: 0,
        }
    }

    /// Arbitrary state constructor (used by adversarial samplers).
    pub fn new(status: Status, dist: u32) -> Self {
        SdrState { status, dist }
    }
}

impl fmt::Display for SdrState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.status {
            Status::C => write!(f, "C"),
            s => write!(f, "{s}:{}", self.dist),
        }
    }
}

/// Product state of the composition `I ∘ SDR` (§2.5): the union of the
/// variables of both algorithms at one process.
///
/// Requirement 1 (`I` never writes SDR's variables) is enforced
/// structurally: the composed algorithm only ever passes the `inner`
/// component to the input algorithm.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Composed<S> {
    /// SDR's variables (`st_u`, `d_u`).
    pub sdr: SdrState,
    /// The input algorithm's variables.
    pub inner: S,
}

impl<S> Composed<S> {
    /// Pairs a clean SDR state with an inner state.
    pub fn clean(inner: S) -> Self {
        Composed {
            sdr: SdrState::clean(),
            inner,
        }
    }

    /// Pairs an explicit SDR state with an inner state.
    pub fn new(sdr: SdrState, inner: S) -> Self {
        Composed { sdr, inner }
    }
}

impl<S: fmt::Display> fmt::Display for Composed<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{}|{}⟩", self.sdr, self.inner)
    }
}

impl ExploreState for Status {
    #[inline]
    fn encode(&self, out: &mut Vec<u64>) {
        out.push(match self {
            Status::C => 0,
            Status::RB => 1,
            Status::RF => 2,
        });
    }
}

impl ExploreState for SdrState {
    /// One word: `status | dist << 2`, with `dist` canonicalized to 0
    /// while the status is `C` — the distance is dead there (§3.2: no
    /// predicate ever reads it in that case, and every rule that
    /// leaves `C` overwrites it), so `(C, 7)` and `(C, 0)` are the
    /// same canonical state. This quotient shrinks the explorer's
    /// reachable space considerably: after `rule_C` a process parks at
    /// `(C, d)` with whatever distance the reset wave left behind, and
    /// without the canonicalization every historical `d` would split
    /// the state.
    ///
    /// # Examples
    ///
    /// ```
    /// use ssr_core::{SdrState, Status};
    /// use ssr_runtime::exhaustive::ExploreState;
    ///
    /// let mut a = Vec::new();
    /// SdrState::new(Status::C, 7).encode(&mut a);
    /// let mut b = Vec::new();
    /// SdrState::new(Status::C, 0).encode(&mut b);
    /// assert_eq!(a, b, "distance is dead while the status is C");
    /// ```
    #[inline]
    fn encode(&self, out: &mut Vec<u64>) {
        let word = match self.status {
            Status::C => 0,
            Status::RB => 1 | (self.dist as u64) << 2,
            Status::RF => 2 | (self.dist as u64) << 2,
        };
        out.push(word);
    }
}

impl<S: ExploreState> ExploreState for Composed<S> {
    #[inline]
    fn encode(&self, out: &mut Vec<u64>) {
        self.sdr.encode(out);
        self.inner.encode(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_clean() {
        assert_eq!(SdrState::default(), SdrState::clean());
        assert_eq!(Status::default(), Status::C);
    }

    #[test]
    fn display_forms() {
        assert_eq!(SdrState::clean().to_string(), "C");
        assert_eq!(SdrState::new(Status::RB, 3).to_string(), "RB:3");
        assert_eq!(SdrState::new(Status::RF, 1).to_string(), "RF:1");
        assert_eq!(Composed::clean(7u8).to_string(), "⟨C|7⟩");
    }

    #[test]
    fn root_constructor() {
        let r = SdrState::root();
        assert_eq!(r, SdrState::new(Status::RB, 0));
    }

    #[test]
    fn composed_accessors() {
        let c = Composed::new(SdrState::root(), "x");
        assert_eq!(c.sdr.status, Status::RB);
        assert_eq!(c.inner, "x");
    }

    fn words<S: ExploreState>(s: &S) -> Vec<u64> {
        let mut out = Vec::new();
        s.encode(&mut out);
        out
    }

    #[test]
    fn sdr_state_quotients_dead_distance() {
        assert_eq!(
            words(&SdrState::new(Status::C, 9)),
            words(&SdrState::new(Status::C, 0))
        );
        assert_ne!(
            words(&SdrState::new(Status::RB, 9)),
            words(&SdrState::new(Status::RB, 0))
        );
        assert_ne!(
            words(&SdrState::new(Status::RB, 1)),
            words(&SdrState::new(Status::RF, 1))
        );
    }

    #[test]
    fn composed_concatenates_components() {
        let a = Composed::new(SdrState::root(), 3u64);
        let b = Composed::new(SdrState::root(), 4u64);
        assert_eq!(words(&a).len(), 2);
        assert_ne!(words(&a), words(&b));
    }
}
