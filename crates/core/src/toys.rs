//! Small, fully-specified input algorithms for exercising SDR on its
//! own (experiments E1–E3) and for tests.
//!
//! Both toys satisfy Requirements 1, 2a–2e of §3.5 (see the argument in
//! each type's documentation, and [`crate::validate`] for runtime
//! checks).

use ssr_graph::NodeId;
use ssr_runtime::rng::Xoshiro256StarStar;
use ssr_runtime::{RuleId, RuleMask, StateView};

use crate::input::ResetInput;

/// Local agreement with **no rules**: a pure detection substrate.
///
/// Each process holds `x ∈ {0, …, domain−1}`; `P_ICorrect(u)` demands
/// all neighbors agree with `u`. Since there are no rules, composing
/// with SDR yields *pure reset dynamics*: disagreement triggers
/// cooperative resets that drive every participant to the reset value
/// `0`, after which the system is silent. Used by experiments E1/E2 to
/// measure SDR's own bounds without input-algorithm noise.
///
/// Requirements: 2a holds vacuously (no rules); 2b/2e by construction
/// (`P_reset ≡ x = 0 = reset value`); 2d holds because all-zero closed
/// neighborhoods agree.
///
/// # Examples
///
/// ```
/// use ssr_core::{toys::Agreement, ResetInput};
/// use ssr_graph::NodeId;
///
/// let a = Agreement::new(4);
/// assert_eq!(a.rule_count(), 0);
/// assert!(a.p_reset(NodeId(0), &0));
/// assert!(!a.p_reset(NodeId(0), &3));
/// ```
#[derive(Clone, Debug)]
pub struct Agreement {
    domain: u32,
}

impl Agreement {
    /// Agreement over values `0..domain`.
    ///
    /// # Panics
    ///
    /// Panics if `domain == 0`.
    pub fn new(domain: u32) -> Self {
        assert!(domain > 0, "domain must be non-empty");
        Agreement { domain }
    }
}

impl ResetInput for Agreement {
    type State = u32;

    fn rule_count(&self) -> usize {
        0
    }

    fn rule_name(&self, _: RuleId) -> &'static str {
        unreachable!("Agreement has no rules")
    }

    fn enabled_mask<V: StateView<u32>>(&self, _: NodeId, _: &V) -> RuleMask {
        RuleMask::NONE
    }

    fn apply<V: StateView<u32>>(&self, _: NodeId, _: &V, _: RuleId) -> u32 {
        unreachable!("Agreement has no rules")
    }

    fn p_icorrect<V: StateView<u32>>(&self, u: NodeId, view: &V) -> bool {
        let x = *view.state(u);
        view.graph()
            .neighbors(u)
            .iter()
            .all(|&v| *view.state(v) == x)
    }

    fn p_reset(&self, _: NodeId, state: &u32) -> bool {
        *state == 0
    }

    fn reset_state(&self, _: NodeId) -> u32 {
        0
    }

    fn arbitrary_state(&self, _: NodeId, rng: &mut Xoshiro256StarStar) -> u32 {
        rng.below(self.domain as u64) as u32
    }
}

/// `rule_inc` of [`BoundedCounter`].
pub const RULE_INC: RuleId = RuleId(0);

/// A *bounded, non-wrapping* unison: counters climb to a cap in
/// lockstep.
///
/// Each process holds `x ∈ {0, …, cap}` and increments while it is a
/// local minimum (`∀v: x_v ∈ {x_u, x_u+1}`) below the cap. This is
/// Algorithm U (§5.4) without the modulo — which makes executions
/// finite, convenient for termination-style tests — and with the same
/// requirement proofs:
///
/// * 2a: only local minima increment, so `|x_u − x_v| ≤ 1` is closed;
/// * 2b/2e: `P_reset ≡ x = 0`, the reset value;
/// * 2d: an all-zero closed neighborhood satisfies `P_ICorrect`.
///
/// # Examples
///
/// ```
/// use ssr_core::{toys::BoundedCounter, Sdr};
/// use ssr_graph::generators;
///
/// let g = generators::path(3);
/// let sdr = Sdr::new(BoundedCounter::new(5));
/// let init = sdr.initial_config(&g);
/// assert!(sdr.is_normal_config(&g, &init));
/// ```
#[derive(Clone, Debug)]
pub struct BoundedCounter {
    cap: u32,
}

impl BoundedCounter {
    /// Counters over `0..=cap`.
    pub fn new(cap: u32) -> Self {
        BoundedCounter { cap }
    }

    /// The counter cap.
    pub fn cap(&self) -> u32 {
        self.cap
    }
}

impl ResetInput for BoundedCounter {
    type State = u32;

    fn rule_count(&self) -> usize {
        1
    }

    fn rule_name(&self, _: RuleId) -> &'static str {
        "rule_inc"
    }

    fn enabled_mask<V: StateView<u32>>(&self, u: NodeId, view: &V) -> RuleMask {
        let x = *view.state(u);
        let local_min = view
            .graph()
            .neighbors(u)
            .iter()
            .all(|&v| *view.state(v) == x || *view.state(v) == x + 1);
        RuleMask::from_bool(x < self.cap && local_min)
    }

    fn apply<V: StateView<u32>>(&self, u: NodeId, view: &V, _: RuleId) -> u32 {
        *view.state(u) + 1
    }

    fn p_icorrect<V: StateView<u32>>(&self, u: NodeId, view: &V) -> bool {
        let x = *view.state(u);
        view.graph()
            .neighbors(u)
            .iter()
            .all(|&v| view.state(v).abs_diff(x) <= 1)
    }

    fn p_reset(&self, _: NodeId, state: &u32) -> bool {
        *state == 0
    }

    fn reset_state(&self, _: NodeId) -> u32 {
        0
    }

    fn arbitrary_state(&self, _: NodeId, rng: &mut Xoshiro256StarStar) -> u32 {
        rng.below(self.cap as u64 + 1) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_graph::generators;
    use ssr_runtime::ConfigView;

    #[test]
    fn agreement_icorrect_is_local_equality() {
        let g = generators::path(3);
        let a = Agreement::new(5);
        let states = vec![1u32, 1, 2];
        let v = ConfigView::new(&g, &states);
        assert!(a.p_icorrect(NodeId(0), &v));
        assert!(!a.p_icorrect(NodeId(1), &v));
        assert!(!a.p_icorrect(NodeId(2), &v));
    }

    #[test]
    fn agreement_arbitrary_stays_in_domain() {
        let a = Agreement::new(3);
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        for _ in 0..100 {
            assert!(a.arbitrary_state(NodeId(0), &mut rng) < 3);
        }
    }

    #[test]
    fn counter_increments_only_local_minima() {
        let g = generators::path(3);
        let c = BoundedCounter::new(10);
        let states = vec![2u32, 2, 3];
        let v = ConfigView::new(&g, &states);
        // Node 2 (x=3) is not a local minimum: neighbor holds 2 ∉ {3, 4}.
        assert!(c.enabled_mask(NodeId(2), &v).is_empty());
        assert!(!c.enabled_mask(NodeId(0), &v).is_empty());
        assert!(!c.enabled_mask(NodeId(1), &v).is_empty());
        assert_eq!(c.apply(NodeId(0), &v, RULE_INC), 3);
    }

    #[test]
    fn counter_stops_at_cap() {
        let g = generators::path(2);
        let c = BoundedCounter::new(2);
        let states = vec![2u32, 2];
        let v = ConfigView::new(&g, &states);
        assert!(c.enabled_mask(NodeId(0), &v).is_empty());
        assert!(c.enabled_mask(NodeId(1), &v).is_empty());
    }

    #[test]
    fn counter_icorrect_tolerates_unit_gap() {
        let g = generators::path(2);
        let c = BoundedCounter::new(9);
        let v1 = vec![4u32, 5];
        let view = ConfigView::new(&g, &v1);
        assert!(c.p_icorrect(NodeId(0), &view));
        let v2 = vec![4u32, 6];
        let view = ConfigView::new(&g, &v2);
        assert!(!c.p_icorrect(NodeId(0), &view));
    }

    #[test]
    fn requirements_hold_for_both_toys() {
        let g = generators::random_connected(10, 5, 1);
        crate::validate::check_requirements(&Agreement::new(4), &g).unwrap();
        crate::validate::check_requirements(&BoundedCounter::new(7), &g).unwrap();
    }
}
