//! Property-based tests for SDR: the paper's closure theorems checked
//! on randomized configurations, steps, daemons, and topologies.

use proptest::prelude::*;
use ssr_core::toys::{Agreement, BoundedCounter};
use ssr_core::{alive_roots, Sdr, SegmentTracker};
use ssr_graph::generators;
use ssr_runtime::{ConfigView, Daemon, Simulator, StepOutcome};

fn daemon_from(idx: u8) -> Daemon {
    match idx % 5 {
        0 => Daemon::Synchronous,
        1 => Daemon::Central,
        2 => Daemon::RandomSubset { p: 0.5 },
        3 => Daemon::PreferHighRules,
        _ => Daemon::LexMin,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lemma 5 + Remark 2: at most one rule enabled per process, in any
    /// configuration of any random instance.
    #[test]
    fn rules_mutually_exclusive(
        n in 2usize..16,
        extra in 0usize..10,
        gseed in 0u64..100,
        cseed in 0u64..1000,
    ) {
        let g = generators::random_connected(n, extra, gseed);
        let sdr = Sdr::new(BoundedCounter::new(9));
        let states = sdr.arbitrary_config(&g, cseed);
        let view = ConfigView::new(&g, &states);
        for u in g.nodes() {
            prop_assert!(ssr_runtime::Algorithm::enabled_mask(&sdr, u, &view).count() <= 1);
        }
    }

    /// Theorem 1: a configuration is terminal iff it is normal.
    #[test]
    fn terminal_iff_normal(
        n in 2usize..14,
        gseed in 0u64..50,
        cseed in 0u64..500,
    ) {
        let g = generators::random_connected(n, n / 2, gseed);
        let sdr = Sdr::new(Agreement::new(4));
        let states = sdr.arbitrary_config(&g, cseed);
        let view = ConfigView::new(&g, &states);
        let terminal = g
            .nodes()
            .all(|u| ssr_runtime::Algorithm::enabled_mask(&sdr, u, &view).is_empty());
        prop_assert_eq!(terminal, sdr.is_normal_config(&g, &states));
    }

    /// Theorem 3 / Remark 4: along any execution, the alive-root set
    /// only shrinks (never gains a member).
    #[test]
    fn alive_roots_never_created(
        n in 3usize..12,
        gseed in 0u64..30,
        cseed in 0u64..200,
        dseed in 0u64..50,
        daemon_idx in 0u8..5,
    ) {
        let g = generators::random_connected(n, n / 2, gseed);
        let sdr = Sdr::new(BoundedCounter::new(6));
        let init = sdr.arbitrary_config(&g, cseed);
        let mut prev = alive_roots(&sdr, &g, &init);
        let mut sim = Simulator::new(&g, sdr, init, daemon_from(daemon_idx), dseed);
        for _ in 0..300 {
            match sim.step() {
                StepOutcome::Terminal => break,
                StepOutcome::Progress { .. } => {
                    let now = alive_roots(sim.algorithm(), sim.graph(), sim.states());
                    prop_assert!(now.is_subset(&prev), "alive roots created: {:?} ⊄ {:?}", now, prev);
                    prev = now;
                }
            }
        }
    }

    /// Corollary 2: ¬P_Up(u) is closed — once a process has no reason
    /// to initiate a reset, it never regains one.
    #[test]
    fn not_p_up_closed(
        n in 3usize..12,
        gseed in 0u64..30,
        cseed in 0u64..200,
        daemon_idx in 0u8..5,
    ) {
        let g = generators::random_connected(n, n / 3, gseed);
        let sdr = Sdr::new(Agreement::new(4));
        let init = sdr.arbitrary_config(&g, cseed);
        let check = Sdr::new(Agreement::new(4));
        let mut sim = Simulator::new(&g, sdr, init, daemon_from(daemon_idx), cseed);
        let not_up = |sim: &Simulator<'_, Sdr<Agreement>>| -> Vec<bool> {
            let view = sim.view();
            g.nodes().map(|u| !check.p_up(u, &view)).collect()
        };
        let mut before = not_up(&sim);
        for _ in 0..300 {
            match sim.step() {
                StepOutcome::Terminal => break,
                StepOutcome::Progress { .. } => {
                    let after = not_up(&sim);
                    for u in g.nodes() {
                        if before[u.index()] {
                            prop_assert!(after[u.index()], "P_Up resurrected at {u:?}");
                        }
                    }
                    before = after;
                }
            }
        }
    }

    /// Theorem 2: P_Correct(u) ∨ P_RB(u) is closed.
    #[test]
    fn correct_or_rb_closed(
        n in 3usize..12,
        gseed in 0u64..30,
        cseed in 0u64..200,
        daemon_idx in 0u8..5,
    ) {
        let g = generators::random_connected(n, n / 3, gseed);
        let sdr = Sdr::new(BoundedCounter::new(5));
        let init = sdr.arbitrary_config(&g, cseed);
        let check = Sdr::new(BoundedCounter::new(5));
        let mut sim = Simulator::new(&g, sdr, init, daemon_from(daemon_idx), cseed ^ 0xF);
        let pred = |sim: &Simulator<'_, Sdr<BoundedCounter>>| -> Vec<bool> {
            let view = sim.view();
            g.nodes()
                .map(|u| check.p_correct(u, &view) || check.p_rb(u, &view))
                .collect()
        };
        let mut before = pred(&sim);
        for _ in 0..300 {
            match sim.step() {
                StepOutcome::Terminal => break,
                StepOutcome::Progress { .. } => {
                    let after = pred(&sim);
                    for u in g.nodes() {
                        if before[u.index()] {
                            prop_assert!(after[u.index()], "Theorem 2 violated at {u:?}");
                        }
                    }
                    before = after;
                }
            }
        }
    }

    /// Corollary 5 end-to-end: stabilization within 3n rounds from any
    /// sampled configuration under any sampled daemon.
    #[test]
    fn stabilizes_within_3n_rounds(
        n in 3usize..12,
        gseed in 0u64..20,
        cseed in 0u64..100,
        daemon_idx in 0u8..5,
    ) {
        let g = generators::random_connected(n, n / 2, gseed);
        let nn = g.node_count() as u64;
        let sdr = Sdr::new(Agreement::new(3));
        let init = sdr.arbitrary_config(&g, cseed);
        let check = Sdr::new(Agreement::new(3));
        let mut sim = Simulator::new(&g, sdr, init, daemon_from(daemon_idx), cseed);
        let out = sim.execution().cap(1_000_000).until(|gr, st| check.is_normal_config(gr, st)).run();
        prop_assert!(out.reached);
        prop_assert!(out.rounds_at_hit <= 3 * nn);
    }

    /// Remark 5 + Corollary 3 via the tracker, randomized.
    #[test]
    fn segment_structure_random(
        n in 3usize..10,
        gseed in 0u64..20,
        cseed in 0u64..100,
        daemon_idx in 0u8..5,
    ) {
        let g = generators::random_connected(n, n / 2, gseed);
        let sdr = Sdr::new(BoundedCounter::new(4));
        let init = sdr.arbitrary_config(&g, cseed);
        let mut tracker = SegmentTracker::new(&sdr, &g, &init);
        let mut sim = Simulator::new(&g, sdr, init, daemon_from(daemon_idx), cseed);
        for _ in 0..100_000 {
            match sim.step() {
                StepOutcome::Terminal => break,
                StepOutcome::Progress { .. } => tracker.after_step(
                    sim.algorithm(),
                    sim.graph(),
                    sim.states(),
                    sim.last_activated(),
                ),
            }
        }
        let report = tracker.report();
        prop_assert!(report.ok(), "{:?}", report.violations);
        prop_assert!(report.segments <= g.node_count() as u64 + 1);
    }
}
