//! Structural properties of reset branches (Definitions 4–5, Lemmas 7–8)
//! checked along live executions.

use ssr_core::toys::BoundedCounter;
use ssr_core::{max_branch_depth, reset_parents, Sdr, Status};
use ssr_graph::generators;
use ssr_runtime::{ConfigView, Daemon, Simulator, StepOutcome};

/// Lemma 7.2 (edge form): along every RParent edge `(v, u)`,
/// `st_u = RB ⇒ st_v = RB` and `st_u = RF ⇒ st_v ∈ {RB, RF}` — so
/// every root-to-leaf branch reads `RB* RF*`.
#[test]
fn branch_status_pattern_rb_star_rf_star() {
    let g = generators::random_connected(14, 8, 0xB0);
    for seed in 0..6 {
        let sdr = Sdr::new(BoundedCounter::new(6));
        let init = sdr.arbitrary_config(&g, seed);
        let mut sim = Simulator::new(&g, sdr, init, Daemon::RandomSubset { p: 0.5 }, seed);
        for _ in 0..50_000 {
            match sim.step() {
                StepOutcome::Terminal => break,
                StepOutcome::Progress { .. } => {
                    let states = sim.states();
                    for u in g.nodes() {
                        for v in reset_parents(sim.algorithm(), &g, states, u) {
                            let su = states[u.index()].sdr.status;
                            let sv = states[v.index()].sdr.status;
                            match su {
                                Status::RB => assert_eq!(
                                    sv,
                                    Status::RB,
                                    "RB child {u:?} must have RB parent {v:?}"
                                ),
                                Status::RF => assert_ne!(
                                    sv,
                                    Status::C,
                                    "RF child {u:?} cannot have a C parent {v:?}"
                                ),
                                Status::C => panic!("a C process cannot be a reset child"),
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Lemma 7.1: branch depth stays below n at every instant.
#[test]
fn branch_depth_below_n_always() {
    let g = generators::ring(12);
    let sdr = Sdr::new(BoundedCounter::new(5));
    let init = sdr.arbitrary_config(&g, 0xDEE9);
    let mut sim = Simulator::new(&g, sdr, init, Daemon::Central, 3);
    for _ in 0..50_000 {
        match sim.step() {
            StepOutcome::Terminal => break,
            StepOutcome::Progress { .. } => {
                if let Some(depth) = max_branch_depth(sim.algorithm(), &g, sim.states()) {
                    assert!(depth < g.node_count(), "Lemma 7.1 violated: depth {depth}");
                }
            }
        }
    }
}

/// Lemma 7.3 (edge form): a reset child is neither an alive nor a dead
/// root.
#[test]
fn reset_children_are_not_roots() {
    let g = generators::random_connected(12, 6, 0xB3);
    for seed in 0..6 {
        let sdr = Sdr::new(BoundedCounter::new(5));
        let init = sdr.arbitrary_config(&g, seed * 3 + 1);
        let mut sim = Simulator::new(&g, sdr, init, Daemon::RandomSubset { p: 0.4 }, seed);
        for _ in 0..20_000 {
            match sim.step() {
                StepOutcome::Terminal => break,
                StepOutcome::Progress { .. } => {
                    let view = ConfigView::new(&g, sim.states());
                    for u in g.nodes() {
                        if !reset_parents(sim.algorithm(), &g, sim.states(), u).is_empty() {
                            assert!(
                                !sim.algorithm().is_alive_root(u, &view),
                                "{u:?} has a parent yet is an alive root"
                            );
                            assert!(
                                !sim.algorithm().is_dead_root(u, &view),
                                "{u:?} has a parent yet is a dead root"
                            );
                        }
                    }
                }
            }
        }
    }
}

/// Distance saturation: enormous corrupted distances must not wrap or
/// panic — `compute(u)` saturates and the system still stabilizes.
#[test]
fn distance_saturation_is_safe() {
    use ssr_core::{Composed, SdrState};
    let g = generators::path(6);
    let sdr = Sdr::new(BoundedCounter::new(4));
    let check = Sdr::new(BoundedCounter::new(4));
    let init: Vec<Composed<u32>> = (0..6)
        .map(|i| {
            Composed::new(
                SdrState::new(
                    if i % 2 == 0 { Status::RB } else { Status::C },
                    u32::MAX - (i as u32),
                ),
                0,
            )
        })
        .collect();
    let mut sim = Simulator::new(&g, sdr, init, Daemon::RandomSubset { p: 0.6 }, 2);
    let out = sim
        .execution()
        .cap(1_000_000)
        .until(|gr, st| check.is_normal_config(gr, st))
        .run();
    assert!(out.reached, "must stabilize despite saturated distances");
}
