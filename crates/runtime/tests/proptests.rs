//! Property-based tests for the simulator itself: the incremental
//! enabled-cache must agree with from-scratch guard evaluation, and the
//! accounting must be internally consistent.

use proptest::prelude::*;
use ssr_graph::{generators, NodeId};
use ssr_runtime::{
    Algorithm, ConfigView, Daemon, RuleId, RuleMask, Simulator, StateView, StepOutcome,
};

/// A deliberately gnarly algorithm with two interacting rules, chosen
/// to exercise enable/disable transitions in both directions:
/// * `up`: if some neighbor is exactly one below me → increment them?
///   No — actions write own state only: if I'm a strict local minimum →
///   increment me;
/// * `down`: if I'm more than 2 above some neighbor → drop to their
///   level.
#[derive(Clone)]
struct SawTooth {
    cap: u8,
}

impl Algorithm for SawTooth {
    type State = u8;

    fn rule_count(&self) -> usize {
        2
    }

    fn rule_name(&self, rule: RuleId) -> &'static str {
        if rule == RuleId(0) {
            "up"
        } else {
            "down"
        }
    }

    fn enabled_mask<V: StateView<u8>>(&self, u: NodeId, view: &V) -> RuleMask {
        let x = *view.state(u);
        let strict_min = view
            .graph()
            .neighbors(u)
            .iter()
            .all(|&v| *view.state(v) > x);
        let too_high = view
            .graph()
            .neighbors(u)
            .iter()
            .any(|&v| x > view.state(v).saturating_add(2));
        RuleMask::NONE
            .with_if(RuleId(0), strict_min && x < self.cap)
            .with_if(RuleId(1), too_high)
    }

    fn apply<V: StateView<u8>>(&self, u: NodeId, view: &V, rule: RuleId) -> u8 {
        let x = *view.state(u);
        if rule == RuleId(0) {
            x + 1
        } else {
            *view
                .graph()
                .neighbors(u)
                .iter()
                .map(|v| view.state(*v))
                .min()
                .expect("graph is connected, degree ≥ 1")
        }
    }
}

fn daemon_from(idx: u8) -> Daemon {
    match idx % 6 {
        0 => Daemon::Synchronous,
        1 => Daemon::Central,
        2 => Daemon::RandomSubset { p: 0.3 },
        3 => Daemon::RoundRobin,
        4 => Daemon::Aging { patience: 4 },
        _ => Daemon::PreferHighRules,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The incremental enabled-mask cache always agrees with a full
    /// re-evaluation of every guard.
    #[test]
    fn enabled_cache_matches_full_recompute(
        n in 2usize..16,
        extra in 0usize..12,
        gseed in 0u64..100,
        init_seed in 0u64..100,
        daemon_idx in 0u8..6,
        steps in 1usize..60,
    ) {
        let g = generators::random_connected(n, extra, gseed);
        let algo = SawTooth { cap: 12 };
        let mut s = init_seed;
        let init: Vec<u8> = (0..n)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (s >> 60) as u8
            })
            .collect();
        let mut sim = Simulator::new(&g, SawTooth { cap: 12 }, init, daemon_from(daemon_idx), 9);
        let mut enabled_buf = Vec::new();
        for _ in 0..steps {
            if let StepOutcome::Terminal = sim.step() {
                break;
            }
            let view = ConfigView::new(&g, sim.states());
            for u in g.nodes() {
                let fresh = algo.enabled_mask(u, &view);
                prop_assert_eq!(
                    sim.enabled_mask_of(u),
                    fresh,
                    "cache diverged at {:?}",
                    u
                );
            }
            // The enabled list is exactly the nonzero masks.
            let from_masks: Vec<NodeId> = g
                .nodes()
                .filter(|&u| !algo.enabled_mask(u, &view).is_empty())
                .collect();
            sim.enabled_nodes_sorted_into(&mut enabled_buf);
            prop_assert_eq!(&enabled_buf, &from_masks);
        }
    }

    /// Accounting invariants: moves ≥ steps ≥ completed rounds; the
    /// per-process and per-rule breakdowns sum to the total.
    #[test]
    fn accounting_consistent(
        n in 2usize..14,
        gseed in 0u64..50,
        daemon_idx in 0u8..6,
        steps in 1usize..80,
    ) {
        let g = generators::random_connected(n, n / 2, gseed);
        let init: Vec<u8> = (0..n).map(|i| (i % 7) as u8).collect();
        let mut sim = Simulator::new(&g, SawTooth { cap: 9 }, init, daemon_from(daemon_idx), 5);
        for _ in 0..steps {
            if let StepOutcome::Terminal = sim.step() {
                break;
            }
        }
        let st = sim.stats();
        prop_assert!(st.moves >= st.steps);
        prop_assert!(st.completed_rounds <= st.steps);
        prop_assert_eq!(st.moves_per_process.iter().sum::<u64>(), st.moves);
        prop_assert_eq!(st.moves_per_rule.iter().sum::<u64>(), st.moves);
        prop_assert_eq!(st.moves_per_process_rule.iter().sum::<u64>(), st.moves);
    }

    /// Determinism: identical seeds ⇒ identical executions, for every
    /// daemon strategy.
    #[test]
    fn executions_deterministic(
        n in 2usize..12,
        gseed in 0u64..30,
        daemon_idx in 0u8..6,
        seed in 0u64..100,
    ) {
        let g = generators::random_connected(n, n / 2, gseed);
        let init: Vec<u8> = (0..n).map(|i| (i * 3 % 11) as u8).collect();
        let run = || {
            let mut sim = Simulator::new(
                &g,
                SawTooth { cap: 10 },
                init.clone(),
                daemon_from(daemon_idx),
                seed,
            );
            sim.execution().cap(2_000).run();
            (sim.states().to_vec(), sim.stats().clone())
        };
        prop_assert_eq!(run(), run());
    }

    /// Fault injection preserves cache consistency.
    #[test]
    fn inject_keeps_cache_consistent(
        n in 2usize..12,
        gseed in 0u64..30,
        victim in 0usize..12,
        value in 0u8..15,
    ) {
        let g = generators::random_connected(n, n / 2, gseed);
        let algo = SawTooth { cap: 12 };
        let init: Vec<u8> = vec![5; n];
        let mut sim = Simulator::new(&g, SawTooth { cap: 12 }, init, Daemon::Central, 3);
        sim.step();
        sim.inject(NodeId((victim % n) as u32), value);
        let view = ConfigView::new(&g, sim.states());
        for u in g.nodes() {
            prop_assert_eq!(sim.enabled_mask_of(u), algo.enabled_mask(u, &view));
        }
    }
}
