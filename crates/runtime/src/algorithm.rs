//! The [`Algorithm`] trait and read-only state views.
//!
//! A distributed algorithm in the locally shared memory model consists of
//! one local program per process: a finite set of guarded rules
//! `⟨label⟩ : ⟨guard⟩ → ⟨action⟩` (§2.2). Guards read the states of the
//! closed neighborhood only; actions write the process's own state only.
//! Both constraints are enforced structurally: guards and actions receive
//! a [`StateView`] (read-only access keyed by [`NodeId`]) and return the
//! process's new state.

use std::fmt;
use std::marker::PhantomData;

use ssr_graph::{Graph, NodeId};

/// Index of a rule within an algorithm's local program.
///
/// Rule identifiers are only used to label moves (§2.2: "labels are only
/// used to identify rules in the reasoning").
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RuleId(pub u8);

impl RuleId {
    /// The rule's index as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Set of enabled rules at one process, as a bitmask (≤ 32 rules).
///
/// # Examples
///
/// ```
/// use ssr_runtime::{RuleId, RuleMask};
/// let m = RuleMask::just(RuleId(2)).with(RuleId(0));
/// assert!(m.contains(RuleId(0)) && m.contains(RuleId(2)));
/// assert_eq!(m.iter().collect::<Vec<_>>(), vec![RuleId(0), RuleId(2)]);
/// assert_eq!(m.count(), 2);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct RuleMask(pub u32);

impl RuleMask {
    /// The empty mask: process disabled.
    pub const NONE: RuleMask = RuleMask(0);

    /// Mask containing exactly `rule`.
    ///
    /// # Panics
    ///
    /// Debug builds panic when `rule.0 >= 32` (the mask would silently
    /// wrap in release).
    #[inline]
    pub fn just(rule: RuleId) -> Self {
        debug_assert!(
            rule.0 < 32,
            "RuleId {} is outside the 32-rule range of RuleMask",
            rule.0
        );
        RuleMask(1 << rule.0)
    }

    /// `just(RuleId(0))` if `b`, else empty — convenient for single-rule
    /// algorithms.
    #[inline]
    pub fn from_bool(b: bool) -> Self {
        if b {
            RuleMask(1)
        } else {
            RuleMask(0)
        }
    }

    /// Adds `rule` to the mask.
    ///
    /// # Panics
    ///
    /// Debug builds panic when `rule.0 >= 32` (the mask would silently
    /// wrap in release).
    #[inline]
    #[must_use]
    pub fn with(self, rule: RuleId) -> Self {
        debug_assert!(
            rule.0 < 32,
            "RuleId {} is outside the 32-rule range of RuleMask",
            rule.0
        );
        RuleMask(self.0 | (1 << rule.0))
    }

    /// Adds `rule` when `b` holds.
    #[inline]
    #[must_use]
    pub fn with_if(self, rule: RuleId, b: bool) -> Self {
        if b {
            self.with(rule)
        } else {
            self
        }
    }

    /// Whether the mask contains `rule`.
    #[inline]
    pub fn contains(self, rule: RuleId) -> bool {
        self.0 & (1 << rule.0) != 0
    }

    /// Whether no rule is enabled.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of enabled rules.
    #[inline]
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// Lowest-index enabled rule, if any.
    #[inline]
    pub fn first(self) -> Option<RuleId> {
        if self.0 == 0 {
            None
        } else {
            Some(RuleId(self.0.trailing_zeros() as u8))
        }
    }

    /// Highest-index enabled rule, if any.
    #[inline]
    pub fn last(self) -> Option<RuleId> {
        if self.0 == 0 {
            None
        } else {
            Some(RuleId(31 - self.0.leading_zeros() as u8))
        }
    }

    /// Iterates enabled rules in ascending index order.
    pub fn iter(self) -> impl Iterator<Item = RuleId> {
        iter_ones(self.0).map(|i| RuleId(i as u8))
    }
}

impl IntoIterator for RuleMask {
    type Item = RuleId;
    type IntoIter = std::iter::Map<IterOnes, fn(u32) -> RuleId>;

    fn into_iter(self) -> Self::IntoIter {
        iter_ones(self.0).map(|i| RuleId(i as u8))
    }
}

/// Iterates the set bit positions of `bits` in ascending order — the
/// one place the `trailing_zeros` / clear-lowest-bit idiom lives.
/// [`RuleMask::iter`] and the exhaustive engine's mask decoding both
/// delegate here.
#[inline]
pub fn iter_ones(bits: u32) -> IterOnes {
    IterOnes { bits }
}

/// Iterator returned by [`iter_ones`].
#[derive(Clone, Copy, Debug)]
pub struct IterOnes {
    bits: u32,
}

impl Iterator for IterOnes {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        if self.bits == 0 {
            None
        } else {
            let i = self.bits.trailing_zeros();
            self.bits &= self.bits - 1;
            Some(i)
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.bits.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for IterOnes {}

impl fmt::Debug for RuleMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RuleMask[")?;
        let mut first = true;
        for r in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{r:?}")?;
            first = false;
        }
        write!(f, "]")
    }
}

/// Read-only access to a configuration, keyed by node.
///
/// Guards must only inspect the closed neighborhood of the process being
/// evaluated; the view deliberately offers no bulk iteration so that
///"peeking" at remote state would have to be written very explicitly.
pub trait StateView<S> {
    /// The communication graph.
    fn graph(&self) -> &Graph;
    /// The current state of process `v`.
    fn state(&self, v: NodeId) -> &S;
}

/// A [`StateView`] over a plain slice of states (one per node).
#[derive(Clone, Copy, Debug)]
pub struct ConfigView<'a, S> {
    graph: &'a Graph,
    states: &'a [S],
}

impl<'a, S> ConfigView<'a, S> {
    /// Wraps a configuration slice.
    ///
    /// # Panics
    ///
    /// Panics if `states.len() != graph.node_count()`.
    pub fn new(graph: &'a Graph, states: &'a [S]) -> Self {
        assert_eq!(
            states.len(),
            graph.node_count(),
            "configuration size must match node count"
        );
        ConfigView { graph, states }
    }
}

impl<S> StateView<S> for ConfigView<'_, S> {
    #[inline]
    fn graph(&self) -> &Graph {
        self.graph
    }

    #[inline]
    fn state(&self, v: NodeId) -> &S {
        &self.states[v.index()]
    }
}

/// Projects a view of composite states onto a component.
///
/// Used by compositions (`I ∘ SDR`): the inner algorithm's predicates see
/// only the inner component of the product state.
///
/// # Examples
///
/// ```
/// use ssr_graph::generators;
/// use ssr_runtime::{ConfigView, MapView, NodeId, StateView};
///
/// let g = generators::path(2);
/// let states = vec![(1u32, "a"), (2u32, "b")];
/// let view = ConfigView::new(&g, &states);
/// let nums = MapView::new(&view, |s: &(u32, &str)| &s.0);
/// assert_eq!(*nums.state(NodeId(1)), 2);
/// ```
#[derive(Clone, Copy)]
pub struct MapView<'a, V, S, T> {
    base: &'a V,
    project: fn(&S) -> &T,
    _outer: PhantomData<fn() -> S>,
}

impl<'a, V, S, T> MapView<'a, V, S, T> {
    /// Wraps `base`, projecting each state through `project`.
    ///
    /// `project` is a plain function pointer (not a closure) so that the
    /// higher-ranked `for<'x> fn(&'x S) -> &'x T` lifetime is explicit.
    pub fn new(base: &'a V, project: fn(&S) -> &T) -> Self {
        MapView {
            base,
            project,
            _outer: PhantomData,
        }
    }
}

impl<V, S, T> StateView<T> for MapView<'_, V, S, T>
where
    V: StateView<S>,
{
    #[inline]
    fn graph(&self) -> &Graph {
        self.base.graph()
    }

    #[inline]
    fn state(&self, v: NodeId) -> &T {
        (self.project)(self.base.state(v))
    }
}

/// A distributed algorithm in the locally shared memory model.
///
/// Implementations define the per-process state type, the rule set, and
/// the guard/action semantics. The [`crate::Simulator`] owns the
/// configuration and calls [`Algorithm::enabled_mask`] /
/// [`Algorithm::apply`].
pub trait Algorithm {
    /// Per-process state (the values of the process's shared variables).
    type State: Clone + PartialEq + fmt::Debug;

    /// Number of rules in the local program.
    fn rule_count(&self) -> usize;

    /// Human-readable rule label (for reports and traces).
    fn rule_name(&self, rule: RuleId) -> &'static str;

    /// Evaluates all guards of process `u` on the configuration `view`.
    fn enabled_mask<V: StateView<Self::State>>(&self, u: NodeId, view: &V) -> RuleMask;

    /// Executes `rule`'s action for `u`, returning `u`'s next state.
    ///
    /// Must only be called with a rule contained in
    /// `self.enabled_mask(u, view)`; implementations may panic otherwise.
    fn apply<V: StateView<Self::State>>(&self, u: NodeId, view: &V, rule: RuleId) -> Self::State;
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_graph::generators;

    #[test]
    fn rule_mask_basics() {
        let m = RuleMask::NONE;
        assert!(m.is_empty());
        assert_eq!(m.first(), None);
        assert_eq!(m.last(), None);
        let m = m.with(RuleId(3)).with(RuleId(1));
        assert_eq!(m.count(), 2);
        assert_eq!(m.first(), Some(RuleId(1)));
        assert_eq!(m.last(), Some(RuleId(3)));
        assert!(!m.contains(RuleId(0)));
        assert!(m.contains(RuleId(1)));
    }

    #[test]
    fn rule_mask_with_if() {
        let m = RuleMask::NONE
            .with_if(RuleId(2), false)
            .with_if(RuleId(5), true);
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![RuleId(5)]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "outside the 32-rule range")]
    fn rule_mask_just_rejects_out_of_range_rules() {
        let _ = RuleMask::just(RuleId(32));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "outside the 32-rule range")]
    fn rule_mask_with_rejects_out_of_range_rules() {
        let _ = RuleMask::just(RuleId(0)).with(RuleId(40));
    }

    #[test]
    fn rule_mask_from_bool() {
        assert!(RuleMask::from_bool(false).is_empty());
        assert_eq!(RuleMask::from_bool(true).first(), Some(RuleId(0)));
    }

    #[test]
    fn iter_ones_ascending_and_exact() {
        assert_eq!(iter_ones(0).count(), 0);
        let it = iter_ones(0b1010_0101);
        assert_eq!(it.len(), 4);
        assert_eq!(it.collect::<Vec<_>>(), vec![0, 2, 5, 7]);
        assert_eq!(iter_ones(u32::MAX).count(), 32);
    }

    #[test]
    fn rule_mask_into_iterator_matches_iter() {
        let m = RuleMask::just(RuleId(1)).with(RuleId(6)).with(RuleId(30));
        let via_iter: Vec<_> = m.iter().collect();
        let mut via_for = Vec::new();
        for r in m {
            via_for.push(r);
        }
        assert_eq!(via_iter, via_for);
        assert_eq!(via_for, vec![RuleId(1), RuleId(6), RuleId(30)]);
    }

    #[test]
    fn rule_mask_debug_lists_rules() {
        let m = RuleMask::just(RuleId(0)).with(RuleId(4));
        assert_eq!(format!("{m:?}"), "RuleMask[r0,r4]");
    }

    #[test]
    #[should_panic(expected = "configuration size")]
    fn config_view_validates_length() {
        let g = generators::path(3);
        let states = vec![0u8; 2];
        let _ = ConfigView::new(&g, &states);
    }

    #[test]
    fn map_view_projects() {
        let g = generators::path(3);
        let states = vec![(0u8, 'x'), (1, 'y'), (2, 'z')];
        let v = ConfigView::new(&g, &states);
        let chars = MapView::new(&v, |s: &(u8, char)| &s.1);
        assert_eq!(*chars.state(NodeId(2)), 'z');
        assert_eq!(chars.graph().node_count(), 3);
    }
}
