//! Witness schedules: worst-case traces extracted by the explorer,
//! replayable step-for-step through the ordinary execution engine.
//!
//! A [`Witness`] is plain data — the initial configuration's index and
//! the per-step activation sets — plus the exact moves/steps/rounds
//! the explorer accounted for it. [`Witness::replay`] drives the trace
//! back through [`Execution`] with [`Daemon::Script`], so any
//! [`Observer`](crate::Observer) can watch the worst-case run,
//! and the resulting [`RunOutcome`] must reproduce the explorer's
//! numbers byte for byte (that cross-check is pinned by the property
//! tests: the simulator's round accounting and the explorer's
//! front-product DP are independent implementations of §2.4).

use std::sync::Arc;

use crate::{Algorithm, Daemon, Execution, Observer, RunOutcome};
use ssr_graph::{Graph, NodeId};

/// A replayable schedule achieving an exact worst case.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Witness {
    /// Index of the starting configuration within the `inits` slice
    /// the explorer was given.
    pub init: usize,
    /// The activation set of each step, in order.
    pub schedule: Vec<Vec<NodeId>>,
    /// Moves this schedule accumulates up to the legitimacy hit.
    pub moves: u64,
    /// Steps up to the hit (`schedule.len()`).
    pub steps: u64,
    /// Rounds at the hit (§2.4, partial round counting as one).
    pub rounds: u64,
}

impl Witness {
    /// The scripted daemon replaying this schedule.
    pub fn daemon(&self) -> Daemon {
        Daemon::Script {
            steps: Arc::new(self.schedule.clone()),
        }
    }

    /// Replays the witness through a fresh [`Execution`]: same
    /// algorithm, the witness's initial configuration, the scripted
    /// daemon, capped at the schedule length, stopping at `legit`.
    ///
    /// Observers attach like on any run via [`Witness::replay_with`].
    pub fn replay<A, P>(&self, graph: &Graph, algo: A, init: Vec<A::State>, legit: P) -> RunOutcome
    where
        A: Algorithm,
        P: FnMut(&Graph, &[A::State]) -> bool,
    {
        self.replay_with(graph, algo, init, legit, crate::NoObserver)
    }

    /// Like [`Witness::replay`], with a probe attached to the run.
    pub fn replay_with<A, P, O>(
        &self,
        graph: &Graph,
        algo: A,
        init: Vec<A::State>,
        legit: P,
        observer: O,
    ) -> RunOutcome
    where
        A: Algorithm,
        P: FnMut(&Graph, &[A::State]) -> bool,
        O: Observer<A>,
    {
        Execution::of(graph, algo)
            .init(init)
            .daemon(self.daemon())
            .cap(self.steps)
            .observe(observer)
            .until(legit)
            .run()
    }

    /// Whether a replay outcome reproduces the explorer's accounting
    /// exactly: predicate reached, and identical moves, steps, and
    /// rounds.
    pub fn matches(&self, out: &RunOutcome) -> bool {
        out.reached
            && out.moves_at_hit == self.moves
            && out.steps_used == self.steps
            && out.rounds_at_hit == self.rounds
    }
}

#[cfg(test)]
mod tests {
    use crate::exhaustive::testutil::{all_true, Flood};
    use crate::exhaustive::{explore, ExploreOptions};
    use crate::TerminationReason;

    #[test]
    fn witness_replays_to_its_own_numbers() {
        let g = ssr_graph::generators::star(5);
        let mut init = vec![false; 5];
        init[0] = true;
        let inits = vec![init];
        let ex = explore(&g, &Flood, &inits, all_true, &ExploreOptions::default()).unwrap();
        for w in [ex.witness_moves.unwrap(), ex.witness_rounds.unwrap()] {
            let out = w.replay(&g, Flood, inits[w.init].clone(), all_true);
            assert!(w.matches(&out), "witness {w:?} vs outcome {out:?}");
            assert_eq!(out.reason, TerminationReason::PredicateMet);
        }
    }
}
