//! The exhaustive exploration engine: a layered breadth-first walk of
//! the full configuration graph under *every* daemon choice, with
//! hashed-state deduplication, a sharded parallel frontier, and the
//! exact worst-case analyses on top (longest-path DPs and
//! counterexample extraction).
//!
//! # What is exhaustive here
//!
//! From a finite set of initial configurations, the explorer visits
//! every configuration reachable under the selected [`DaemonClass`]:
//! for the distributed unfair daemon that is **all non-empty subsets**
//! of the enabled processes at every step (the other classes are
//! restrictions — singletons for central, the full set for
//! synchronous). Rule choice within a process is the simulator's
//! default (lowest enabled index); for the SDR compositions this is no
//! restriction at all, since at most one rule is ever enabled per
//! process (Lemma 5). Initial configurations are *not* enumerated
//! exhaustively — the per-node domains are far too large — so every
//! verdict is "for all schedules from these initial configurations".
//!
//! # Analyses
//!
//! * **Convergence**: every reachable configuration stabilizes — no
//!   illegitimate terminal configuration (deadlock) and no cycle
//!   within the illegitimate region (livelock); violations come back
//!   as concrete counterexample configurations.
//! * **Closure**: every successor of a legitimate configuration is
//!   legitimate (checked over the whole reachable legitimate region).
//! * **Exact worst cases**: once the illegitimate region is known to
//!   be acyclic, the worst-case *moves* and *steps* to legitimacy are
//!   longest-path DPs over it, and the worst-case *rounds* is a
//!   longest-path DP over the product of configurations with the
//!   round front (the set of processes enabled at round start that
//!   have neither moved nor been neutralized — exactly the §2.4
//!   neutralization bookkeeping the simulator performs).
//! * **Witnesses**: the maximizing schedules are extracted as
//!   [`Witness`] traces that drive back through the ordinary
//!   [`Execution`](crate::Execution) engine via
//!   [`Daemon::Script`](crate::Daemon), step for step.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::{Algorithm, ConfigView};
use ssr_graph::{Graph, NodeId};

use super::encode::{encode_config, ExploreState};
use super::witness::Witness;

/// Which daemon's choices the explorer enumerates at each step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DaemonClass {
    /// All non-empty subsets of the enabled processes — the
    /// distributed unfair daemon, the paper's weakest (hence
    /// worst-case) assumption. The other classes are restrictions of
    /// this one.
    Distributed,
    /// Exactly one enabled process per step (central daemons).
    Central,
    /// All enabled processes at once (the synchronous daemon).
    Synchronous,
}

impl DaemonClass {
    /// Short label for tables and records.
    pub fn label(&self) -> &'static str {
        match self {
            DaemonClass::Distributed => "distributed",
            DaemonClass::Central => "central",
            DaemonClass::Synchronous => "synchronous",
        }
    }

    /// The activation choices over `e` enabled processes, as bitmasks
    /// over positions `0..e`, in canonical (ascending) order.
    fn position_masks(&self, e: usize) -> Vec<u32> {
        match self {
            DaemonClass::Distributed => (1..(1u32 << e)).collect(),
            DaemonClass::Central => (0..e).map(|i| 1u32 << i).collect(),
            DaemonClass::Synchronous => vec![(1u32 << e) - 1],
        }
    }
}

/// Exploration limits and parallelism knobs.
#[derive(Clone, Debug)]
pub struct ExploreOptions {
    /// Which daemon's choices to enumerate.
    pub daemon: DaemonClass,
    /// Worker threads for frontier expansion (results are
    /// byte-identical for any value; see the determinism note on
    /// [`explore`]).
    pub threads: usize,
    /// Abort with [`ExploreError::StateSpaceExceeded`] past this many
    /// distinct states.
    pub max_states: usize,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            daemon: DaemonClass::Distributed,
            threads: 1,
            max_states: 1 << 20,
        }
    }
}

/// Why an exploration could not run (or stop) within its limits.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExploreError {
    /// The graph has more nodes than the explorer supports.
    TooManyNodes {
        /// Node count of the offending graph.
        n: usize,
        /// The supported maximum.
        max: usize,
    },
    /// A configuration had too many enabled processes to enumerate all
    /// daemon subsets.
    TooManyEnabled {
        /// Enabled-process count of the offending configuration.
        enabled: usize,
        /// The supported maximum.
        max: usize,
    },
    /// The reachable state space outgrew [`ExploreOptions::max_states`].
    StateSpaceExceeded {
        /// The configured limit.
        limit: usize,
    },
    /// No initial configuration was supplied.
    EmptyInits,
    /// An initial configuration's length differs from the node count.
    ConfigSizeMismatch {
        /// Provided length.
        got: usize,
        /// Expected node count.
        expected: usize,
    },
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::TooManyNodes { n, max } => {
                write!(
                    f,
                    "graph has {n} nodes; the explorer supports at most {max}"
                )
            }
            ExploreError::TooManyEnabled { enabled, max } => write!(
                f,
                "{enabled} processes enabled at once; subset enumeration is capped at {max}"
            ),
            ExploreError::StateSpaceExceeded { limit } => {
                write!(f, "reachable state space exceeds the {limit}-state limit")
            }
            ExploreError::EmptyInits => write!(f, "at least one initial configuration is required"),
            ExploreError::ConfigSizeMismatch { got, expected } => write!(
                f,
                "initial configuration has {got} states, expected {expected}"
            ),
        }
    }
}

impl Error for ExploreError {}

/// Exact worst-case measures over all explored schedules, maximized
/// over the supplied initial configurations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorstCase {
    /// Worst total moves until the first legitimate configuration.
    pub moves: u64,
    /// Worst steps (configuration transitions) until legitimacy.
    pub steps: u64,
    /// Worst stabilization rounds (§2.4 neutralization-based, partial
    /// round at the hit counting as one — the simulator's
    /// `rounds_at_hit` semantics, computed exactly on the product of
    /// configurations with round fronts).
    pub rounds: u64,
}

/// A closure counterexample: a legitimate configuration with an
/// illegitimate successor.
#[derive(Clone, Debug, PartialEq)]
pub struct ClosureViolation<S> {
    /// The legitimate configuration.
    pub from: Vec<S>,
    /// The processes whose activation leaves the legitimate set.
    pub activated: Vec<NodeId>,
    /// The illegitimate successor.
    pub to: Vec<S>,
}

/// Result of an exhaustive exploration.
#[derive(Clone, Debug, PartialEq)]
pub struct Exploration<S> {
    /// Distinct (canonicalized) configurations reached.
    pub states: usize,
    /// Transitions generated (one per daemon choice per expanded
    /// configuration).
    pub transitions: usize,
    /// How many of the states are legitimate.
    pub legit_states: usize,
    /// BFS depth (number of frontier layers expanded).
    pub depth: usize,
    /// Illegitimate terminal configurations (deadlocks) found.
    pub deadlocks: usize,
    /// One deadlock configuration, when any exists.
    pub deadlock_example: Option<Vec<S>>,
    /// A cycle within the illegitimate region (livelock), when one
    /// exists: the configurations along the cycle.
    pub cycle: Option<Vec<Vec<S>>>,
    /// Closure violations found (legitimate → illegitimate edges).
    pub closure_violations: usize,
    /// One closure violation, when any exists.
    pub closure_example: Option<ClosureViolation<S>>,
    /// Exact worst case over every explored schedule; `None` when the
    /// illegitimate region has a deadlock or cycle (no finite worst
    /// case exists).
    pub worst: Option<WorstCase>,
    /// A schedule achieving `worst.moves`, replayable through the
    /// simulator. `None` when `worst` is `None` or every initial
    /// configuration is already legitimate.
    pub witness_moves: Option<Witness>,
    /// A schedule achieving `worst.rounds` (same caveats).
    pub witness_rounds: Option<Witness>,
}

impl<S> Exploration<S> {
    /// Whether the exploration proves self-stabilization over the
    /// supplied initial configurations: convergence (no deadlock, no
    /// livelock) and closure both hold.
    pub fn verified(&self) -> bool {
        self.deadlocks == 0 && self.cycle.is_none() && self.closure_violations == 0
    }
}

/// The interned state space built during exploration.
struct Space<S> {
    index: HashMap<Box<[u64]>, u32>,
    configs: Vec<Vec<S>>,
    /// Bitmask (by node index) of enabled processes per state.
    enabled: Vec<u32>,
    legit: Vec<bool>,
    /// Outgoing transitions `(activated node mask, successor)`, stored
    /// for illegitimate states only (legitimate states are expanded
    /// for the closure check but treated as absorbing by the DPs).
    trans: Vec<Vec<(u32, u32)>>,
}

impl<S> Space<S> {
    fn new() -> Self {
        Space {
            index: HashMap::new(),
            configs: Vec::new(),
            enabled: Vec::new(),
            legit: Vec::new(),
            trans: Vec::new(),
        }
    }
}

fn nodes_of_mask(mask: u32) -> Vec<NodeId> {
    crate::algorithm::iter_ones(mask).map(NodeId).collect()
}

/// Largest graph the explorer accepts (masks are `u32`; practical
/// state spaces stop far earlier, around 8–10 nodes).
pub const MAX_NODES: usize = 16;

/// Most simultaneously enabled processes the distributed class will
/// enumerate subsets for (2¹² − 1 successors per configuration).
pub const MAX_ENABLED: usize = 12;

/// Exhaustively explores every schedule of `algo` on `graph` from the
/// configurations in `inits`, classifying states with the `legit`
/// predicate (the paper's legitimate/normal configurations).
///
/// Returns the reached state space's size, convergence and closure
/// verdicts with counterexamples, the exact worst-case
/// moves/steps/rounds to legitimacy, and replayable worst-case
/// witness schedules. See the crate-level documentation for precise
/// semantics.
///
/// # Determinism
///
/// The result is **byte-identical for any `threads` value**: workers
/// only expand states (a pure function of the state), and interning,
/// transition recording, and all analyses happen in a deterministic
/// sequential merge order (frontier position, then canonical subset
/// order).
///
/// # Errors
///
/// [`ExploreError`] on oversized graphs, too many simultaneously
/// enabled processes, a state space past
/// [`ExploreOptions::max_states`], or invalid `inits`.
///
/// # Examples
///
/// ```
/// use ssr_graph::generators;
/// use ssr_runtime::exhaustive::{explore, ExploreOptions};
/// use ssr_runtime::{Algorithm, NodeId, RuleId, RuleMask, StateView};
///
/// /// Toy flood: a node with a `true` neighbor becomes `true`.
/// struct Flood;
/// impl Algorithm for Flood {
///     type State = bool;
///     fn rule_count(&self) -> usize { 1 }
///     fn rule_name(&self, _: RuleId) -> &'static str { "flood" }
///     fn enabled_mask<V: StateView<bool>>(&self, u: NodeId, view: &V) -> RuleMask {
///         let infected = view.graph().neighbors(u).iter().any(|&v| *view.state(v));
///         RuleMask::from_bool(!*view.state(u) && infected)
///     }
///     fn apply<V: StateView<bool>>(&self, _: NodeId, _: &V, _: RuleId) -> bool { true }
/// }
///
/// let g = generators::path(4);
/// let mut init = vec![false; 4];
/// init[0] = true;
/// let all_true = |_: &_, st: &[bool]| st.iter().all(|&b| b);
/// let ex = explore(&g, &Flood, &[init], all_true, &ExploreOptions::default()).unwrap();
/// assert!(ex.verified());
/// // Only one process is ever enabled on the line, so every daemon
/// // agrees: exactly n-1 moves, steps, and rounds.
/// assert_eq!(ex.worst.unwrap().moves, 3);
/// ```
pub fn explore<A, P>(
    graph: &Graph,
    algo: &A,
    inits: &[Vec<A::State>],
    legit: P,
    opts: &ExploreOptions,
) -> Result<Exploration<A::State>, ExploreError>
where
    A: Algorithm + Sync,
    A::State: ExploreState + Send + Sync,
    P: Fn(&Graph, &[A::State]) -> bool,
{
    let n = graph.node_count();
    if n > MAX_NODES {
        return Err(ExploreError::TooManyNodes { n, max: MAX_NODES });
    }
    if inits.is_empty() {
        return Err(ExploreError::EmptyInits);
    }
    for init in inits {
        if init.len() != n {
            return Err(ExploreError::ConfigSizeMismatch {
                got: init.len(),
                expected: n,
            });
        }
    }

    let mut space: Space<A::State> = Space::new();
    let mut scratch = Vec::new();
    let mut transitions = 0usize;
    let mut closure_violations = 0usize;
    let mut closure_example = None;

    // Seed the frontier; remember which state each init interned to.
    let mut init_ids = Vec::with_capacity(inits.len());
    let mut layer: Vec<u32> = Vec::new();
    for init in inits {
        let key = encode_config(init, &mut scratch);
        let (id, is_new) = intern(&mut space, graph, algo, &legit, key, || init.clone());
        init_ids.push(id);
        if is_new {
            layer.push(id);
        }
    }

    // Layered BFS: parallel expansion, deterministic sequential merge.
    let mut depth = 0usize;
    while !layer.is_empty() {
        depth += 1;
        let proposals = expand_layer(graph, algo, opts, &space, &layer)?;
        let mut next = Vec::new();
        for (pos, proposal) in proposals.into_iter().enumerate() {
            let from = layer[pos];
            let from_legit = space.legit[from as usize];
            for (mask, key, config) in proposal {
                transitions += 1;
                let (id, is_new) = intern(&mut space, graph, algo, &legit, key, || config);
                if is_new {
                    next.push(id);
                }
                if from_legit {
                    if !space.legit[id as usize] {
                        closure_violations += 1;
                        if closure_example.is_none() {
                            closure_example = Some(ClosureViolation {
                                from: space.configs[from as usize].clone(),
                                activated: nodes_of_mask(mask),
                                to: space.configs[id as usize].clone(),
                            });
                        }
                    }
                } else {
                    space.trans[from as usize].push((mask, id));
                }
            }
            if space.configs.len() > opts.max_states {
                return Err(ExploreError::StateSpaceExceeded {
                    limit: opts.max_states,
                });
            }
        }
        layer = next;
    }

    Ok(analyze(
        space,
        init_ids,
        transitions,
        depth,
        closure_violations,
        closure_example,
    ))
}

/// Interns `key`, lazily materializing the configuration and its
/// metadata on first sight. Returns `(id, is_new)`.
fn intern<A, P>(
    space: &mut Space<A::State>,
    graph: &Graph,
    algo: &A,
    legit: &P,
    key: Box<[u64]>,
    config: impl FnOnce() -> Vec<A::State>,
) -> (u32, bool)
where
    A: Algorithm,
    P: Fn(&Graph, &[A::State]) -> bool,
{
    use std::collections::hash_map::Entry;
    match space.index.entry(key) {
        Entry::Occupied(e) => (*e.get(), false),
        Entry::Vacant(e) => {
            let id = space.configs.len() as u32;
            let config = config();
            let view = ConfigView::new(graph, &config);
            let mut bits = 0u32;
            for u in graph.nodes() {
                if !algo.enabled_mask(u, &view).is_empty() {
                    bits |= 1 << u.0;
                }
            }
            let lg = legit(graph, &config);
            space.configs.push(config);
            space.enabled.push(bits);
            space.legit.push(lg);
            space.trans.push(Vec::new());
            e.insert(id);
            (id, true)
        }
    }
}

type Proposal<S> = Vec<(u32, Box<[u64]>, Vec<S>)>;

/// Expands every state of `layer` into its successor proposals —
/// `(activated node mask, canonical key, configuration)` per daemon
/// choice — in parallel, returning them in layer order.
fn expand_layer<A>(
    graph: &Graph,
    algo: &A,
    opts: &ExploreOptions,
    space: &Space<A::State>,
    layer: &[u32],
) -> Result<Vec<Proposal<A::State>>, ExploreError>
where
    A: Algorithm + Sync,
    A::State: ExploreState + Send + Sync,
{
    let total = layer.len();
    let workers = opts.threads.clamp(1, total);
    if workers == 1 {
        let mut scratch = Vec::new();
        return layer
            .iter()
            .map(|&id| expand_state(graph, algo, opts, space, id, &mut scratch))
            .collect();
    }
    let cursor = AtomicUsize::new(0);
    let cursor = &cursor;
    let mut slots: Vec<Option<Result<Proposal<A::State>, ExploreError>>> = Vec::new();
    slots.resize_with(total, || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut done = Vec::new();
                    let mut scratch = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= total {
                            break;
                        }
                        done.push((
                            i,
                            expand_state(graph, algo, opts, space, layer[i], &mut scratch),
                        ));
                    }
                    done
                })
            })
            .collect();
        for handle in handles {
            for (i, r) in handle.join().expect("explorer worker panicked") {
                slots[i] = Some(r);
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every layer position was expanded"))
        .collect()
}

/// Computes all successor proposals of one state: one per daemon
/// choice, in canonical subset order, each built by overwriting the
/// activated processes with their (pre-computed, composite-atomic)
/// next states.
fn expand_state<A>(
    graph: &Graph,
    algo: &A,
    opts: &ExploreOptions,
    space: &Space<A::State>,
    id: u32,
    scratch: &mut Vec<u64>,
) -> Result<Proposal<A::State>, ExploreError>
where
    A: Algorithm,
    A::State: ExploreState,
{
    let bits = space.enabled[id as usize];
    if bits == 0 {
        return Ok(Vec::new());
    }
    let config = &space.configs[id as usize];
    let view = ConfigView::new(graph, config);
    let enabled_nodes = nodes_of_mask(bits);
    let e = enabled_nodes.len();
    if e > MAX_ENABLED && opts.daemon == DaemonClass::Distributed {
        return Err(ExploreError::TooManyEnabled {
            enabled: e,
            max: MAX_ENABLED,
        });
    }
    // Composite atomicity: every next state reads the *old*
    // configuration, so one application per enabled process covers
    // every subset.
    let nexts: Vec<A::State> = enabled_nodes
        .iter()
        .map(|&u| {
            let rule = algo
                .enabled_mask(u, &view)
                .first()
                .expect("enabled bit implies an enabled rule");
            algo.apply(u, &view, rule)
        })
        .collect();
    let masks = opts.daemon.position_masks(e);
    let mut out = Vec::with_capacity(masks.len());
    for pm in masks {
        let mut cfg = config.clone();
        let mut node_mask = 0u32;
        for i in crate::algorithm::iter_ones(pm) {
            let u = enabled_nodes[i as usize];
            cfg[u.index()] = nexts[i as usize].clone();
            node_mask |= 1 << u.0;
        }
        let key = encode_config(&cfg, scratch);
        out.push((node_mask, key, cfg));
    }
    Ok(out)
}

/// Post-exploration analyses: convergence, longest-path DPs, and
/// witness extraction.
fn analyze<S: Clone>(
    space: Space<S>,
    init_ids: Vec<u32>,
    transitions: usize,
    depth: usize,
    closure_violations: usize,
    closure_example: Option<ClosureViolation<S>>,
) -> Exploration<S> {
    let nstates = space.configs.len();
    let legit_states = space.legit.iter().filter(|&&l| l).count();

    // Deadlocks: illegitimate terminal configurations.
    let mut deadlocks = 0usize;
    let mut deadlock_example = None;
    for s in 0..nstates {
        if !space.legit[s] && space.enabled[s] == 0 {
            deadlocks += 1;
            if deadlock_example.is_none() {
                deadlock_example = Some(space.configs[s].clone());
            }
        }
    }

    // Reverse-topological order of the illegitimate region (Kahn on
    // reversed edges): a state is ready once every illegitimate
    // successor has been processed.
    let mut remaining: Vec<u32> = vec![0; nstates];
    let mut preds: Vec<Vec<u32>> = vec![Vec::new(); nstates];
    let mut illegit_count = 0usize;
    for (s, slot) in remaining.iter_mut().enumerate() {
        if space.legit[s] {
            continue;
        }
        illegit_count += 1;
        for &(_, t) in &space.trans[s] {
            if !space.legit[t as usize] {
                *slot += 1;
                preds[t as usize].push(s as u32);
            }
        }
    }
    let mut order: Vec<u32> = Vec::with_capacity(illegit_count);
    let mut queue: Vec<u32> = (0..nstates as u32)
        .filter(|&s| !space.legit[s as usize] && remaining[s as usize] == 0)
        .collect();
    while let Some(s) = queue.pop() {
        order.push(s);
        for &p in &preds[s as usize] {
            remaining[p as usize] -= 1;
            if remaining[p as usize] == 0 {
                queue.push(p);
            }
        }
    }

    let cycle = if order.len() < illegit_count {
        // A cycle of unprocessed states exists; walk unprocessed
        // successors until a state repeats.
        let start = (0..nstates)
            .find(|&s| !space.legit[s] && remaining[s] > 0)
            .expect("unprocessed state exists") as u32;
        let mut seen: HashMap<u32, usize> = HashMap::new();
        let mut path = Vec::new();
        let mut cur = start;
        let cycle_ids = loop {
            if let Some(&i) = seen.get(&cur) {
                break path[i..].to_vec();
            }
            seen.insert(cur, path.len());
            path.push(cur);
            cur = space.trans[cur as usize]
                .iter()
                .find(|&&(_, t)| !space.legit[t as usize] && remaining[t as usize] > 0)
                .expect("a state stuck in Kahn has an unprocessed successor")
                .1;
        };
        Some(
            cycle_ids
                .iter()
                .map(|&s| space.configs[s as usize].clone())
                .collect(),
        )
    } else {
        None
    };

    let converges = deadlocks == 0 && cycle.is_none();
    let (worst, witness_moves, witness_rounds) = if converges {
        let (worst, wm, wr) = worst_cases(&space, &init_ids, &order);
        (Some(worst), wm, wr)
    } else {
        (None, None, None)
    };

    Exploration {
        states: nstates,
        transitions,
        legit_states,
        depth,
        deadlocks,
        deadlock_example,
        cycle,
        closure_violations,
        closure_example,
        worst,
        witness_moves,
        witness_rounds,
    }
}

/// The longest-path DPs (moves and steps over the illegitimate DAG,
/// rounds over its product with round fronts) plus witness schedules.
///
/// Requires convergence: `order` must cover the whole illegitimate
/// region in reverse-topological order, and no deadlocks exist.
fn worst_cases<S: Clone>(
    space: &Space<S>,
    init_ids: &[u32],
    order: &[u32],
) -> (WorstCase, Option<Witness>, Option<Witness>) {
    let nstates = space.configs.len();
    let mut moves = vec![0u64; nstates];
    let mut steps = vec![0u64; nstates];
    let mut choice: Vec<(u32, u32)> = vec![(0, 0); nstates];
    for &s in order {
        let s = s as usize;
        let mut best_m = 0u64;
        let mut best_s = 0u64;
        let mut best_edge = None;
        for &(mask, t) in &space.trans[s] {
            let tl = space.legit[t as usize];
            let m = mask.count_ones() as u64 + if tl { 0 } else { moves[t as usize] };
            let st = 1 + if tl { 0 } else { steps[t as usize] };
            if best_edge.is_none() || m > best_m {
                best_m = m;
                best_edge = Some((mask, t));
            }
            best_s = best_s.max(st);
        }
        moves[s] = best_m;
        steps[s] = best_s;
        choice[s] = best_edge.expect("illegitimate states are never terminal here");
    }

    // Rounds: memoized longest path over (state, round front).
    let mut memo: HashMap<u64, (u64, usize)> = HashMap::new();
    let roots: Vec<u64> = init_ids
        .iter()
        .filter(|&&i| !space.legit[i as usize])
        .map(|&i| pack(i, space.enabled[i as usize]))
        .collect();
    rounds_dp(space, &roots, &mut memo);

    // Maximize each measure over the initial configurations.
    let mut worst = WorstCase::default();
    let mut best_moves_init: Option<usize> = None;
    let mut best_rounds_init: Option<usize> = None;
    for (idx, &id) in init_ids.iter().enumerate() {
        if space.legit[id as usize] {
            continue;
        }
        let m = moves[id as usize];
        if best_moves_init.is_none() || m > worst.moves {
            worst.moves = m;
            best_moves_init = Some(idx);
        }
        worst.steps = worst.steps.max(steps[id as usize]);
        let r = memo[&pack(id, space.enabled[id as usize])].0;
        if best_rounds_init.is_none() || r > worst.rounds {
            worst.rounds = r;
            best_rounds_init = Some(idx);
        }
    }

    let witness_moves = best_moves_init.map(|idx| {
        let start = init_ids[idx];
        let mut schedule = Vec::new();
        let mut total_moves = 0u64;
        let mut front = space.enabled[start as usize];
        let mut completed = 0u64;
        let mut just_completed = false;
        let mut id = start;
        while !space.legit[id as usize] {
            let (mask, t) = choice[id as usize];
            schedule.push(nodes_of_mask(mask));
            total_moves += mask.count_ones() as u64;
            let f2 = front & !mask & space.enabled[t as usize];
            if f2 == 0 {
                completed += 1;
                just_completed = true;
                front = space.enabled[t as usize];
            } else {
                front = f2;
                just_completed = false;
            }
            id = t;
        }
        let steps = schedule.len() as u64;
        let rounds = completed + u64::from(!just_completed);
        Witness {
            init: idx,
            schedule,
            moves: total_moves,
            steps,
            rounds,
        }
    });

    let witness_rounds = best_rounds_init.map(|idx| {
        let start = init_ids[idx];
        let mut schedule = Vec::new();
        let mut total_moves = 0u64;
        let rounds = memo[&pack(start, space.enabled[start as usize])].0;
        let mut key = pack(start, space.enabled[start as usize]);
        loop {
            let (s, f) = unpack(key);
            let (_, edge) = memo[&key];
            let (mask, t) = space.trans[s as usize][edge];
            schedule.push(nodes_of_mask(mask));
            total_moves += mask.count_ones() as u64;
            if space.legit[t as usize] {
                break;
            }
            let f2 = f & !mask & space.enabled[t as usize];
            key = if f2 == 0 {
                pack(t, space.enabled[t as usize])
            } else {
                pack(t, f2)
            };
        }
        let steps = schedule.len() as u64;
        Witness {
            init: idx,
            schedule,
            moves: total_moves,
            steps,
            rounds,
        }
    });

    (worst, witness_moves, witness_rounds)
}

#[inline]
fn pack(state: u32, front: u32) -> u64 {
    ((state as u64) << 32) | front as u64
}

#[inline]
fn unpack(key: u64) -> (u32, u32) {
    ((key >> 32) as u32, key as u32)
}

/// Fills `memo` with `(worst additional rounds, argmax edge)` for
/// every `(state, front)` pair reachable from `roots`, by iterative
/// memoized DFS (the product graph is acyclic because the
/// illegitimate configuration graph is).
///
/// Semantics per edge `(mask, t)` from `(s, F)`:
/// `F' = F \ activated \ neutralized`; an empty `F'` completes the
/// round (cost 1, front resets to `enabled(t)`). Hitting a legitimate
/// state costs exactly 1 — the completing round if `F'` is empty, the
/// partial round otherwise (`rounds_at_hit` counts it as one).
fn rounds_dp<S>(space: &Space<S>, roots: &[u64], memo: &mut HashMap<u64, (u64, usize)>) {
    struct Frame {
        key: u64,
        edge: usize,
        best_val: u64,
        best_edge: Option<usize>,
    }
    let mut stack: Vec<Frame> = Vec::new();
    for &root in roots {
        if memo.contains_key(&root) {
            continue;
        }
        stack.push(Frame {
            key: root,
            edge: 0,
            best_val: 0,
            best_edge: None,
        });
        while !stack.is_empty() {
            let top = stack.len() - 1;
            let key = stack[top].key;
            let (s, f) = unpack(key);
            let edges = &space.trans[s as usize];
            let mut edge = stack[top].edge;
            let mut best_val = stack[top].best_val;
            let mut best_edge = stack[top].best_edge;
            let mut pushed = false;
            while edge < edges.len() {
                let (mask, t) = edges[edge];
                let f2 = f & !mask & space.enabled[t as usize];
                let val = if space.legit[t as usize] {
                    Some(1)
                } else {
                    let ckey = if f2 == 0 {
                        pack(t, space.enabled[t as usize])
                    } else {
                        pack(t, f2)
                    };
                    match memo.get(&ckey) {
                        Some(&(v, _)) => Some(if f2 == 0 { 1 + v } else { v }),
                        None => {
                            stack[top].edge = edge;
                            stack[top].best_val = best_val;
                            stack[top].best_edge = best_edge;
                            stack.push(Frame {
                                key: ckey,
                                edge: 0,
                                best_val: 0,
                                best_edge: None,
                            });
                            pushed = true;
                            break;
                        }
                    }
                };
                if let Some(v) = val {
                    if best_edge.is_none() || v > best_val {
                        best_val = v;
                        best_edge = Some(edge);
                    }
                    edge += 1;
                }
            }
            if pushed {
                continue;
            }
            memo.insert(
                key,
                (
                    best_val,
                    best_edge.expect("illegitimate states are never terminal here"),
                ),
            );
            stack.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::testutil::{all_true, Flood};
    use crate::{RuleId, RuleMask, StateView};

    #[test]
    fn flood_path_exact_worst_case() {
        // Flood on a path from one end: only one process is ever
        // enabled, so every daemon class agrees — exactly n-1 steps,
        // n-1 moves, n-1 rounds, and n distinct states on the line.
        let g = ssr_graph::generators::path(4);
        let mut init = vec![false; 4];
        init[0] = true;
        let ex = explore(&g, &Flood, &[init], all_true, &ExploreOptions::default()).unwrap();
        assert!(ex.verified());
        assert_eq!(ex.states, 4);
        assert_eq!(
            ex.worst,
            Some(WorstCase {
                moves: 3,
                steps: 3,
                rounds: 3
            })
        );
        let w = ex.witness_moves.unwrap();
        assert_eq!(w.steps, 3);
        assert_eq!(w.schedule.len(), 3);
    }

    #[test]
    fn flood_star_distributed_vs_synchronous() {
        // Flood from the hub of a star: leaves are independent. The
        // synchronous daemon finishes in one step; the distributed
        // daemon can spread the 3 leaf moves over 3 steps but the
        // round closes only when the last front member moves.
        let g = ssr_graph::generators::star(4);
        let mut init = vec![false; 4];
        init[0] = true;
        let sync = explore(
            &g,
            &Flood,
            &[init.clone()],
            all_true,
            &ExploreOptions {
                daemon: DaemonClass::Synchronous,
                ..ExploreOptions::default()
            },
        )
        .unwrap();
        assert_eq!(
            sync.worst,
            Some(WorstCase {
                moves: 3,
                steps: 1,
                rounds: 1
            })
        );
        let dist = explore(&g, &Flood, &[init], all_true, &ExploreOptions::default()).unwrap();
        // 3 leaves on/off (minus all-off impossible after a step).
        assert_eq!(
            dist.worst,
            Some(WorstCase {
                moves: 3,
                steps: 3,
                rounds: 1
            })
        );
        assert!(dist.states > sync.states);
    }

    #[test]
    fn already_legitimate_init_has_zero_worst_case() {
        let g = ssr_graph::generators::path(3);
        let ex = explore(
            &g,
            &Flood,
            &[vec![true; 3]],
            all_true,
            &ExploreOptions::default(),
        )
        .unwrap();
        assert!(ex.verified());
        assert_eq!(ex.worst, Some(WorstCase::default()));
        assert!(ex.witness_moves.is_none());
    }

    /// A process with `false` and no `true` neighbor is stuck: from
    /// all-`false` the system deadlocks illegitimately.
    #[test]
    fn deadlock_is_detected_with_counterexample() {
        let g = ssr_graph::generators::path(3);
        let ex = explore(
            &g,
            &Flood,
            &[vec![false; 3]],
            all_true,
            &ExploreOptions::default(),
        )
        .unwrap();
        assert!(!ex.verified());
        assert_eq!(ex.deadlocks, 1);
        assert_eq!(ex.deadlock_example, Some(vec![false; 3]));
        assert!(ex.worst.is_none());
    }

    /// Blinker: every process is always enabled and flips its bit.
    /// With "all false" as the legitimate set, the central daemon can
    /// cycle forever — a livelock the explorer must expose.
    struct Blinker;

    impl Algorithm for Blinker {
        type State = bool;
        fn rule_count(&self) -> usize {
            1
        }
        fn rule_name(&self, _: RuleId) -> &'static str {
            "flip"
        }
        fn enabled_mask<V: StateView<bool>>(&self, _: NodeId, _: &V) -> RuleMask {
            RuleMask::from_bool(true)
        }
        fn apply<V: StateView<bool>>(&self, u: NodeId, view: &V, _: RuleId) -> bool {
            !*view.state(u)
        }
    }

    #[test]
    fn livelock_cycle_is_detected() {
        let g = ssr_graph::generators::path(2);
        let ex = explore(
            &g,
            &Blinker,
            &[vec![true, true]],
            |_, st| st.iter().all(|&b| !b),
            &ExploreOptions::default(),
        )
        .unwrap();
        assert!(!ex.verified());
        let cycle = ex.cycle.expect("blinker livelocks");
        assert!(!cycle.is_empty());
        assert!(ex.worst.is_none());
    }

    /// All-false is legitimate but not closed under Blinker (every
    /// process stays enabled and flips back out).
    #[test]
    fn closure_violation_is_detected() {
        let g = ssr_graph::generators::path(2);
        let ex = explore(
            &g,
            &Blinker,
            &[vec![false, false]],
            |_, st| st.iter().all(|&b| !b),
            &ExploreOptions::default(),
        )
        .unwrap();
        assert!(ex.closure_violations > 0);
        let v = ex.closure_example.unwrap();
        assert_eq!(v.from, vec![false, false]);
        assert!(v.to.contains(&true));
    }

    #[test]
    fn limits_are_enforced() {
        let g = ssr_graph::generators::path(3);
        let err = explore(&g, &Flood, &[], all_true, &ExploreOptions::default()).unwrap_err();
        assert_eq!(err, ExploreError::EmptyInits);
        let err = explore(
            &g,
            &Flood,
            &[vec![true; 2]],
            all_true,
            &ExploreOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, ExploreError::ConfigSizeMismatch { .. }));
        let mut init = vec![false; 3];
        init[0] = true;
        let err = explore(
            &g,
            &Flood,
            &[init],
            all_true,
            &ExploreOptions {
                max_states: 1,
                ..ExploreOptions::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, ExploreError::StateSpaceExceeded { limit: 1 });
        let big = ssr_graph::generators::path(MAX_NODES + 1);
        let err = explore(
            &big,
            &Flood,
            &[vec![true; MAX_NODES + 1]],
            all_true,
            &ExploreOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, ExploreError::TooManyNodes { .. }));
    }

    #[test]
    fn parallel_exploration_is_byte_identical() {
        let g = ssr_graph::generators::star(5);
        let mut init = vec![false; 5];
        init[0] = true;
        let seq = explore(
            &g,
            &Flood,
            &[init.clone()],
            all_true,
            &ExploreOptions::default(),
        )
        .unwrap();
        for threads in [2, 4, 7] {
            let par = explore(
                &g,
                &Flood,
                &[init.clone()],
                all_true,
                &ExploreOptions {
                    threads,
                    ..ExploreOptions::default()
                },
            )
            .unwrap();
            assert_eq!(seq, par, "threads={threads}");
        }
    }
}
