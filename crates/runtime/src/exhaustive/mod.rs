//! Bounded exhaustive schedule-space exploration over any
//! [`Algorithm`](crate::Algorithm): exact worst-case bounds, mechanical
//! closure/convergence verification, and replayable counterexample
//! traces.
//!
//! A stochastic simulator observes one schedule per seed; for small
//! graphs (n ≲ 8–10) [`explore`] walks the **full configuration
//! graph** instead — every daemon choice of the selected
//! [`DaemonClass`] at every step — and turns universally-quantified
//! self-stabilization claims into checkable facts: convergence (no
//! illegitimate deadlock or cycle), closure, the exact worst-case
//! moves/steps/rounds to legitimacy, and [`Witness`] schedules that
//! replay step-for-step through [`Execution`](crate::Execution) via
//! [`Daemon::Script`](crate::Daemon).
//!
//! States are deduplicated through the [`ExploreState`] canonical
//! encoding (the `Algorithm::State` bound is deliberately not `Hash`).
//! This module lives in the runtime so that *algorithm families*
//! ([`crate::family`]) can expose exhaustive exploration behind the
//! object-safe [`ExploreFamily`](crate::family::ExploreFamily) hook —
//! the `ssr-explore` crate re-exports everything here and adds the
//! campaign-level drivers on top.

mod encode;
mod engine;
mod witness;

pub use encode::ExploreState;
pub use engine::{
    explore, ClosureViolation, DaemonClass, Exploration, ExploreError, ExploreOptions, WorstCase,
    MAX_ENABLED, MAX_NODES,
};
pub use witness::Witness;

#[cfg(test)]
pub(crate) mod testutil {
    use crate::{Algorithm, RuleId, RuleMask, StateView};
    use ssr_graph::{Graph, NodeId};

    /// Flood of `true` along edges — the shared unit-test algorithm:
    /// one rule, monotone, terminates, and its worst cases are easy to
    /// derive by hand.
    pub struct Flood;

    impl Algorithm for Flood {
        type State = bool;
        fn rule_count(&self) -> usize {
            1
        }
        fn rule_name(&self, _: RuleId) -> &'static str {
            "flood"
        }
        fn enabled_mask<V: StateView<bool>>(&self, u: NodeId, view: &V) -> RuleMask {
            let infected = view.graph().neighbors(u).iter().any(|&v| *view.state(v));
            RuleMask::from_bool(!*view.state(u) && infected)
        }
        fn apply<V: StateView<bool>>(&self, _: NodeId, _: &V, _: RuleId) -> bool {
            true
        }
    }

    /// The flood's legitimate set: everyone infected.
    pub fn all_true(_: &Graph, st: &[bool]) -> bool {
        st.iter().all(|&b| b)
    }
}
