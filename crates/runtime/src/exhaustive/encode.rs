//! Canonical state encoding: the bridge between the runtime's
//! `Algorithm::State` bound (`Clone + PartialEq` — deliberately *not*
//! `Hash`) and the explorer's need to deduplicate configurations.
//!
//! [`ExploreState`] turns one per-process state into a canonical
//! sequence of `u64` words; a configuration's key is the concatenation
//! of its nodes' words (node order is the canonical order). Two states
//! must encode identically **iff they are behaviorally equivalent**:
//! the encoding is allowed to *quotient away* dead variables. This
//! module implements the trait for the primitive state types (clocks,
//! counters, toy inputs, flags); richer state types implement it in
//! their home crates — `ssr-core` quotients SDR's distance under
//! status `C`, `ssr-alliance` packs the FGA record, `ssr-baselines`
//! covers the mono-reset product state.

/// A per-process state with a canonical `u64`-word encoding.
///
/// Contract: for states `a`, `b` of the same type, the encodings are
/// equal **iff** `a` and `b` are behaviorally equivalent — same
/// enabled rules and same successors (after canonicalization) in every
/// context. Plain `PartialEq` equality must imply encoding equality;
/// the converse may be relaxed only by quotienting provably dead
/// variables (see the `ssr-core` implementation for SDR's distance).
///
/// # Examples
///
/// ```
/// use ssr_runtime::exhaustive::ExploreState;
///
/// let mut a = Vec::new();
/// 7u32.encode(&mut a);
/// assert_eq!(a, vec![7]);
/// ```
pub trait ExploreState {
    /// Appends this state's canonical words to `out`.
    ///
    /// Every state of a given type must append the **same number** of
    /// words, so configuration keys stay aligned.
    fn encode(&self, out: &mut Vec<u64>);
}

macro_rules! impl_explore_state_prim {
    ($($t:ty),+) => {
        $(impl ExploreState for $t {
            #[inline]
            fn encode(&self, out: &mut Vec<u64>) {
                out.push(*self as u64);
            }
        })+
    };
}

impl_explore_state_prim!(u8, u16, u32, u64, bool);

/// Encodes a whole configuration (one state per node, in node order)
/// into a boxed key, reusing `scratch` for the intermediate buffer.
pub(crate) fn encode_config<S: ExploreState>(config: &[S], scratch: &mut Vec<u64>) -> Box<[u64]> {
    scratch.clear();
    for s in config {
        s.encode(scratch);
    }
    scratch.as_slice().into()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words<S: ExploreState>(s: &S) -> Vec<u64> {
        let mut out = Vec::new();
        s.encode(&mut out);
        out
    }

    #[test]
    fn primitives_encode_one_word() {
        assert_eq!(words(&3u8), vec![3]);
        assert_eq!(words(&3u64), vec![3]);
        assert_eq!(words(&true), vec![1]);
        assert_eq!(words(&false), vec![0]);
    }

    #[test]
    fn encode_config_is_order_sensitive() {
        let mut scratch = Vec::new();
        let k1 = encode_config(&[1u64, 2], &mut scratch);
        let k2 = encode_config(&[2u64, 1], &mut scratch);
        assert_ne!(k1, k2);
        assert_eq!(k1.len(), 2);
    }
}
