//! Deterministic pseudo-random number generation for simulations.
//!
//! The simulator must be bit-for-bit reproducible from a `u64` seed so
//! that every experiment in EXPERIMENTS.md can be re-run exactly. We
//! ship a small, well-known generator instead of depending on `rand`:
//! [`Xoshiro256StarStar`] (public-domain reference algorithm by Blackman
//! & Vigna), seeded through splitmix64 as its authors prescribe.
//!
//! # Examples
//!
//! ```
//! use ssr_runtime::rng::Xoshiro256StarStar;
//!
//! let mut a = Xoshiro256StarStar::seed_from_u64(7);
//! let mut b = Xoshiro256StarStar::seed_from_u64(7);
//! assert_eq!(a.next_u64(), b.next_u64());
//! let x = a.below(10);
//! assert!(x < 10);
//! ```

/// splitmix64 step: used to expand a `u64` seed into generator state.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256** — a fast, high-quality, deterministic PRNG.
///
/// The generator counts its own draws ([`Xoshiro256StarStar::draws`]):
/// every derived sampler (`below`, `f64`, `chance`, …) funnels through
/// [`Xoshiro256StarStar::next_u64`], so the counter is an exact audit
/// trail of randomness consumption. The step pipeline snapshots it at
/// phase boundaries, which is how `ssr-analyze` *proves* that all
/// draws happen in the sequential select phase (the RNG-discipline
/// obligation behind deterministic intra-run parallelism).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
    draws: u64,
}

impl Xoshiro256StarStar {
    /// Seeds the generator from a single `u64` via splitmix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256StarStar { s, draws: 0 }
    }

    /// Raw 64-bit outputs produced so far (each derived sampler costs
    /// exactly one draw). Seed expansion does not count.
    #[inline]
    pub fn draws(&self) -> u64 {
        self.draws
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.draws += 1;
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Lemire's multiply-shift; bias < 2^-64 * bound, irrelevant here.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `usize` index in `0..bound`.
    #[inline]
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Uniformly chooses an element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if `slice` is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "choose from empty slice");
        &slice[self.index(slice.len())]
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Derives an independent child generator (for per-run streams).
    pub fn fork(&mut self) -> Self {
        Xoshiro256StarStar::seed_from_u64(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = Xoshiro256StarStar::seed_from_u64(123);
        let mut b = Xoshiro256StarStar::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Xoshiro256StarStar::seed_from_u64(1);
        let mut b = Xoshiro256StarStar::seed_from_u64(2);
        let same = (0..10).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = Xoshiro256StarStar::seed_from_u64(9);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(r.below(bound) < bound);
            }
        }
    }

    #[test]
    fn below_covers_small_ranges() {
        let mut r = Xoshiro256StarStar::seed_from_u64(5);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.below(4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Xoshiro256StarStar::seed_from_u64(77);
        for _ in 0..1000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = Xoshiro256StarStar::seed_from_u64(4);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Xoshiro256StarStar::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fork_decorrelates() {
        let mut r = Xoshiro256StarStar::seed_from_u64(3);
        let mut c1 = r.fork();
        let mut c2 = r.fork();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn draw_counter_is_exact() {
        let mut r = Xoshiro256StarStar::seed_from_u64(6);
        assert_eq!(r.draws(), 0, "seed expansion is not a draw");
        r.next_u64();
        assert_eq!(r.draws(), 1);
        r.below(10);
        r.f64();
        r.chance(0.3);
        assert_eq!(r.draws(), 4, "every derived sampler costs one draw");
        let mut v = [1u8, 2, 3, 4];
        r.shuffle(&mut v);
        assert_eq!(r.draws(), 4 + 3, "Fisher–Yates draws n-1 indices");
        let child = r.fork();
        assert_eq!(r.draws(), 8, "forking costs the parent one draw");
        assert_eq!(child.draws(), 0, "children start fresh");
    }
}
