//! Transient-fault injection (workload generator for recovery
//! experiments, DESIGN.md E11).
//!
//! Self-stabilization quantifies over *arbitrary* initial configurations
//! — equivalently, over arbitrary bursts of transient faults that
//! corrupt process memory but not code (§1). This module corrupts a
//! running [`Simulator`] by overwriting the states of `k` random
//! processes with caller-supplied domain-respecting random states.

use ssr_graph::NodeId;

use crate::algorithm::Algorithm;
use crate::rng::Xoshiro256StarStar;
use crate::simulator::Simulator;

/// Overwrites the states of `k` distinct random processes.
///
/// `corrupt` receives the victim and the RNG and must return a state
/// *within the variable domains* of the algorithm (self-stabilization
/// assumes variables keep their types). Returns the victims.
///
/// # Panics
///
/// Panics if `k` exceeds the node count.
///
/// # Examples
///
/// ```
/// use ssr_graph::generators;
/// use ssr_runtime::{faults, Daemon, Simulator};
/// use ssr_runtime::rng::Xoshiro256StarStar;
/// # use ssr_runtime::{Algorithm, NodeId, RuleId, RuleMask, StateView};
/// # struct Noop;
/// # impl Algorithm for Noop {
/// #     type State = u8;
/// #     fn rule_count(&self) -> usize { 1 }
/// #     fn rule_name(&self, _: RuleId) -> &'static str { "noop" }
/// #     fn enabled_mask<V: StateView<u8>>(&self, _: NodeId, _: &V) -> RuleMask { RuleMask::NONE }
/// #     fn apply<V: StateView<u8>>(&self, _: NodeId, _: &V, _: RuleId) -> u8 { 0 }
/// # }
/// let g = generators::ring(8);
/// let mut sim = Simulator::new(&g, Noop, vec![0u8; 8], Daemon::Central, 1);
/// let mut rng = Xoshiro256StarStar::seed_from_u64(2);
/// let victims = faults::corrupt_random(&mut sim, 3, &mut rng, |_, r| (r.below(7) + 1) as u8);
/// assert_eq!(victims.len(), 3);
/// assert_eq!(sim.states().iter().filter(|&&s| s != 0).count(), 3);
/// ```
pub fn corrupt_random<A: Algorithm>(
    sim: &mut Simulator<'_, A>,
    k: usize,
    rng: &mut Xoshiro256StarStar,
    mut corrupt: impl FnMut(NodeId, &mut Xoshiro256StarStar) -> A::State,
) -> Vec<NodeId> {
    let n = sim.graph().node_count();
    assert!(k <= n, "cannot corrupt more processes than exist");
    // Partial Fisher–Yates over the node ids.
    let mut ids: Vec<NodeId> = sim.graph().nodes().collect();
    for i in 0..k {
        let j = i + rng.index(n - i);
        ids.swap(i, j);
    }
    ids.truncate(k);
    for &u in &ids {
        let state = corrupt(u, rng);
        sim.inject(u, state);
    }
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::{RuleId, RuleMask, StateView};
    use crate::daemon::Daemon;
    use ssr_graph::generators;

    struct Noop;
    impl Algorithm for Noop {
        type State = u8;
        fn rule_count(&self) -> usize {
            1
        }
        fn rule_name(&self, _: RuleId) -> &'static str {
            "noop"
        }
        fn enabled_mask<V: StateView<u8>>(&self, _: NodeId, _: &V) -> RuleMask {
            RuleMask::NONE
        }
        fn apply<V: StateView<u8>>(&self, _: NodeId, _: &V, _: RuleId) -> u8 {
            0
        }
    }

    #[test]
    fn corrupts_exactly_k_distinct_processes() {
        let g = generators::ring(10);
        let mut sim = Simulator::new(&g, Noop, vec![0u8; 10], Daemon::Central, 0);
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let victims = corrupt_random(&mut sim, 4, &mut rng, |_, _| 9);
        let mut sorted = victims.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
        assert_eq!(sim.states().iter().filter(|&&s| s == 9).count(), 4);
    }

    #[test]
    fn corrupt_zero_is_noop() {
        let g = generators::ring(5);
        let mut sim = Simulator::new(&g, Noop, vec![0u8; 5], Daemon::Central, 0);
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let victims = corrupt_random(&mut sim, 0, &mut rng, |_, _| 9);
        assert!(victims.is_empty());
        assert!(sim.states().iter().all(|&s| s == 0));
    }

    #[test]
    fn corrupt_all_hits_everyone() {
        let g = generators::ring(6);
        let mut sim = Simulator::new(&g, Noop, vec![0u8; 6], Daemon::Central, 0);
        let mut rng = Xoshiro256StarStar::seed_from_u64(2);
        corrupt_random(&mut sim, 6, &mut rng, |u, _| u.0 as u8 + 1);
        assert!(sim.states().iter().all(|&s| s != 0));
    }

    #[test]
    #[should_panic(expected = "cannot corrupt more")]
    fn corrupt_too_many_panics() {
        let g = generators::ring(3);
        let mut sim = Simulator::new(&g, Noop, vec![0u8; 3], Daemon::Central, 0);
        let mut rng = Xoshiro256StarStar::seed_from_u64(2);
        corrupt_random(&mut sim, 4, &mut rng, |_, _| 1);
    }
}
