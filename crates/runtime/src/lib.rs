//! Executable model of the *locally shared memory model with composite
//! atomicity* (Dijkstra's state model) used by the SDR paper (§2.2–2.5).
//!
//! A distributed [`Algorithm`] is a set of guarded rules per process.
//! A configuration is a vector of per-process states. In each step a
//! *daemon* activates a non-empty subset of the enabled processes; every
//! activated process atomically executes one enabled rule, reading the
//! **old** states of its closed neighborhood and writing only its own
//! state.
//!
//! The [`Simulator`] drives executions and accounts for the two time
//! measures of the paper:
//!
//! * **moves** — rule executions, total / per process / per rule;
//! * **rounds** — via the *neutralization* definition (§2.4): the first
//!   round is the minimal prefix in which every process enabled in the
//!   initial configuration either moves or becomes neutralized
//!   (enabled before a step, not activated, disabled after).
//!
//! [`Daemon`] provides schedules ranging from synchronous to adversarial
//! heuristics; all of them are legal *distributed unfair daemon*
//! executions, so measured times are existential lower bounds that the
//! paper's universal upper bounds must dominate.
//!
//! Runs are driven through the [`exec`] module: an [`Execution`] builder
//! owns the one canonical run loop, and [`Observer`]s plug trajectory
//! probes (segment tracking, liveness windows, verification sampling)
//! into it without forking the loop.
//!
//! # Threading contract
//!
//! The batch layers above this crate (`ssr-campaign`) run one
//! simulator per worker thread. Everything needed for that is `Send`
//! by construction and pinned by tests: [`Daemon`], [`RunStats`],
//! [`RunOutcome`], and [`Simulator`] itself whenever the algorithm and
//! its state are `Send`.
//!
//! Within one run, the [`step`](crate::Simulator::step) pipeline can
//! additionally fan its apply and guard kernels out over a scoped
//! thread pool ([`Simulator::set_intra_threads`] /
//! [`Execution::intra_threads`], `ExecBudget::with_intra_threads` for
//! families). Intra-run parallelism is **deterministic by
//! construction**: all daemon and rule-choice RNG draws happen in the
//! sequential select phase, kernels only read the frozen pre-step
//! configuration, and results merge in a fixed order — so a run is
//! byte-identical at any thread count, and across-run parallelism
//! composes freely with it.
//!
//! # Examples
//!
//! ```
//! use ssr_graph::generators;
//! use ssr_runtime::{Algorithm, Daemon, NodeId, RuleId, RuleMask, Simulator, StateView};
//!
//! /// Toy flood: a node with a `true` neighbor becomes `true`.
//! struct Flood;
//! impl Algorithm for Flood {
//!     type State = bool;
//!     fn rule_count(&self) -> usize { 1 }
//!     fn rule_name(&self, _: RuleId) -> &'static str { "flood" }
//!     fn enabled_mask<V: StateView<bool>>(&self, u: NodeId, view: &V) -> RuleMask {
//!         let infected = view.graph().neighbors(u).iter().any(|&v| *view.state(v));
//!         RuleMask::from_bool(!*view.state(u) && infected)
//!     }
//!     fn apply<V: StateView<bool>>(&self, _: NodeId, _: &V, _: RuleId) -> bool { true }
//! }
//!
//! let g = generators::path(5);
//! let mut init = vec![false; 5];
//! init[0] = true;
//! let mut sim = Simulator::new(&g, Flood, init, Daemon::Synchronous, 42);
//! let out = sim.execution().cap(1_000).run();
//! assert!(out.terminal);
//! assert_eq!(sim.stats().moves, 4);
//! assert_eq!(sim.stats().completed_rounds, 4);
//! ```

#![forbid(unsafe_code)]

mod algorithm;
pub mod analysis;
mod daemon;
pub mod exec;
pub mod exhaustive;
pub mod family;
pub mod faults;
pub mod fingerprint;
pub mod report;
pub mod rng;
mod simulator;
pub mod soa;
mod step;
pub mod trace;

pub use algorithm::{
    iter_ones, Algorithm, ConfigView, IterOnes, MapView, RuleId, RuleMask, StateView,
};
pub use analysis::{
    AnalyzeFamily, AnalyzeOptions, Finding, FindingKind, GraphAnalysis, OverlapStat, RngAudit,
    RuleStats, Severity, TrackedView,
};
pub use daemon::Daemon;
pub use exec::{Execution, NoObserver, NoPredicate, Observer, RunReport};
pub use family::{
    AlgorithmSpec, Amount, Bounds, ExecBudget, ExploreFamily, Family, FamilyProbe, FamilyRegistry,
    FamilyRunOutcome, InitPlan, RunSeeds, Verdict,
};
pub use fingerprint::{Canon, Fingerprint, FpEncoder};
pub use simulator::{RunOutcome, RunStats, Simulator, StepOutcome, TerminationReason};
pub use soa::{AosColumns, ScalarColumns, StateColumns};
pub use trace::{NoTrace, TraceEvent, TracePhase, TraceSink};

// Re-export the graph handle: every API in this crate speaks `NodeId`.
pub use ssr_graph::NodeId;
