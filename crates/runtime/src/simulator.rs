//! The [`Simulator`]: composite-atomicity execution engine with move and
//! round accounting.

use std::fmt;

use ssr_graph::{Graph, NodeId};

use crate::algorithm::{Algorithm, ConfigView, RuleId, RuleMask};
use crate::daemon::Daemon;
use crate::exec::Execution;
use crate::rng::Xoshiro256StarStar;

/// Execution counters (§2.4 time measures).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Steps taken (configuration transitions).
    pub steps: u64,
    /// Total moves (rule executions; ≥ steps, = steps for central daemons).
    pub moves: u64,
    /// Rounds fully completed (neutralization-based, §2.4).
    pub completed_rounds: u64,
    /// Moves per process.
    pub moves_per_process: Vec<u64>,
    /// Moves per rule.
    pub moves_per_rule: Vec<u64>,
    /// Moves per (process, rule), flattened as `process * rule_count + rule`.
    pub moves_per_process_rule: Vec<u64>,
}

impl RunStats {
    fn new(n: usize, rules: usize) -> Self {
        RunStats {
            steps: 0,
            moves: 0,
            completed_rounds: 0,
            moves_per_process: vec![0; n],
            moves_per_rule: vec![0; rules],
            moves_per_process_rule: vec![0; n * rules],
        }
    }

    /// Moves executed by process `u` with rule `rule`.
    pub fn moves_of(&self, u: NodeId, rule: RuleId, rule_count: usize) -> u64 {
        self.moves_per_process_rule[u.index() * rule_count + rule.index()]
    }

    /// The maximum per-process move count.
    pub fn max_moves_per_process(&self) -> u64 {
        self.moves_per_process.iter().copied().max().unwrap_or(0)
    }
}

/// Result of a single [`Simulator::step`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    /// No process was enabled; the configuration is terminal.
    Terminal,
    /// A step was taken, activating `activated` processes.
    Progress {
        /// Number of processes that moved in this step.
        activated: usize,
    },
}

/// Why a driven run ([`crate::Execution::run`]) stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TerminationReason {
    /// The configuration is terminal: no rule is enabled anywhere.
    Terminal,
    /// The [`crate::Execution::until`] predicate holds.
    PredicateMet,
    /// The step budget ran out with the system still live — the only
    /// variant where the run was cut short, so experiments test this
    /// instead of inferring exhaustion from step counts.
    CapExhausted,
}

impl fmt::Display for TerminationReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TerminationReason::Terminal => "terminal",
            TerminationReason::PredicateMet => "predicate-met",
            TerminationReason::CapExhausted => "cap-exhausted",
        };
        write!(f, "{s}")
    }
}

/// Result of a driven run ([`crate::Execution::run`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunOutcome {
    /// Whether the run's target was met: the predicate for
    /// predicate-bearing runs, termination for plain runs (always
    /// `false` for predicate runs that hit the step bound).
    pub reached: bool,
    /// Whether the final configuration is terminal.
    pub terminal: bool,
    /// Steps taken during this run (not cumulative).
    pub steps_used: u64,
    /// Moves counted up to (and including) the step that reached the
    /// predicate, cumulative over the simulator's lifetime.
    pub moves_at_hit: u64,
    /// Stabilization time in rounds: completed rounds before the hit,
    /// counting a partially elapsed round as one full round.
    pub rounds_at_hit: u64,
    /// Why the run stopped.
    pub reason: TerminationReason,
}

/// Composite-atomicity execution engine.
///
/// Owns the configuration, evaluates guards (with incremental caching:
/// after a step only the movers and their neighbors are re-evaluated),
/// lets a [`Daemon`] pick the activated subset, and maintains move and
/// round counters.
///
/// See the crate-level documentation for an end-to-end example.
pub struct Simulator<'g, A: Algorithm> {
    graph: &'g Graph,
    algo: A,
    daemon: Daemon,
    rng: Xoshiro256StarStar,
    random_rule_choice: bool,
    states: Vec<A::State>,
    masks: Vec<RuleMask>,
    /// Enabled nodes as an indexed set (swap-remove list + position map).
    enabled_list: Vec<NodeId>,
    enabled_pos: Vec<u32>,
    /// Steps each process has been continuously enabled (for `Aging`).
    waits: Vec<u32>,
    track_waits: bool,
    /// Round front: processes enabled at round start, still pending.
    front: Vec<bool>,
    front_count: usize,
    /// Whether the last step completed a round.
    round_just_completed: bool,
    rr_cursor: usize,
    stats: RunStats,
    // Scratch buffers (reused across steps).
    selected: Vec<NodeId>,
    pending: Vec<(NodeId, RuleId, A::State)>,
    last_activated: Vec<(NodeId, RuleId)>,
    touched_stamp: Vec<u64>,
    stamp: u64,
}

const NOT_ENABLED: u32 = u32::MAX;

impl<'g, A: Algorithm> Simulator<'g, A> {
    /// Creates a simulator over `graph` starting from configuration
    /// `init`, scheduled by `daemon`, seeded by `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `init.len() != graph.node_count()` or the algorithm
    /// declares more than 32 rules.
    pub fn new(graph: &'g Graph, algo: A, init: Vec<A::State>, daemon: Daemon, seed: u64) -> Self {
        assert_eq!(
            init.len(),
            graph.node_count(),
            "initial configuration size must match node count"
        );
        assert!(algo.rule_count() <= 32, "at most 32 rules are supported");
        let n = graph.node_count();
        let rules = algo.rule_count();
        let track_waits = daemon.needs_wait_tracking();
        let mut sim = Simulator {
            graph,
            algo,
            daemon,
            rng: Xoshiro256StarStar::seed_from_u64(seed),
            random_rule_choice: false,
            states: init,
            masks: vec![RuleMask::NONE; n],
            enabled_list: Vec::with_capacity(n),
            enabled_pos: vec![NOT_ENABLED; n],
            waits: vec![0; n],
            track_waits,
            front: vec![false; n],
            front_count: 0,
            round_just_completed: false,
            rr_cursor: 0,
            stats: RunStats::new(n, rules),
            selected: Vec::new(),
            pending: Vec::new(),
            last_activated: Vec::new(),
            touched_stamp: vec![0; n],
            stamp: 0,
        };
        sim.recompute_all();
        sim.start_round();
        sim
    }

    /// When set, a process with several enabled rules executes a
    /// uniformly random one instead of the lowest-index one (the model
    /// leaves this choice nondeterministic, §2.2).
    pub fn set_random_rule_choice(&mut self, random: bool) {
        self.random_rule_choice = random;
    }

    /// The communication graph.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// The algorithm instance.
    pub fn algorithm(&self) -> &A {
        &self.algo
    }

    /// Current configuration (one state per node).
    pub fn states(&self) -> &[A::State] {
        &self.states
    }

    /// Current state of process `u`.
    pub fn state(&self, u: NodeId) -> &A::State {
        &self.states[u.index()]
    }

    /// Read-only view of the current configuration.
    pub fn view(&self) -> ConfigView<'_, A::State> {
        ConfigView::new(self.graph, &self.states)
    }

    /// Execution counters so far.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Whether no rule is enabled anywhere (terminal configuration).
    pub fn is_terminal(&self) -> bool {
        self.enabled_list.is_empty()
    }

    /// Number of currently enabled processes.
    pub fn enabled_count(&self) -> usize {
        self.enabled_list.len()
    }

    /// Enabled processes in ascending index order (for tests/reports).
    pub fn enabled_nodes_sorted(&self) -> Vec<NodeId> {
        let mut v = self.enabled_list.clone();
        v.sort_unstable();
        v
    }

    /// The enabled-rule mask of `u` in the current configuration.
    pub fn enabled_mask_of(&self, u: NodeId) -> RuleMask {
        self.masks[u.index()]
    }

    /// The `(process, rule)` pairs activated by the most recent step.
    pub fn last_activated(&self) -> &[(NodeId, RuleId)] {
        &self.last_activated
    }

    /// Stabilization rounds if the predicate held *now* (partial round
    /// counts as one).
    pub fn rounds_now(&self) -> u64 {
        if self.stats.steps == 0 || self.round_just_completed {
            self.stats.completed_rounds
        } else {
            self.stats.completed_rounds + 1
        }
    }

    /// Overwrites the state of `u` (transient-fault injection) and
    /// restarts round tracking from the resulting configuration.
    ///
    /// Move/round counters are preserved; see [`Simulator::reset_stats`]
    /// to measure recovery in isolation.
    pub fn inject(&mut self, u: NodeId, state: A::State) {
        self.states[u.index()] = state;
        self.stamp += 1;
        let stamp = self.stamp;
        self.refresh_node(u, stamp);
        for &v in self.graph.neighbors(u) {
            self.refresh_node(v, stamp);
        }
        self.start_round();
    }

    /// Zeroes all counters and restarts round tracking (useful to
    /// measure recovery after [`Simulator::inject`]).
    pub fn reset_stats(&mut self) {
        self.stats = RunStats::new(self.graph.node_count(), self.algo.rule_count());
        self.round_just_completed = false;
        self.start_round();
    }

    /// Executes one step: the daemon activates a non-empty subset of the
    /// enabled processes; each executes one enabled rule, all reading
    /// the pre-step configuration.
    pub fn step(&mut self) -> StepOutcome {
        if self.enabled_list.is_empty() {
            return StepOutcome::Terminal;
        }
        // 1. Daemon selection.
        let mut selected = std::mem::take(&mut self.selected);
        self.daemon.select(
            &self.enabled_list,
            &self.masks,
            &self.waits,
            &mut self.rr_cursor,
            &mut self.rng,
            &mut selected,
        );

        // 2. Compute new states against the *old* configuration.
        let mut pending = std::mem::take(&mut self.pending);
        pending.clear();
        self.last_activated.clear();
        {
            let view = ConfigView::new(self.graph, &self.states);
            for &u in &selected {
                let mask = self.masks[u.index()];
                debug_assert!(!mask.is_empty(), "daemon selected a disabled process");
                let rule = if self.random_rule_choice && mask.count() > 1 {
                    let k = self.rng.below(mask.count() as u64) as u32;
                    mask.iter().nth(k as usize).expect("mask has k-th rule")
                } else {
                    mask.first().expect("mask non-empty")
                };
                let next = self.algo.apply(u, &view, rule);
                pending.push((u, rule, next));
            }
        }

        // 3. Commit all writes (composite atomicity).
        for (u, rule, next) in pending.drain(..) {
            self.states[u.index()] = next;
            self.stats.moves += 1;
            self.stats.moves_per_process[u.index()] += 1;
            self.stats.moves_per_rule[rule.index()] += 1;
            self.stats.moves_per_process_rule[u.index() * self.algo.rule_count() + rule.index()] +=
                1;
            self.last_activated.push((u, rule));
        }
        self.pending = pending;
        self.stats.steps += 1;

        // 4. Re-evaluate guards of movers and their neighbors.
        self.stamp += 1;
        let stamp = self.stamp;
        for i in 0..self.last_activated.len() {
            let u = self.last_activated[i].0;
            self.refresh_node(u, stamp);
            let deg = self.graph.degree(u);
            for k in 0..deg {
                let v = self.graph.neighbor_at(u, k);
                self.refresh_node(v, stamp);
            }
        }

        // 5. Wait tracking (only when the daemon needs it).
        if self.track_waits {
            for &u in &self.enabled_list {
                self.waits[u.index()] = self.waits[u.index()].saturating_add(1);
            }
            for &(u, _) in &self.last_activated {
                self.waits[u.index()] = 0;
            }
        }

        // 6. Round accounting: remove activated and neutralized
        // processes from the front. (Front processes are enabled at
        // round start; if one became disabled it did so in this step —
        // earlier disabling would already have removed it.)
        for i in 0..self.last_activated.len() {
            let u = self.last_activated[i].0;
            self.front_remove(u);
        }
        // Neutralized: in front but no longer enabled.
        if self.front_count > 0 {
            // Only nodes whose mask changed this step can have left the
            // enabled set; they are exactly the refreshed ones, but
            // checking the front lazily is simpler: membership requires
            // enabledness, so scan refreshed nodes only.
            for i in 0..self.last_activated.len() {
                let u = self.last_activated[i].0;
                if self.masks[u.index()].is_empty() {
                    self.front_remove(u);
                }
                let deg = self.graph.degree(u);
                for k in 0..deg {
                    let v = self.graph.neighbor_at(u, k);
                    if self.front[v.index()] && self.masks[v.index()].is_empty() {
                        self.front_remove(v);
                    }
                }
            }
        }
        self.round_just_completed = false;
        if self.front_count == 0 {
            self.stats.completed_rounds += 1;
            self.round_just_completed = true;
            self.start_round();
        }

        let activated = self.last_activated.len();
        selected.clear();
        self.selected = selected;
        StepOutcome::Progress { activated }
    }

    /// Whether the most recent step completed a round (§2.4
    /// neutralization-based rounds). `false` before the first step and
    /// right after [`Simulator::reset_stats`].
    pub fn last_step_completed_round(&self) -> bool {
        self.round_just_completed
    }

    /// Starts a resumed [`Execution`] over this simulator: the fluent
    /// way to drive it to completion with observers and a stop
    /// predicate.
    ///
    /// # Examples
    ///
    /// See the [`crate::exec`] module documentation.
    pub fn execution<'e>(&'e mut self) -> Execution<'e, 'g, A> {
        Execution::resume(self)
    }

    // ---- internals ----

    fn recompute_all(&mut self) {
        let view = ConfigView::new(self.graph, &self.states);
        for u in self.graph.nodes() {
            let mask = self.algo.enabled_mask(u, &view);
            self.masks[u.index()] = mask;
        }
        self.enabled_list.clear();
        self.enabled_pos.fill(NOT_ENABLED);
        for u in self.graph.nodes() {
            if !self.masks[u.index()].is_empty() {
                self.enabled_pos[u.index()] = self.enabled_list.len() as u32;
                self.enabled_list.push(u);
            }
        }
    }

    /// Re-evaluates `u`'s guards if not already refreshed at `stamp`.
    fn refresh_node(&mut self, u: NodeId, stamp: u64) {
        if self.touched_stamp[u.index()] == stamp {
            return;
        }
        self.touched_stamp[u.index()] = stamp;
        let view = ConfigView::new(self.graph, &self.states);
        let mask = self.algo.enabled_mask(u, &view);
        let was = !self.masks[u.index()].is_empty();
        let now = !mask.is_empty();
        self.masks[u.index()] = mask;
        match (was, now) {
            (false, true) => {
                self.enabled_pos[u.index()] = self.enabled_list.len() as u32;
                self.enabled_list.push(u);
                if self.track_waits {
                    self.waits[u.index()] = 0;
                }
            }
            (true, false) => {
                let pos = self.enabled_pos[u.index()] as usize;
                let lastn = *self.enabled_list.last().expect("list non-empty");
                self.enabled_list.swap_remove(pos);
                if pos < self.enabled_list.len() {
                    self.enabled_pos[lastn.index()] = pos as u32;
                }
                self.enabled_pos[u.index()] = NOT_ENABLED;
                if self.track_waits {
                    self.waits[u.index()] = 0;
                }
            }
            _ => {}
        }
    }

    /// Begins a new round: the front is the set of enabled processes.
    fn start_round(&mut self) {
        self.front.fill(false);
        self.front_count = 0;
        for &u in &self.enabled_list {
            self.front[u.index()] = true;
            self.front_count += 1;
        }
    }

    fn front_remove(&mut self, u: NodeId) {
        if self.front[u.index()] {
            self.front[u.index()] = false;
            self.front_count -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::StateView;
    use ssr_graph::generators;

    /// A node with all-zero closed neighborhood sets itself to 1.
    ///
    /// On `K_2` both nodes start enabled; activating one *neutralizes*
    /// the other — the canonical test for round accounting.
    struct ZeroBreaker;

    impl Algorithm for ZeroBreaker {
        type State = u8;
        fn rule_count(&self) -> usize {
            1
        }
        fn rule_name(&self, _: RuleId) -> &'static str {
            "break"
        }
        fn enabled_mask<V: StateView<u8>>(&self, u: NodeId, view: &V) -> RuleMask {
            let all_zero = *view.state(u) == 0
                && view
                    .graph()
                    .neighbors(u)
                    .iter()
                    .all(|&v| *view.state(v) == 0);
            RuleMask::from_bool(all_zero)
        }
        fn apply<V: StateView<u8>>(&self, _: NodeId, _: &V, _: RuleId) -> u8 {
            1
        }
    }

    /// Flood of `true` along edges (terminates, diameter-bound rounds).
    struct Flood;

    impl Algorithm for Flood {
        type State = bool;
        fn rule_count(&self) -> usize {
            1
        }
        fn rule_name(&self, _: RuleId) -> &'static str {
            "flood"
        }
        fn enabled_mask<V: StateView<bool>>(&self, u: NodeId, view: &V) -> RuleMask {
            let infected = view.graph().neighbors(u).iter().any(|&v| *view.state(v));
            RuleMask::from_bool(!*view.state(u) && infected)
        }
        fn apply<V: StateView<bool>>(&self, _: NodeId, _: &V, _: RuleId) -> bool {
            true
        }
    }

    fn flood_path(n: usize) -> (Vec<bool>, ssr_graph::Graph) {
        let g = generators::path(n);
        let mut init = vec![false; n];
        init[0] = true;
        (init, g)
    }

    #[test]
    fn neutralization_counts_one_round_on_k2() {
        let g = generators::path(2);
        let mut sim = Simulator::new(&g, ZeroBreaker, vec![0, 0], Daemon::LexMin, 1);
        assert_eq!(sim.enabled_count(), 2);
        // One step: node 0 moves, node 1 is neutralized -> round done.
        assert_eq!(sim.step(), StepOutcome::Progress { activated: 1 });
        assert!(sim.is_terminal());
        assert_eq!(sim.stats().completed_rounds, 1);
        assert_eq!(sim.stats().moves, 1);
    }

    #[test]
    fn synchronous_flood_rounds_equal_distance() {
        let (init, g) = flood_path(6);
        let mut sim = Simulator::new(&g, Flood, init, Daemon::Synchronous, 0);
        let out = sim.execution().cap(100).run();
        assert!(out.terminal);
        // Distance from node 0 to node 5 is 5: five rounds, five moves.
        assert_eq!(sim.stats().completed_rounds, 5);
        assert_eq!(sim.stats().moves, 5);
        assert!(sim.states().iter().all(|&b| b));
    }

    #[test]
    fn central_flood_same_rounds_more_steps_possible() {
        let (init, g) = flood_path(6);
        let mut sim = Simulator::new(&g, Flood, init, Daemon::Central, 3);
        let out = sim.execution().cap(100).run();
        assert!(out.terminal);
        // Only one process is ever enabled on a path flood, so the
        // central daemon still needs exactly 5 steps/moves/rounds.
        assert_eq!(sim.stats().moves, 5);
        assert_eq!(sim.stats().completed_rounds, 5);
    }

    #[test]
    fn run_until_predicate_on_initial_config() {
        let (init, g) = flood_path(4);
        let mut sim = Simulator::new(&g, Flood, init, Daemon::Synchronous, 0);
        let out = sim.execution().cap(100).until(|_, states| states[0]).run();
        assert!(out.reached);
        assert_eq!(out.steps_used, 0);
        assert_eq!(out.rounds_at_hit, 0);
    }

    #[test]
    fn run_until_mid_execution() {
        let (init, g) = flood_path(5);
        let mut sim = Simulator::new(&g, Flood, init, Daemon::Synchronous, 0);
        let out = sim.execution().cap(100).until(|_, states| states[2]).run();
        assert!(out.reached);
        assert_eq!(out.steps_used, 2);
        assert_eq!(out.rounds_at_hit, 2);
    }

    #[test]
    fn run_until_respects_step_bound() {
        let (init, g) = flood_path(10);
        let mut sim = Simulator::new(&g, Flood, init, Daemon::Synchronous, 0);
        let out = sim.execution().cap(3).until(|_, states| states[9]).run();
        assert!(!out.reached);
        assert_eq!(out.steps_used, 3);
    }

    #[test]
    fn stats_track_per_process_moves() {
        let (init, g) = flood_path(4);
        let mut sim = Simulator::new(&g, Flood, init, Daemon::Synchronous, 0);
        sim.execution().cap(100).run();
        assert_eq!(sim.stats().moves_per_process, vec![0, 1, 1, 1]);
        assert_eq!(sim.stats().moves_per_rule, vec![3]);
        assert_eq!(sim.stats().max_moves_per_process(), 1);
        assert_eq!(sim.stats().moves_of(NodeId(2), RuleId(0), 1), 1);
    }

    #[test]
    fn inject_reactivates() {
        let (init, g) = flood_path(3);
        let mut sim = Simulator::new(&g, Flood, init, Daemon::Synchronous, 0);
        sim.execution().cap(100).run();
        assert!(sim.is_terminal());
        // Faults cannot resurrect a flood (monotone), but injecting a
        // fresh `false` next to a `true` re-enables the rule.
        sim.inject(NodeId(1), false);
        assert!(!sim.is_terminal());
        sim.reset_stats();
        let out = sim.execution().cap(100).run();
        assert!(out.terminal);
        assert_eq!(sim.stats().moves, 1);
    }

    #[test]
    fn terminal_step_is_reported() {
        let g = generators::path(2);
        let mut sim = Simulator::new(&g, Flood, vec![true, true], Daemon::Central, 0);
        assert!(sim.is_terminal());
        assert_eq!(sim.step(), StepOutcome::Terminal);
        assert_eq!(sim.stats().steps, 0);
    }

    /// The threading contract (see the crate docs): batch layers put
    /// one simulator on each worker thread, so these bounds must never
    /// regress. Compile-time only.
    #[test]
    fn threading_contract_bounds_hold() {
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<Daemon>();
        assert_sync::<Daemon>();
        assert_send::<RunStats>();
        assert_sync::<RunStats>();
        assert_send::<RunOutcome>();
        assert_send::<crate::rng::Xoshiro256StarStar>();
        // Simulator<A> is Send whenever A and A::State are.
        assert_send::<Simulator<'static, Flood>>();
        assert_send::<Simulator<'static, ZeroBreaker>>();
    }

    #[test]
    fn deterministic_given_seed() {
        let g = generators::random_connected(24, 12, 9);
        let mut init = vec![false; 24];
        init[0] = true;
        let run = |seed: u64| {
            let mut sim = Simulator::new(
                &g,
                Flood,
                init.clone(),
                Daemon::RandomSubset { p: 0.4 },
                seed,
            );
            sim.execution().cap(10_000).run();
            (sim.stats().clone(), sim.states().to_vec())
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn rounds_bounded_by_steps() {
        let g = generators::random_connected(16, 8, 2);
        let mut init = vec![false; 16];
        init[3] = true;
        for daemon in Daemon::all_strategies() {
            let mut sim = Simulator::new(&g, Flood, init.clone(), daemon.clone(), 11);
            let out = sim.execution().cap(10_000).run();
            assert!(out.terminal, "flood must terminate under {daemon:?}");
            assert!(
                sim.stats().completed_rounds <= sim.stats().steps.max(1),
                "rounds cannot exceed steps under {daemon:?}"
            );
            assert!(sim.states().iter().all(|&b| b));
        }
    }

    #[test]
    fn last_activated_reports_moves() {
        let (init, g) = flood_path(3);
        let mut sim = Simulator::new(&g, Flood, init, Daemon::Synchronous, 0);
        sim.step();
        assert_eq!(sim.last_activated(), &[(NodeId(1), RuleId(0))]);
    }
}
