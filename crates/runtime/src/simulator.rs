//! The [`Simulator`]: composite-atomicity execution engine with move and
//! round accounting, built on the staged step pipeline in [`crate::step`].

use std::fmt;
use std::time::Instant;

use ssr_graph::coloring::ConflictPartitioner;
use ssr_graph::{Bitset, Graph, NodeId};

use crate::algorithm::{Algorithm, ConfigView, RuleId, RuleMask};
use crate::daemon::Daemon;
use crate::exec::Execution;
use crate::rng::Xoshiro256StarStar;
use crate::soa::StateColumns;
use crate::step;
use crate::step::par::ParHooks;
use crate::trace::{TraceEvent, TracePhase, TraceSink};

/// Execution counters (§2.4 time measures).
///
/// The per-node vectors (`moves_per_process`, `moves_per_process_rule`)
/// are allocated **lazily** on the first counted move, and not at all
/// when detailed stats are disabled ([`Simulator::set_detailed_stats`])
/// — a million-node run does not pay `O(n · rules)` memory for
/// accounting nothing reads. Use [`RunStats::moves_of`] and
/// [`RunStats::max_moves_per_process`] rather than indexing the vectors
/// directly; they treat the unallocated vectors as all-zero.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Steps taken (configuration transitions).
    pub steps: u64,
    /// Total moves (rule executions; ≥ steps, = steps for central daemons).
    pub moves: u64,
    /// Rounds fully completed (neutralization-based, §2.4).
    pub completed_rounds: u64,
    /// Moves per process (empty until the first tracked move).
    pub moves_per_process: Vec<u64>,
    /// Moves per rule.
    pub moves_per_rule: Vec<u64>,
    /// Moves per (process, rule), flattened as `process * rule_count + rule`
    /// (empty until the first tracked move).
    pub moves_per_process_rule: Vec<u64>,
}

impl RunStats {
    fn new(rules: usize) -> Self {
        RunStats {
            steps: 0,
            moves: 0,
            completed_rounds: 0,
            moves_per_process: Vec::new(),
            moves_per_rule: vec![0; rules],
            moves_per_process_rule: Vec::new(),
        }
    }

    /// Moves executed by process `u` with rule `rule` (0 when per-node
    /// tracking never allocated).
    pub fn moves_of(&self, u: NodeId, rule: RuleId, rule_count: usize) -> u64 {
        self.moves_per_process_rule
            .get(u.index() * rule_count + rule.index())
            .copied()
            .unwrap_or(0)
    }

    /// The maximum per-process move count.
    pub fn max_moves_per_process(&self) -> u64 {
        self.moves_per_process.iter().copied().max().unwrap_or(0)
    }
}

/// Result of a single [`Simulator::step`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    /// No process was enabled; the configuration is terminal.
    Terminal,
    /// A step was taken, activating `activated` processes.
    Progress {
        /// Number of processes that moved in this step.
        activated: usize,
    },
}

/// Why a driven run ([`crate::Execution::run`]) stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TerminationReason {
    /// The configuration is terminal: no rule is enabled anywhere.
    Terminal,
    /// The [`crate::Execution::until`] predicate holds.
    PredicateMet,
    /// The step budget ran out with the system still live — the only
    /// variant where the run was cut short, so experiments test this
    /// instead of inferring exhaustion from step counts.
    CapExhausted,
}

impl fmt::Display for TerminationReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TerminationReason::Terminal => "terminal",
            TerminationReason::PredicateMet => "predicate-met",
            TerminationReason::CapExhausted => "cap-exhausted",
        };
        write!(f, "{s}")
    }
}

impl std::str::FromStr for TerminationReason {
    type Err = String;

    /// Parses the [`fmt::Display`] rendering back — used when replaying
    /// persisted records (checkpoints) into memory.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "terminal" => Ok(TerminationReason::Terminal),
            "predicate-met" => Ok(TerminationReason::PredicateMet),
            "cap-exhausted" => Ok(TerminationReason::CapExhausted),
            other => Err(format!("unknown termination reason {other:?}")),
        }
    }
}

/// Result of a driven run ([`crate::Execution::run`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunOutcome {
    /// Whether the run's target was met: the predicate for
    /// predicate-bearing runs, termination for plain runs (always
    /// `false` for predicate runs that hit the step bound).
    pub reached: bool,
    /// Whether the final configuration is terminal.
    pub terminal: bool,
    /// Steps taken during this run (not cumulative).
    pub steps_used: u64,
    /// Moves counted up to (and including) the step that reached the
    /// predicate, cumulative over the simulator's lifetime.
    pub moves_at_hit: u64,
    /// Stabilization time in rounds: completed rounds before the hit,
    /// counting a partially elapsed round as one full round.
    pub rounds_at_hit: u64,
    /// Why the run stopped.
    pub reason: TerminationReason,
}

/// Minimum kernel input length before the installed parallel kernels
/// kick in; below it, fork/join overhead dwarfs the work.
const DEFAULT_PAR_THRESHOLD: usize = 2048;

/// Composite-atomicity execution engine.
///
/// Owns the configuration and drives the three-phase step pipeline
/// (the `step` module): daemon selection and rule resolution, next-state
/// computation against the frozen pre-step configuration, and guard
/// re-evaluation over the movers' closed neighborhoods (incremental:
/// only nodes whose guards can have changed are re-evaluated).
///
/// The apply and guard phases optionally run on a scoped thread pool
/// ([`Simulator::set_intra_threads`]); results are merged in a
/// deterministic order, so a run is **byte-identical** at any thread
/// count. See the crate-level documentation for an end-to-end example.
pub struct Simulator<'g, A: Algorithm> {
    graph: &'g Graph,
    algo: A,
    daemon: Daemon,
    rng: Xoshiro256StarStar,
    random_rule_choice: bool,
    states: Vec<A::State>,
    masks: Vec<RuleMask>,
    /// Enabled nodes as an indexed set (swap-remove list + position map).
    enabled_list: Vec<NodeId>,
    enabled_pos: Vec<u32>,
    /// Enabled nodes as a bitset (SoA mirror of `enabled_pos != NOT_ENABLED`).
    enabled_bits: Bitset,
    /// Steps each process has been continuously enabled (for `Aging`;
    /// empty unless the daemon needs it).
    waits: Vec<u32>,
    track_waits: bool,
    /// Round front: processes enabled at round start, still pending.
    front: Bitset,
    front_count: usize,
    /// Whether the last step completed a round.
    round_just_completed: bool,
    rr_cursor: usize,
    stats: RunStats,
    /// Whether per-node move counters are maintained (lazily allocated).
    detailed_stats: bool,
    /// Installed parallel kernels (`None` = sequential).
    par: Option<ParHooks<A>>,
    /// Minimum kernel input length before `par` is used.
    par_threshold: usize,
    /// Conflict-partition diagnostics (enabled via `set_conflict_stats`).
    conflict: Option<ConflictPartitioner>,
    last_conflict_classes: Option<u32>,
    /// Installed trace sink (`None` = tracing disabled, the default;
    /// see [`crate::trace`] for the zero-cost contract).
    trace: Option<Box<dyn TraceSink>>,
    /// RNG draws of the most recent step, split by pipeline phase
    /// (select / apply / guards) — the audit trail behind the
    /// "all draws happen in select" determinism contract.
    last_phase_draws: [u64; 3],
    // Scratch buffers (reused across steps).
    selected: Vec<NodeId>,
    last_activated: Vec<(NodeId, RuleId)>,
    next_buf: Vec<A::State>,
    refresh_buf: Vec<NodeId>,
    mask_buf: Vec<RuleMask>,
    touched_stamp: Vec<u64>,
    stamp: u64,
}

const NOT_ENABLED: u32 = u32::MAX;

impl<'g, A: Algorithm> Simulator<'g, A> {
    /// Creates a simulator over `graph` starting from configuration
    /// `init`, scheduled by `daemon`, seeded by `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `init.len() != graph.node_count()` or the algorithm
    /// declares more than 32 rules.
    pub fn new(graph: &'g Graph, algo: A, init: Vec<A::State>, daemon: Daemon, seed: u64) -> Self {
        assert_eq!(
            init.len(),
            graph.node_count(),
            "initial configuration size must match node count"
        );
        assert!(algo.rule_count() <= 32, "at most 32 rules are supported");
        let n = graph.node_count();
        let rules = algo.rule_count();
        let track_waits = daemon.needs_wait_tracking();
        let mut sim = Simulator {
            graph,
            algo,
            daemon,
            rng: Xoshiro256StarStar::seed_from_u64(seed),
            random_rule_choice: false,
            states: init,
            masks: vec![RuleMask::NONE; n],
            enabled_list: Vec::with_capacity(n),
            enabled_pos: vec![NOT_ENABLED; n],
            enabled_bits: Bitset::new(n),
            waits: if track_waits { vec![0; n] } else { Vec::new() },
            track_waits,
            front: Bitset::new(n),
            front_count: 0,
            round_just_completed: false,
            rr_cursor: 0,
            stats: RunStats::new(rules),
            detailed_stats: true,
            par: None,
            par_threshold: DEFAULT_PAR_THRESHOLD,
            conflict: None,
            last_conflict_classes: None,
            trace: None,
            last_phase_draws: [0; 3],
            selected: Vec::new(),
            last_activated: Vec::new(),
            next_buf: Vec::new(),
            refresh_buf: Vec::new(),
            mask_buf: Vec::new(),
            touched_stamp: vec![0; n],
            stamp: 0,
        };
        sim.recompute_all();
        sim.start_round();
        sim
    }

    /// When set, a process with several enabled rules executes a
    /// uniformly random one instead of the lowest-index one (the model
    /// leaves this choice nondeterministic, §2.2).
    pub fn set_random_rule_choice(&mut self, random: bool) {
        self.random_rule_choice = random;
    }

    /// Runs the apply and guard kernels on `threads` scoped worker
    /// threads (1 or 0 restores sequential execution). Runs are
    /// byte-identical at any thread count: same states, counters, RNG
    /// stream, and observer event order.
    ///
    /// Kernels only engage when a step's work exceeds the threshold
    /// ([`Simulator::set_par_threshold`]).
    pub fn set_intra_threads(&mut self, threads: usize)
    where
        A: Sync,
        A::State: Send + Sync,
    {
        self.install_par(step::par::hooks::<A>(threads));
    }

    /// The configured intra-run worker count (1 = sequential).
    pub fn intra_threads(&self) -> usize {
        self.par.map_or(1, |h| h.threads)
    }

    /// Minimum kernel input length (selected moves, refresh-set size)
    /// before the installed parallel kernels are used; below it the
    /// sequential path runs. Set 0 to force the parallel path (tests).
    pub fn set_par_threshold(&mut self, threshold: usize) {
        self.par_threshold = threshold;
    }

    /// Installs pre-built kernels without `Sync` bounds (the bounds
    /// were paid when the hooks were built).
    pub(crate) fn install_par(&mut self, hooks: Option<ParHooks<A>>) {
        self.par = hooks;
    }

    /// Enables or disables per-node move counters (`moves_per_process`,
    /// `moves_per_process_rule`). On by default; switch off for scale
    /// runs where nothing reads them — aggregate counters (steps,
    /// moves, rounds, per-rule moves) are always maintained.
    pub fn set_detailed_stats(&mut self, detailed: bool) {
        self.detailed_stats = detailed;
    }

    /// Enables conflict-partition diagnostics: each step greedily
    /// colors the selected set's induced subgraph and records the
    /// class count ([`Simulator::last_conflict_classes`]).
    pub fn set_conflict_stats(&mut self, enabled: bool) {
        if enabled {
            if self.conflict.is_none() {
                self.conflict = Some(ConflictPartitioner::new(self.graph.node_count()));
            }
        } else {
            self.conflict = None;
            self.last_conflict_classes = None;
        }
    }

    /// Conflict-free class count of the most recent step's selected
    /// set, when diagnostics are on ([`Simulator::set_conflict_stats`]).
    pub fn last_conflict_classes(&self) -> Option<u32> {
        self.last_conflict_classes
    }

    /// Installs a [`TraceSink`]: every subsequent step emits the typed
    /// event stream documented in [`crate::trace`]. Replaces any
    /// previously installed sink.
    ///
    /// Tracing never changes execution: states, counters, RNG stream,
    /// and observer callbacks are byte-identical with or without a
    /// sink.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.trace = Some(sink);
    }

    /// Removes and returns the installed trace sink, disabling tracing
    /// (use [`TraceSink::as_any_mut`] to recover the concrete type).
    pub fn take_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.trace.take()
    }

    /// Whether a trace sink is currently installed.
    pub fn has_trace_sink(&self) -> bool {
        self.trace.is_some()
    }

    /// The communication graph.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// The algorithm instance.
    pub fn algorithm(&self) -> &A {
        &self.algo
    }

    /// Current configuration (one state per node).
    pub fn states(&self) -> &[A::State] {
        &self.states
    }

    /// Current state of process `u`.
    pub fn state(&self, u: NodeId) -> &A::State {
        &self.states[u.index()]
    }

    /// Read-only view of the current configuration.
    pub fn view(&self) -> ConfigView<'_, A::State> {
        ConfigView::new(self.graph, &self.states)
    }

    /// Transposes the current configuration into struct-of-arrays
    /// columns (see [`crate::soa`]); `cols` is cleared first.
    pub fn snapshot_columns<C>(&self, cols: &mut C)
    where
        C: StateColumns<State = A::State>,
    {
        cols.clear();
        for s in &self.states {
            cols.push(s);
        }
    }

    /// Execution counters so far.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Whether no rule is enabled anywhere (terminal configuration).
    pub fn is_terminal(&self) -> bool {
        self.enabled_list.is_empty()
    }

    /// Number of currently enabled processes.
    pub fn enabled_count(&self) -> usize {
        self.enabled_list.len()
    }

    /// Enabled processes in ascending index order (for tests/reports).
    ///
    /// Allocates; hot paths should reuse a buffer through
    /// [`Simulator::enabled_nodes_sorted_into`].
    pub fn enabled_nodes_sorted(&self) -> Vec<NodeId> {
        let mut v = Vec::new();
        self.enabled_nodes_sorted_into(&mut v);
        v
    }

    /// Writes the enabled processes in ascending index order into
    /// `out` (cleared first), reusing its capacity.
    pub fn enabled_nodes_sorted_into(&self, out: &mut Vec<NodeId>) {
        out.clear();
        out.extend_from_slice(&self.enabled_list);
        out.sort_unstable();
    }

    /// Enabled processes as a bitset (one bit per node).
    pub fn enabled_bits(&self) -> &Bitset {
        &self.enabled_bits
    }

    /// The enabled-rule mask of `u` in the current configuration.
    pub fn enabled_mask_of(&self, u: NodeId) -> RuleMask {
        self.masks[u.index()]
    }

    /// The `(process, rule)` pairs activated by the most recent step.
    pub fn last_activated(&self) -> &[(NodeId, RuleId)] {
        &self.last_activated
    }

    /// RNG draws consumed by the most recent step, split by phase as
    /// `[select, apply, guards]`. The pipeline's determinism contract
    /// is that apply and guards draw nothing — `ssr-analyze` audits
    /// exactly that; `[0, 0, 0]` before the first step.
    pub fn last_step_phase_draws(&self) -> [u64; 3] {
        self.last_phase_draws
    }

    /// Stabilization rounds if the predicate held *now* (partial round
    /// counts as one).
    pub fn rounds_now(&self) -> u64 {
        if self.stats.steps == 0 || self.round_just_completed {
            self.stats.completed_rounds
        } else {
            self.stats.completed_rounds + 1
        }
    }

    /// Overwrites the state of `u` (transient-fault injection) and
    /// restarts round tracking from the resulting configuration.
    ///
    /// Move/round counters are preserved; see [`Simulator::reset_stats`]
    /// to measure recovery in isolation.
    pub fn inject(&mut self, u: NodeId, state: A::State) {
        self.states[u.index()] = state;
        self.stamp += 1;
        let stamp = self.stamp;
        self.refresh_node(u, stamp);
        for &v in self.graph.neighbors(u) {
            self.refresh_node(v, stamp);
        }
        self.start_round();
    }

    /// Zeroes all counters and restarts round tracking (useful to
    /// measure recovery after [`Simulator::inject`]).
    pub fn reset_stats(&mut self) {
        self.stats = RunStats::new(self.algo.rule_count());
        self.round_just_completed = false;
        self.start_round();
    }

    /// Executes one step of the pipeline: the daemon activates a
    /// non-empty subset of the enabled processes; each executes one
    /// enabled rule, all reading the pre-step configuration.
    pub fn step(&mut self) -> StepOutcome {
        if self.enabled_list.is_empty() {
            return StepOutcome::Terminal;
        }
        // Tracing: sink taken out for the step (avoids aliasing the
        // pipeline's &mut self borrows) and restored before returning.
        // With no sink installed this is one Option move and a few
        // never-taken branches — the `obs_overhead` tripwire pins it.
        let mut trace = self.trace.take();
        let step_idx = self.stats.steps;
        if let Some(t) = trace.as_deref_mut() {
            t.record(&TraceEvent::StepStarted {
                step: step_idx,
                enabled: self.enabled_list.len() as u32,
            });
        }
        // The clock is read only for sinks that opted into (inherently
        // nondeterministic) phase timing.
        let mut phase_clock = match trace.as_deref() {
            Some(t) if t.wants_phase_timing() => Some(Instant::now()),
            _ => None,
        };

        // Phase 1 (select): daemon choice + rule resolution. Owns every
        // RNG draw of the step; always sequential.
        let draws_at_start = self.rng.draws();
        let mut selected = std::mem::take(&mut self.selected);
        self.daemon.select(
            &self.enabled_list,
            &self.masks,
            &self.waits,
            &mut self.rr_cursor,
            &mut self.rng,
            &mut selected,
        );
        step::select::resolve_rules(
            &self.masks,
            self.random_rule_choice,
            &mut self.rng,
            &selected,
            &mut self.last_activated,
        );
        if let Some(p) = self.conflict.as_mut() {
            let k = p.partition(self.graph, &selected);
            debug_assert!(
                ssr_graph::coloring::is_conflict_free(self.graph, &selected, &p.classes(&selected)),
                "conflict partition must split the selection into independent sets"
            );
            self.last_conflict_classes = Some(k);
        }
        if let Some(clock) = phase_clock.as_mut() {
            let now = Instant::now();
            if let Some(t) = trace.as_deref_mut() {
                t.record(&TraceEvent::PhaseTimed {
                    step: step_idx,
                    phase: TracePhase::Select,
                    nanos: now.duration_since(*clock).as_nanos() as u64,
                    par: false,
                });
            }
            *clock = now;
        }
        let draws_after_select = self.rng.draws();

        // Phase 2 (apply): next states against the *old* configuration.
        let mut next = std::mem::take(&mut self.next_buf);
        let par = self.par_if(self.last_activated.len());
        let apply_par = par.is_some();
        step::apply::compute_next_states(
            self.graph,
            &self.algo,
            &self.states,
            &self.last_activated,
            &mut next,
            par,
        );

        // Merge: commit all writes in selection order (composite
        // atomicity — every read above saw the pre-step configuration).
        let rules = self.algo.rule_count();
        if self.detailed_stats && self.stats.moves_per_process.is_empty() {
            let n = self.graph.node_count();
            self.stats.moves_per_process = vec![0; n];
            self.stats.moves_per_process_rule = vec![0; n * rules];
        }
        for (&(u, rule), next_state) in self.last_activated.iter().zip(next.drain(..)) {
            self.states[u.index()] = next_state;
            self.stats.moves += 1;
            self.stats.moves_per_rule[rule.index()] += 1;
            if self.detailed_stats {
                self.stats.moves_per_process[u.index()] += 1;
                self.stats.moves_per_process_rule[u.index() * rules + rule.index()] += 1;
            }
        }
        self.next_buf = next;
        self.stats.steps += 1;
        if let Some(clock) = phase_clock.as_mut() {
            let now = Instant::now();
            if let Some(t) = trace.as_deref_mut() {
                t.record(&TraceEvent::PhaseTimed {
                    step: step_idx,
                    phase: TracePhase::Apply,
                    nanos: now.duration_since(*clock).as_nanos() as u64,
                    par: apply_par,
                });
            }
            *clock = now;
        }
        if let Some(t) = trace.as_deref_mut() {
            t.record(&TraceEvent::MovesApplied {
                step: step_idx,
                moves: self.last_activated.len() as u32,
                conflict_classes: self.last_conflict_classes,
            });
        }
        let draws_after_apply = self.rng.draws();

        // Phase 3 (guards): re-evaluate movers and their neighbors —
        // the only nodes whose guards can have changed (§2.2 locality).
        self.stamp += 1;
        let stamp = self.stamp;
        let mut refresh = std::mem::take(&mut self.refresh_buf);
        step::guards::collect_refresh_targets(
            self.graph,
            &self.last_activated,
            &mut self.touched_stamp,
            stamp,
            &mut refresh,
        );
        let mut new_masks = std::mem::take(&mut self.mask_buf);
        let par = self.par_if(refresh.len());
        let guards_par = par.is_some();
        step::guards::compute_masks(
            self.graph,
            &self.algo,
            &self.states,
            &refresh,
            &mut new_masks,
            par,
        );
        // Sequential, list-ordered transition pass keeps the enabled
        // set's internal order deterministic.
        for (i, &u) in refresh.iter().enumerate() {
            self.apply_mask(u, new_masks[i]);
        }

        // Wait tracking (only when the daemon needs it).
        if self.track_waits {
            for &u in &self.enabled_list {
                self.waits[u.index()] = self.waits[u.index()].saturating_add(1);
            }
            for &(u, _) in &self.last_activated {
                self.waits[u.index()] = 0;
            }
        }

        // Round accounting: remove activated and neutralized processes
        // from the front. (Front processes are enabled at round start;
        // if one became disabled it did so in this step — earlier
        // disabling would already have removed it.)
        for i in 0..self.last_activated.len() {
            let u = self.last_activated[i].0;
            self.front_remove(u);
        }
        // Neutralized: in front but no longer enabled. Membership
        // requires enabledness, so scanning the refreshed nodes covers
        // every candidate.
        if self.front_count > 0 {
            for &u in &refresh {
                if self.front.contains(u.index()) && self.masks[u.index()].is_empty() {
                    self.front_count -= 1;
                    self.front.remove(u.index());
                }
            }
        }
        self.round_just_completed = false;
        if self.front_count == 0 {
            self.stats.completed_rounds += 1;
            self.round_just_completed = true;
            self.start_round();
        }

        self.refresh_buf = refresh;
        self.mask_buf = new_masks;
        let draws_at_end = self.rng.draws();
        self.last_phase_draws = [
            draws_after_select - draws_at_start,
            draws_after_apply - draws_after_select,
            draws_at_end - draws_after_apply,
        ];
        let activated = self.last_activated.len();
        selected.clear();
        self.selected = selected;

        if let Some(t) = trace.as_deref_mut() {
            if let Some(clock) = phase_clock {
                t.record(&TraceEvent::PhaseTimed {
                    step: step_idx,
                    phase: TracePhase::Guards,
                    nanos: clock.elapsed().as_nanos() as u64,
                    par: guards_par,
                });
            }
            t.record(&TraceEvent::EnabledSetSize {
                step: step_idx,
                enabled: self.enabled_list.len() as u32,
            });
            if self.round_just_completed {
                t.record(&TraceEvent::RoundCompleted {
                    step: step_idx,
                    rounds: self.stats.completed_rounds,
                });
            }
        }
        self.trace = trace;
        StepOutcome::Progress { activated }
    }

    /// Emits [`TraceEvent::RunEnded`] and flushes the sink; called by
    /// the `exec` driver at each of its return sites.
    pub(crate) fn emit_run_ended(&mut self, out: &RunOutcome) {
        if let Some(t) = self.trace.as_deref_mut() {
            t.record(&TraceEvent::RunEnded {
                steps: self.stats.steps,
                moves: self.stats.moves,
                rounds: self.stats.completed_rounds,
                reason: out.reason,
            });
            t.flush();
        }
    }

    /// Whether the most recent step completed a round (§2.4
    /// neutralization-based rounds). `false` before the first step and
    /// right after [`Simulator::reset_stats`].
    pub fn last_step_completed_round(&self) -> bool {
        self.round_just_completed
    }

    /// Starts a resumed [`Execution`] over this simulator: the fluent
    /// way to drive it to completion with observers and a stop
    /// predicate.
    ///
    /// # Examples
    ///
    /// See the [`crate::exec`] module documentation.
    pub fn execution<'e>(&'e mut self) -> Execution<'e, 'g, A> {
        Execution::resume(self)
    }

    // ---- internals ----

    /// The installed kernels, when the work size warrants them.
    fn par_if(&self, len: usize) -> Option<ParHooks<A>> {
        match self.par {
            Some(h) if len >= self.par_threshold => Some(h),
            _ => None,
        }
    }

    fn recompute_all(&mut self) {
        let view = ConfigView::new(self.graph, &self.states);
        for u in self.graph.nodes() {
            let mask = self.algo.enabled_mask(u, &view);
            self.masks[u.index()] = mask;
        }
        self.enabled_list.clear();
        self.enabled_pos.fill(NOT_ENABLED);
        self.enabled_bits.clear();
        for u in self.graph.nodes() {
            if !self.masks[u.index()].is_empty() {
                self.enabled_pos[u.index()] = self.enabled_list.len() as u32;
                self.enabled_list.push(u);
                self.enabled_bits.insert(u.index());
            }
        }
    }

    /// Re-evaluates `u`'s guards if not already refreshed at `stamp`.
    fn refresh_node(&mut self, u: NodeId, stamp: u64) {
        if self.touched_stamp[u.index()] == stamp {
            return;
        }
        self.touched_stamp[u.index()] = stamp;
        let mask = {
            let view = ConfigView::new(self.graph, &self.states);
            self.algo.enabled_mask(u, &view)
        };
        self.apply_mask(u, mask);
    }

    /// Installs a freshly computed mask, maintaining the enabled-set
    /// index (list + positions + bitset) and wait counters.
    fn apply_mask(&mut self, u: NodeId, mask: RuleMask) {
        let was = !self.masks[u.index()].is_empty();
        let now = !mask.is_empty();
        self.masks[u.index()] = mask;
        match (was, now) {
            (false, true) => {
                self.enabled_pos[u.index()] = self.enabled_list.len() as u32;
                self.enabled_list.push(u);
                self.enabled_bits.insert(u.index());
                if self.track_waits {
                    self.waits[u.index()] = 0;
                }
            }
            (true, false) => {
                let pos = self.enabled_pos[u.index()] as usize;
                let lastn = *self.enabled_list.last().expect("list non-empty");
                self.enabled_list.swap_remove(pos);
                if pos < self.enabled_list.len() {
                    self.enabled_pos[lastn.index()] = pos as u32;
                }
                self.enabled_pos[u.index()] = NOT_ENABLED;
                self.enabled_bits.remove(u.index());
                if self.track_waits {
                    self.waits[u.index()] = 0;
                }
            }
            _ => {}
        }
    }

    /// Begins a new round: the front is the set of enabled processes.
    fn start_round(&mut self) {
        self.front.clear();
        self.front_count = self.enabled_list.len();
        for &u in &self.enabled_list {
            self.front.insert(u.index());
        }
    }

    fn front_remove(&mut self, u: NodeId) {
        if self.front.contains(u.index()) {
            self.front.remove(u.index());
            self.front_count -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::StateView;
    use ssr_graph::generators;

    /// A node with all-zero closed neighborhood sets itself to 1.
    ///
    /// On `K_2` both nodes start enabled; activating one *neutralizes*
    /// the other — the canonical test for round accounting.
    struct ZeroBreaker;

    impl Algorithm for ZeroBreaker {
        type State = u8;
        fn rule_count(&self) -> usize {
            1
        }
        fn rule_name(&self, _: RuleId) -> &'static str {
            "break"
        }
        fn enabled_mask<V: StateView<u8>>(&self, u: NodeId, view: &V) -> RuleMask {
            let all_zero = *view.state(u) == 0
                && view
                    .graph()
                    .neighbors(u)
                    .iter()
                    .all(|&v| *view.state(v) == 0);
            RuleMask::from_bool(all_zero)
        }
        fn apply<V: StateView<u8>>(&self, _: NodeId, _: &V, _: RuleId) -> u8 {
            1
        }
    }

    /// Flood of `true` along edges (terminates, diameter-bound rounds).
    struct Flood;

    impl Algorithm for Flood {
        type State = bool;
        fn rule_count(&self) -> usize {
            1
        }
        fn rule_name(&self, _: RuleId) -> &'static str {
            "flood"
        }
        fn enabled_mask<V: StateView<bool>>(&self, u: NodeId, view: &V) -> RuleMask {
            let infected = view.graph().neighbors(u).iter().any(|&v| *view.state(v));
            RuleMask::from_bool(!*view.state(u) && infected)
        }
        fn apply<V: StateView<bool>>(&self, _: NodeId, _: &V, _: RuleId) -> bool {
            true
        }
    }

    fn flood_path(n: usize) -> (Vec<bool>, ssr_graph::Graph) {
        let g = generators::path(n);
        let mut init = vec![false; n];
        init[0] = true;
        (init, g)
    }

    #[test]
    fn phase_draws_confined_to_select() {
        let (init, g) = flood_path(8);
        let mut sim = Simulator::new(&g, Flood, init, Daemon::RandomSubset { p: 0.5 }, 42);
        sim.set_random_rule_choice(true);
        assert_eq!(sim.last_step_phase_draws(), [0, 0, 0]);
        let mut any_select_draws = false;
        while let StepOutcome::Progress { .. } = sim.step() {
            let [select, apply, guards] = sim.last_step_phase_draws();
            any_select_draws |= select > 0;
            assert_eq!((apply, guards), (0, 0), "apply/guards must not draw");
        }
        assert!(any_select_draws, "a random daemon draws during select");
    }

    #[test]
    fn neutralization_counts_one_round_on_k2() {
        let g = generators::path(2);
        let mut sim = Simulator::new(&g, ZeroBreaker, vec![0, 0], Daemon::LexMin, 1);
        assert_eq!(sim.enabled_count(), 2);
        // One step: node 0 moves, node 1 is neutralized -> round done.
        assert_eq!(sim.step(), StepOutcome::Progress { activated: 1 });
        assert!(sim.is_terminal());
        assert_eq!(sim.stats().completed_rounds, 1);
        assert_eq!(sim.stats().moves, 1);
    }

    #[test]
    fn synchronous_flood_rounds_equal_distance() {
        let (init, g) = flood_path(6);
        let mut sim = Simulator::new(&g, Flood, init, Daemon::Synchronous, 0);
        let out = sim.execution().cap(100).run();
        assert!(out.terminal);
        // Distance from node 0 to node 5 is 5: five rounds, five moves.
        assert_eq!(sim.stats().completed_rounds, 5);
        assert_eq!(sim.stats().moves, 5);
        assert!(sim.states().iter().all(|&b| b));
    }

    #[test]
    fn central_flood_same_rounds_more_steps_possible() {
        let (init, g) = flood_path(6);
        let mut sim = Simulator::new(&g, Flood, init, Daemon::Central, 3);
        let out = sim.execution().cap(100).run();
        assert!(out.terminal);
        // Only one process is ever enabled on a path flood, so the
        // central daemon still needs exactly 5 steps/moves/rounds.
        assert_eq!(sim.stats().moves, 5);
        assert_eq!(sim.stats().completed_rounds, 5);
    }

    #[test]
    fn run_until_predicate_on_initial_config() {
        let (init, g) = flood_path(4);
        let mut sim = Simulator::new(&g, Flood, init, Daemon::Synchronous, 0);
        let out = sim.execution().cap(100).until(|_, states| states[0]).run();
        assert!(out.reached);
        assert_eq!(out.steps_used, 0);
        assert_eq!(out.rounds_at_hit, 0);
    }

    #[test]
    fn run_until_mid_execution() {
        let (init, g) = flood_path(5);
        let mut sim = Simulator::new(&g, Flood, init, Daemon::Synchronous, 0);
        let out = sim.execution().cap(100).until(|_, states| states[2]).run();
        assert!(out.reached);
        assert_eq!(out.steps_used, 2);
        assert_eq!(out.rounds_at_hit, 2);
    }

    #[test]
    fn run_until_respects_step_bound() {
        let (init, g) = flood_path(10);
        let mut sim = Simulator::new(&g, Flood, init, Daemon::Synchronous, 0);
        let out = sim.execution().cap(3).until(|_, states| states[9]).run();
        assert!(!out.reached);
        assert_eq!(out.steps_used, 3);
    }

    #[test]
    fn stats_track_per_process_moves() {
        let (init, g) = flood_path(4);
        let mut sim = Simulator::new(&g, Flood, init, Daemon::Synchronous, 0);
        sim.execution().cap(100).run();
        assert_eq!(sim.stats().moves_per_process, vec![0, 1, 1, 1]);
        assert_eq!(sim.stats().moves_per_rule, vec![3]);
        assert_eq!(sim.stats().max_moves_per_process(), 1);
        assert_eq!(sim.stats().moves_of(NodeId(2), RuleId(0), 1), 1);
    }

    #[test]
    fn detailed_stats_can_be_disabled() {
        let (init, g) = flood_path(4);
        let mut sim = Simulator::new(&g, Flood, init, Daemon::Synchronous, 0);
        sim.set_detailed_stats(false);
        sim.execution().cap(100).run();
        // Aggregates still tracked; per-node vectors never allocated.
        assert_eq!(sim.stats().moves, 3);
        assert_eq!(sim.stats().moves_per_rule, vec![3]);
        assert!(sim.stats().moves_per_process.is_empty());
        assert!(sim.stats().moves_per_process_rule.is_empty());
        assert_eq!(sim.stats().moves_of(NodeId(2), RuleId(0), 1), 0);
        assert_eq!(sim.stats().max_moves_per_process(), 0);
    }

    #[test]
    fn per_node_stats_allocate_lazily() {
        let (init, g) = flood_path(3);
        let sim = Simulator::new(&g, Flood, init, Daemon::Synchronous, 0);
        // No step taken yet: nothing allocated.
        assert!(sim.stats().moves_per_process.is_empty());
        assert!(sim.stats().moves_per_process_rule.is_empty());
    }

    #[test]
    fn enabled_nodes_sorted_into_reuses_buffer() {
        let g = generators::path(2);
        let sim = Simulator::new(&g, ZeroBreaker, vec![0, 0], Daemon::LexMin, 1);
        let mut buf = vec![NodeId(9); 7];
        sim.enabled_nodes_sorted_into(&mut buf);
        assert_eq!(buf, vec![NodeId(0), NodeId(1)]);
        assert_eq!(sim.enabled_nodes_sorted(), buf);
    }

    #[test]
    fn enabled_bits_mirror_enabled_list() {
        let (init, g) = flood_path(5);
        let mut sim = Simulator::new(&g, Flood, init, Daemon::Synchronous, 0);
        loop {
            let sorted: Vec<usize> = sim.enabled_bits().iter().collect();
            let mut expected: Vec<usize> = sim
                .enabled_nodes_sorted()
                .iter()
                .map(|u| u.index())
                .collect();
            expected.sort_unstable();
            assert_eq!(sorted, expected);
            if let StepOutcome::Terminal = sim.step() {
                break;
            }
        }
        assert_eq!(sim.enabled_bits().count(), 0);
    }

    #[test]
    fn snapshot_columns_round_trips_configuration() {
        use crate::soa::{AosColumns, StateColumns};
        let (init, g) = flood_path(4);
        let mut sim = Simulator::new(&g, Flood, init, Daemon::Synchronous, 0);
        sim.step();
        let mut cols = AosColumns::default();
        sim.snapshot_columns(&mut cols);
        assert_eq!(cols.to_states(), sim.states());
    }

    #[test]
    fn intra_threads_run_is_byte_identical_to_sequential() {
        let g = generators::random_connected(40, 60, 21);
        let mut init = vec![false; 40];
        init[0] = true;
        let run = |threads: usize| {
            let mut sim = Simulator::new(&g, Flood, init.clone(), Daemon::Synchronous, 7);
            sim.set_intra_threads(threads);
            sim.set_par_threshold(0); // engage kernels even on tiny steps
            sim.execution().cap(10_000).run();
            (sim.stats().clone(), sim.states().to_vec())
        };
        let seq = run(1);
        for threads in [2, 4, 8] {
            assert_eq!(run(threads), seq, "divergence at {threads} threads");
        }
    }

    #[test]
    fn conflict_stats_report_partition_classes() {
        let (init, g) = flood_path(4);
        let mut sim = Simulator::new(&g, Flood, init, Daemon::Synchronous, 0);
        assert_eq!(sim.last_conflict_classes(), None);
        sim.set_conflict_stats(true);
        sim.step();
        // One mover per flood step: a single conflict-free class.
        assert_eq!(sim.last_conflict_classes(), Some(1));
        sim.set_conflict_stats(false);
        assert_eq!(sim.last_conflict_classes(), None);
    }

    #[test]
    fn inject_reactivates() {
        let (init, g) = flood_path(3);
        let mut sim = Simulator::new(&g, Flood, init, Daemon::Synchronous, 0);
        sim.execution().cap(100).run();
        assert!(sim.is_terminal());
        // Faults cannot resurrect a flood (monotone), but injecting a
        // fresh `false` next to a `true` re-enables the rule.
        sim.inject(NodeId(1), false);
        assert!(!sim.is_terminal());
        sim.reset_stats();
        let out = sim.execution().cap(100).run();
        assert!(out.terminal);
        assert_eq!(sim.stats().moves, 1);
    }

    #[test]
    fn terminal_step_is_reported() {
        let g = generators::path(2);
        let mut sim = Simulator::new(&g, Flood, vec![true, true], Daemon::Central, 0);
        assert!(sim.is_terminal());
        assert_eq!(sim.step(), StepOutcome::Terminal);
        assert_eq!(sim.stats().steps, 0);
    }

    /// The threading contract (see the crate docs): batch layers put
    /// one simulator on each worker thread, so these bounds must never
    /// regress. Compile-time only.
    #[test]
    fn threading_contract_bounds_hold() {
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<Daemon>();
        assert_sync::<Daemon>();
        assert_send::<RunStats>();
        assert_sync::<RunStats>();
        assert_send::<RunOutcome>();
        assert_send::<crate::rng::Xoshiro256StarStar>();
        // Simulator<A> is Send whenever A and A::State are.
        assert_send::<Simulator<'static, Flood>>();
        assert_send::<Simulator<'static, ZeroBreaker>>();
    }

    #[test]
    fn deterministic_given_seed() {
        let g = generators::random_connected(24, 12, 9);
        let mut init = vec![false; 24];
        init[0] = true;
        let run = |seed: u64| {
            let mut sim = Simulator::new(
                &g,
                Flood,
                init.clone(),
                Daemon::RandomSubset { p: 0.4 },
                seed,
            );
            sim.execution().cap(10_000).run();
            (sim.stats().clone(), sim.states().to_vec())
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn rounds_bounded_by_steps() {
        let g = generators::random_connected(16, 8, 2);
        let mut init = vec![false; 16];
        init[3] = true;
        for daemon in Daemon::all_strategies() {
            let mut sim = Simulator::new(&g, Flood, init.clone(), daemon.clone(), 11);
            let out = sim.execution().cap(10_000).run();
            assert!(out.terminal, "flood must terminate under {daemon:?}");
            assert!(
                sim.stats().completed_rounds <= sim.stats().steps.max(1),
                "rounds cannot exceed steps under {daemon:?}"
            );
            assert!(sim.states().iter().all(|&b| b));
        }
    }

    #[test]
    fn trace_events_cover_the_step_life_cycle() {
        use crate::trace::{TraceEvent, TraceSink};

        #[derive(Default)]
        struct Collect(Vec<TraceEvent>);
        impl TraceSink for Collect {
            fn record(&mut self, e: &TraceEvent) {
                self.0.push(*e);
            }
            fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
                Some(self)
            }
        }

        let (init, g) = flood_path(3);
        let mut sim = Simulator::new(&g, Flood, init, Daemon::Synchronous, 0);
        sim.set_trace_sink(Box::new(Collect::default()));
        let out = sim.execution().cap(100).run();
        assert!(out.terminal);
        let mut sink = sim.take_trace_sink().expect("sink installed");
        let events = &sink
            .as_any_mut()
            .and_then(|a| a.downcast_mut::<Collect>())
            .expect("concrete sink")
            .0;
        // Two steps on a 3-node path flood: per step StepStarted,
        // MovesApplied, EnabledSetSize, RoundCompleted; one RunEnded.
        assert_eq!(
            events[..4],
            [
                TraceEvent::StepStarted {
                    step: 0,
                    enabled: 1
                },
                TraceEvent::MovesApplied {
                    step: 0,
                    moves: 1,
                    conflict_classes: None
                },
                TraceEvent::EnabledSetSize {
                    step: 0,
                    enabled: 1
                },
                TraceEvent::RoundCompleted { step: 0, rounds: 1 },
            ]
        );
        assert_eq!(
            events.last(),
            Some(&TraceEvent::RunEnded {
                steps: 2,
                moves: 2,
                rounds: 2,
                reason: TerminationReason::Terminal,
            })
        );
        // No PhaseTimed without opt-in: the default stream is
        // deterministic.
        assert!(events
            .iter()
            .all(|e| !matches!(e, TraceEvent::PhaseTimed { .. })));
        assert_eq!(events.len(), 9);
    }

    #[test]
    fn trace_phase_timing_is_opt_in() {
        use crate::trace::{TraceEvent, TracePhase, TraceSink};

        #[derive(Default)]
        struct Timed(Vec<(u64, TracePhase)>);
        impl TraceSink for Timed {
            fn record(&mut self, e: &TraceEvent) {
                if let TraceEvent::PhaseTimed { step, phase, .. } = e {
                    self.0.push((*step, *phase));
                }
            }
            fn wants_phase_timing(&self) -> bool {
                true
            }
            fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
                Some(self)
            }
        }

        let (init, g) = flood_path(3);
        let mut sim = Simulator::new(&g, Flood, init, Daemon::Synchronous, 0);
        sim.set_trace_sink(Box::new(Timed::default()));
        sim.step();
        let mut sink = sim.take_trace_sink().unwrap();
        let phases = &sink
            .as_any_mut()
            .and_then(|a| a.downcast_mut::<Timed>())
            .unwrap()
            .0;
        assert_eq!(
            phases,
            &[
                (0, TracePhase::Select),
                (0, TracePhase::Apply),
                (0, TracePhase::Guards)
            ]
        );
    }

    #[test]
    fn tracing_does_not_change_execution() {
        let g = generators::random_connected(24, 36, 5);
        let mut init = vec![false; 24];
        init[0] = true;
        let run = |traced: bool| {
            let mut sim =
                Simulator::new(&g, Flood, init.clone(), Daemon::RandomSubset { p: 0.5 }, 11);
            if traced {
                sim.set_trace_sink(Box::new(crate::trace::NoTrace));
            }
            sim.execution().cap(10_000).run();
            (sim.stats().clone(), sim.states().to_vec())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn last_activated_reports_moves() {
        let (init, g) = flood_path(3);
        let mut sim = Simulator::new(&g, Flood, init, Daemon::Synchronous, 0);
        sim.step();
        assert_eq!(sim.last_activated(), &[(NodeId(1), RuleId(0))]);
    }
}
