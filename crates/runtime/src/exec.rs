//! The execution/observer API: composable trajectory probes and the
//! fluent [`Execution`] builder — the one public way to drive a run to
//! completion.
//!
//! The paper's claims are *trajectory* properties (alive-root
//! monotonicity, per-segment rule grammars, liveness windows), so
//! measurement must see every step without owning the loop. An
//! [`Observer`] is a passive probe with hooks for each execution event;
//! an [`Execution`] wires any number of observers into the canonical
//! run loop. Workloads become "write an observer", never "fork the
//! loop", and the loop itself exists exactly once.
//!
//! # Examples
//!
//! A one-shot run with a custom probe:
//!
//! ```
//! use ssr_graph::generators;
//! use ssr_runtime::{
//!     Algorithm, Daemon, Execution, NodeId, Observer, RuleId, RuleMask, Simulator, StateView,
//!     StepOutcome, TerminationReason,
//! };
//!
//! /// Toy flood: a node with a `true` neighbor becomes `true`.
//! struct Flood;
//! impl Algorithm for Flood {
//!     type State = bool;
//!     fn rule_count(&self) -> usize { 1 }
//!     fn rule_name(&self, _: RuleId) -> &'static str { "flood" }
//!     fn enabled_mask<V: StateView<bool>>(&self, u: NodeId, view: &V) -> RuleMask {
//!         let infected = view.graph().neighbors(u).iter().any(|&v| *view.state(v));
//!         RuleMask::from_bool(!*view.state(u) && infected)
//!     }
//!     fn apply<V: StateView<bool>>(&self, _: NodeId, _: &V, _: RuleId) -> bool { true }
//! }
//!
//! /// Probe: peak number of processes activated in one step.
//! #[derive(Default)]
//! struct PeakActivation(usize);
//! impl Observer<Flood> for PeakActivation {
//!     fn on_step(&mut self, _sim: &Simulator<'_, Flood>, outcome: &StepOutcome) {
//!         if let StepOutcome::Progress { activated } = outcome {
//!             self.0 = self.0.max(*activated);
//!         }
//!     }
//! }
//!
//! let g = generators::path(5);
//! let mut init = vec![false; 5];
//! init[0] = true;
//! let mut peak = PeakActivation::default();
//! let out = Execution::of(&g, Flood)
//!     .init(init)
//!     .daemon(Daemon::Synchronous)
//!     .seed(42)
//!     .cap(1_000)
//!     .observe(&mut peak)
//!     .run();
//! assert!(out.terminal);
//! assert_eq!(out.reason, TerminationReason::Terminal);
//! assert_eq!(peak.0, 1, "a path flood activates one process per step");
//! ```
//!
//! Resuming an existing simulator (fault injection, warm-up phases):
//!
//! ```
//! # use ssr_graph::generators;
//! # use ssr_runtime::{Algorithm, Daemon, NodeId, RuleId, RuleMask, Simulator, StateView};
//! # struct Flood;
//! # impl Algorithm for Flood {
//! #     type State = bool;
//! #     fn rule_count(&self) -> usize { 1 }
//! #     fn rule_name(&self, _: RuleId) -> &'static str { "flood" }
//! #     fn enabled_mask<V: StateView<bool>>(&self, u: NodeId, view: &V) -> RuleMask {
//! #         let infected = view.graph().neighbors(u).iter().any(|&v| *view.state(v));
//! #         RuleMask::from_bool(!*view.state(u) && infected)
//! #     }
//! #     fn apply<V: StateView<bool>>(&self, _: NodeId, _: &V, _: RuleId) -> bool { true }
//! # }
//! let g = generators::path(4);
//! let mut sim = Simulator::new(&g, Flood, vec![true, false, false, false], Daemon::Central, 1);
//! let out = sim.execution().cap(10_000).until(|_, states| states[2]).run();
//! assert!(out.reached && out.steps_used == 2);
//! assert_eq!(sim.stats().moves, 2); // the simulator stays accessible
//! ```

use ssr_graph::{Graph, NodeId};

use crate::algorithm::{Algorithm, RuleId};
use crate::daemon::Daemon;
use crate::simulator::{RunOutcome, Simulator, StepOutcome, TerminationReason};
use crate::step::par::ParHooks;
use crate::trace::TraceSink;

/// A passive probe attached to an execution.
///
/// Every hook has an empty default body, so an observer implements only
/// the events it cares about; the compiler inlines unused hooks away
/// (the no-op path costs nothing, pinned by the `exec_overhead` bench
/// in `ssr-bench`). Hooks receive the simulator *after* the event, so
/// `sim.states()` is the post-step configuration and
/// [`Simulator::last_activated`] names the moves that produced it.
///
/// Observers compose: tuples run left to right, and
/// `Vec<Box<dyn Observer<A>>>` runs in order — see the table of
/// combinator impls below. `&mut O` forwards to `O`, so a probe can be
/// lent to an [`Execution`] and read back afterwards.
///
/// # Examples
///
/// ```
/// use ssr_runtime::{Algorithm, Observer, Simulator, StepOutcome};
///
/// /// Counts completed rounds through the hook alone.
/// #[derive(Default)]
/// struct RoundCounter(u64);
/// impl<A: Algorithm> Observer<A> for RoundCounter {
///     fn on_round_complete(&mut self, _sim: &Simulator<'_, A>) {
///         self.0 += 1;
///     }
/// }
/// ```
pub trait Observer<A: Algorithm> {
    /// Called after every successful step (never for a no-op step on a
    /// terminal configuration).
    fn on_step(&mut self, sim: &Simulator<'_, A>, outcome: &StepOutcome) {
        let _ = (sim, outcome);
    }

    /// Called once per `(process, rule)` move of a step, before that
    /// step's [`Observer::on_step`].
    fn on_move(&mut self, sim: &Simulator<'_, A>, u: NodeId, rule: RuleId) {
        let _ = (sim, u, rule);
    }

    /// Called after a step that completed a round (§2.4
    /// neutralization-based rounds), following `on_step`.
    fn on_round_complete(&mut self, sim: &Simulator<'_, A>) {
        let _ = sim;
    }

    /// Called (at most once per run) when the run ends on a terminal
    /// configuration — no rule enabled anywhere — whatever stopped the
    /// run: an observed terminal step, a predicate hit, or the budget
    /// running out right as the system went silent.
    fn on_terminal(&mut self, sim: &Simulator<'_, A>) {
        let _ = sim;
    }

    /// Called exactly once when the run finishes, whatever the
    /// [`TerminationReason`] — the place to sample the final
    /// configuration.
    fn on_run_end(&mut self, sim: &Simulator<'_, A>, outcome: &RunOutcome) {
        let _ = (sim, outcome);
    }
}

/// The zero-cost default observer: every hook is a no-op.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoObserver;

impl<A: Algorithm> Observer<A> for NoObserver {}

impl<A: Algorithm> Observer<A> for () {}

/// Forwarding impl: lend a probe with `&mut` and read it afterwards.
impl<A: Algorithm, O: Observer<A> + ?Sized> Observer<A> for &mut O {
    fn on_step(&mut self, sim: &Simulator<'_, A>, outcome: &StepOutcome) {
        (**self).on_step(sim, outcome);
    }
    fn on_move(&mut self, sim: &Simulator<'_, A>, u: NodeId, rule: RuleId) {
        (**self).on_move(sim, u, rule);
    }
    fn on_round_complete(&mut self, sim: &Simulator<'_, A>) {
        (**self).on_round_complete(sim);
    }
    fn on_terminal(&mut self, sim: &Simulator<'_, A>) {
        (**self).on_terminal(sim);
    }
    fn on_run_end(&mut self, sim: &Simulator<'_, A>, outcome: &RunOutcome) {
        (**self).on_run_end(sim, outcome);
    }
}

impl<A: Algorithm, O: Observer<A> + ?Sized> Observer<A> for Box<O> {
    fn on_step(&mut self, sim: &Simulator<'_, A>, outcome: &StepOutcome) {
        (**self).on_step(sim, outcome);
    }
    fn on_move(&mut self, sim: &Simulator<'_, A>, u: NodeId, rule: RuleId) {
        (**self).on_move(sim, u, rule);
    }
    fn on_round_complete(&mut self, sim: &Simulator<'_, A>) {
        (**self).on_round_complete(sim);
    }
    fn on_terminal(&mut self, sim: &Simulator<'_, A>) {
        (**self).on_terminal(sim);
    }
    fn on_run_end(&mut self, sim: &Simulator<'_, A>, outcome: &RunOutcome) {
        (**self).on_run_end(sim, outcome);
    }
}

/// A dynamically-sized observer set, run in order.
impl<A: Algorithm, O: Observer<A> + ?Sized> Observer<A> for Vec<Box<O>> {
    fn on_step(&mut self, sim: &Simulator<'_, A>, outcome: &StepOutcome) {
        for o in self {
            o.on_step(sim, outcome);
        }
    }
    fn on_move(&mut self, sim: &Simulator<'_, A>, u: NodeId, rule: RuleId) {
        for o in self {
            o.on_move(sim, u, rule);
        }
    }
    fn on_round_complete(&mut self, sim: &Simulator<'_, A>) {
        for o in self {
            o.on_round_complete(sim);
        }
    }
    fn on_terminal(&mut self, sim: &Simulator<'_, A>) {
        for o in self {
            o.on_terminal(sim);
        }
    }
    fn on_run_end(&mut self, sim: &Simulator<'_, A>, outcome: &RunOutcome) {
        for o in self {
            o.on_run_end(sim, outcome);
        }
    }
}

macro_rules! impl_observer_tuple {
    ($($name:ident),+) => {
        /// Tuple combinator: hooks run left to right.
        impl<A: Algorithm, $($name: Observer<A>),+> Observer<A> for ($($name,)+) {
            fn on_step(&mut self, sim: &Simulator<'_, A>, outcome: &StepOutcome) {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                $($name.on_step(sim, outcome);)+
            }
            fn on_move(&mut self, sim: &Simulator<'_, A>, u: NodeId, rule: RuleId) {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                $($name.on_move(sim, u, rule);)+
            }
            fn on_round_complete(&mut self, sim: &Simulator<'_, A>) {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                $($name.on_round_complete(sim);)+
            }
            fn on_terminal(&mut self, sim: &Simulator<'_, A>) {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                $($name.on_terminal(sim);)+
            }
            fn on_run_end(&mut self, sim: &Simulator<'_, A>, outcome: &RunOutcome) {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                $($name.on_run_end(sim, outcome);)+
            }
        }
    };
}

impl_observer_tuple!(O1);
impl_observer_tuple!(O1, O2);
impl_observer_tuple!(O1, O2, O3);
impl_observer_tuple!(O1, O2, O3, O4);

/// The stop predicate type used when [`Execution::until`] was never
/// called (the `fn` pointer is never invoked — it only fixes the
/// default type parameter).
pub type NoPredicate<A> = fn(&Graph, &[<A as Algorithm>::State]) -> bool;

/// Where an [`Execution`] gets its simulator from.
enum Source<'e, 'g, A: Algorithm> {
    /// Build a fresh simulator from the collected parameters.
    Fresh {
        graph: &'g Graph,
        algo: A,
        init: Option<Vec<A::State>>,
        daemon: Daemon,
        seed: u64,
        random_rule_choice: bool,
    },
    /// Drive a simulator the caller already owns.
    Resumed(&'e mut Simulator<'g, A>),
}

/// Fluent builder for driving a run to completion.
///
/// Two entry points share one run loop:
///
/// * [`Execution::of`] builds a fresh [`Simulator`] from the collected
///   parameters ([`init`](Execution::init) is mandatory,
///   [`daemon`](Execution::daemon) defaults to
///   [`Daemon::Synchronous`], [`seed`](Execution::seed) to `0`,
///   [`cap`](Execution::cap) to `u64::MAX`);
/// * [`Simulator::execution`] resumes a simulator the caller already
///   owns — for warm-up phases, fault injection between runs, or
///   reading stats and states afterwards.
///
/// The run stops at the first of: a terminal configuration, the
/// [`until`](Execution::until) predicate holding (checked on the
/// initial configuration too), or the step [`cap`](Execution::cap)
/// running out — reported in [`RunOutcome::reason`]. Attach any number
/// of probes with [`observe`](Execution::observe).
///
/// # Examples
///
/// See the [module documentation](self) for a fresh run with a custom
/// observer and a resumed run; [`RunReport`] for keeping the simulator
/// after a fresh run.
pub struct Execution<'e, 'g, A: Algorithm, O = NoObserver, P = NoPredicate<A>> {
    source: Source<'e, 'g, A>,
    cap: u64,
    observer: O,
    predicate: Option<P>,
    /// `Some(hooks)` when [`Execution::intra_threads`] was called: the
    /// pre-built kernels to install (inner `None` = explicit sequential).
    intra: Option<Option<ParHooks<A>>>,
    /// `Some(sink)` when [`Execution::trace`] was called: installed on
    /// the simulator before the run (see [`crate::trace`]).
    trace: Option<Box<dyn TraceSink>>,
}

/// Outcome of [`Execution::run_report`]: the [`RunOutcome`] plus the
/// finished simulator, for callers that need final states or counters.
///
/// # Examples
///
/// ```
/// # use ssr_graph::generators;
/// # use ssr_runtime::{Algorithm, Daemon, Execution, NodeId, RuleId, RuleMask, StateView};
/// # struct Flood;
/// # impl Algorithm for Flood {
/// #     type State = bool;
/// #     fn rule_count(&self) -> usize { 1 }
/// #     fn rule_name(&self, _: RuleId) -> &'static str { "flood" }
/// #     fn enabled_mask<V: StateView<bool>>(&self, u: NodeId, view: &V) -> RuleMask {
/// #         let infected = view.graph().neighbors(u).iter().any(|&v| *view.state(v));
/// #         RuleMask::from_bool(!*view.state(u) && infected)
/// #     }
/// #     fn apply<V: StateView<bool>>(&self, _: NodeId, _: &V, _: RuleId) -> bool { true }
/// # }
/// let g = generators::path(3);
/// let report = Execution::of(&g, Flood)
///     .init(vec![true, false, false])
///     .daemon(Daemon::Synchronous)
///     .run_report();
/// assert!(report.outcome.terminal);
/// assert_eq!(report.sim.stats().moves, 2);
/// ```
pub struct RunReport<'g, A: Algorithm> {
    /// How and where the run ended.
    pub outcome: RunOutcome,
    /// The simulator in its final state.
    pub sim: Simulator<'g, A>,
}

impl<'e, 'g, A: Algorithm> Execution<'e, 'g, A> {
    /// Starts a fresh execution over `graph` running `algo`.
    ///
    /// The initial configuration must be supplied with
    /// [`Execution::init`] before [`run`](Execution::run).
    pub fn of(graph: &'g Graph, algo: A) -> Self {
        Execution {
            source: Source::Fresh {
                graph,
                algo,
                init: None,
                daemon: Daemon::Synchronous,
                seed: 0,
                random_rule_choice: false,
            },
            cap: u64::MAX,
            observer: NoObserver,
            predicate: None,
            intra: None,
            trace: None,
        }
    }

    /// Resumes `sim` — the builder form of [`Simulator::execution`].
    pub fn resume(sim: &'e mut Simulator<'g, A>) -> Self {
        Execution {
            source: Source::Resumed(sim),
            cap: u64::MAX,
            observer: NoObserver,
            predicate: None,
            intra: None,
            trace: None,
        }
    }
}

impl<'e, 'g, A: Algorithm, O, P> Execution<'e, 'g, A, O, P> {
    fn fresh_mut(&mut self, what: &str) -> &mut Source<'e, 'g, A> {
        assert!(
            matches!(self.source, Source::Fresh { .. }),
            "{what} can only be set on a fresh execution (`Execution::of`); \
             a resumed execution inherits the simulator's configuration"
        );
        &mut self.source
    }

    /// Sets the initial configuration (mandatory for fresh executions).
    ///
    /// # Panics
    ///
    /// Panics on a resumed execution.
    pub fn init(mut self, init: Vec<A::State>) -> Self {
        let Source::Fresh { init: slot, .. } = self.fresh_mut("the initial configuration") else {
            unreachable!()
        };
        *slot = Some(init);
        self
    }

    /// Sets the daemon (default: [`Daemon::Synchronous`]).
    ///
    /// # Panics
    ///
    /// Panics on a resumed execution.
    pub fn daemon(mut self, daemon: Daemon) -> Self {
        let Source::Fresh { daemon: slot, .. } = self.fresh_mut("the daemon") else {
            unreachable!()
        };
        *slot = daemon;
        self
    }

    /// Sets the simulator seed (default: `0`).
    ///
    /// # Panics
    ///
    /// Panics on a resumed execution.
    pub fn seed(mut self, seed: u64) -> Self {
        let Source::Fresh { seed: slot, .. } = self.fresh_mut("the seed") else {
            unreachable!()
        };
        *slot = seed;
        self
    }

    /// Enables uniformly random rule choice among a process's enabled
    /// rules (see [`Simulator::set_random_rule_choice`]).
    ///
    /// # Panics
    ///
    /// Panics on a resumed execution.
    pub fn random_rule_choice(mut self, random: bool) -> Self {
        let Source::Fresh {
            random_rule_choice: slot,
            ..
        } = self.fresh_mut("random rule choice")
        else {
            unreachable!()
        };
        *slot = random;
        self
    }

    /// Sets the step budget (default: unbounded).
    pub fn cap(mut self, cap: u64) -> Self {
        self.cap = cap;
        self
    }

    /// Runs the step pipeline's apply and guard kernels on `threads`
    /// scoped worker threads (1 or 0 = sequential; the default). Works
    /// on fresh and resumed executions alike, and is byte-identical to
    /// sequential at any thread count — see
    /// [`Simulator::set_intra_threads`].
    pub fn intra_threads(mut self, threads: usize) -> Self
    where
        A: Sync,
        A::State: Send + Sync,
    {
        self.intra = Some(crate::step::par::hooks::<A>(threads));
        self
    }

    /// Installs a [`TraceSink`] on the simulator for this run: the step
    /// pipeline emits the typed event stream documented in
    /// [`crate::trace`]. On a resumed execution the sink stays
    /// installed afterwards — recover it with
    /// [`Simulator::take_trace_sink`]. A second call replaces the sink.
    ///
    /// Tracing never changes execution; with no sink the pipeline's
    /// disabled path is pinned at zero cost by the `obs_overhead`
    /// bench.
    pub fn trace(mut self, sink: Box<dyn TraceSink>) -> Self {
        self.trace = Some(sink);
        self
    }

    /// Attaches a probe; repeated calls nest, so every attached
    /// observer sees every event (earlier attachments fire first).
    pub fn observe<O2: Observer<A>>(self, observer: O2) -> Execution<'e, 'g, A, (O, O2), P> {
        Execution {
            source: self.source,
            cap: self.cap,
            observer: (self.observer, observer),
            predicate: self.predicate,
            intra: self.intra,
            trace: self.trace,
        }
    }

    /// Stops the run once `predicate` holds (checked on the initial
    /// configuration too, like the classic `run_until`). A second call
    /// replaces the predicate.
    pub fn until<Q>(self, predicate: Q) -> Execution<'e, 'g, A, O, Q>
    where
        Q: FnMut(&Graph, &[A::State]) -> bool,
    {
        Execution {
            source: self.source,
            cap: self.cap,
            observer: self.observer,
            predicate: Some(predicate),
            intra: self.intra,
            trace: self.trace,
        }
    }
}

impl<'e, 'g, A, O, P> Execution<'e, 'g, A, O, P>
where
    A: Algorithm,
    O: Observer<A>,
    P: FnMut(&Graph, &[A::State]) -> bool,
{
    fn build(source: Source<'e, 'g, A>) -> Simulator<'g, A> {
        let Source::Fresh {
            graph,
            algo,
            init,
            daemon,
            seed,
            random_rule_choice,
        } = source
        else {
            unreachable!("build is only called on fresh sources")
        };
        let init = init.expect(
            "Execution::of(..) needs an initial configuration: call .init(states) before .run()",
        );
        let mut sim = Simulator::new(graph, algo, init, daemon, seed);
        sim.set_random_rule_choice(random_rule_choice);
        sim
    }

    /// Drives the run and returns how it ended.
    ///
    /// On a fresh execution the simulator is dropped afterwards — use
    /// [`Execution::run_report`] (or build the [`Simulator`] yourself
    /// and resume it) when final states or counters are needed.
    ///
    /// # Panics
    ///
    /// Panics if this is a fresh execution and [`Execution::init`] was
    /// never called.
    pub fn run(self) -> RunOutcome {
        let Execution {
            source,
            cap,
            mut observer,
            mut predicate,
            intra,
            trace,
        } = self;
        match source {
            Source::Resumed(sim) => {
                if let Some(hooks) = intra {
                    sim.install_par(hooks);
                }
                if let Some(sink) = trace {
                    sim.set_trace_sink(sink);
                }
                drive(sim, cap, &mut observer, predicate.as_mut())
            }
            fresh @ Source::Fresh { .. } => {
                let mut sim = Self::build(fresh);
                if let Some(hooks) = intra {
                    sim.install_par(hooks);
                }
                if let Some(sink) = trace {
                    sim.set_trace_sink(sink);
                }
                drive(&mut sim, cap, &mut observer, predicate.as_mut())
            }
        }
    }

    /// Like [`Execution::run`], but hands back the finished simulator
    /// too.
    ///
    /// # Panics
    ///
    /// Panics on a resumed execution (the caller already owns the
    /// simulator) and if [`Execution::init`] was never called.
    pub fn run_report(self) -> RunReport<'g, A> {
        let Execution {
            source,
            cap,
            mut observer,
            mut predicate,
            intra,
            trace,
        } = self;
        assert!(
            matches!(source, Source::Fresh { .. }),
            "run_report is for fresh executions; a resumed execution's caller \
             already owns the simulator — use run() instead"
        );
        let mut sim = Self::build(source);
        if let Some(hooks) = intra {
            sim.install_par(hooks);
        }
        if let Some(sink) = trace {
            sim.set_trace_sink(sink);
        }
        let outcome = drive(&mut sim, cap, &mut observer, predicate.as_mut());
        RunReport { outcome, sim }
    }
}

/// The canonical run loop: steps `sim` until the predicate holds, the
/// configuration is terminal, or `cap` steps elapse, firing observer
/// hooks along the way. Semantics match the classic
/// `run_until`/`run_to_termination` exactly (same step sequence, same
/// RNG draws, same counters) so migrated callers reproduce their
/// pre-observer numbers byte for byte.
pub(crate) fn drive<A, O, P>(
    sim: &mut Simulator<'_, A>,
    cap: u64,
    observer: &mut O,
    mut predicate: Option<&mut P>,
) -> RunOutcome
where
    A: Algorithm,
    O: Observer<A> + ?Sized,
    P: FnMut(&Graph, &[A::State]) -> bool + ?Sized,
{
    let outcome = |sim: &Simulator<'_, A>, reached, steps_used, reason| RunOutcome {
        reached,
        terminal: sim.is_terminal(),
        steps_used,
        moves_at_hit: sim.stats().moves,
        rounds_at_hit: sim.rounds_now(),
        reason,
    };
    let mut steps_used = 0u64;
    if let Some(p) = predicate.as_mut() {
        if p(sim.graph(), sim.states()) {
            if sim.is_terminal() {
                observer.on_terminal(sim);
            }
            let out = outcome(sim, true, steps_used, TerminationReason::PredicateMet);
            sim.emit_run_ended(&out);
            observer.on_run_end(sim, &out);
            return out;
        }
    }
    loop {
        if steps_used >= cap {
            // `reached` keeps the classic semantics: a predicate run
            // that exhausts its budget failed; a plain termination run
            // "reached" iff the final configuration happens to be
            // terminal. A configuration that went terminal on the very
            // last in-budget step still fires `on_terminal`.
            let reached = predicate.is_none() && sim.is_terminal();
            let reason = if sim.is_terminal() {
                observer.on_terminal(sim);
                TerminationReason::Terminal
            } else {
                TerminationReason::CapExhausted
            };
            let out = outcome(sim, reached, steps_used, reason);
            sim.emit_run_ended(&out);
            observer.on_run_end(sim, &out);
            return out;
        }
        match sim.step() {
            StepOutcome::Terminal => {
                observer.on_terminal(sim);
                let out = outcome(
                    sim,
                    predicate.is_none(),
                    steps_used,
                    TerminationReason::Terminal,
                );
                sim.emit_run_ended(&out);
                observer.on_run_end(sim, &out);
                return out;
            }
            StepOutcome::Progress { activated } => {
                steps_used += 1;
                for i in 0..sim.last_activated().len() {
                    let (u, rule) = sim.last_activated()[i];
                    observer.on_move(sim, u, rule);
                }
                let step_outcome = StepOutcome::Progress { activated };
                observer.on_step(sim, &step_outcome);
                if sim.last_step_completed_round() {
                    observer.on_round_complete(sim);
                }
                if let Some(p) = predicate.as_mut() {
                    if p(sim.graph(), sim.states()) {
                        // The hook contract is about the configuration,
                        // not the stop cause: a predicate hit on a
                        // terminal configuration still reports it.
                        if sim.is_terminal() {
                            observer.on_terminal(sim);
                        }
                        let out = outcome(sim, true, steps_used, TerminationReason::PredicateMet);
                        sim.emit_run_ended(&out);
                        observer.on_run_end(sim, &out);
                        return out;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::{RuleMask, StateView};
    use ssr_graph::generators;

    /// Flood of `true` along edges (terminates, diameter-bound rounds).
    struct Flood;

    impl Algorithm for Flood {
        type State = bool;
        fn rule_count(&self) -> usize {
            1
        }
        fn rule_name(&self, _: RuleId) -> &'static str {
            "flood"
        }
        fn enabled_mask<V: StateView<bool>>(&self, u: NodeId, view: &V) -> RuleMask {
            let infected = view.graph().neighbors(u).iter().any(|&v| *view.state(v));
            RuleMask::from_bool(!*view.state(u) && infected)
        }
        fn apply<V: StateView<bool>>(&self, _: NodeId, _: &V, _: RuleId) -> bool {
            true
        }
    }

    fn flood_init(n: usize) -> Vec<bool> {
        let mut init = vec![false; n];
        init[0] = true;
        init
    }

    /// Records every hook invocation, for ordering assertions.
    #[derive(Default)]
    struct EventLog(Vec<String>);

    impl<A: Algorithm> Observer<A> for EventLog {
        fn on_step(&mut self, _sim: &Simulator<'_, A>, outcome: &StepOutcome) {
            self.0.push(format!("step:{outcome:?}"));
        }
        fn on_move(&mut self, _sim: &Simulator<'_, A>, u: NodeId, rule: RuleId) {
            self.0.push(format!("move:{u:?}:{rule:?}"));
        }
        fn on_round_complete(&mut self, _sim: &Simulator<'_, A>) {
            self.0.push("round".into());
        }
        fn on_terminal(&mut self, _sim: &Simulator<'_, A>) {
            self.0.push("terminal".into());
        }
        fn on_run_end(&mut self, _sim: &Simulator<'_, A>, outcome: &RunOutcome) {
            self.0.push(format!("end:{:?}", outcome.reason));
        }
    }

    #[test]
    fn fresh_run_reaches_terminal() {
        let g = generators::path(4);
        let out = Execution::of(&g, Flood)
            .init(flood_init(4))
            .daemon(Daemon::Synchronous)
            .seed(7)
            .run();
        assert!(out.terminal && out.reached);
        assert_eq!(out.reason, TerminationReason::Terminal);
        assert_eq!(out.steps_used, 3);
    }

    #[test]
    fn predicate_checked_on_initial_configuration() {
        let g = generators::path(3);
        let out = Execution::of(&g, Flood)
            .init(flood_init(3))
            .until(|_, states| states[0])
            .run();
        assert!(out.reached);
        assert_eq!(out.steps_used, 0);
        assert_eq!(out.reason, TerminationReason::PredicateMet);
    }

    #[test]
    fn cap_exhaustion_is_reported() {
        let g = generators::path(6);
        let out = Execution::of(&g, Flood)
            .init(flood_init(6))
            .daemon(Daemon::Synchronous)
            .cap(2)
            .until(|_, states| states[5])
            .run();
        assert!(!out.reached && !out.terminal);
        assert_eq!(out.reason, TerminationReason::CapExhausted);
        assert_eq!(out.steps_used, 2);
    }

    #[test]
    fn hooks_fire_in_order() {
        let g = generators::path(3);
        let mut log = EventLog::default();
        let out = Execution::of(&g, Flood)
            .init(flood_init(3))
            .daemon(Daemon::Synchronous)
            .observe(&mut log)
            .run();
        assert!(out.terminal);
        assert_eq!(
            log.0,
            vec![
                "move:n1:r0",
                "step:Progress { activated: 1 }",
                "round",
                "move:n2:r0",
                "step:Progress { activated: 1 }",
                "round",
                "terminal",
                "end:Terminal",
            ]
        );
    }

    #[test]
    fn observers_compose_as_tuples_and_boxes() {
        let g = generators::path(4);
        let mut a = EventLog::default();
        let mut b = EventLog::default();
        let boxed: Vec<Box<dyn Observer<Flood>>> = vec![Box::new(EventLog::default())];
        let out = Execution::of(&g, Flood)
            .init(flood_init(4))
            .daemon(Daemon::Synchronous)
            .observe((&mut a, &mut b))
            .observe(boxed)
            .run();
        assert!(out.terminal);
        assert_eq!(a.0, b.0);
        assert!(!a.0.is_empty());
    }

    #[test]
    fn resumed_execution_shares_counters() {
        let g = generators::path(5);
        let mut sim = Simulator::new(&g, Flood, flood_init(5), Daemon::Synchronous, 0);
        let first = sim.execution().cap(2).run();
        assert_eq!(first.steps_used, 2);
        assert_eq!(first.reason, TerminationReason::CapExhausted);
        let second = sim.execution().run();
        assert!(second.terminal);
        assert_eq!(second.steps_used, 2);
        assert_eq!(sim.stats().moves, 4);
    }

    #[test]
    fn run_report_hands_back_the_simulator() {
        let g = generators::path(3);
        let report = Execution::of(&g, Flood)
            .init(flood_init(3))
            .daemon(Daemon::Synchronous)
            .run_report();
        assert!(report.outcome.terminal);
        assert!(report.sim.states().iter().all(|&b| b));
    }

    #[test]
    #[should_panic(expected = "initial configuration")]
    fn fresh_run_requires_init() {
        let g = generators::path(3);
        let _ = Execution::of(&g, Flood).run();
    }

    #[test]
    #[should_panic(expected = "fresh execution")]
    fn resumed_execution_rejects_daemon_override() {
        let g = generators::path(3);
        let mut sim = Simulator::new(&g, Flood, flood_init(3), Daemon::Central, 0);
        let _ = sim.execution().daemon(Daemon::Synchronous);
    }

    #[test]
    #[should_panic(expected = "run_report is for fresh executions")]
    fn resumed_execution_rejects_run_report() {
        let g = generators::path(3);
        let mut sim = Simulator::new(&g, Flood, flood_init(3), Daemon::Central, 0);
        let _ = sim.execution().run_report();
    }

    #[test]
    fn on_terminal_fires_when_predicate_hits_a_terminal_configuration() {
        // The step satisfying the predicate is also the one that makes
        // the configuration terminal: both events must be reported.
        let g = generators::path(3);
        let mut log = EventLog::default();
        let out = Execution::of(&g, Flood)
            .init(flood_init(3))
            .daemon(Daemon::Synchronous)
            .observe(&mut log)
            .until(|_, states| states[2])
            .run();
        assert!(out.reached && out.terminal);
        assert_eq!(out.reason, TerminationReason::PredicateMet);
        assert_eq!(log.0.iter().filter(|e| *e == "terminal").count(), 1);
    }

    #[test]
    fn on_terminal_fires_when_cap_lands_exactly_on_termination() {
        // Flood on path(4) terminates after exactly 3 steps: with
        // cap(3) the loop exits through the budget check, but the
        // terminal event must still reach observers.
        let g = generators::path(4);
        let mut log = EventLog::default();
        let out = Execution::of(&g, Flood)
            .init(flood_init(4))
            .daemon(Daemon::Synchronous)
            .cap(3)
            .observe(&mut log)
            .run();
        assert!(out.terminal && out.reached);
        assert_eq!(out.reason, TerminationReason::Terminal);
        assert_eq!(log.0.iter().filter(|e| *e == "terminal").count(), 1);
    }

    #[test]
    fn intra_threads_preserves_observer_event_order() {
        // The staged pipeline must fire on_move/on_step/on_round_complete
        // in the exact sequential order at any thread count.
        let g = generators::random_connected(20, 30, 3);
        let run = |threads: usize| {
            let mut log = EventLog::default();
            let mut init = vec![false; 20];
            init[0] = true;
            let mut sim = Simulator::new(&g, Flood, init, Daemon::RandomSubset { p: 0.6 }, 13);
            sim.set_par_threshold(0); // engage kernels even on tiny steps
            let out = sim
                .execution()
                .intra_threads(threads)
                .cap(10_000)
                .observe(&mut log)
                .run();
            assert!(out.terminal);
            log.0
        };
        let seq = run(1);
        for threads in [2, 4, 8] {
            assert_eq!(
                run(threads),
                seq,
                "event order diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn terminal_cap_zero_matches_classic_semantics() {
        let g = generators::path(2);
        // Already terminal, cap 0: a plain termination run reports
        // reached (the classic `run_to_termination(0)` contract).
        let mut sim = Simulator::new(&g, Flood, vec![true, true], Daemon::Central, 0);
        let out = sim.execution().cap(0).run();
        assert!(out.reached && out.terminal);
        assert_eq!(out.reason, TerminationReason::Terminal);
        assert_eq!(out.steps_used, 0);
    }
}
