//! First-class **algorithm families**: the open, string-addressable
//! registry behind every campaign, experiment, and exhaustive sweep.
//!
//! The paper's headline result is that SDR is a *transformer*: it
//! composes with **any** input algorithm satisfying §3.5, not just the
//! two published instantiations. This module makes that generality a
//! property of the API. A [`Family`] is an object-safe description of
//! one runnable algorithm family — its identity ([`Family::id`]),
//! instantiability on a graph, closed-form paper bounds, and a
//! [`Family::run`] entry point that owns the concrete
//! simulator/execution internally (so type erasure never touches the
//! hot step loop). Families register in a [`FamilyRegistry`] under
//! string keys; an [`AlgorithmSpec`] is just a parsed label
//! (`family` + optional `params`) resolved against a registry at run
//! time.
//!
//! The split of responsibilities:
//!
//! * this module owns the *vocabulary* — [`Family`], [`FamilyRegistry`],
//!   [`AlgorithmSpec`], [`InitPlan`]/[`Amount`], [`Verdict`],
//!   [`FamilyRunOutcome`], and the erased exploration hook
//!   [`ExploreFamily`];
//! * each algorithm crate implements its own families next to the
//!   algorithm (`ssr-core` for SDR compositions via `composed()`,
//!   `ssr-unison`, `ssr-alliance`, `ssr-baselines`);
//! * `ssr-campaign` ships the `standard_families()` builder assembling
//!   the default registry, and its `run_scenario` is nothing but a
//!   registry lookup plus one generic body.
//!
//! Registering your own family requires **no edits to any workspace
//! crate** — see `examples/custom_family.rs` at the repository root.

use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

use ssr_graph::Graph;

use crate::exhaustive::{
    explore, Exploration, ExploreError, ExploreOptions, ExploreState, WorstCase,
};
use crate::rng::splitmix64;
use crate::{Algorithm, Daemon, Execution, Observer, RunOutcome, Simulator, TerminationReason};

// ---------------------------------------------------------------------
// Scenario vocabulary shared by every family
// ---------------------------------------------------------------------

/// A size-relative quantity (fault count, tear gap) resolved against
/// the actual node count at execution time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Amount {
    /// A fixed value.
    Fixed(u64),
    /// `max(n/4, 1)`.
    QuarterN,
    /// `max(n/2, 1)`.
    HalfN,
    /// `n`.
    N,
}

impl Amount {
    /// Resolves against node count `n`.
    pub fn resolve(&self, n: u64) -> u64 {
        match self {
            Amount::Fixed(v) => *v,
            Amount::QuarterN => (n / 4).max(1),
            Amount::HalfN => (n / 2).max(1),
            Amount::N => n,
        }
    }

    /// Symbolic label (size-independent).
    pub fn label(&self) -> String {
        match self {
            Amount::Fixed(v) => v.to_string(),
            Amount::QuarterN => "n/4".into(),
            Amount::HalfN => "n/2".into(),
            Amount::N => "n".into(),
        }
    }

    /// Parses a [`Amount::label`] rendering back (`None` on anything
    /// else).
    pub fn parse_label(s: &str) -> Option<Amount> {
        match s {
            "n/4" => Some(Amount::QuarterN),
            "n/2" => Some(Amount::HalfN),
            "n" => Some(Amount::N),
            _ => s.parse::<u64>().ok().map(Amount::Fixed),
        }
    }
}

/// How the initial configuration of a run is produced.
///
/// Plans that are meaningless for a given algorithm family degrade
/// gracefully: families without an arbitrary-configuration sampler use
/// their `γ_init`, and `Tear`/`CorruptClocks` fall back to `Arbitrary`
/// outside the unison families (each [`Family`] documents its exact
/// rules).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum InitPlan {
    /// The algorithm's arbitrary-configuration sampler (transient-fault
    /// soup) — the self-stabilization quantifier.
    Arbitrary,
    /// The algorithm's designated initial configuration (`γ_init` /
    /// all-zero clocks).
    Normal,
    /// A maximal legal clock gradient with a discontinuity of `gap`
    /// in the middle (unison families).
    Tear {
        /// Size of the clock discontinuity.
        gap: Amount,
    },
    /// Start legitimate, let the system run briefly, then corrupt `k`
    /// random clocks and measure recovery (unison families).
    CorruptClocks {
        /// Number of corrupted processes.
        k: Amount,
    },
}

impl InitPlan {
    /// Short label used in records and report tables.
    pub fn label(&self) -> String {
        match self {
            InitPlan::Arbitrary => "arbitrary".into(),
            InitPlan::Normal => "normal".into(),
            InitPlan::Tear { gap } => format!("tear({})", gap.label()),
            InitPlan::CorruptClocks { k } => format!("corrupt({})", k.label()),
        }
    }

    /// Parses a [`InitPlan::label`] rendering back — the inverse used
    /// by campaign-spec deserialization (`None` on anything else).
    pub fn parse_label(s: &str) -> Option<InitPlan> {
        match s {
            "arbitrary" => return Some(InitPlan::Arbitrary),
            "normal" => return Some(InitPlan::Normal),
            _ => {}
        }
        let inner = |prefix: &str| {
            s.strip_prefix(prefix)
                .and_then(|r| r.strip_prefix('('))
                .and_then(|r| r.strip_suffix(')'))
                .and_then(Amount::parse_label)
        };
        if let Some(gap) = inner("tear") {
            return Some(InitPlan::Tear { gap });
        }
        inner("corrupt").map(|k| InitPlan::CorruptClocks { k })
    }
}

/// Outcome of checking a run against its closed-form bound.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The run reached its target within every applicable bound.
    Pass,
    /// The run missed its target or violated a bound.
    Fail,
    /// The run reached its target; no closed-form bound applies
    /// (baseline families).
    NoBound,
    /// The scenario is not instantiable (e.g. an (f,g) preset invalid
    /// on this graph, or an unregistered family) and was skipped.
    Skip,
}

impl Verdict {
    /// Whether the record counts against a campaign's overall pass.
    pub fn ok(&self) -> bool {
        !matches!(self, Verdict::Fail)
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Verdict::Pass => "pass",
            Verdict::Fail => "fail",
            Verdict::NoBound => "no-bound",
            Verdict::Skip => "skip",
        };
        write!(f, "{s}")
    }
}

impl FromStr for Verdict {
    type Err = String;

    /// Parses the [`fmt::Display`] rendering back — used when replaying
    /// persisted records (checkpoints) into memory.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "pass" => Ok(Verdict::Pass),
            "fail" => Ok(Verdict::Fail),
            "no-bound" => Ok(Verdict::NoBound),
            "skip" => Ok(Verdict::Skip),
            other => Err(format!("unknown verdict {other:?}")),
        }
    }
}

/// Closed-form paper bounds of a family on a concrete graph.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Bounds {
    /// Round bound, when one exists.
    pub rounds: Option<u64>,
    /// Move bound, when one exists.
    pub moves: Option<u64>,
}

impl Bounds {
    /// No closed-form bound (baseline families).
    pub const NONE: Bounds = Bounds {
        rounds: None,
        moves: None,
    };
}

/// The seed bundle a family's [`Family::run`] receives — the three
/// scenario sub-seeds that remain after the caller consumed the graph
/// seed (`Scenario::seeds::<4>()` order: graph, init, sim, fault).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunSeeds {
    /// Seed for the initial-configuration sampler.
    pub init: u64,
    /// Seed for the simulator's daemon RNG.
    pub sim: u64,
    /// Seed for fault injection (corrupt-clocks plans).
    pub fault: u64,
}

/// The execution budget of one [`Family::run`]: the step cap plus the
/// intra-run worker count for the step pipeline's kernels.
///
/// `From<u64>` keeps call sites terse — `fam.run(g, init, daemon,
/// seeds, 10_000.into(), None)` — while campaigns thread a per-scenario
/// thread count through [`ExecBudget::with_intra_threads`].
///
/// # Examples
///
/// ```
/// use ssr_runtime::ExecBudget;
///
/// let b = ExecBudget::steps(10_000);
/// assert_eq!((b.cap, b.intra_threads), (10_000, 1));
/// let b = b.with_intra_threads(4);
/// assert_eq!(b.intra_threads, 4);
/// assert_eq!(ExecBudget::from(500).cap, 500);
/// assert_eq!(ExecBudget::steps(1).with_intra_threads(0).intra_threads, 1);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecBudget {
    /// Step cap for the measured run.
    pub cap: u64,
    /// Scoped worker threads for the apply/guard kernels (1 =
    /// sequential; runs are byte-identical at any value).
    pub intra_threads: usize,
}

impl ExecBudget {
    /// A sequential budget of `cap` steps.
    pub fn steps(cap: u64) -> Self {
        ExecBudget {
            cap,
            intra_threads: 1,
        }
    }

    /// Sets the intra-run worker count (clamped to ≥ 1).
    #[must_use]
    pub fn with_intra_threads(mut self, threads: usize) -> Self {
        self.intra_threads = threads.max(1);
        self
    }
}

impl From<u64> for ExecBudget {
    fn from(cap: u64) -> Self {
        ExecBudget::steps(cap)
    }
}

/// Flat, family-agnostic result of one [`Family::run`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FamilyRunOutcome {
    /// Whether the family's target predicate was reached.
    pub reached: bool,
    /// Whether the final configuration is terminal.
    pub terminal: bool,
    /// Why the run stopped.
    pub reason: TerminationReason,
    /// Steps executed (including warm-up phases, matching the
    /// simulator's cumulative step counter).
    pub steps: u64,
    /// Total moves until the target was hit.
    pub moves: u64,
    /// Rounds until the target was hit.
    pub rounds: u64,
    /// Worst per-process move count of the family's bound-relevant
    /// rule set (SDR rules for reset compositions, all rules
    /// otherwise).
    pub max_moves_per_process: u64,
    /// Closed-form round bound, when the family has one.
    pub bound_rounds: Option<u64>,
    /// Closed-form move bound, when the family has one.
    pub bound_moves: Option<u64>,
    /// Bound-check outcome.
    pub verdict: Verdict,
}

impl FamilyRunOutcome {
    /// Seeds the flat fields from a [`RunOutcome`] plus the simulator's
    /// cumulative step counter; bounds and verdict start empty
    /// (`NoBound`) for the family to fill in.
    pub fn from_run(out: &RunOutcome, steps: u64) -> Self {
        FamilyRunOutcome {
            reached: out.reached,
            terminal: out.terminal,
            reason: out.reason,
            steps,
            moves: out.moves_at_hit,
            rounds: out.rounds_at_hit,
            max_moves_per_process: 0,
            bound_rounds: None,
            bound_moves: None,
            verdict: Verdict::NoBound,
        }
    }
}

// ---------------------------------------------------------------------
// Probes: type-erased trajectory hooks through the family boundary
// ---------------------------------------------------------------------

/// A type-erased trajectory probe attachable to any [`Family::run`].
///
/// Families erase their `Algorithm::State`, so a probe sees the
/// family-agnostic events only: step progress and the final
/// [`RunOutcome`]. Typed probes (segment tracking, alliance
/// verification, liveness windows) stay what they always were —
/// [`Observer`]s attached by callers that construct the concrete
/// algorithm themselves.
pub trait FamilyProbe {
    /// Called after every step of the measured run: cumulative steps
    /// so far and the number of processes activated in this step.
    fn on_step(&mut self, steps: u64, activated: usize) {
        let _ = (steps, activated);
    }

    /// Called once when the measured run ends.
    fn on_run_end(&mut self, outcome: &RunOutcome) {
        let _ = outcome;
    }

    /// A [`TraceSink`](crate::trace::TraceSink) for the *measured*
    /// execution, installed by the family after any warm-up phase.
    /// Default `None`: no tracing through the family boundary.
    fn make_trace_sink(&mut self) -> Option<Box<dyn crate::trace::TraceSink>> {
        None
    }

    /// Hands the sink from [`FamilyProbe::make_trace_sink`] back after
    /// the measured execution, with everything it recorded (use
    /// [`TraceSink::as_any_mut`](crate::trace::TraceSink::as_any_mut)
    /// to recover the concrete type). Default: drop it.
    fn collect_trace_sink(&mut self, sink: Box<dyn crate::trace::TraceSink>) {
        let _ = sink;
    }
}

/// Bridges an optional erased [`FamilyProbe`] onto the typed
/// [`Observer`] hooks — the adapter families attach inside their
/// `run` implementations.
pub struct ProbeBridge<'p> {
    probe: Option<&'p mut dyn FamilyProbe>,
    steps: u64,
}

impl<'p> ProbeBridge<'p> {
    /// Wraps `probe` (no-op when `None`).
    pub fn new(probe: Option<&'p mut dyn FamilyProbe>) -> Self {
        ProbeBridge { probe, steps: 0 }
    }

    /// Installs the probe's trace sink (if it supplies one) on `sim` —
    /// called by family `run` bodies right before the *measured*
    /// execution, after any warm-up phase.
    pub fn install_trace<A: Algorithm>(&mut self, sim: &mut Simulator<'_, A>) {
        if let Some(probe) = self.probe.as_deref_mut() {
            if let Some(sink) = probe.make_trace_sink() {
                sim.set_trace_sink(sink);
            }
        }
    }

    /// Returns the installed sink to the probe after the measured
    /// execution — the counterpart of [`ProbeBridge::install_trace`].
    pub fn collect_trace<A: Algorithm>(&mut self, sim: &mut Simulator<'_, A>) {
        if let Some(sink) = sim.take_trace_sink() {
            if let Some(probe) = self.probe.as_deref_mut() {
                probe.collect_trace_sink(sink);
            }
        }
    }
}

impl<A: Algorithm> Observer<A> for ProbeBridge<'_> {
    fn on_step(&mut self, _sim: &Simulator<'_, A>, outcome: &crate::StepOutcome) {
        if let Some(probe) = self.probe.as_deref_mut() {
            if let crate::StepOutcome::Progress { activated } = outcome {
                self.steps += 1;
                probe.on_step(self.steps, *activated);
            }
        }
    }

    fn on_run_end(&mut self, _sim: &Simulator<'_, A>, outcome: &RunOutcome) {
        if let Some(probe) = self.probe.as_deref_mut() {
            probe.on_run_end(outcome);
        }
    }
}

// ---------------------------------------------------------------------
// The Family trait
// ---------------------------------------------------------------------

/// An object-safe, registrable algorithm family.
///
/// A family owns everything a campaign needs to turn a declarative
/// scenario into numbers: identity, instantiability, init-plan
/// semantics, the closed-form paper bounds, the bound-check verdict,
/// and the run loop itself. Erasure stops at the `run` boundary — the
/// implementation constructs its concrete algorithm and drives a fully
/// monomorphized [`Execution`], so the per-step cost
/// is identical to calling the simulator directly.
pub trait Family: Send + Sync {
    /// Stable identifier; for registered families this equals the
    /// label the registry resolves (e.g. `unison-sdr`,
    /// `fga-sdr:domination(1,0)`).
    fn id(&self) -> &str;

    /// Display label for records and tables (defaults to [`Family::id`]).
    fn label(&self) -> String {
        self.id().to_string()
    }

    /// Whether the family can be instantiated on `graph` (e.g. an
    /// (f,g) preset's degree requirement). Non-instantiable scenarios
    /// are skipped, not failed.
    fn instantiable(&self, graph: &Graph) -> bool {
        let _ = graph;
        true
    }

    /// The family's closed-form paper bounds on `graph`
    /// ([`Bounds::NONE`] for baselines).
    fn bounds(&self, graph: &Graph) -> Bounds {
        let _ = graph;
        Bounds::NONE
    }

    /// Runs one scenario to completion: builds the initial
    /// configuration per `init`, drives the run under `daemon` within
    /// `budget.cap` steps (on `budget.intra_threads` intra-run
    /// workers), and reports the flat outcome with the bound-check
    /// verdict filled in.
    fn run(
        &self,
        graph: &Graph,
        init: &InitPlan,
        daemon: &Daemon,
        seeds: RunSeeds,
        budget: ExecBudget,
        probe: Option<&mut dyn FamilyProbe>,
    ) -> FamilyRunOutcome;

    /// Checks the §3.5 requirements of the family's input algorithm on
    /// `graph`, when the family is an SDR composition. `None` means
    /// the family is not composed (nothing to check); `Some(Err(_))`
    /// means a mis-registered input — the cross-crate requirement
    /// test fails loudly on it.
    fn requirements(&self, graph: &Graph) -> Option<Result<(), String>> {
        let _ = graph;
        None
    }

    /// The family's exhaustive-exploration hook, when its state has a
    /// canonical [`ExploreState`] encoding. `None` opts the family out
    /// of `ssr-explore` sweeps (they skip it, mirroring
    /// [`Verdict::Skip`]).
    fn explore(&self) -> Option<&dyn ExploreFamily> {
        None
    }

    /// The family's soundness-analysis hook
    /// ([`crate::analysis::AnalyzeFamily`]). `None` means the family's
    /// locality/commutativity/RNG obligations cannot be certified —
    /// `ssr-analyze` reports that as an error, so registered families
    /// are expected to implement it.
    fn analysis(&self) -> Option<&dyn crate::analysis::AnalyzeFamily> {
        None
    }
}

// ---------------------------------------------------------------------
// The erased exploration hook
// ---------------------------------------------------------------------

/// Exhaustive exploration surfaced through the family boundary.
///
/// Implementations build their canonical *seed set* of initial
/// configurations — `γ_init`, the structured worst-case workloads,
/// and `samples` adversarial draws from
/// [`explore_sample_seeds`] — and drive the generic
/// [`explore`](crate::exhaustive::explore()) engine plus the stochastic
/// cross-check over exactly that set, so "stochastic maxima ≤ exact
/// worst case" is sound by construction.
pub trait ExploreFamily: Send + Sync {
    /// The closed-form `(moves, rounds)` bounds the exact worst cases
    /// are checked against (may differ from [`Family::bounds`]: e.g.
    /// pure SDR has a *total*-move bound only when the input has no
    /// rules of its own).
    fn bounds(&self, graph: &Graph) -> Bounds;

    /// Exhausts every schedule of the selected daemon class from the
    /// canonical seed set, validating worst-case witnesses by replay.
    fn explore(
        &self,
        graph: &Graph,
        scenario_seed: u64,
        samples: usize,
        opts: &ExploreOptions,
    ) -> ExploreReport;

    /// Runs the stochastic simulator over the same seed set — every
    /// [`Daemon::all_strategies`] entry × `trials` trials per initial
    /// configuration — reporting the observed maxima.
    fn stochastic_max(
        &self,
        graph: &Graph,
        scenario_seed: u64,
        samples: usize,
        trials: u64,
        cap: u64,
    ) -> StochasticMax;
}

/// The type-erased result of one [`ExploreFamily::explore`] call.
#[derive(Clone, Debug, PartialEq)]
pub struct ExploreReport {
    /// Size of the initial seed set.
    pub init_count: usize,
    /// Daemon class label that was exhausted.
    pub daemon_class: &'static str,
    /// The erased exploration summary and whether both worst-case
    /// witnesses replayed byte-identically, or the limit error.
    pub result: Result<(ExploreSummary, bool), ExploreError>,
}

/// The type-erased part of an [`Exploration`] a scenario record needs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExploreSummary {
    /// Distinct configurations reached.
    pub states: u64,
    /// Transitions enumerated.
    pub transitions: u64,
    /// Convergence + closure exhaustively verified.
    pub verified: bool,
    /// Exact worst case, when the illegitimate region is well-founded.
    pub worst: Option<WorstCase>,
}

/// Observed maxima of stochastic runs over a family's exhaustive seed
/// set (see [`ExploreFamily::stochastic_max`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StochasticMax {
    /// Maximum moves to legitimacy over all runs.
    pub moves: u64,
    /// Maximum rounds over all runs.
    pub rounds: u64,
    /// Whether every run reached legitimacy within the step cap.
    pub all_reached: bool,
    /// Number of runs performed.
    pub runs: usize,
}

/// Seeds for a family's adversarial exploration samples, derived from
/// the scenario seed — shared by [`ExploreFamily::explore`] and
/// [`ExploreFamily::stochastic_max`] so both operate on the identical
/// initial seed set.
pub fn explore_sample_seeds(scenario_seed: u64, samples: usize) -> Vec<u64> {
    let mut state = scenario_seed ^ 0xE13_5EED;
    (0..samples).map(|_| splitmix64(&mut state)).collect()
}

/// Explores one family's fully-built problem and validates the
/// worst-case witnesses by replay — the generic body behind every
/// [`ExploreFamily::explore`] implementation.
pub fn explore_with_replay<A, P>(
    graph: &Graph,
    algo: &A,
    inits: &[Vec<A::State>],
    legit: P,
    opts: &ExploreOptions,
) -> ExploreReport
where
    A: Algorithm + Sync + Clone,
    A::State: ExploreState + Send + Sync,
    P: Fn(&Graph, &[A::State]) -> bool + Clone,
{
    let init_count = inits.len();
    let daemon_class = opts.daemon.label();
    match explore(graph, algo, inits, legit.clone(), opts) {
        Err(err) => ExploreReport {
            init_count,
            daemon_class,
            result: Err(err),
        },
        Ok(ex) => {
            let mut replay_ok = true;
            for w in [&ex.witness_moves, &ex.witness_rounds]
                .into_iter()
                .flatten()
            {
                let p = legit.clone();
                let out = w.replay(graph, algo.clone(), inits[w.init].clone(), move |gr, st| {
                    p(gr, st)
                });
                replay_ok &= w.matches(&out);
            }
            ExploreReport {
                init_count,
                daemon_class,
                result: Ok((summarize(&ex), replay_ok)),
            }
        }
    }
}

fn summarize<S>(ex: &Exploration<S>) -> ExploreSummary {
    ExploreSummary {
        states: ex.states as u64,
        transitions: ex.transitions as u64,
        verified: ex.verified(),
        worst: ex.worst,
    }
}

/// Runs the stochastic simulator over a family's exhaustive seed set —
/// the generic body behind every [`ExploreFamily::stochastic_max`]
/// implementation. One RNG stream (keyed off `scenario_seed`) spans
/// the whole `inits × strategies × trials` nest, so results are a pure
/// function of the scenario.
pub fn stochastic_max_runs<A, P>(
    graph: &Graph,
    algo: &A,
    inits: &[Vec<A::State>],
    legit: P,
    scenario_seed: u64,
    trials: u64,
    cap: u64,
) -> StochasticMax
where
    A: Algorithm + Clone,
    P: Fn(&Graph, &[A::State]) -> bool + Clone,
{
    let mut max = StochasticMax {
        all_reached: true,
        ..StochasticMax::default()
    };
    let mut seed_state = scenario_seed ^ 0x570C_4A57;
    for init in inits {
        for daemon in Daemon::all_strategies() {
            for _ in 0..trials {
                let p = legit.clone();
                let out = Execution::of(graph, algo.clone())
                    .init(init.clone())
                    .daemon(daemon.clone())
                    .seed(splitmix64(&mut seed_state))
                    .cap(cap)
                    .until(move |gr, st| p(gr, st))
                    .run();
                max.runs += 1;
                max.all_reached &= out.reached;
                if out.reached {
                    max.moves = max.moves.max(out.moves_at_hit);
                    max.rounds = max.rounds.max(out.rounds_at_hit);
                }
            }
        }
    }
    max
}

// ---------------------------------------------------------------------
// AlgorithmSpec: the parsed, registry-addressable label
// ---------------------------------------------------------------------

/// How an [`AlgorithmSpec`]'s parameters attach to its family key in
/// the printed label.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Params {
    /// No parameters: the label is the family key itself.
    None,
    /// Parenthesized suffix: `family(params)` (e.g. `sdr-agreement(8)`).
    Paren(String),
    /// Colon suffix: `family:params` (e.g. `fga-sdr:domination(1,0)`).
    Colon(String),
}

/// A thin, string-addressable handle naming one algorithm family plus
/// its parameters — the open replacement for the former closed enum.
///
/// A spec is plain data: it resolves to a runnable [`Family`] only
/// against a [`FamilyRegistry`]. Labels round-trip exactly through
/// [`FromStr`]/[`fmt::Display`]:
///
/// ```
/// use ssr_runtime::family::AlgorithmSpec;
///
/// for label in ["unison-sdr", "sdr-agreement(8)", "fga-sdr:domination(1,0)"] {
///     let spec: AlgorithmSpec = label.parse().unwrap();
///     assert_eq!(spec.to_string(), label);
/// }
/// let spec: AlgorithmSpec = "fga-sdr:domination(1,0)".parse().unwrap();
/// assert_eq!(spec.family, "fga-sdr");
/// assert_eq!(spec.params_str(), Some("domination(1,0)"));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct AlgorithmSpec {
    /// The registry key.
    pub family: String,
    /// The parameter suffix, if any.
    pub params: Params,
}

impl AlgorithmSpec {
    /// A parameterless spec: `family`.
    pub fn plain(family: impl Into<String>) -> Self {
        AlgorithmSpec {
            family: family.into(),
            params: Params::None,
        }
    }

    /// A paren-parameterized spec: `family(params)`.
    pub fn paren(family: impl Into<String>, params: impl ToString) -> Self {
        AlgorithmSpec {
            family: family.into(),
            params: Params::Paren(params.to_string()),
        }
    }

    /// A colon-parameterized spec: `family:params`.
    pub fn colon(family: impl Into<String>, params: impl ToString) -> Self {
        AlgorithmSpec {
            family: family.into(),
            params: Params::Colon(params.to_string()),
        }
    }

    /// The parameter string, independent of its attachment style.
    pub fn params_str(&self) -> Option<&str> {
        match &self.params {
            Params::None => None,
            Params::Paren(p) | Params::Colon(p) => Some(p),
        }
    }

    /// The full label (identical to the [`fmt::Display`] rendering,
    /// kept as a method for parity with the other spec types).
    pub fn label(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for AlgorithmSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.params {
            Params::None => write!(f, "{}", self.family),
            Params::Paren(p) => write!(f, "{}({p})", self.family),
            Params::Colon(p) => write!(f, "{}:{p}", self.family),
        }
    }
}

impl FromStr for AlgorithmSpec {
    type Err = std::convert::Infallible;

    /// Every string parses: `a:b` splits at the first colon, a
    /// trailing `(...)` splits as paren parameters, anything else is a
    /// parameterless family key.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some((family, params)) = s.split_once(':') {
            if !params.is_empty() {
                return Ok(AlgorithmSpec::colon(family, params));
            }
        }
        if let Some(stripped) = s.strip_suffix(')') {
            if let Some((family, params)) = stripped.split_once('(') {
                if !family.is_empty() {
                    return Ok(AlgorithmSpec::paren(family, params));
                }
            }
        }
        Ok(AlgorithmSpec::plain(s))
    }
}

// ---------------------------------------------------------------------
// The registry
// ---------------------------------------------------------------------

/// A factory resolving a parameter string to a family instance
/// (`None` when the parameters do not parse).
pub type FamilyFactory = Box<dyn Fn(Option<&str>) -> Option<Arc<dyn Family>> + Send + Sync>;

struct Entry {
    key: String,
    exemplars: Vec<String>,
    factory: FamilyFactory,
}

/// The string-keyed, open family registry.
///
/// Keys are family identifiers (`unison-sdr`, `fga-sdr`, …); entries
/// are either single instances ([`FamilyRegistry::register`]) or
/// parameterized factories ([`FamilyRegistry::register_parametric`]).
/// Registration order is preserved (it fixes the order of
/// [`FamilyRegistry::labels`]); registering an existing key replaces
/// the entry, so users can override standard families.
///
/// The standard workspace families are assembled by
/// `ssr_campaign::families::standard_families()`; user code extends
/// the registry freely — see `examples/custom_family.rs`.
#[derive(Default)]
pub struct FamilyRegistry {
    entries: Vec<Entry>,
    index: HashMap<String, usize>,
}

impl FamilyRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        FamilyRegistry::default()
    }

    fn insert(&mut self, entry: Entry) {
        match self.index.get(&entry.key) {
            Some(&i) => self.entries[i] = entry,
            None => {
                self.index.insert(entry.key.clone(), self.entries.len());
                self.entries.push(entry);
            }
        }
    }

    /// Registers a single family instance under its [`Family::id`].
    /// Resolution rejects parameters for instance entries.
    pub fn register(&mut self, family: Arc<dyn Family>) {
        let key = family.id().to_string();
        self.insert(Entry {
            exemplars: vec![key.clone()],
            key,
            factory: Box::new(move |params| {
                if params.is_none() {
                    Some(family.clone())
                } else {
                    None
                }
            }),
        });
    }

    /// Registers a parameterized family under `key`. `exemplars` are
    /// representative full labels (used by [`FamilyRegistry::labels`]
    /// and the round-trip tests); `factory` maps a parameter string to
    /// the concrete family instance.
    pub fn register_parametric(
        &mut self,
        key: impl Into<String>,
        exemplars: Vec<String>,
        factory: FamilyFactory,
    ) {
        self.insert(Entry {
            key: key.into(),
            exemplars,
            factory,
        });
    }

    /// Resolves a spec to its family: the `family` key is looked up
    /// and handed the parameter string; as a fallback, the *full*
    /// label is tried as a parameterless key (so instances registered
    /// under labels containing `(`/`:` still resolve).
    pub fn resolve(&self, spec: &AlgorithmSpec) -> Option<Arc<dyn Family>> {
        if let Some(&i) = self.index.get(&spec.family) {
            if let Some(family) = (self.entries[i].factory)(spec.params_str()) {
                return Some(family);
            }
        }
        if spec.params != Params::None {
            if let Some(&i) = self.index.get(&spec.label()) {
                return (self.entries[i].factory)(None);
            }
        }
        None
    }

    /// Parses `label` and resolves it.
    pub fn resolve_label(&self, label: &str) -> Option<Arc<dyn Family>> {
        let spec: AlgorithmSpec = label.parse().expect("AlgorithmSpec parsing is total");
        self.resolve(&spec)
    }

    /// Whether `key` names a registered family (parametric or not).
    pub fn contains(&self, key: &str) -> bool {
        self.index.contains_key(key)
    }

    /// Registered family keys, in registration order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|e| e.key.as_str())
    }

    /// Exemplar labels of every registered family, in registration
    /// order — each is guaranteed to resolve.
    pub fn labels(&self) -> Vec<String> {
        self.entries
            .iter()
            .flat_map(|e| e.exemplars.iter().cloned())
            .collect()
    }
}

impl fmt::Debug for FamilyRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FamilyRegistry")
            .field("keys", &self.keys().collect::<Vec<_>>())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_graph::generators;

    #[test]
    fn amounts_resolve() {
        assert_eq!(Amount::Fixed(3).resolve(100), 3);
        assert_eq!(Amount::QuarterN.resolve(12), 3);
        assert_eq!(Amount::HalfN.resolve(12), 6);
        assert_eq!(Amount::N.resolve(12), 12);
        assert_eq!(Amount::QuarterN.resolve(1), 1, "clamped to ≥ 1");
    }

    #[test]
    fn init_plan_labels_round_trip() {
        let plans = [
            InitPlan::Arbitrary,
            InitPlan::Normal,
            InitPlan::Tear { gap: Amount::N },
            InitPlan::Tear {
                gap: Amount::Fixed(7),
            },
            InitPlan::CorruptClocks { k: Amount::HalfN },
            InitPlan::CorruptClocks {
                k: Amount::QuarterN,
            },
        ];
        for p in plans {
            assert_eq!(InitPlan::parse_label(&p.label()), Some(p), "{p:?}");
        }
        assert_eq!(InitPlan::parse_label("tear(?)"), None);
        assert_eq!(InitPlan::parse_label("bogus"), None);
        assert_eq!("pass".parse::<Verdict>(), Ok(Verdict::Pass));
        assert!("nope".parse::<Verdict>().is_err());
    }

    #[test]
    fn spec_labels_round_trip() {
        for label in [
            "unison-sdr",
            "cfg-unison",
            "mono-reset",
            "sdr-agreement(8)",
            "fga-sdr:domination(1,0)",
            "fga:2-tuple(2,1)",
            "my-custom-family",
        ] {
            let spec: AlgorithmSpec = label.parse().unwrap();
            assert_eq!(spec.to_string(), label, "round-trip of {label:?}");
            assert_eq!(spec.label(), label);
        }
    }

    #[test]
    fn spec_parsing_splits_family_and_params() {
        let spec: AlgorithmSpec = "sdr-agreement(8)".parse().unwrap();
        assert_eq!(spec.family, "sdr-agreement");
        assert_eq!(spec.params, Params::Paren("8".into()));
        let spec: AlgorithmSpec = "fga-sdr:domination(1,0)".parse().unwrap();
        assert_eq!(spec.family, "fga-sdr");
        assert_eq!(spec.params_str(), Some("domination(1,0)"));
        let spec: AlgorithmSpec = "unison-sdr".parse().unwrap();
        assert_eq!(spec.params, Params::None);
        assert_eq!(spec.params_str(), None);
    }

    /// A minimal test family: flood over `bool` states.
    struct FloodFamily;

    impl Family for FloodFamily {
        fn id(&self) -> &str {
            "flood"
        }

        fn run(
            &self,
            graph: &Graph,
            _init: &InitPlan,
            daemon: &Daemon,
            seeds: RunSeeds,
            budget: ExecBudget,
            probe: Option<&mut dyn FamilyProbe>,
        ) -> FamilyRunOutcome {
            let mut init = vec![false; graph.node_count()];
            init[0] = true;
            let mut bridge = ProbeBridge::new(probe);
            let report = Execution::of(graph, crate::exhaustive::testutil::Flood)
                .init(init)
                .daemon(daemon.clone())
                .seed(seeds.sim)
                .cap(budget.cap)
                .intra_threads(budget.intra_threads)
                .observe(&mut bridge)
                .run_report();
            let mut out = FamilyRunOutcome::from_run(&report.outcome, report.sim.stats().steps);
            out.max_moves_per_process = report.sim.stats().max_moves_per_process();
            out
        }
    }

    #[test]
    fn registry_resolves_instances_and_parametrics() {
        let mut reg = FamilyRegistry::new();
        reg.register(Arc::new(FloodFamily));
        reg.register_parametric(
            "flood-k",
            vec!["flood-k(2)".into()],
            Box::new(|params| {
                params.and_then(|p| p.parse::<u32>().ok())?;
                Some(Arc::new(FloodFamily) as Arc<dyn Family>)
            }),
        );
        assert!(reg.resolve_label("flood").is_some());
        assert!(reg.resolve_label("flood-k(2)").is_some());
        assert!(reg.resolve_label("flood-k(x)").is_none(), "bad params");
        assert!(reg.resolve_label("flood(3)").is_none(), "instance + params");
        assert!(reg.resolve_label("unknown").is_none());
        assert_eq!(reg.keys().collect::<Vec<_>>(), vec!["flood", "flood-k"]);
        assert_eq!(reg.labels(), vec!["flood", "flood-k(2)"]);
        assert!(reg.contains("flood") && !reg.contains("nope"));
    }

    #[test]
    fn registry_resolves_full_label_instances() {
        // An instance whose id itself contains parens still resolves.
        struct Weird;
        impl Family for Weird {
            fn id(&self) -> &str {
                "weird(7)"
            }
            fn run(
                &self,
                _: &Graph,
                _: &InitPlan,
                _: &Daemon,
                _: RunSeeds,
                _: ExecBudget,
                _: Option<&mut dyn FamilyProbe>,
            ) -> FamilyRunOutcome {
                unimplemented!("never run in this test")
            }
        }
        let mut reg = FamilyRegistry::new();
        reg.register(Arc::new(Weird));
        assert!(reg.resolve_label("weird(7)").is_some());
    }

    #[test]
    fn re_registration_replaces_in_place() {
        let mut reg = FamilyRegistry::new();
        reg.register(Arc::new(FloodFamily));
        reg.register(Arc::new(FloodFamily));
        assert_eq!(reg.keys().count(), 1);
    }

    #[test]
    fn family_run_reports_and_probes() {
        struct Count(u64, bool);
        impl FamilyProbe for Count {
            fn on_step(&mut self, steps: u64, _activated: usize) {
                self.0 = steps;
            }
            fn on_run_end(&mut self, outcome: &RunOutcome) {
                self.1 = outcome.terminal;
            }
        }
        let g = generators::path(4);
        let mut probe = Count(0, false);
        let out = FloodFamily.run(
            &g,
            &InitPlan::Normal,
            &Daemon::Synchronous,
            RunSeeds {
                init: 0,
                sim: 0,
                fault: 0,
            },
            ExecBudget::steps(1_000).with_intra_threads(2),
            Some(&mut probe),
        );
        assert!(out.terminal && out.reached);
        assert_eq!(out.moves, 3);
        assert_eq!(probe.0, 3, "probe saw every step");
        assert!(probe.1, "probe saw the run end");
    }

    #[test]
    fn sample_seeds_are_stable_and_distinct() {
        let a = explore_sample_seeds(42, 4);
        let b = explore_sample_seeds(42, 4);
        assert_eq!(a, b);
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 4);
    }
}
