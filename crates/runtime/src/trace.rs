//! The structured-trace seam of the step pipeline: typed events, the
//! [`TraceSink`] consumer trait, and the zero-cost disabled default.
//!
//! The pipeline emits a [`TraceEvent`] stream describing each step's
//! life cycle — selection size, per-phase wall time, applied moves,
//! enabled-set evolution, round completion, and run termination. A
//! [`TraceSink`] consumes the stream; rich sinks (ring buffer, JSONL
//! writer, metrics folding) live in the `ssr-obs` crate so this crate
//! stays dependency-free.
//!
//! # Zero cost when disabled
//!
//! A [`Simulator`](crate::Simulator) has **no sink by default**. The
//! disabled path costs one `Option` discriminant move per step plus a
//! handful of predictable branches — no event is constructed, no clock
//! is read, no allocation happens. The `obs_overhead` bench in
//! `ssr-bench` pins this with the same ratio tripwire as
//! `exec_overhead`.
//!
//! Per-phase wall-clock timing is doubly gated: even with a sink
//! installed, `Instant::now` is only called when the sink opts in via
//! [`TraceSink::wants_phase_timing`] — so deterministic sinks (JSONL
//! traces compared byte-for-byte across runs) never observe
//! nondeterministic values.
//!
//! # Event order
//!
//! Within one step the pipeline emits, in order: `StepStarted`,
//! `PhaseTimed(Select)`*, `PhaseTimed(Apply)`*, `MovesApplied`,
//! `PhaseTimed(Guards)`*, `EnabledSetSize`, `RoundCompleted`
//! (timing events only for opted-in sinks; `RoundCompleted` only when
//! the step completed a §2.4 round). `RunEnded` fires once per driven
//! run, after the last step — a resumed simulator emits one per
//! [`Execution`](crate::Execution) that drives it.

use std::any::Any;
use std::fmt;

use crate::simulator::TerminationReason;

/// The three stages of the staged step pipeline (see `crate::step`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TracePhase {
    /// Daemon choice and rule resolution (sequential, owns all RNG).
    Select,
    /// Next-state computation against the frozen pre-step configuration.
    Apply,
    /// Incremental guard re-evaluation over the movers' neighborhoods.
    Guards,
}

impl TracePhase {
    /// Stable lowercase name used in serialized traces and metric keys.
    pub fn as_str(&self) -> &'static str {
        match self {
            TracePhase::Select => "select",
            TracePhase::Apply => "apply",
            TracePhase::Guards => "guards",
        }
    }

    /// All phases, in pipeline order.
    pub const ALL: [TracePhase; 3] = [TracePhase::Select, TracePhase::Apply, TracePhase::Guards];
}

impl fmt::Display for TracePhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One structured event from the step pipeline.
///
/// `step` is the 0-based index of the step being executed (equal to the
/// simulator's cumulative step counter *before* the step commits), so
/// events of one step share the same index across a resumed run too.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A step began: the daemon is about to select among `enabled`
    /// enabled processes.
    StepStarted {
        /// 0-based step index.
        step: u64,
        /// Enabled-set size before the step.
        enabled: u32,
    },
    /// One pipeline phase of the step finished, taking `nanos` wall
    /// time. Only emitted to sinks opting in via
    /// [`TraceSink::wants_phase_timing`].
    PhaseTimed {
        /// 0-based step index.
        step: u64,
        /// Which phase.
        phase: TracePhase,
        /// Wall time in nanoseconds.
        nanos: u64,
        /// Whether the installed parallel kernels ran this phase
        /// (always `false` for `Select`, which is sequential by
        /// design).
        par: bool,
    },
    /// The step's moves were committed.
    MovesApplied {
        /// 0-based step index.
        step: u64,
        /// Number of `(process, rule)` moves in the step.
        moves: u32,
        /// Greedy conflict-partition class count of the selection,
        /// when diagnostics are on
        /// ([`Simulator::set_conflict_stats`](crate::Simulator::set_conflict_stats)).
        conflict_classes: Option<u32>,
    },
    /// Enabled-set size after the step's guard refresh.
    EnabledSetSize {
        /// 0-based step index.
        step: u64,
        /// Enabled-set size after the step.
        enabled: u32,
    },
    /// The step completed a round (§2.4 neutralization semantics).
    RoundCompleted {
        /// 0-based step index.
        step: u64,
        /// Completed rounds so far (cumulative, including this one).
        rounds: u64,
    },
    /// A driven run ended (fires once per [`crate::Execution`] run).
    RunEnded {
        /// Cumulative steps over the simulator's lifetime.
        steps: u64,
        /// Cumulative moves.
        moves: u64,
        /// Cumulative completed rounds.
        rounds: u64,
        /// Why the run stopped.
        reason: TerminationReason,
    },
}

impl TraceEvent {
    /// Stable kebab-case event name (the `"event"` field of the JSONL
    /// serialization in `ssr-obs`).
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::StepStarted { .. } => "step-started",
            TraceEvent::PhaseTimed { .. } => "phase-timed",
            TraceEvent::MovesApplied { .. } => "moves-applied",
            TraceEvent::EnabledSetSize { .. } => "enabled-set-size",
            TraceEvent::RoundCompleted { .. } => "round-completed",
            TraceEvent::RunEnded { .. } => "run-ended",
        }
    }
}

/// A consumer of the step pipeline's [`TraceEvent`] stream.
///
/// Sinks are installed per simulator
/// ([`Simulator::set_trace_sink`](crate::Simulator::set_trace_sink),
/// [`Execution::trace`](crate::Execution::trace)) and owned by it for
/// the duration of the run; take them back with
/// [`Simulator::take_trace_sink`](crate::Simulator::take_trace_sink)
/// to read what they collected. `Send` keeps the simulator's threading
/// contract intact (one simulator per campaign worker).
pub trait TraceSink: Send {
    /// Consumes one event. Called synchronously from the step
    /// pipeline — keep it cheap; buffer, don't block.
    fn record(&mut self, event: &TraceEvent);

    /// Whether the pipeline should measure per-phase wall times for
    /// this sink ([`TraceEvent::PhaseTimed`]). Defaults to `false`:
    /// timing values are nondeterministic, so sinks whose output is
    /// compared byte-for-byte must not see them.
    fn wants_phase_timing(&self) -> bool {
        false
    }

    /// Flushes buffered output (writer-backed sinks). Called once at
    /// run end, after `RunEnded`.
    fn flush(&mut self) {}

    /// Downcast support for taking a concrete sink back out of the
    /// simulator (`None` opts out; concrete sinks in `ssr-obs` return
    /// `Some(self)`).
    fn as_any_mut(&mut self) -> Option<&mut dyn Any> {
        None
    }
}

/// The no-op sink: every event is dropped.
///
/// Installing `NoTrace` is equivalent to installing no sink at all,
/// except that the pipeline still pays the (virtual, empty) `record`
/// calls — which is exactly what the `obs_overhead` bench measures.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoTrace;

impl TraceSink for NoTrace {
    fn record(&mut self, _event: &TraceEvent) {}
}

/// A sink forwarding to two sinks in order (left first). Phase timing
/// is measured if either side wants it; sides that did not opt in
/// still receive the events (a fanout cannot filter per side without
/// double-buffering).
pub struct FanoutSink<A, B>(pub A, pub B);

impl<A: TraceSink, B: TraceSink> TraceSink for FanoutSink<A, B> {
    fn record(&mut self, event: &TraceEvent) {
        self.0.record(event);
        self.1.record(event);
    }

    fn wants_phase_timing(&self) -> bool {
        self.0.wants_phase_timing() || self.1.wants_phase_timing()
    }

    fn flush(&mut self) {
        self.0.flush();
        self.1.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_names_are_stable() {
        assert_eq!(TracePhase::Select.as_str(), "select");
        assert_eq!(TracePhase::Apply.to_string(), "apply");
        assert_eq!(TracePhase::ALL.len(), 3);
    }

    #[test]
    fn event_names_are_stable() {
        let e = TraceEvent::StepStarted {
            step: 0,
            enabled: 1,
        };
        assert_eq!(e.name(), "step-started");
        let e = TraceEvent::RunEnded {
            steps: 1,
            moves: 1,
            rounds: 1,
            reason: TerminationReason::Terminal,
        };
        assert_eq!(e.name(), "run-ended");
    }

    #[test]
    fn no_trace_is_send_and_silent() {
        fn assert_send<T: Send>() {}
        assert_send::<NoTrace>();
        let mut s = NoTrace;
        s.record(&TraceEvent::StepStarted {
            step: 0,
            enabled: 0,
        });
        assert!(!s.wants_phase_timing());
        assert!(s.as_any_mut().is_none());
    }

    #[test]
    fn fanout_forwards_and_merges_timing_wish() {
        struct Count(u64, bool);
        impl TraceSink for Count {
            fn record(&mut self, _: &TraceEvent) {
                self.0 += 1;
            }
            fn wants_phase_timing(&self) -> bool {
                self.1
            }
        }
        let mut f = FanoutSink(Count(0, false), Count(0, true));
        assert!(f.wants_phase_timing());
        f.record(&TraceEvent::StepStarted {
            step: 0,
            enabled: 2,
        });
        assert_eq!((f.0 .0, f.1 .0), (1, 1));
    }
}
