//! Struct-of-arrays state columns.
//!
//! The simulator's canonical configuration is `Vec<A::State>` (array of
//! structs); at millions of nodes, analysis passes that touch a single
//! field per node (distance histograms, status counts, memory
//! accounting) want the transposed layout — one flat array per field.
//! [`StateColumns`] is that contract: algorithm crates implement it for
//! their state type (`SdrColumns`, `FgaColumns`, …) and any simulator
//! can transpose its configuration into the columns via
//! [`crate::Simulator::snapshot_columns`].
//!
//! Two blanket building blocks come with the trait:
//!
//! * [`AosColumns`] — the default-implemented, backwards-compatible
//!   "column" that simply stores the states contiguously. Every
//!   algorithm state gets a columnar representation for free; crates
//!   opt into genuinely flat layouts by writing their own impl.
//! * [`ScalarColumns`] — the flat array for plain-scalar states
//!   (`Unison`'s clock is `ScalarColumns<u64>`).
//!
//! # Examples
//!
//! ```
//! use ssr_runtime::{ScalarColumns, StateColumns};
//!
//! let cols = ScalarColumns::<u64>::from_states(&[3, 1, 4]);
//! assert_eq!(cols.len(), 3);
//! assert_eq!(cols.get(1), 1);
//! assert_eq!(cols.to_states(), vec![3, 1, 4]);
//! ```

use std::fmt;

/// A columnar (struct-of-arrays) representation of per-node states.
///
/// `push`/`get` round-trip exactly: `get(i)` reconstructs the `i`-th
/// pushed state. Implementations are plain growable buffers — no graph
/// or simulator coupling — so they double as snapshot containers.
pub trait StateColumns {
    /// The algorithm state this column set represents.
    type State;

    /// Drops all rows (capacity retained).
    fn clear(&mut self);

    /// Appends one state, decomposed into the columns.
    fn push(&mut self, state: &Self::State);

    /// Number of rows.
    fn len(&self) -> usize;

    /// Whether there are no rows.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reconstructs the `i`-th state from the columns.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    fn get(&self, i: usize) -> Self::State;

    /// Heap bytes held by the column storage (for memory accounting at
    /// scale).
    fn heap_bytes(&self) -> usize;

    /// Transposes a configuration slice into fresh columns.
    fn from_states(states: &[Self::State]) -> Self
    where
        Self: Default + Sized,
    {
        let mut cols = Self::default();
        for s in states {
            cols.push(s);
        }
        cols
    }

    /// Reconstructs the full configuration (row order preserved).
    fn to_states(&self) -> Vec<Self::State> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }
}

/// The backwards-compatible passthrough column: states stored as-is.
///
/// This is the default-implemented columnar representation — it gives
/// every algorithm a working [`StateColumns`] without writing one,
/// while keeping the array-of-structs layout.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AosColumns<S> {
    rows: Vec<S>,
}

impl<S> AosColumns<S> {
    /// The backing rows.
    pub fn rows(&self) -> &[S] {
        &self.rows
    }
}

impl<S: Clone + fmt::Debug> StateColumns for AosColumns<S> {
    type State = S;

    fn clear(&mut self) {
        self.rows.clear();
    }

    fn push(&mut self, state: &S) {
        self.rows.push(state.clone());
    }

    fn len(&self) -> usize {
        self.rows.len()
    }

    fn get(&self, i: usize) -> S {
        self.rows[i].clone()
    }

    fn heap_bytes(&self) -> usize {
        self.rows.capacity() * std::mem::size_of::<S>()
    }
}

/// The flat column for plain-scalar states (`u64` clocks, `u32`
/// values, …).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ScalarColumns<T> {
    values: Vec<T>,
}

impl<T> ScalarColumns<T> {
    /// The backing values.
    pub fn values(&self) -> &[T] {
        &self.values
    }
}

impl<T: Copy + fmt::Debug> StateColumns for ScalarColumns<T> {
    type State = T;

    fn clear(&mut self) {
        self.values.clear();
    }

    fn push(&mut self, state: &T) {
        self.values.push(*state);
    }

    fn len(&self) -> usize {
        self.values.len()
    }

    fn get(&self, i: usize) -> T {
        self.values[i]
    }

    fn heap_bytes(&self) -> usize {
        self.values.capacity() * std::mem::size_of::<T>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aos_columns_round_trip() {
        let states = vec![(1u8, 'a'), (2, 'b'), (3, 'c')];
        let cols = AosColumns::from_states(&states);
        assert_eq!(cols.len(), 3);
        assert!(!cols.is_empty());
        assert_eq!(cols.get(2), (3, 'c'));
        assert_eq!(cols.to_states(), states);
        assert_eq!(cols.rows(), &states[..]);
        assert!(cols.heap_bytes() >= 3 * std::mem::size_of::<(u8, char)>());
    }

    #[test]
    fn scalar_columns_round_trip_and_clear() {
        let mut cols = ScalarColumns::<u64>::from_states(&[9, 8, 7]);
        assert_eq!(cols.values(), &[9, 8, 7]);
        cols.clear();
        assert!(cols.is_empty());
        cols.push(&42);
        assert_eq!(cols.to_states(), vec![42]);
    }
}
