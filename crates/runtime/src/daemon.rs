//! Daemon strategies (schedulers).
//!
//! In the model, a daemon is a predicate over executions (§2.2); the
//! *distributed unfair* daemon is the predicate `true`, i.e. any
//! non-empty subset of enabled processes may be activated at each step.
//! Each variant below is one concrete strategy for picking that subset —
//! every one of them generates a legal unfair-daemon execution, and the
//! fair ones ([`Daemon::Synchronous`], [`Daemon::RoundRobin`],
//! [`Daemon::Aging`]) additionally satisfy the stronger weakly-fair /
//! synchronous daemon predicates.

use ssr_graph::NodeId;

use crate::algorithm::RuleMask;
use crate::rng::Xoshiro256StarStar;

/// Scheduler choosing, at every step, which enabled processes move.
///
/// # Examples
///
/// ```
/// use ssr_runtime::Daemon;
/// let adversarial = Daemon::RandomSubset { p: 0.3 };
/// let fair = Daemon::Synchronous;
/// assert!(format!("{adversarial:?}").contains("RandomSubset"));
/// assert_ne!(format!("{fair:?}"), String::new());
/// ```
#[derive(Clone, Debug, PartialEq)]
pub enum Daemon {
    /// Activates **all** enabled processes (the synchronous daemon).
    Synchronous,
    /// Activates exactly one uniformly random enabled process (a central
    /// unfair daemon).
    Central,
    /// Central daemon cycling through node indices (weakly fair).
    RoundRobin,
    /// Each enabled process is activated independently with probability
    /// `p`; if the coin flips select nobody, one random enabled process
    /// is activated (steps must be non-empty).
    RandomSubset {
        /// Per-process activation probability.
        p: f64,
    },
    /// Activates every process that has been continuously enabled for at
    /// least `patience` steps, plus one random enabled process. Weakly
    /// fair: nobody starves longer than `patience` steps.
    Aging {
        /// Steps a process may wait before it is forcibly activated.
        patience: u32,
    },
    /// Adversarial central daemon: always activates an enabled process
    /// whose **highest** enabled rule index is maximal (ties broken
    /// randomly). In compositions where input-algorithm rules have
    /// higher indices than reset rules, this delays resets as long as
    /// the model permits.
    PreferHighRules,
    /// Adversarial central daemon preferring the **lowest** enabled rule
    /// index (mirror image of [`Daemon::PreferHighRules`]).
    PreferLowRules,
    /// Unfair central daemon that always activates the enabled process
    /// with the smallest node index — starves high-index processes
    /// whenever the low-index region stays enabled.
    LexMin,
    /// Replays a fixed schedule: step `i` activates exactly `steps[i]`.
    ///
    /// This is how counterexample / witness schedules (e.g. the
    /// worst-case traces extracted by `ssr-explore`) are driven back
    /// through the ordinary execution engine step-for-step. Every
    /// entry must be a non-empty subset of the processes enabled at
    /// that step; cap the run to `steps.len()` — selecting past the
    /// end of the script panics.
    Script {
        /// The per-step activation sets, shared cheaply across clones.
        steps: std::sync::Arc<Vec<Vec<NodeId>>>,
    },
}

impl Daemon {
    /// Whether this strategy needs per-process waiting-time tracking.
    pub(crate) fn needs_wait_tracking(&self) -> bool {
        matches!(self, Daemon::Aging { .. })
    }

    /// Selects a non-empty subset of `enabled` into `out`.
    ///
    /// `masks` is indexed by node, `waits` (same indexing) counts steps
    /// of continuous enabledness, `cursor` is scratch state for
    /// [`Daemon::RoundRobin`].
    pub(crate) fn select(
        &self,
        enabled: &[NodeId],
        masks: &[RuleMask],
        waits: &[u32],
        cursor: &mut usize,
        rng: &mut Xoshiro256StarStar,
        out: &mut Vec<NodeId>,
    ) {
        debug_assert!(
            !enabled.is_empty(),
            "daemon invoked with no enabled process"
        );
        out.clear();
        match self {
            Daemon::Synchronous => out.extend_from_slice(enabled),
            Daemon::Central => out.push(*rng.choose(enabled)),
            Daemon::RoundRobin => {
                // Smallest enabled index at or after the cursor (wrapping).
                let n = masks.len();
                let start = *cursor % n;
                let next = (0..n)
                    .map(|k| (start + k) % n)
                    .find(|&i| !masks[i].is_empty())
                    .expect("some process is enabled");
                *cursor = next + 1;
                out.push(NodeId(next as u32));
            }
            Daemon::RandomSubset { p } => {
                for &u in enabled {
                    if rng.chance(*p) {
                        out.push(u);
                    }
                }
                if out.is_empty() {
                    out.push(*rng.choose(enabled));
                }
            }
            Daemon::Aging { patience } => {
                for &u in enabled {
                    if waits[u.index()] >= *patience {
                        out.push(u);
                    }
                }
                let extra = *rng.choose(enabled);
                if !out.contains(&extra) {
                    out.push(extra);
                }
            }
            Daemon::PreferHighRules => {
                let best = enabled
                    .iter()
                    .map(|&u| masks[u.index()].last().expect("enabled mask non-empty").0)
                    .max()
                    .expect("non-empty");
                let pick = pick_random_where(enabled, rng, |u| {
                    masks[u.index()].last().expect("non-empty").0 == best
                });
                out.push(pick);
            }
            Daemon::PreferLowRules => {
                let best = enabled
                    .iter()
                    .map(|&u| masks[u.index()].first().expect("enabled mask non-empty").0)
                    .min()
                    .expect("non-empty");
                let pick = pick_random_where(enabled, rng, |u| {
                    masks[u.index()].first().expect("non-empty").0 == best
                });
                out.push(pick);
            }
            Daemon::LexMin => {
                out.push(*enabled.iter().min().expect("non-empty"));
            }
            Daemon::Script { steps } => {
                let i = *cursor;
                let step = steps.get(i).unwrap_or_else(|| {
                    panic!(
                        "scripted schedule exhausted at step {i} (script has {} steps; \
                         cap the run to the script length)",
                        steps.len()
                    )
                });
                *cursor = i + 1;
                out.extend_from_slice(step);
            }
        }
        debug_assert!(!out.is_empty(), "daemon must activate at least one process");
    }

    /// The full set of strategies, for sweep-style experiments.
    ///
    /// [`Daemon::Script`] is deliberately absent: a script is bound to
    /// one specific run, not a reusable strategy.
    pub fn all_strategies() -> Vec<Daemon> {
        vec![
            Daemon::Synchronous,
            Daemon::Central,
            Daemon::RoundRobin,
            Daemon::RandomSubset { p: 0.5 },
            Daemon::RandomSubset { p: 0.1 },
            Daemon::Aging { patience: 8 },
            Daemon::PreferHighRules,
            Daemon::PreferLowRules,
            Daemon::LexMin,
        ]
    }

    /// Short label for reports.
    pub fn label(&self) -> String {
        match self {
            Daemon::Synchronous => "sync".into(),
            Daemon::Central => "central".into(),
            Daemon::RoundRobin => "round-robin".into(),
            Daemon::RandomSubset { p } => format!("subset(p={p})"),
            Daemon::Aging { patience } => format!("aging({patience})"),
            Daemon::PreferHighRules => "adv-high".into(),
            Daemon::PreferLowRules => "adv-low".into(),
            Daemon::LexMin => "lex-min".into(),
            Daemon::Script { steps } => format!("script({})", steps.len()),
        }
    }

    /// Parses a [`Daemon::label`] rendering back — the inverse used by
    /// campaign-spec deserialization. `script(..)` labels return `None`:
    /// a label only carries the schedule *length*, so the daemon cannot
    /// be reconstructed from it.
    pub fn parse_label(s: &str) -> Option<Daemon> {
        match s {
            "sync" => return Some(Daemon::Synchronous),
            "central" => return Some(Daemon::Central),
            "round-robin" => return Some(Daemon::RoundRobin),
            "adv-high" => return Some(Daemon::PreferHighRules),
            "adv-low" => return Some(Daemon::PreferLowRules),
            "lex-min" => return Some(Daemon::LexMin),
            _ => {}
        }
        let inner = |prefix: &str| {
            s.strip_prefix(prefix)
                .and_then(|r| r.strip_prefix('('))
                .and_then(|r| r.strip_suffix(')'))
        };
        if let Some(p) = inner("subset").and_then(|r| r.strip_prefix("p=")) {
            return p.parse::<f64>().ok().map(|p| Daemon::RandomSubset { p });
        }
        inner("aging")
            .and_then(|p| p.parse::<u32>().ok())
            .map(|patience| Daemon::Aging { patience })
    }
}

/// Uniform choice among the elements of `xs` satisfying `keep`
/// (reservoir sampling; at least one element must satisfy it).
fn pick_random_where(
    xs: &[NodeId],
    rng: &mut Xoshiro256StarStar,
    keep: impl Fn(NodeId) -> bool,
) -> NodeId {
    let mut chosen = None;
    let mut seen = 0u64;
    for &x in xs {
        if keep(x) {
            seen += 1;
            if rng.below(seen) == 0 {
                chosen = Some(x);
            }
        }
    }
    chosen.expect("pick_random_where: no element satisfied the predicate")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::RuleId;

    fn setup(masks: &[RuleMask]) -> (Vec<NodeId>, Vec<u32>) {
        let enabled: Vec<NodeId> = masks
            .iter()
            .enumerate()
            .filter(|(_, m)| !m.is_empty())
            .map(|(i, _)| NodeId(i as u32))
            .collect();
        (enabled, vec![0; masks.len()])
    }

    #[test]
    fn synchronous_takes_everyone() {
        let masks = vec![RuleMask::from_bool(true); 4];
        let (enabled, waits) = setup(&masks);
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let mut out = Vec::new();
        let mut cursor = 0;
        Daemon::Synchronous.select(&enabled, &masks, &waits, &mut cursor, &mut rng, &mut out);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn central_takes_exactly_one() {
        let masks = vec![RuleMask::from_bool(true); 5];
        let (enabled, waits) = setup(&masks);
        let mut rng = Xoshiro256StarStar::seed_from_u64(2);
        let mut out = Vec::new();
        let mut cursor = 0;
        for _ in 0..20 {
            Daemon::Central.select(&enabled, &masks, &waits, &mut cursor, &mut rng, &mut out);
            assert_eq!(out.len(), 1);
        }
    }

    #[test]
    fn round_robin_cycles() {
        let masks = vec![RuleMask::from_bool(true); 3];
        let (enabled, waits) = setup(&masks);
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        let mut out = Vec::new();
        let mut cursor = 0;
        let mut picked = Vec::new();
        for _ in 0..6 {
            Daemon::RoundRobin.select(&enabled, &masks, &waits, &mut cursor, &mut rng, &mut out);
            picked.push(out[0].index());
        }
        assert_eq!(picked, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn round_robin_skips_disabled() {
        let masks = vec![
            RuleMask::from_bool(true),
            RuleMask::NONE,
            RuleMask::from_bool(true),
        ];
        let (enabled, waits) = setup(&masks);
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        let mut out = Vec::new();
        let mut cursor = 0;
        let mut picked = Vec::new();
        for _ in 0..4 {
            Daemon::RoundRobin.select(&enabled, &masks, &waits, &mut cursor, &mut rng, &mut out);
            picked.push(out[0].index());
        }
        assert_eq!(picked, vec![0, 2, 0, 2]);
    }

    #[test]
    fn random_subset_never_empty() {
        let masks = vec![RuleMask::from_bool(true); 6];
        let (enabled, waits) = setup(&masks);
        let mut rng = Xoshiro256StarStar::seed_from_u64(4);
        let mut out = Vec::new();
        let mut cursor = 0;
        for _ in 0..50 {
            Daemon::RandomSubset { p: 0.0 }.select(
                &enabled,
                &masks,
                &waits,
                &mut cursor,
                &mut rng,
                &mut out,
            );
            assert_eq!(out.len(), 1);
        }
    }

    #[test]
    fn aging_forces_starved_processes() {
        let masks = vec![RuleMask::from_bool(true); 3];
        let (enabled, _) = setup(&masks);
        let waits = vec![10, 0, 10];
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        let mut out = Vec::new();
        let mut cursor = 0;
        Daemon::Aging { patience: 8 }.select(
            &enabled,
            &masks,
            &waits,
            &mut cursor,
            &mut rng,
            &mut out,
        );
        assert!(out.contains(&NodeId(0)));
        assert!(out.contains(&NodeId(2)));
    }

    #[test]
    fn prefer_high_rules_picks_highest() {
        let masks = vec![
            RuleMask::just(RuleId(0)),
            RuleMask::just(RuleId(3)),
            RuleMask::just(RuleId(1)),
        ];
        let (enabled, waits) = setup(&masks);
        let mut rng = Xoshiro256StarStar::seed_from_u64(6);
        let mut out = Vec::new();
        let mut cursor = 0;
        Daemon::PreferHighRules.select(&enabled, &masks, &waits, &mut cursor, &mut rng, &mut out);
        assert_eq!(out, vec![NodeId(1)]);
    }

    #[test]
    fn prefer_low_rules_picks_lowest() {
        let masks = vec![
            RuleMask::just(RuleId(2)),
            RuleMask::just(RuleId(3)),
            RuleMask::just(RuleId(1)),
        ];
        let (enabled, waits) = setup(&masks);
        let mut rng = Xoshiro256StarStar::seed_from_u64(7);
        let mut out = Vec::new();
        let mut cursor = 0;
        Daemon::PreferLowRules.select(&enabled, &masks, &waits, &mut cursor, &mut rng, &mut out);
        assert_eq!(out, vec![NodeId(2)]);
    }

    #[test]
    fn lex_min_is_deterministic() {
        let masks = vec![
            RuleMask::NONE,
            RuleMask::from_bool(true),
            RuleMask::from_bool(true),
        ];
        let (enabled, waits) = setup(&masks);
        let mut rng = Xoshiro256StarStar::seed_from_u64(8);
        let mut out = Vec::new();
        let mut cursor = 0;
        Daemon::LexMin.select(&enabled, &masks, &waits, &mut cursor, &mut rng, &mut out);
        assert_eq!(out, vec![NodeId(1)]);
    }

    #[test]
    fn script_replays_exactly() {
        let masks = vec![RuleMask::from_bool(true); 3];
        let (enabled, waits) = setup(&masks);
        let schedule = vec![vec![NodeId(2)], vec![NodeId(0), NodeId(1)]];
        let daemon = Daemon::Script {
            steps: std::sync::Arc::new(schedule.clone()),
        };
        let mut rng = Xoshiro256StarStar::seed_from_u64(9);
        let mut out = Vec::new();
        let mut cursor = 0;
        for step in &schedule {
            daemon.select(&enabled, &masks, &waits, &mut cursor, &mut rng, &mut out);
            assert_eq!(&out, step);
        }
        assert_eq!(cursor, 2);
    }

    #[test]
    #[should_panic(expected = "scripted schedule exhausted")]
    fn script_panics_past_the_end() {
        let masks = vec![RuleMask::from_bool(true); 2];
        let (enabled, waits) = setup(&masks);
        let daemon = Daemon::Script {
            steps: std::sync::Arc::new(vec![vec![NodeId(0)]]),
        };
        let mut rng = Xoshiro256StarStar::seed_from_u64(9);
        let mut out = Vec::new();
        let mut cursor = 1;
        daemon.select(&enabled, &masks, &waits, &mut cursor, &mut rng, &mut out);
    }

    #[test]
    fn labels_round_trip_through_parse_label() {
        for d in Daemon::all_strategies() {
            assert_eq!(Daemon::parse_label(&d.label()), Some(d.clone()), "{d:?}");
        }
        // Script labels only carry the length: unreconstructable.
        let script = Daemon::Script {
            steps: std::sync::Arc::new(vec![vec![NodeId(0)]]),
        };
        assert_eq!(Daemon::parse_label(&script.label()), None);
        assert_eq!(Daemon::parse_label("nonsense"), None);
        assert_eq!(Daemon::parse_label("subset(p=oops)"), None);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::BTreeSet<String> =
            Daemon::all_strategies().iter().map(|d| d.label()).collect();
        assert_eq!(labels.len(), Daemon::all_strategies().len());
    }
}
