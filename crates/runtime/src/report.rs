//! Minimal text-table rendering for the experiment harness.
//!
//! The `experiments` binary prints EXPERIMENTS.md-style markdown tables;
//! this module keeps the formatting in one place.

use std::fmt;

/// A markdown table under construction.
///
/// # Examples
///
/// ```
/// use ssr_runtime::report::Table;
///
/// let mut t = Table::new(["topology", "n", "rounds"]);
/// t.row(["ring", "16", "11"]);
/// t.row(["star", "16", "4"]);
/// let text = t.to_string();
/// assert!(text.contains("| topology | n  | rounds |"));
/// assert!(text.lines().count() == 4);
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new<const N: usize>(header: [&str; N]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must have as many cells as the header.
    ///
    /// # Panics
    ///
    /// Panics if the arity differs from the header.
    pub fn row<const N: usize>(&mut self, cells: [&str; N]) -> &mut Self {
        assert_eq!(N, self.header.len(), "row arity must match header");
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Appends a row of already-owned cells.
    ///
    /// # Panics
    ///
    /// Panics if the arity differs from the header.
    pub fn row_vec(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row arity must match header"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for i in 0..cols {
                let pad = widths[i] - cells[i].chars().count();
                write!(f, " {}{} |", cells[i], " ".repeat(pad))?;
            }
            writeln!(f)
        };
        write_row(f, &self.header)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{}|", "-".repeat(w + 2))?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a ratio as a fixed-point string (e.g. `0.43`).
pub fn ratio(numerator: f64, denominator: f64) -> String {
    if denominator == 0.0 {
        "—".to_string()
    } else {
        format!("{:.3}", numerator / denominator)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new(["a", "bbbb"]);
        t.row(["xx", "1"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "| a  | bbbb |");
        assert_eq!(lines[1], "|----|------|");
        assert_eq!(lines[2], "| xx | 1    |");
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row_vec(vec!["only-one".into()]);
    }

    #[test]
    fn len_and_is_empty() {
        let mut t = Table::new(["a"]);
        assert!(t.is_empty());
        t.row(["1"]).row(["2"]);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn ratio_formats() {
        assert_eq!(ratio(1.0, 2.0), "0.500");
        assert_eq!(ratio(1.0, 0.0), "—");
    }
}
