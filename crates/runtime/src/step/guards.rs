//! Phase 3: guard re-evaluation over the refresh set.
//!
//! Guards read the closed neighborhood only (§2.2), so after a step
//! exactly the movers and their neighbors can change enabledness. The
//! refresh set is collected in the canonical order (each mover, then
//! its neighbors in adjacency order, first touch wins) and the masks
//! are evaluated as a kernel over that list — masks depend only on the
//! already-committed states, never on other masks, so the evaluation
//! is order-free and parallelizes; the simulator then applies the
//! resulting transitions sequentially in list order, which keeps the
//! enabled-set index byte-identical to the pre-pipeline engine.

use ssr_graph::{Graph, NodeId};

use crate::algorithm::{Algorithm, ConfigView, RuleId, RuleMask};
use crate::step::par::ParHooks;

/// Collects the deduplicated refresh set of a step into `out`
/// (cleared first): each mover, then its neighbors in adjacency
/// order; `touched_stamp` entries are set to `stamp` as nodes are
/// first seen.
pub(crate) fn collect_refresh_targets(
    graph: &Graph,
    moves: &[(NodeId, RuleId)],
    touched_stamp: &mut [u64],
    stamp: u64,
    out: &mut Vec<NodeId>,
) {
    out.clear();
    let mut touch = |u: NodeId, out: &mut Vec<NodeId>| {
        if touched_stamp[u.index()] != stamp {
            touched_stamp[u.index()] = stamp;
            out.push(u);
        }
    };
    for &(u, _) in moves {
        touch(u, out);
        let deg = graph.degree(u);
        for k in 0..deg {
            touch(graph.neighbor_at(u, k), out);
        }
    }
}

/// Evaluates the enabled mask of every node of `nodes` into `out`
/// (cleared first; `out[i]` is the mask of `nodes[i]`). Runs on the
/// installed kernel when `par` is set, else sequentially.
pub(crate) fn compute_masks<A: Algorithm>(
    graph: &Graph,
    algo: &A,
    states: &[A::State],
    nodes: &[NodeId],
    out: &mut Vec<RuleMask>,
    par: Option<ParHooks<A>>,
) {
    if let Some(hooks) = par {
        (hooks.masks)(hooks.threads, graph, algo, states, nodes, out);
        return;
    }
    out.clear();
    let view = ConfigView::new(graph, states);
    for &u in nodes {
        out.push(algo.enabled_mask(u, &view));
    }
}
