//! Phase 1: rule resolution for the daemon's selected set.
//!
//! Daemon selection itself lives in [`crate::daemon`]; this module
//! resolves which enabled rule each selected process fires. Both are
//! the sequential head of the pipeline: they own every RNG draw of the
//! step, so the random stream is identical no matter how the later
//! phases are parallelized.

use ssr_graph::NodeId;

use crate::algorithm::{RuleId, RuleMask};
use crate::rng::Xoshiro256StarStar;

/// Resolves the fired rule of every selected process, in selection
/// order, into `out` (cleared first).
///
/// With `random_rule_choice`, a process whose mask holds several rules
/// draws one uniformly (one RNG draw per such process, in selection
/// order — part of the determinism contract); otherwise the
/// lowest-index enabled rule fires.
pub(crate) fn resolve_rules(
    masks: &[RuleMask],
    random_rule_choice: bool,
    rng: &mut Xoshiro256StarStar,
    selected: &[NodeId],
    out: &mut Vec<(NodeId, RuleId)>,
) {
    out.clear();
    for &u in selected {
        let mask = masks[u.index()];
        debug_assert!(!mask.is_empty(), "daemon selected a disabled process");
        let rule = if random_rule_choice && mask.count() > 1 {
            let k = rng.below(mask.count() as u64) as u32;
            mask.iter().nth(k as usize).expect("mask has k-th rule")
        } else {
            mask.first().expect("mask non-empty")
        };
        out.push((u, rule));
    }
}
