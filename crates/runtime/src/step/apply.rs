//! Phase 2: next-state computation against the frozen configuration.
//!
//! Composite atomicity means every move of a step reads the pre-step
//! configuration; writes land only at the mover itself. The phase is
//! therefore a pure map over the move list — the sequential loop and
//! the chunked scoped-thread kernel produce the same vector, and the
//! commit (done by the simulator, in selection order) is identical
//! either way.

use ssr_graph::{Graph, NodeId};

use crate::algorithm::{Algorithm, ConfigView, RuleId};
use crate::step::par::ParHooks;

/// Computes the next state of each `(process, rule)` move into `out`
/// (cleared first; `out[i]` pairs with `moves[i]`). Runs on the
/// installed kernel when `par` is set, else sequentially.
pub(crate) fn compute_next_states<A: Algorithm>(
    graph: &Graph,
    algo: &A,
    states: &[A::State],
    moves: &[(NodeId, RuleId)],
    out: &mut Vec<A::State>,
    par: Option<ParHooks<A>>,
) {
    if let Some(hooks) = par {
        (hooks.next)(hooks.threads, graph, algo, states, moves, out);
        return;
    }
    out.clear();
    let view = ConfigView::new(graph, states);
    for &(u, rule) in moves {
        out.push(algo.apply(u, &view, rule));
    }
}
