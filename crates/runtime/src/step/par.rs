//! Scoped-thread kernels for the apply and guard phases.
//!
//! [`ParHooks`] carries plain `fn` pointers so that installing
//! parallelism is the only place that needs `A: Sync` bounds
//! ([`hooks`]); [`crate::Simulator::step`] calls through the pointers
//! without any extra bounds on its own signature. The pointers are
//! instantiations of [`par_masks`] and [`par_next_states`], which
//! split their input into `threads` contiguous chunks, evaluate each
//! chunk on a scoped thread against the shared read-only
//! configuration, and write results back **in chunk order** — so the
//! output vector is byte-identical to the sequential loop for any
//! thread count.

use ssr_graph::{Graph, NodeId};

use crate::algorithm::{Algorithm, ConfigView, RuleId, RuleMask};

/// Guard kernel: `(threads, graph, algo, states, nodes, out)`.
type MaskKernel<A> =
    fn(usize, &Graph, &A, &[<A as Algorithm>::State], &[NodeId], &mut Vec<RuleMask>);

/// Apply kernel: `(threads, graph, algo, states, moves, out)`.
type NextKernel<A> = fn(
    usize,
    &Graph,
    &A,
    &[<A as Algorithm>::State],
    &[(NodeId, RuleId)],
    &mut Vec<<A as Algorithm>::State>,
);

/// Installed parallel kernels plus the worker count.
pub(crate) struct ParHooks<A: Algorithm> {
    pub threads: usize,
    pub masks: MaskKernel<A>,
    pub next: NextKernel<A>,
}

impl<A: Algorithm> Clone for ParHooks<A> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<A: Algorithm> Copy for ParHooks<A> {}

/// Builds the kernels for `threads` workers, or `None` when `threads
/// <= 1` (sequential execution). The `Sync`/`Send` bounds are paid
/// here, once, instead of on every `step()` call.
pub(crate) fn hooks<A>(threads: usize) -> Option<ParHooks<A>>
where
    A: Algorithm + Sync,
    A::State: Send + Sync,
{
    (threads > 1).then_some(ParHooks {
        threads,
        masks: par_masks::<A>,
        next: par_next_states::<A>,
    })
}

/// Evaluates `enabled_mask` for every node of `nodes` into `out`
/// (cleared first; `out[i]` is the mask of `nodes[i]`).
pub(crate) fn par_masks<A>(
    threads: usize,
    graph: &Graph,
    algo: &A,
    states: &[A::State],
    nodes: &[NodeId],
    out: &mut Vec<RuleMask>,
) where
    A: Algorithm + Sync,
    A::State: Sync,
{
    out.clear();
    if nodes.is_empty() {
        return;
    }
    out.resize(nodes.len(), RuleMask::NONE);
    let chunk = nodes.len().div_ceil(threads.max(1));
    std::thread::scope(|s| {
        for (node_chunk, out_chunk) in nodes.chunks(chunk).zip(out.chunks_mut(chunk)) {
            s.spawn(move || {
                let view = ConfigView::new(graph, states);
                for (&u, slot) in node_chunk.iter().zip(out_chunk.iter_mut()) {
                    *slot = algo.enabled_mask(u, &view);
                }
            });
        }
    });
}

/// Computes the next state of every move of `moves` against the frozen
/// configuration `states`, into `out` (cleared first; `out[i]` is the
/// next state of `moves[i]`). Workers return per-chunk vectors that
/// are appended in chunk order, preserving the sequential layout.
pub(crate) fn par_next_states<A>(
    threads: usize,
    graph: &Graph,
    algo: &A,
    states: &[A::State],
    moves: &[(NodeId, RuleId)],
    out: &mut Vec<A::State>,
) where
    A: Algorithm + Sync,
    A::State: Send + Sync,
{
    out.clear();
    if moves.is_empty() {
        return;
    }
    let chunk = moves.len().div_ceil(threads.max(1));
    std::thread::scope(|s| {
        let handles: Vec<_> = moves
            .chunks(chunk)
            .map(|mv| {
                s.spawn(move || {
                    let view = ConfigView::new(graph, states);
                    mv.iter()
                        .map(|&(u, rule)| algo.apply(u, &view, rule))
                        .collect::<Vec<A::State>>()
                })
            })
            .collect();
        for h in handles {
            out.append(&mut h.join().expect("apply worker panicked"));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::StateView;
    use ssr_graph::generators;

    /// Next state = sum of closed-neighborhood states (value-sensitive,
    /// so any ordering or chunking mistake changes the output).
    struct NeighborSum;

    impl Algorithm for NeighborSum {
        type State = u64;
        fn rule_count(&self) -> usize {
            1
        }
        fn rule_name(&self, _: RuleId) -> &'static str {
            "sum"
        }
        fn enabled_mask<V: StateView<u64>>(&self, u: NodeId, view: &V) -> RuleMask {
            RuleMask::from_bool(*view.state(u) % 2 == 0)
        }
        fn apply<V: StateView<u64>>(&self, u: NodeId, view: &V, _: RuleId) -> u64 {
            let mut s = *view.state(u);
            for &v in view.graph().neighbors(u) {
                s += *view.state(v);
            }
            s
        }
    }

    #[test]
    fn parallel_kernels_match_sequential_for_any_thread_count() {
        let g = generators::random_connected(37, 50, 5);
        let states: Vec<u64> = (0..37u64).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
        let nodes: Vec<NodeId> = g.nodes().collect();
        let moves: Vec<(NodeId, RuleId)> = nodes.iter().map(|&u| (u, RuleId(0))).collect();

        let view = ConfigView::new(&g, &states);
        let seq_masks: Vec<RuleMask> = nodes
            .iter()
            .map(|&u| NeighborSum.enabled_mask(u, &view))
            .collect();
        let seq_next: Vec<u64> = moves
            .iter()
            .map(|&(u, r)| NeighborSum.apply(u, &view, r))
            .collect();

        for threads in [1, 2, 3, 4, 8, 64] {
            let mut masks = Vec::new();
            par_masks(threads, &g, &NeighborSum, &states, &nodes, &mut masks);
            assert_eq!(masks, seq_masks, "masks differ at {threads} threads");
            let mut next = Vec::new();
            par_next_states(threads, &g, &NeighborSum, &states, &moves, &mut next);
            assert_eq!(next, seq_next, "next states differ at {threads} threads");
        }
    }

    #[test]
    fn empty_inputs_yield_empty_outputs() {
        let g = generators::path(3);
        let states = vec![0u64; 3];
        let mut masks = vec![RuleMask::just(RuleId(0))];
        par_masks(4, &g, &NeighborSum, &states, &[], &mut masks);
        assert!(masks.is_empty());
        let mut next = vec![7u64];
        par_next_states(4, &g, &NeighborSum, &states, &[], &mut next);
        assert!(next.is_empty());
    }

    #[test]
    fn hooks_gate_on_thread_count() {
        assert!(hooks::<NeighborSum>(0).is_none());
        assert!(hooks::<NeighborSum>(1).is_none());
        let h = hooks::<NeighborSum>(4).expect("parallel hooks");
        assert_eq!(h.threads, 4);
    }
}
