//! The staged step pipeline behind [`crate::Simulator::step`].
//!
//! A composite-atomicity step factors into three phases, each a
//! kernel over flat per-node arrays:
//!
//! 1. **select** ([`select`]) — the daemon picks a non-empty subset of
//!    the enabled set and each picked process resolves which of its
//!    enabled rules fires. This phase owns *every* RNG draw of the
//!    step, so it always runs sequentially; determinism follows.
//! 2. **apply** ([`apply`]) — every selected `(process, rule)` move
//!    computes its next state against the frozen pre-step
//!    configuration. Reads never see a write of the same step
//!    (composite atomicity), so the moves are data-parallel by
//!    construction; the merge commits them in selection order.
//! 3. **guards** ([`guards`]) — only the movers and their neighbors
//!    can change enabledness (§2.2 guard locality), so guard
//!    re-evaluation is a kernel over that refresh set on the CSR
//!    adjacency, followed by a sequential, order-preserving update of
//!    the enabled-set index.
//!
//! The parallel variants of the apply and guard kernels live in
//! [`par`]; they run on a scoped thread pool and are **byte-identical**
//! to the sequential path at any thread count: same states, same
//! counters, same RNG stream, same observer event order. The
//! commutativity argument (moves at non-adjacent processes commute;
//! our pipeline never interleaves reads and writes at all) is spelled
//! out in `DESIGN.md` §9.

pub(crate) mod apply;
pub(crate) mod guards;
pub(crate) mod par;
pub(crate) mod select;
