//! Footprint instrumentation for the `ssr-analyze` soundness audit.
//!
//! The staged step pipeline and its parallel kernels rest on three
//! obligations every registered family must meet (DESIGN.md §11):
//!
//! 1. **Locality** — guards and actions read nothing beyond the closed
//!    neighborhood of the process being evaluated (§2.2 of the paper).
//!    The incremental guard re-evaluation dirty-set is sound only
//!    under this assumption.
//! 2. **Non-adjacent commutativity** — moves at processes at distance
//!    ≥ 2 have disjoint read/write footprints, the argument behind the
//!    deterministic intra-run parallel kernels.
//! 3. **RNG discipline** — every random draw of a step happens in the
//!    sequential select phase; the apply and guard kernels are
//!    draw-free at any thread count.
//!
//! This module supplies the instrumentation seams and generic drivers:
//! [`TrackedView`] records the exact node read set of every
//! `enabled_mask`/`apply` evaluation, [`collect_footprints`] drives an
//! algorithm exhaustively over a small-model universe grown from seed
//! configurations, and [`audit_runs`] replays simulator runs checking
//! the dynamic obligations (fired-while-disabled, foreign writes,
//! out-of-phase draws via [`Simulator::last_step_phase_draws`]).
//! Families expose the drivers through the object-safe
//! [`AnalyzeFamily`] trait, reached via `Family::analysis()`; the
//! `ssr-analyze` crate aggregates the results, runs the cross-graph
//! hygiene lints, and renders `ANALYSIS.json`.

use std::cell::RefCell;
use std::collections::{HashSet, VecDeque};
use std::fmt;

use ssr_graph::{Graph, NodeId};

use crate::algorithm::{Algorithm, RuleMask, StateView};
use crate::daemon::Daemon;
use crate::simulator::{Simulator, StepOutcome};

// ---------------------------------------------------------------------
// TrackedView
// ---------------------------------------------------------------------

/// A [`StateView`] that records which nodes' states are read.
///
/// Reads are observable at node granularity — a process state is the
/// model's atomic register (§2.2), so "which register" is exactly the
/// footprint the locality and commutativity obligations speak about.
/// Topology queries through [`StateView::graph`] are not recorded:
/// the graph is static shared knowledge, not mutable state.
pub struct TrackedView<'a, S> {
    graph: &'a Graph,
    states: &'a [S],
    reads: RefCell<Vec<NodeId>>,
}

impl<'a, S> TrackedView<'a, S> {
    /// Wraps a configuration slice.
    ///
    /// # Panics
    ///
    /// Panics if `states.len() != graph.node_count()`.
    pub fn new(graph: &'a Graph, states: &'a [S]) -> Self {
        assert_eq!(
            states.len(),
            graph.node_count(),
            "configuration size must match node count"
        );
        TrackedView {
            graph,
            states,
            reads: RefCell::new(Vec::new()),
        }
    }

    /// Clears the recorded read set (call before each evaluation).
    pub fn reset(&self) {
        self.reads.borrow_mut().clear();
    }

    /// The nodes read since the last [`TrackedView::reset`], sorted
    /// and deduplicated.
    pub fn take_reads(&self) -> Vec<NodeId> {
        let mut reads = std::mem::take(&mut *self.reads.borrow_mut());
        reads.sort_unstable_by_key(|u| u.index());
        reads.dedup();
        reads
    }
}

impl<S> StateView<S> for TrackedView<'_, S> {
    fn graph(&self) -> &Graph {
        self.graph
    }

    fn state(&self, v: NodeId) -> &S {
        self.reads.borrow_mut().push(v);
        &self.states[v.index()]
    }
}

// ---------------------------------------------------------------------
// Options, findings, statistics
// ---------------------------------------------------------------------

/// Budget knobs for the footprint collection and the dynamic audit.
#[derive(Clone, Debug)]
pub struct AnalyzeOptions {
    /// Cap on distinct configurations explored per graph (the universe
    /// is the single-move closure of the seed set; `truncated` is set
    /// when the cap bites).
    pub max_configs: usize,
    /// Arbitrary seed-set samples requested from the family (on top of
    /// its structured workloads).
    pub samples: usize,
    /// Scenario seed the family derives its sampled configurations
    /// (and the audit's run seeds) from.
    pub scenario_seed: u64,
    /// Initial configurations replayed per daemon in [`audit_runs`].
    pub audit_runs: usize,
    /// Step cap per audited run.
    pub audit_steps: u64,
}

impl Default for AnalyzeOptions {
    fn default() -> Self {
        AnalyzeOptions {
            max_configs: 2000,
            samples: 6,
            scenario_seed: 0xA11A,
            audit_runs: 3,
            audit_steps: 60,
        }
    }
}

/// How bad a finding is. Errors void certification; warnings do not.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    /// A violated soundness obligation (or an unanalyzable family).
    Error,
    /// A rule-table smell worth a look, not a soundness issue.
    Warning,
}

/// The closed set of defects the analysis reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FindingKind {
    /// A guard read a node outside the closed neighborhood.
    NonLocalGuard,
    /// A rule action read a node outside the closed neighborhood.
    NonLocalAction,
    /// Co-enabled processes at distance ≥ 2 with overlapping
    /// footprints: one's evaluation read the other's register.
    NonCommutative,
    /// A rule never enabled anywhere in the explored universe.
    DeadRule,
    /// A rule enabled only ever alongside a lower-index one — it can
    /// never fire under the default lowest-index resolution.
    ShadowedRule,
    /// A rule whose action never changed the state when applied.
    NoOpRule,
    /// Two rules that are always co-enabled with identical outcomes.
    OverlappingRules,
    /// A simulator step activated a rule that was not enabled in the
    /// pre-step configuration.
    DisabledRuleFired,
    /// A step changed the state of a process that did not move.
    ForeignWrite,
    /// The apply or guards phase consumed RNG draws.
    OutOfPhaseDraw,
    /// The family offers no `analysis()` hook, so its obligations
    /// cannot be certified.
    NotAnalyzable,
}

impl FindingKind {
    /// Stable machine-readable code (the `ANALYSIS.json` vocabulary).
    pub fn code(self) -> &'static str {
        match self {
            FindingKind::NonLocalGuard => "non-local-guard",
            FindingKind::NonLocalAction => "non-local-action",
            FindingKind::NonCommutative => "non-commutative",
            FindingKind::DeadRule => "dead-rule",
            FindingKind::ShadowedRule => "shadowed-rule",
            FindingKind::NoOpRule => "no-op-rule",
            FindingKind::OverlappingRules => "overlapping-rules",
            FindingKind::DisabledRuleFired => "disabled-rule-fired",
            FindingKind::ForeignWrite => "foreign-write",
            FindingKind::OutOfPhaseDraw => "out-of-phase-draw",
            FindingKind::NotAnalyzable => "not-analyzable",
        }
    }

    /// Whether the finding voids certification.
    pub fn severity(self) -> Severity {
        match self {
            FindingKind::DeadRule | FindingKind::NoOpRule | FindingKind::OverlappingRules => {
                Severity::Warning
            }
            _ => Severity::Error,
        }
    }
}

impl fmt::Display for FindingKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One reported defect, with enough context to act on it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// What went wrong.
    pub kind: FindingKind,
    /// The rule involved, when attributable to one.
    pub rule: Option<String>,
    /// The suite graph the defect was observed on (`None` for
    /// cross-graph aggregates like dead rules).
    pub graph: Option<String>,
    /// Human-readable specifics: nodes, distances, counts.
    pub detail: String,
}

impl Finding {
    /// Shorthand constructor.
    pub fn new(
        kind: FindingKind,
        rule: Option<String>,
        graph: Option<String>,
        detail: impl Into<String>,
    ) -> Self {
        Finding {
            kind,
            rule,
            graph,
            detail: detail.into(),
        }
    }
}

/// Per-rule evaluation statistics over one graph's explored universe.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RuleStats {
    /// The rule's name (`Algorithm::rule_name`).
    pub name: String,
    /// Times the rule appeared in an enabled mask.
    pub enabled: u64,
    /// Times it was the lowest-index enabled rule — what the default
    /// resolution would fire.
    pub fired_first: u64,
    /// Times its action was applied (once per enabled observation).
    pub applies: u64,
    /// Applies that changed the process state.
    pub changed: u64,
    /// Largest read distance observed in guard evaluations that
    /// enabled this rule (≤ 1 ⟺ local).
    pub guard_read_dist_max: u32,
    /// Largest read distance observed in the rule's actions.
    pub action_read_dist_max: u32,
    /// Largest guard read-set size observed.
    pub guard_reads_max: usize,
    /// Largest action read-set size observed.
    pub action_reads_max: usize,
}

impl RuleStats {
    fn new(name: String) -> Self {
        RuleStats {
            name,
            enabled: 0,
            fired_first: 0,
            applies: 0,
            changed: 0,
            guard_read_dist_max: 0,
            action_read_dist_max: 0,
            guard_reads_max: 0,
            action_reads_max: 0,
        }
    }

    /// Folds another graph's statistics for the same rule into this
    /// one (the cross-graph aggregation hygiene lints run on).
    pub fn merge(&mut self, other: &RuleStats) {
        debug_assert_eq!(self.name, other.name);
        self.enabled += other.enabled;
        self.fired_first += other.fired_first;
        self.applies += other.applies;
        self.changed += other.changed;
        self.guard_read_dist_max = self.guard_read_dist_max.max(other.guard_read_dist_max);
        self.action_read_dist_max = self.action_read_dist_max.max(other.action_read_dist_max);
        self.guard_reads_max = self.guard_reads_max.max(other.guard_reads_max);
        self.action_reads_max = self.action_reads_max.max(other.action_reads_max);
    }
}

/// Co-enablement statistics for one rule pair on one graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OverlapStat {
    /// Lower rule index of the pair.
    pub a: usize,
    /// Higher rule index of the pair.
    pub b: usize,
    /// Masks in which both rules were enabled.
    pub together: u64,
    /// Co-enabled observations whose two actions produced identical
    /// next states.
    pub identical: u64,
}

/// The footprint analysis of one family on one graph.
#[derive(Clone, Debug)]
pub struct GraphAnalysis {
    /// Suite graph name (`path3`, `ring4`, …).
    pub graph: String,
    /// Node count of the graph.
    pub nodes: usize,
    /// Distinct configurations explored.
    pub configs: usize,
    /// Whether [`AnalyzeOptions::max_configs`] cut the closure short.
    pub truncated: bool,
    /// Per-rule statistics, indexed by rule id.
    pub rules: Vec<RuleStats>,
    /// Co-enablement statistics for every observed rule pair.
    pub overlaps: Vec<OverlapStat>,
    /// Locality/commutativity violations observed on this graph.
    pub findings: Vec<Finding>,
}

/// The dynamic (simulator-replay) audit result for one family.
#[derive(Clone, Debug, Default)]
pub struct RngAudit {
    /// Runs replayed.
    pub runs: u64,
    /// Steps stepped across all runs.
    pub steps: u64,
    /// Draws attributed to the select phase.
    pub select_draws: u64,
    /// Draws attributed to the apply phase (must be 0).
    pub apply_draws: u64,
    /// Draws attributed to the guards phase (must be 0).
    pub guards_draws: u64,
    /// Discipline violations (out-of-phase draws, disabled rules
    /// fired, foreign writes).
    pub findings: Vec<Finding>,
}

impl RngAudit {
    /// Folds another audit (e.g. a different suite graph) into this one.
    pub fn merge(&mut self, other: RngAudit) {
        self.runs += other.runs;
        self.steps += other.steps;
        self.select_draws += other.select_draws;
        self.apply_draws += other.apply_draws;
        self.guards_draws += other.guards_draws;
        self.findings.extend(other.findings);
    }
}

// ---------------------------------------------------------------------
// The erased analysis hook
// ---------------------------------------------------------------------

/// Soundness analysis surfaced through the family boundary.
///
/// Implementations build their canonical seed set of initial
/// configurations (the same γ_init + structured workloads + sampled
/// draws their explore hooks use) and delegate to the generic
/// [`collect_footprints`]/[`audit_runs`] drivers, so every family is
/// measured by identical machinery.
pub trait AnalyzeFamily: Send + Sync {
    /// The family's rule names, in rule-id order, on `graph`.
    fn rule_names(&self, graph: &Graph) -> Vec<String>;

    /// Exhaustive footprint collection over the single-move closure of
    /// the family's seed set on `graph`.
    fn footprints(&self, graph: &Graph, graph_name: &str, opts: &AnalyzeOptions) -> GraphAnalysis;

    /// Dynamic replay audit on `graph`: RNG discipline, fired-while-
    /// disabled, foreign writes.
    fn audit(&self, graph: &Graph, opts: &AnalyzeOptions) -> RngAudit;
}

// ---------------------------------------------------------------------
// Generic drivers
// ---------------------------------------------------------------------

/// The rule-name table of `algo` (helper for [`AnalyzeFamily::rule_names`]).
pub fn rule_names<A: Algorithm>(algo: &A) -> Vec<String> {
    (0..algo.rule_count())
        .map(|r| {
            algo.rule_name(crate::algorithm::RuleId(r as u8))
                .to_string()
        })
        .collect()
}

/// All-pairs BFS distances, flattened row-major (`u32::MAX` when
/// unreachable). Small-model graphs only — O(n²) memory.
pub fn all_distances(graph: &Graph) -> Vec<u32> {
    let n = graph.node_count();
    let mut dist = vec![u32::MAX; n * n];
    let mut queue = VecDeque::new();
    for s in 0..n {
        let row = &mut dist[s * n..(s + 1) * n];
        row[s] = 0;
        queue.clear();
        queue.push_back(NodeId(s as u32));
        while let Some(u) = queue.pop_front() {
            let du = row[u.index()];
            for &v in graph.neighbors(u) {
                if row[v.index()] == u32::MAX {
                    row[v.index()] = du + 1;
                    queue.push_back(v);
                }
            }
        }
    }
    dist
}

/// Exhaustively evaluates `algo` over the single-move closure of
/// `seeds` on `graph`, recording per-rule read footprints and checking
/// the locality and commutativity obligations on every configuration.
///
/// The universe is the set of configurations reachable from the seed
/// set by any sequence of single moves (the central-daemon closure),
/// capped at [`AnalyzeOptions::max_configs`]; every synchronous or
/// distributed step is a composition of such moves over the *same*
/// pre-step view, so checking each single move against each reachable
/// pre-step configuration covers them all.
pub fn collect_footprints<A: Algorithm>(
    graph: &Graph,
    graph_name: &str,
    algo: &A,
    seeds: &[Vec<A::State>],
    opts: &AnalyzeOptions,
) -> GraphAnalysis {
    let n = graph.node_count();
    let dist = all_distances(graph);
    let d = |u: NodeId, v: NodeId| dist[u.index() * n + v.index()];

    let mut stats: Vec<RuleStats> = rule_names(algo).into_iter().map(RuleStats::new).collect();
    let mut overlaps: Vec<OverlapStat> = Vec::new();
    let mut findings: Vec<Finding> = Vec::new();
    // Deduplicated findings: one exemplar per (kind, node, rule) keeps
    // the report actionable instead of repeating one defect per config.
    let mut finding_keys: HashSet<(FindingKind, u32, u32)> = HashSet::new();

    let mut seen: HashSet<String> = HashSet::new();
    let mut frontier: VecDeque<Vec<A::State>> = VecDeque::new();
    for seed in seeds {
        assert_eq!(seed.len(), n, "seed configuration size must match graph");
        if seen.insert(format!("{seed:?}")) {
            frontier.push_back(seed.clone());
        }
    }
    let mut truncated = false;
    let mut configs = 0usize;

    let mut masks = vec![RuleMask::NONE; n];
    let mut guard_reads: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    let emit = |findings: &mut Vec<Finding>,
                keys: &mut HashSet<(FindingKind, u32, u32)>,
                kind: FindingKind,
                node: NodeId,
                rule: Option<(u32, String)>,
                detail: String| {
        let rule_idx = rule.as_ref().map_or(u32::MAX, |(i, _)| *i);
        if keys.insert((kind, node.0, rule_idx)) {
            findings.push(Finding::new(
                kind,
                rule.map(|(_, name)| name),
                Some(graph_name.to_string()),
                detail,
            ));
        }
    };

    while let Some(config) = frontier.pop_front() {
        configs += 1;
        let view = TrackedView::new(graph, &config);

        // Pass A: guard evaluation + read recording for every node.
        for u in 0..n {
            let u = NodeId(u as u32);
            view.reset();
            masks[u.index()] = algo.enabled_mask(u, &view);
            guard_reads[u.index()] = view.take_reads();
        }

        // Pass B: locality + commutativity of the guard reads.
        for u in 0..n {
            let u = NodeId(u as u32);
            let reads = std::mem::take(&mut guard_reads[u.index()]);
            let mut dist_max = 0u32;
            for &v in &reads {
                let dv = d(u, v);
                dist_max = dist_max.max(dv);
                if dv > 1 {
                    emit(
                        &mut findings,
                        &mut finding_keys,
                        FindingKind::NonLocalGuard,
                        u,
                        None,
                        format!(
                            "guard of node {} reads node {} at distance {dv} \
                             (closed neighborhood only, §2.2)",
                            u.0, v.0
                        ),
                    );
                    if !masks[v.index()].is_empty() {
                        emit(
                            &mut findings,
                            &mut finding_keys,
                            FindingKind::NonCommutative,
                            u,
                            None,
                            format!(
                                "nodes {} and {} are co-enabled at distance {dv} \
                                 but {}'s guard reads {}'s register — their moves \
                                 do not commute",
                                u.0, v.0, u.0, v.0
                            ),
                        );
                    }
                }
            }
            for r in masks[u.index()] {
                let s = &mut stats[r.index()];
                s.enabled += 1;
                s.guard_read_dist_max = s.guard_read_dist_max.max(dist_max);
                s.guard_reads_max = s.guard_reads_max.max(reads.len());
            }
            guard_reads[u.index()] = reads;
        }

        // Pass C: apply every enabled rule against the frozen view;
        // action footprints, overlap outcomes, and successor configs.
        for u in 0..n {
            let u = NodeId(u as u32);
            let mask = masks[u.index()];
            if mask.is_empty() {
                continue;
            }
            let first = mask.first().expect("non-empty mask");
            let mut nexts: Vec<(u32, A::State)> = Vec::with_capacity(mask.count() as usize);
            for r in mask {
                view.reset();
                let next = algo.apply(u, &view, r);
                let reads = view.take_reads();
                let s = &mut stats[r.index()];
                s.applies += 1;
                if r == first {
                    s.fired_first += 1;
                }
                let changed = next != config[u.index()];
                if changed {
                    s.changed += 1;
                }
                s.action_reads_max = s.action_reads_max.max(reads.len());
                for &v in &reads {
                    let dv = d(u, v);
                    s.action_read_dist_max = s.action_read_dist_max.max(dv);
                    if dv > 1 {
                        emit(
                            &mut findings,
                            &mut finding_keys,
                            FindingKind::NonLocalAction,
                            u,
                            Some((r.index() as u32, s.name.clone())),
                            format!(
                                "action {} at node {} reads node {} at distance {dv}",
                                s.name, u.0, v.0
                            ),
                        );
                        if !masks[v.index()].is_empty() {
                            emit(
                                &mut findings,
                                &mut finding_keys,
                                FindingKind::NonCommutative,
                                u,
                                Some((r.index() as u32, s.name.clone())),
                                format!(
                                    "action {} at node {} reads co-enabled node {} \
                                     at distance {dv}",
                                    s.name, u.0, v.0
                                ),
                            );
                        }
                    }
                }
                if changed {
                    let mut succ = config.clone();
                    succ[u.index()] = next.clone();
                    if seen.len() < opts.max_configs {
                        if seen.insert(format!("{succ:?}")) {
                            frontier.push_back(succ);
                        }
                    } else {
                        truncated = true;
                    }
                }
                nexts.push((r.index() as u32, next));
            }
            for i in 0..nexts.len() {
                for j in i + 1..nexts.len() {
                    let (a, b) = (nexts[i].0 as usize, nexts[j].0 as usize);
                    let identical = nexts[i].1 == nexts[j].1;
                    match overlaps.iter_mut().find(|o| o.a == a && o.b == b) {
                        Some(o) => {
                            o.together += 1;
                            o.identical += u64::from(identical);
                        }
                        None => overlaps.push(OverlapStat {
                            a,
                            b,
                            together: 1,
                            identical: u64::from(identical),
                        }),
                    }
                }
            }
        }
    }

    overlaps.sort_unstable_by_key(|o| (o.a, o.b));
    GraphAnalysis {
        graph: graph_name.to_string(),
        nodes: n,
        configs,
        truncated,
        rules: stats,
        overlaps,
        findings,
    }
}

/// Replays simulator runs from `inits` under the synchronous, central,
/// and random-subset daemons (random rule choice on, so every RNG code
/// path is exercised), checking after each step that activated rules
/// were enabled before it, that only movers changed state, and that
/// the apply/guards phases drew nothing.
pub fn audit_runs<A: Algorithm + Clone>(
    graph: &Graph,
    algo: &A,
    inits: &[Vec<A::State>],
    opts: &AnalyzeOptions,
) -> RngAudit {
    let n = graph.node_count();
    let daemons = [
        Daemon::Synchronous,
        Daemon::Central,
        Daemon::RandomSubset { p: 0.5 },
    ];
    let mut audit = RngAudit::default();
    for (run_idx, init) in inits.iter().take(opts.audit_runs).enumerate() {
        for (d_idx, daemon) in daemons.iter().enumerate() {
            let seed = opts
                .scenario_seed
                .wrapping_add((run_idx * daemons.len() + d_idx) as u64);
            let mut sim = Simulator::new(graph, algo.clone(), init.clone(), daemon.clone(), seed);
            sim.set_random_rule_choice(true);
            audit.runs += 1;
            let mut pre_masks = vec![RuleMask::NONE; n];
            let mut pre_states: Vec<A::State> = Vec::with_capacity(n);
            for step in 0..opts.audit_steps {
                for (u, mask) in pre_masks.iter_mut().enumerate() {
                    *mask = sim.enabled_mask_of(NodeId(u as u32));
                }
                pre_states.clear();
                pre_states.extend_from_slice(sim.states());
                match sim.step() {
                    StepOutcome::Terminal => break,
                    StepOutcome::Progress { .. } => {}
                }
                audit.steps += 1;
                let [sel, app, grd] = sim.last_step_phase_draws();
                audit.select_draws += sel;
                audit.apply_draws += app;
                audit.guards_draws += grd;
                if app > 0 || grd > 0 {
                    audit.findings.push(Finding::new(
                        FindingKind::OutOfPhaseDraw,
                        None,
                        None,
                        format!(
                            "step {step} under {daemon:?} drew outside select \
                             (apply={app}, guards={grd})"
                        ),
                    ));
                }
                let mut movers = vec![false; n];
                for &(u, r) in sim.last_activated() {
                    movers[u.index()] = true;
                    if !pre_masks[u.index()].contains(r) {
                        audit.findings.push(Finding::new(
                            FindingKind::DisabledRuleFired,
                            Some(algo.rule_name(r).to_string()),
                            None,
                            format!(
                                "step {step} under {daemon:?} fired rule {} at node {} \
                                 which was not enabled before the step",
                                algo.rule_name(r),
                                u.0
                            ),
                        ));
                    }
                }
                for (v, moved) in movers.iter().enumerate() {
                    if !moved && sim.states()[v] != pre_states[v] {
                        audit.findings.push(Finding::new(
                            FindingKind::ForeignWrite,
                            None,
                            None,
                            format!(
                                "step {step} under {daemon:?} changed the state of \
                                 node {v}, which did not move"
                            ),
                        ));
                    }
                }
            }
        }
    }
    audit
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::RuleId;
    use ssr_graph::generators;

    /// Flood of `true` along edges — local, terminating.
    #[derive(Clone)]
    struct Flood;

    impl Algorithm for Flood {
        type State = bool;
        fn rule_count(&self) -> usize {
            2
        }
        fn rule_name(&self, r: RuleId) -> &'static str {
            ["catch", "never"][r.index()]
        }
        fn enabled_mask<V: StateView<bool>>(&self, u: NodeId, view: &V) -> RuleMask {
            let infected = view.graph().neighbors(u).iter().any(|&v| *view.state(v));
            RuleMask::from_bool(!*view.state(u) && infected)
        }
        fn apply<V: StateView<bool>>(&self, _: NodeId, _: &V, _: RuleId) -> bool {
            true
        }
    }

    /// A deliberately broken guard: reads the far end of the path.
    #[derive(Clone)]
    struct FarPeek;

    impl Algorithm for FarPeek {
        type State = bool;
        fn rule_count(&self) -> usize {
            1
        }
        fn rule_name(&self, _: RuleId) -> &'static str {
            "peek"
        }
        fn enabled_mask<V: StateView<bool>>(&self, u: NodeId, view: &V) -> RuleMask {
            let far = NodeId((view.graph().node_count() - 1) as u32);
            RuleMask::from_bool(u.0 == 0 && !*view.state(u) && *view.state(far))
        }
        fn apply<V: StateView<bool>>(&self, _: NodeId, _: &V, _: RuleId) -> bool {
            true
        }
    }

    #[test]
    fn tracked_view_records_sorted_dedup_reads() {
        let g = generators::path(4);
        let states = vec![0u8, 1, 2, 3];
        let view = TrackedView::new(&g, &states);
        let _ = view.state(NodeId(2));
        let _ = view.state(NodeId(0));
        let _ = view.state(NodeId(2));
        assert_eq!(view.take_reads(), vec![NodeId(0), NodeId(2)]);
        assert!(view.take_reads().is_empty(), "take drains the buffer");
    }

    #[test]
    fn all_distances_on_path() {
        let g = generators::path(4);
        let d = all_distances(&g);
        assert_eq!(d[3], 3, "path ends are n-1 apart");
        assert_eq!(d[4 + 2], 1);
        assert_eq!(d[2 * 4 + 2], 0);
    }

    #[test]
    fn local_flood_is_clean_and_counts_rules() {
        let g = generators::path(4);
        let mut seed = vec![false; 4];
        seed[0] = true;
        let report = collect_footprints(&g, "path4", &Flood, &[seed], &AnalyzeOptions::default());
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert!(!report.truncated);
        assert_eq!(report.configs, 4, "flood on a path has a linear closure");
        assert!(report.rules[0].enabled > 0);
        assert_eq!(report.rules[0].enabled, report.rules[0].fired_first);
        assert_eq!(report.rules[0].applies, report.rules[0].changed);
        assert!(report.rules[0].guard_read_dist_max <= 1);
        assert_eq!(report.rules[1].enabled, 0, "rule `never` is dead");
    }

    #[test]
    fn far_peek_flagged_non_local_and_non_commutative() {
        let g = generators::path(4);
        // Node 3 infected: node 0's guard reads it at distance 3.
        let mut seed = vec![false; 4];
        seed[3] = true;
        let report = collect_footprints(&g, "path4", &FarPeek, &[seed], &AnalyzeOptions::default());
        assert!(report
            .findings
            .iter()
            .any(|f| f.kind == FindingKind::NonLocalGuard && f.detail.contains("distance 3")));
        // Node 3 is never enabled here, so no commutativity overlap.
        assert!(!report
            .findings
            .iter()
            .any(|f| f.kind == FindingKind::NonCommutative));
    }

    #[test]
    fn audit_flood_clean_with_all_draws_in_select() {
        let g = generators::ring(5);
        let mut init = vec![false; 5];
        init[0] = true;
        let audit = audit_runs(&g, &Flood, &[init], &AnalyzeOptions::default());
        assert!(audit.findings.is_empty(), "{:?}", audit.findings);
        assert!(audit.steps > 0);
        assert!(audit.select_draws > 0, "random daemons draw in select");
        assert_eq!(audit.apply_draws, 0);
        assert_eq!(audit.guards_draws, 0);
    }

    #[test]
    fn finding_severity_partition() {
        for kind in [
            FindingKind::NonLocalGuard,
            FindingKind::NonLocalAction,
            FindingKind::NonCommutative,
            FindingKind::ShadowedRule,
            FindingKind::DisabledRuleFired,
            FindingKind::ForeignWrite,
            FindingKind::OutOfPhaseDraw,
            FindingKind::NotAnalyzable,
        ] {
            assert_eq!(kind.severity(), Severity::Error, "{kind}");
        }
        for kind in [
            FindingKind::DeadRule,
            FindingKind::NoOpRule,
            FindingKind::OverlappingRules,
        ] {
            assert_eq!(kind.severity(), Severity::Warning, "{kind}");
        }
    }
}
