//! Canonical fingerprints: a stable 128-bit hash over a byte-canonical
//! encoding of scenario-shaped values.
//!
//! The campaign cache and the `ssr-serve` content-addressed store key
//! results by *what a scenario is*, not where it sits in a grid. That
//! requires an encoding with two properties:
//!
//! * **canonical** — two semantically equal values produce the same
//!   byte string, regardless of how they were constructed;
//! * **prefix-free per field** — every variable-length field is
//!   length-prefixed and every enum variant is tagged, so distinct
//!   values can never collide by concatenation (`("ab", "c")` vs
//!   `("a", "bc")`).
//!
//! [`Canon`] is the encoding trait, [`FpEncoder`] the byte sink, and
//! [`Fingerprint`] the 128-bit digest (a MurmurHash3-x64-128-style
//! finalizer — not cryptographic, but 128 bits make accidental
//! collisions across even billion-scenario sweeps negligible).
//!
//! The hash is **pinned forever**: checkpoints persist fingerprints to
//! disk (`ssr-checkpoint/v1`), so changing the encoding or the mixer is
//! a schema break. The `fingerprints_are_pinned` test holds the exact
//! digests.
//!
//! # Examples
//!
//! ```
//! use ssr_runtime::fingerprint::{Canon, Fingerprint, FpEncoder};
//!
//! struct Point { x: u64, y: u64 }
//! impl Canon for Point {
//!     fn canon(&self, enc: &mut FpEncoder) {
//!         enc.u64(self.x);
//!         enc.u64(self.y);
//!     }
//! }
//!
//! let fp = Fingerprint::of(&Point { x: 3, y: 4 });
//! assert_eq!(fp, Fingerprint::of(&Point { x: 3, y: 4 }));
//! // 32 lowercase hex digits, round-tripping through FromStr.
//! let hex = fp.to_string();
//! assert_eq!(hex.len(), 32);
//! assert_eq!(hex.parse::<Fingerprint>().unwrap(), fp);
//! ```

use std::fmt;
use std::str::FromStr;

use crate::family::{AlgorithmSpec, Amount, InitPlan, Params};
use crate::Daemon;

/// A stable 128-bit content digest ([`Display`](fmt::Display)s as 32
/// lowercase hex digits, round-tripping through [`FromStr`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u128);

impl Fingerprint {
    /// Fingerprints one canonical value: encode, then hash.
    pub fn of(value: &dyn Canon) -> Fingerprint {
        let mut enc = FpEncoder::new();
        value.canon(&mut enc);
        enc.finish()
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl FromStr for Fingerprint {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.len() != 32 {
            return Err(format!("fingerprint must be 32 hex digits, got {s:?}"));
        }
        u128::from_str_radix(s, 16)
            .map(Fingerprint)
            .map_err(|e| format!("bad fingerprint {s:?}: {e}"))
    }
}

/// A value with a byte-canonical encoding — the input side of
/// [`Fingerprint::of`].
pub trait Canon {
    /// Appends the canonical encoding of `self` to `enc`.
    fn canon(&self, enc: &mut FpEncoder);
}

/// The canonical byte sink: tagged variants, little-endian integers,
/// length-prefixed strings.
#[derive(Default)]
pub struct FpEncoder {
    buf: Vec<u8>,
}

impl FpEncoder {
    /// An empty encoder.
    pub fn new() -> Self {
        FpEncoder::default()
    }

    /// Appends an enum-variant tag.
    pub fn tag(&mut self, t: u8) {
        self.buf.push(t);
    }

    /// Appends a `u64` (little-endian).
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` (widened to `u64` so 32- and 64-bit hosts
    /// agree).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends an `f64` via its IEEE-754 bit pattern (`to_bits`), so
    /// the encoding is exact and total.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Hashes the accumulated bytes into a [`Fingerprint`].
    pub fn finish(&self) -> Fingerprint {
        Fingerprint(hash128(&self.buf))
    }
}

/// MurmurHash3-x64-128-style digest of `data` (fixed zero seed — the
/// fingerprint is a pure function of the bytes).
pub fn hash128(data: &[u8]) -> u128 {
    const C1: u64 = 0x87c3_7b91_1142_53d5;
    const C2: u64 = 0x4cf5_ad43_2745_937f;

    fn mix_k1(mut k1: u64) -> u64 {
        k1 = k1.wrapping_mul(C1);
        k1 = k1.rotate_left(31);
        k1.wrapping_mul(C2)
    }
    fn mix_k2(mut k2: u64) -> u64 {
        k2 = k2.wrapping_mul(C2);
        k2 = k2.rotate_left(33);
        k2.wrapping_mul(C1)
    }
    fn fmix64(mut k: u64) -> u64 {
        k ^= k >> 33;
        k = k.wrapping_mul(0xff51_afd7_ed55_8ccd);
        k ^= k >> 33;
        k = k.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        k ^ (k >> 33)
    }

    let len = data.len();
    let (mut h1, mut h2) = (0u64, 0u64);

    let mut chunks = data.chunks_exact(16);
    for block in &mut chunks {
        let k1 = u64::from_le_bytes(block[..8].try_into().expect("8-byte half"));
        let k2 = u64::from_le_bytes(block[8..].try_into().expect("8-byte half"));
        h1 ^= mix_k1(k1);
        h1 = h1
            .rotate_left(27)
            .wrapping_add(h2)
            .wrapping_mul(5)
            .wrapping_add(0x52dc_e729);
        h2 ^= mix_k2(k2);
        h2 = h2
            .rotate_left(31)
            .wrapping_add(h1)
            .wrapping_mul(5)
            .wrapping_add(0x3849_5ab5);
    }

    let tail = chunks.remainder();
    if !tail.is_empty() {
        let (mut k1, mut k2) = (0u64, 0u64);
        for (i, &b) in tail.iter().enumerate() {
            if i < 8 {
                k1 |= u64::from(b) << (8 * i);
            } else {
                k2 |= u64::from(b) << (8 * (i - 8));
            }
        }
        if tail.len() > 8 {
            h2 ^= mix_k2(k2);
        }
        h1 ^= mix_k1(k1);
    }

    h1 ^= len as u64;
    h2 ^= len as u64;
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);
    h1 = fmix64(h1);
    h2 = fmix64(h2);
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);
    (u128::from(h2) << 64) | u128::from(h1)
}

// ---------------------------------------------------------------------
// Canonical encodings of the scenario vocabulary
// ---------------------------------------------------------------------

impl Canon for Amount {
    fn canon(&self, enc: &mut FpEncoder) {
        match self {
            Amount::Fixed(v) => {
                enc.tag(0);
                enc.u64(*v);
            }
            Amount::QuarterN => enc.tag(1),
            Amount::HalfN => enc.tag(2),
            Amount::N => enc.tag(3),
        }
    }
}

impl Canon for InitPlan {
    fn canon(&self, enc: &mut FpEncoder) {
        match self {
            InitPlan::Arbitrary => enc.tag(0),
            InitPlan::Normal => enc.tag(1),
            InitPlan::Tear { gap } => {
                enc.tag(2);
                gap.canon(enc);
            }
            InitPlan::CorruptClocks { k } => {
                enc.tag(3);
                k.canon(enc);
            }
        }
    }
}

impl Canon for Daemon {
    /// Structural encoding — [`Daemon::Script`] encodes its full
    /// schedule, so two different scripts of equal length never share
    /// a fingerprint (their labels *do* collide, which is why the
    /// cache keys on this encoding and not on labels).
    fn canon(&self, enc: &mut FpEncoder) {
        match self {
            Daemon::Synchronous => enc.tag(0),
            Daemon::Central => enc.tag(1),
            Daemon::RoundRobin => enc.tag(2),
            Daemon::RandomSubset { p } => {
                enc.tag(3);
                enc.f64(*p);
            }
            Daemon::Aging { patience } => {
                enc.tag(4);
                enc.u64(u64::from(*patience));
            }
            Daemon::PreferHighRules => enc.tag(5),
            Daemon::PreferLowRules => enc.tag(6),
            Daemon::LexMin => enc.tag(7),
            Daemon::Script { steps } => {
                enc.tag(8);
                enc.usize(steps.len());
                for step in steps.iter() {
                    enc.usize(step.len());
                    for node in step {
                        enc.u64(u64::from(node.0));
                    }
                }
            }
        }
    }
}

impl Canon for AlgorithmSpec {
    fn canon(&self, enc: &mut FpEncoder) {
        enc.str(&self.family);
        match &self.params {
            Params::None => enc.tag(0),
            Params::Paren(p) => {
                enc.tag(1);
                enc.str(p);
            }
            Params::Colon(p) => {
                enc.tag(2);
                enc.str(p);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_graph::NodeId;
    use std::sync::Arc;

    #[test]
    fn display_round_trips_and_is_padded() {
        for fp in [Fingerprint(0), Fingerprint(1), Fingerprint(u128::MAX)] {
            let hex = fp.to_string();
            assert_eq!(hex.len(), 32);
            assert_eq!(hex.parse::<Fingerprint>().unwrap(), fp);
        }
        assert!("xyz".parse::<Fingerprint>().is_err());
        assert!("0".parse::<Fingerprint>().is_err(), "length enforced");
    }

    #[test]
    fn length_prefix_prevents_concat_collisions() {
        let mut a = FpEncoder::new();
        a.str("ab");
        a.str("c");
        let mut b = FpEncoder::new();
        b.str("a");
        b.str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn scripts_with_equal_length_hash_differently() {
        let s1 = Daemon::Script {
            steps: Arc::new(vec![vec![NodeId(0)], vec![NodeId(1)]]),
        };
        let s2 = Daemon::Script {
            steps: Arc::new(vec![vec![NodeId(1)], vec![NodeId(0)]]),
        };
        assert_eq!(s1.label(), s2.label(), "labels collide by design");
        assert_ne!(Fingerprint::of(&s1), Fingerprint::of(&s2));
    }

    #[test]
    fn daemon_variants_are_distinct() {
        let mut fps: Vec<Fingerprint> = Daemon::all_strategies()
            .iter()
            .map(|d| Fingerprint::of(d))
            .collect();
        fps.sort_unstable();
        fps.dedup();
        assert_eq!(fps.len(), Daemon::all_strategies().len());
    }

    #[test]
    fn init_plans_are_distinct() {
        let plans = [
            InitPlan::Arbitrary,
            InitPlan::Normal,
            InitPlan::Tear {
                gap: Amount::Fixed(1),
            },
            InitPlan::Tear { gap: Amount::N },
            InitPlan::CorruptClocks {
                k: Amount::Fixed(1),
            },
            InitPlan::CorruptClocks { k: Amount::HalfN },
        ];
        let mut fps: Vec<Fingerprint> = plans.iter().map(|p| Fingerprint::of(p)).collect();
        fps.sort_unstable();
        fps.dedup();
        assert_eq!(fps.len(), plans.len());
    }

    #[test]
    fn spec_param_styles_are_distinct() {
        let a = Fingerprint::of(&AlgorithmSpec::paren("fam", "1"));
        let b = Fingerprint::of(&AlgorithmSpec::colon("fam", "1"));
        let c = Fingerprint::of(&AlgorithmSpec::plain("fam"));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    /// The on-disk contract: these exact digests are persisted in
    /// `ssr-checkpoint/v1` files. Changing any of them is a schema
    /// break — bump the checkpoint schema if you must.
    #[test]
    fn fingerprints_are_pinned() {
        assert_eq!(hash128(b""), 0);
        assert_eq!(
            format!("{:032x}", hash128(b"ssr")),
            "b3c70769a9c855cd3eece9e9a46d3b2d".to_string()
        );
        let fp = Fingerprint::of(&Daemon::Synchronous);
        assert_eq!(fp, Fingerprint::of(&Daemon::Synchronous));
    }
}
