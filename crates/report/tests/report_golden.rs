//! Golden pin of the rendered report plus the thread-invariance
//! acceptance check: the artifact builders here are fully
//! deterministic (the campaign engine's determinism contract, fixed
//! metric/trace/scale/history values, no clocks), so the HTML must
//! come out byte-identical on every machine — and the committed golden
//! file catches any unintended change to the renderer.
//!
//! Regenerate the golden after an *intentional* renderer change with:
//!
//! ```text
//! BLESS=1 cargo test -p ssr-report --test report_golden
//! ```

use std::path::{Path, PathBuf};

use ssr_campaign::{engine, families, output, Campaign, InitPlan, TopologySpec};
use ssr_obs::metrics::MetricsSet;
use ssr_obs::trace::event_to_json;
use ssr_report::history::{entry_to_json_line, HistoryCell, HistoryEntry};
use ssr_runtime::trace::TraceEvent;
use ssr_runtime::{Daemon, TerminationReason};

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/report.html");

/// A static `bench-scale-v2` slice: two topologies at two thread
/// counts, enough to exercise the phase and scaling sections.
const SCALE_JSON: &str = r#"{
  "schema": "bench-scale-v2",
  "smoke": true,
  "runs": [
    {"topology":"ring","n":1000,"threads":1,"steps":11,"moves":2894,"rounds":11,"seconds":0.000377,"steps_per_sec":29201.0,"moves_per_sec":7682506.0,"converged":true,"conflict_classes_avg":2.00,"soa_heap_bytes":9216,"phase_nanos":{"select":7783,"apply":75238,"guards":273879},"kernel_par_steps":{"apply":0,"guards":0}},
    {"topology":"ring","n":1000,"threads":4,"steps":11,"moves":2894,"rounds":11,"seconds":0.000318,"steps_per_sec":34582.7,"moves_per_sec":9098397.2,"converged":true,"conflict_classes_avg":2.00,"soa_heap_bytes":9216,"phase_nanos":{"select":7038,"apply":44996,"guards":252129},"kernel_par_steps":{"apply":0,"guards":2}},
    {"topology":"torus","n":1024,"threads":1,"steps":13,"moves":31870,"rounds":10,"seconds":0.004,"steps_per_sec":3250.0,"moves_per_sec":7967500.0,"converged":true,"conflict_classes_avg":2.80,"soa_heap_bytes":20480,"phase_nanos":{"select":20000,"apply":900000,"guards":2800000},"kernel_par_steps":{"apply":0,"guards":0}},
    {"topology":"torus","n":1024,"threads":4,"steps":13,"moves":31870,"rounds":10,"seconds":0.003,"steps_per_sec":4333.3,"moves_per_sec":10623333.3,"converged":true,"conflict_classes_avg":2.80,"soa_heap_bytes":20480,"phase_nanos":{"select":18000,"apply":600000,"guards":2100000},"kernel_par_steps":{"apply":3,"guards":5}}
  ]
}
"#;

/// Builds the full artifact set in `dir`, running the campaign at
/// `threads` workers. Everything except the campaign is constant; the
/// campaign is covered by the engine's determinism contract, so the
/// directory contents are independent of `threads`.
fn build_artifact_dir(dir: &Path, threads: usize) {
    std::fs::create_dir_all(dir.join("trace")).expect("create artifact dir");

    let campaign = Campaign::new("golden")
        .topologies(vec![TopologySpec::Ring, TopologySpec::Star])
        .sizes(vec![6, 9])
        .algorithms(vec![families::sdr_agreement(4), families::unison_sdr()])
        .daemons(vec![Daemon::Central, Daemon::Synchronous])
        .inits(vec![InitPlan::Arbitrary])
        .trials(2)
        .step_cap(500_000)
        .seed(2026);
    let records = engine::run(&campaign, threads);
    assert!(!records.is_empty(), "golden campaign produced no records");
    std::fs::write(dir.join("campaign-golden.jsonl"), output::jsonl(&records))
        .expect("write campaign jsonl");

    let mut set = MetricsSet::new();
    set.inc("pipeline.steps", 420);
    set.inc("pipeline.moves", 9000);
    set.gauge_set("pipeline.enabled.last", 17);
    for v in [3, 5, 8, 8, 13, 21, 34] {
        set.observe("pipeline.conflict_classes", v);
    }
    std::fs::write(
        dir.join("metrics.json"),
        format!("{}\n", set.snapshot().to_json()),
    )
    .expect("write metrics");

    let events = [
        TraceEvent::StepStarted {
            step: 0,
            enabled: 6,
        },
        TraceEvent::MovesApplied {
            step: 0,
            moves: 4,
            conflict_classes: Some(2),
        },
        TraceEvent::StepStarted {
            step: 1,
            enabled: 3,
        },
        TraceEvent::MovesApplied {
            step: 1,
            moves: 3,
            conflict_classes: Some(1),
        },
        TraceEvent::RoundCompleted { step: 1, rounds: 1 },
        TraceEvent::StepStarted {
            step: 2,
            enabled: 1,
        },
        TraceEvent::MovesApplied {
            step: 2,
            moves: 1,
            conflict_classes: Some(1),
        },
        TraceEvent::RunEnded {
            steps: 3,
            moves: 8,
            rounds: 2,
            reason: TerminationReason::Terminal,
        },
    ];
    let trace: String = events
        .iter()
        .map(|e| format!("{}\n", event_to_json(e)))
        .collect();
    std::fs::write(dir.join("trace").join("run-0.jsonl"), trace).expect("write trace");

    std::fs::write(dir.join("BENCH_SCALE.json"), SCALE_JSON).expect("write scale");

    let entries = [
        HistoryEntry {
            sha: "aaa111".into(),
            host: "golden-host".into(),
            source: "BENCH_SCALE.json".into(),
            cells: vec![HistoryCell {
                topology: "ring".into(),
                n: 1000,
                threads: 4,
                steps_per_sec: 34582.7,
                moves_per_sec: 9098397.2,
                phase_select_nanos: 7038,
                phase_apply_nanos: 44996,
                phase_guards_nanos: 252129,
            }],
        },
        HistoryEntry {
            sha: "bbb222".into(),
            host: "golden-host".into(),
            source: "BENCH_SCALE.json".into(),
            cells: vec![HistoryCell {
                topology: "ring".into(),
                n: 1000,
                threads: 4,
                steps_per_sec: 35011.2,
                moves_per_sec: 9211042.0,
                phase_select_nanos: 6990,
                phase_apply_nanos: 44010,
                phase_guards_nanos: 249800,
            }],
        },
    ];
    let history: String = entries
        .iter()
        .map(entry_to_json_line)
        .collect::<Vec<_>>()
        .join("\n");
    std::fs::write(dir.join("BENCH_HISTORY.jsonl"), format!("{history}\n")).expect("write history");
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ssr-report-golden-{}-{name}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clear scratch dir");
    }
    dir
}

fn render_dir(dir: &Path) -> String {
    let art = ssr_report::load_dir(dir).expect("artifact dir must load");
    ssr_report::render(&art)
}

#[test]
fn report_html_matches_golden() {
    let dir = scratch("pin");
    build_artifact_dir(&dir, 1);
    let html = render_dir(&dir);
    if std::env::var_os("BLESS").is_some() {
        std::fs::create_dir_all(Path::new(GOLDEN_PATH).parent().expect("has parent"))
            .expect("create golden dir");
        std::fs::write(GOLDEN_PATH, &html).expect("bless golden");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden missing — run with BLESS=1 to create it");
    assert!(
        html == golden,
        "rendered report differs from {GOLDEN_PATH} \
         (intentional renderer change? re-bless with BLESS=1)"
    );
}

/// The acceptance criterion: the same artifact set produced at
/// different intra-run thread counts renders to byte-identical HTML.
#[test]
fn report_is_byte_identical_across_thread_counts() {
    let one = scratch("t1");
    let four = scratch("t4");
    build_artifact_dir(&one, 1);
    build_artifact_dir(&four, 4);
    assert_eq!(
        std::fs::read(one.join("campaign-golden.jsonl")).expect("read"),
        std::fs::read(four.join("campaign-golden.jsonl")).expect("read"),
        "campaign records must be thread-invariant"
    );
    assert_eq!(
        render_dir(&one),
        render_dir(&four),
        "report HTML must be thread-invariant"
    );
}

/// Every chart anchor is present even for this small fixture set, so
/// CI can grep for them.
#[test]
fn report_contains_all_chart_anchors() {
    let dir = scratch("anchors");
    build_artifact_dir(&dir, 1);
    let html = render_dir(&dir);
    for anchor in [
        "id=\"chart-bounds\"",
        "id=\"chart-convergence\"",
        "id=\"chart-phases\"",
        "id=\"chart-scaling\"",
        "id=\"chart-timeline\"",
        "id=\"history\"",
        "id=\"inventory\"",
    ] {
        assert!(html.contains(anchor), "missing {anchor}");
    }
    assert!(html.contains("<svg"), "report should embed SVG charts");
}
