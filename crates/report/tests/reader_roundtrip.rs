//! Property tests pinning the readers against the live writers: every
//! artifact this crate parses is produced by a hand-rolled writer
//! elsewhere in the workspace, so the reader must be its exact
//! inverse — including u64 seeds that do not survive an f64 detour.
//!
//! The vendored proptest samples primitive ranges only, so composite
//! inputs (records, label strings, option fields) are derived from a
//! seeded [`Xoshiro256StarStar`] inside each case.

use proptest::prelude::*;

use ssr_campaign::output;
use ssr_campaign::{ScenarioRecord, Verdict};
use ssr_obs::metrics::MetricsSet;
use ssr_report::reader::{
    parse_campaign_csv, parse_campaign_jsonl, parse_metrics_json, parse_trace_jsonl, CampaignRow,
    MetricValue,
};
use ssr_runtime::rng::Xoshiro256StarStar;
use ssr_runtime::trace::TraceEvent;
use ssr_runtime::TerminationReason;

/// Label-shaped strings: what topology/algorithm/daemon/init labels
/// actually look like — parens, commas, quotes, backslashes included,
/// so both CSV quoting and JSON escaping are exercised.
fn label(rng: &mut Xoshiro256StarStar) -> String {
    const ALPHABET: &[char] = &[
        'a', 'b', 'z', 'A', 'Z', '0', '9', ':', '(', ')', ',', '_', '-', ' ', '"', '\\',
    ];
    let len = 1 + rng.index(23);
    (0..len).map(|_| *rng.choose(ALPHABET)).collect()
}

fn opt_u64(rng: &mut Xoshiro256StarStar) -> Option<u64> {
    rng.chance(0.5).then(|| rng.next_u64())
}

fn record(rng: &mut Xoshiro256StarStar) -> ScenarioRecord {
    let reason = match rng.index(4) {
        0 => None,
        1 => Some(TerminationReason::Terminal),
        2 => Some(TerminationReason::PredicateMet),
        _ => Some(TerminationReason::CapExhausted),
    };
    let verdict = *rng.choose(&[
        Verdict::Pass,
        Verdict::Fail,
        Verdict::NoBound,
        Verdict::Skip,
    ]);
    ScenarioRecord {
        index: rng.index(10_000),
        campaign: label(rng),
        topology: label(rng),
        n: rng.index(1_000_000),
        nodes: rng.next_u64(),
        edges: rng.next_u64(),
        max_degree: rng.next_u64(),
        diameter: rng.next_u64(),
        algorithm: label(rng),
        daemon: label(rng),
        init: label(rng),
        trial: rng.next_u64(),
        seed: rng.next_u64(),
        reached: rng.chance(0.5),
        terminal: rng.chance(0.5),
        reason,
        steps: rng.next_u64(),
        moves: rng.next_u64(),
        rounds: rng.next_u64(),
        max_moves_per_process: rng.next_u64(),
        bound_rounds: opt_u64(rng),
        bound_moves: opt_u64(rng),
        verdict,
    }
}

/// Field-by-field equality between the writer's record and the
/// reader's row.
fn assert_matches(rec: &ScenarioRecord, row: &CampaignRow) {
    assert_eq!(row.campaign, rec.campaign);
    assert_eq!(row.index, rec.index as u64);
    assert_eq!(row.topology, rec.topology);
    assert_eq!(row.n, rec.n as u64);
    assert_eq!(row.nodes, rec.nodes);
    assert_eq!(row.edges, rec.edges);
    assert_eq!(row.max_degree, rec.max_degree);
    assert_eq!(row.diameter, rec.diameter);
    assert_eq!(row.algorithm, rec.algorithm);
    assert_eq!(row.daemon, rec.daemon);
    assert_eq!(row.init, rec.init);
    assert_eq!(row.trial, rec.trial);
    assert_eq!(row.seed, rec.seed, "u64 seed must round-trip exactly");
    assert_eq!(row.reached, rec.reached);
    assert_eq!(row.terminal, rec.terminal);
    assert_eq!(row.reason, rec.reason.map(|r| r.to_string()));
    assert_eq!(row.steps, rec.steps);
    assert_eq!(row.moves, rec.moves);
    assert_eq!(row.rounds, rec.rounds);
    assert_eq!(row.max_moves_per_process, rec.max_moves_per_process);
    assert_eq!(row.bound_rounds, rec.bound_rounds);
    assert_eq!(row.bound_moves, rec.bound_moves);
    assert_eq!(row.verdict, rec.verdict.to_string());
}

proptest! {
    #[test]
    fn campaign_jsonl_round_trips(seed in 0u64..1_000_000, count in 0usize..8) {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let records: Vec<ScenarioRecord> = (0..count).map(|_| record(&mut rng)).collect();
        let text = output::jsonl(&records);
        let rows = parse_campaign_jsonl(&text).expect("writer output must parse");
        prop_assert_eq!(rows.len(), records.len());
        for (rec, row) in records.iter().zip(&rows) {
            assert_matches(rec, row);
        }
    }

    #[test]
    fn campaign_csv_round_trips(seed in 0u64..1_000_000, count in 0usize..8) {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let records: Vec<ScenarioRecord> = (0..count).map(|_| record(&mut rng)).collect();
        let text = output::csv(&records);
        let rows = parse_campaign_csv(&text).expect("writer output must parse");
        prop_assert_eq!(rows.len(), records.len());
        for (rec, row) in records.iter().zip(&rows) {
            assert_matches(rec, row);
        }
    }

    #[test]
    fn metrics_snapshot_round_trips(
        seed in 0u64..1_000_000,
        counters in 0usize..4,
        gauges in 0usize..3,
        samples in 0usize..32,
    ) {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let mut set = MetricsSet::new();
        let counter_values: Vec<(String, u64)> = (0..counters)
            .map(|i| (format!("c.{i}"), rng.next_u64()))
            .collect();
        for (k, v) in &counter_values {
            // Two increments summing to v exercises accumulation.
            set.inc(k, v / 2);
            set.inc(k, v - v / 2);
        }
        let gauge_values: Vec<(String, Vec<u64>)> = (0..gauges)
            .map(|i| {
                let len = 1 + rng.index(5);
                (format!("g.{i}"), (0..len).map(|_| rng.next_u64()).collect())
            })
            .collect();
        for (k, vs) in &gauge_values {
            for v in vs {
                set.gauge_set(k, *v);
            }
        }
        let sample_values: Vec<u64> = (0..samples).map(|_| rng.below(1 << 40)).collect();
        for v in &sample_values {
            set.observe("h.samples", *v);
        }
        let json = set.snapshot().to_json();
        let doc = parse_metrics_json(&json).expect("snapshot must parse");
        for (k, v) in &counter_values {
            prop_assert_eq!(doc.get(k), Some(&MetricValue::Counter(*v)));
        }
        for (k, vs) in &gauge_values {
            let (min, max, last) = (
                *vs.iter().min().expect("non-empty"),
                *vs.iter().max().expect("non-empty"),
                *vs.last().expect("non-empty"),
            );
            prop_assert_eq!(doc.get(k), Some(&MetricValue::Gauge { min, max, last }));
        }
        if sample_values.is_empty() {
            prop_assert!(doc.get("h.samples").is_none());
        } else {
            match doc.get("h.samples") {
                Some(MetricValue::Histogram { count, sum, min, max, buckets }) => {
                    prop_assert_eq!(*count, sample_values.len() as u64);
                    prop_assert_eq!(*sum, sample_values.iter().sum::<u64>());
                    prop_assert_eq!(*min, *sample_values.iter().min().expect("non-empty"));
                    prop_assert_eq!(*max, *sample_values.iter().max().expect("non-empty"));
                    prop_assert_eq!(
                        buckets.iter().map(|(_, c)| c).sum::<u64>(),
                        sample_values.len() as u64
                    );
                }
                other => panic!("h.samples missing or not a histogram: {other:?}"),
            }
        }
    }

    #[test]
    fn trace_events_round_trip(
        step in 0u64..u64::MAX,
        enabled in 0u32..u32::MAX,
        moves in 0u32..u32::MAX,
        rounds in 0u64..u64::MAX,
        classes_seed in 0u64..1_000_000,
    ) {
        let mut rng = Xoshiro256StarStar::seed_from_u64(classes_seed);
        let conflict_classes = rng.chance(0.5).then(|| rng.next_u64() as u32);
        let events = [
            TraceEvent::StepStarted { step, enabled },
            TraceEvent::MovesApplied { step, moves, conflict_classes },
            TraceEvent::EnabledSetSize { step, enabled },
            TraceEvent::RoundCompleted { step, rounds },
            TraceEvent::RunEnded {
                steps: step,
                moves: u64::from(moves),
                rounds,
                reason: TerminationReason::Terminal,
            },
        ];
        let text: String = events
            .iter()
            .map(|e| format!("{}\n", ssr_obs::trace::event_to_json(e)))
            .collect();
        let rows = parse_trace_jsonl(&text).expect("writer output must parse");
        prop_assert_eq!(rows.len(), events.len());
        prop_assert_eq!(rows[0].step, Some(step));
        prop_assert_eq!(rows[0].enabled, Some(u64::from(enabled)));
        prop_assert_eq!(rows[1].moves, Some(u64::from(moves)));
        prop_assert_eq!(rows[1].conflict_classes, conflict_classes.map(u64::from));
        prop_assert_eq!(rows[3].rounds, Some(rounds));
        prop_assert_eq!(rows[4].reason.as_deref(), Some("terminal"));
    }

    // History lines: serialize → parse → serialize is the identity, so
    // the store is append-stable (the {:.1} float format is
    // idempotent).
    #[test]
    fn history_line_serialization_is_idempotent(
        seed in 0u64..1_000_000,
        threads in 1u64..64,
        sps in 0.0f64..1.0e9,
        mps in 0.0f64..1.0e9,
    ) {
        use ssr_report::history::{
            entry_to_json_line, parse_history_jsonl, HistoryCell, HistoryEntry,
        };
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let entry = HistoryEntry {
            sha: format!("{:016x}", rng.next_u64()),
            host: label(&mut rng),
            source: "BENCH_SCALE.json".to_string(),
            cells: vec![HistoryCell {
                topology: label(&mut rng),
                n: rng.next_u64(),
                threads,
                steps_per_sec: sps,
                moves_per_sec: mps,
                phase_select_nanos: rng.next_u64(),
                phase_apply_nanos: rng.next_u64(),
                phase_guards_nanos: rng.next_u64(),
            }],
        };
        let line = entry_to_json_line(&entry);
        let parsed = parse_history_jsonl(&line).expect("line must parse");
        prop_assert_eq!(parsed.len(), 1);
        prop_assert_eq!(entry_to_json_line(&parsed[0]), line);
    }
}
