//! The read path over the stack's own artifacts, and what it buys:
//! self-contained HTML/SVG campaign reports plus a perf-history store
//! with a regression tripwire.
//!
//! Everything else in the workspace *writes* artifacts — campaign
//! JSONL/CSV ([`reader::parse_campaign_jsonl`]), `ssr-metrics-v1`
//! snapshots, trace JSONL, `BENCH_RESULTS.json`, `BENCH_SCALE.json`.
//! This crate closes the loop: typed readers built on the shared
//! [`ssr_obs::json`] recursive-descent parser ([`reader`]), a
//! deterministic renderer turning one artifact directory into one
//! self-contained HTML page with inline SVG charts ([`html`],
//! [`svg`]), and the append-only `BENCH_HISTORY.jsonl` store with the
//! `check` gate that trips CI on throughput or phase-time regressions
//! ([`history`]).
//!
//! # Determinism
//!
//! Rendering is a pure function of the artifact bytes: no clocks, no
//! RNG, no locale, sorted directory walks, fixed float formats. Since
//! campaign records and untimed traces/metrics are themselves
//! byte-identical at any intra-run thread count, so is the report —
//! `diff` two reports to diff two runs.
//!
//! # Quick tour
//!
//! ```
//! use ssr_report::history::{check, HistoryEntry, Tolerance};
//!
//! let line = "{\"schema\":\"ssr-history/v1\",\"sha\":\"abc\",\"host\":\"ci\",\
//!             \"source\":\"BENCH_SCALE.json\",\"cells\":[{\"topology\":\"ring\",\
//!             \"n\":1000,\"threads\":2,\"steps_per_sec\":100.0,\"moves_per_sec\":250.0,\
//!             \"phase_select_nanos\":10,\"phase_apply_nanos\":20,\"phase_guards_nanos\":5}]}";
//! let entries: Vec<HistoryEntry> = ssr_report::history::parse_history_jsonl(line).unwrap();
//! // Comparing an entry against itself trips nothing.
//! let regs = check(&entries[0], &entries[0], &Tolerance::default()).unwrap();
//! assert!(regs.is_empty());
//! ```

#![forbid(unsafe_code)]

pub mod history;
pub mod html;
pub mod reader;
pub mod svg;

pub use history::{check, HistoryEntry, Regression, Tolerance};
pub use html::{load_dir, render, Artifacts};
