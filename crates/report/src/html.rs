//! The report renderer: artifact discovery plus a single
//! self-contained HTML document with inline SVG charts.
//!
//! [`load_dir`] walks one directory in sorted filename order and
//! classifies each artifact by extension and a cheap structural sniff;
//! [`render`] turns the loaded set into HTML. Rendering is a pure
//! function of the artifact bytes — no timestamps, no ambient state —
//! so a report over the same artifacts is byte-identical anywhere,
//! which is what makes it diffable in CI.
//!
//! Every chart figure is always emitted under a stable anchor id
//! (`chart-bounds`, `chart-convergence`, `chart-phases`,
//! `chart-scaling`, `chart-timeline`, `history`); a figure whose
//! artifact is absent says so in place instead of vanishing, so smoke
//! checks can grep for the full inventory unconditionally.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use crate::history::{self, HistoryEntry};
use crate::reader::{self, BenchResultsDoc, CampaignRow, MetricsDoc, ScaleDoc, TraceRow};
use crate::svg::{self, esc, fmt_num, HBar, Series, VBar};

/// Timeline charts/tables cap at this many steps so a long run cannot
/// balloon the report; the figure notes the truncation.
const TIMELINE_CAP: usize = 200;

/// Everything [`render`] consumes, loaded and already validated.
#[derive(Default)]
pub struct Artifacts {
    /// Campaign record sets, `(file name, rows)`, sorted by name.
    pub campaigns: Vec<(String, Vec<CampaignRow>)>,
    /// Metrics snapshots, `(file name, doc)`, sorted by name.
    pub metrics: Vec<(String, MetricsDoc)>,
    /// Trace files, `(file name, rows)`, sorted by name.
    pub traces: Vec<(String, Vec<TraceRow>)>,
    /// The `BENCH_RESULTS.json` document, if present.
    pub bench: Option<BenchResultsDoc>,
    /// The `BENCH_SCALE.json` document, if present.
    pub scale: Option<ScaleDoc>,
    /// Perf-history entries, oldest first.
    pub history: Vec<HistoryEntry>,
    /// Files that were seen but not recognized (reported, not fatal).
    pub skipped: Vec<String>,
}

impl Artifacts {
    /// Parses `text` as campaign JSONL and adds it under `name`,
    /// keeping `campaigns` sorted by name — the in-memory counterpart
    /// of [`load_dir`] finding a `.jsonl` record file, used by the
    /// campaign service to render reports straight from its
    /// content-addressed store.
    pub fn push_campaign_jsonl(&mut self, name: &str, text: &str) -> Result<(), String> {
        let rows = reader::parse_campaign_jsonl(text).map_err(|e| format!("{name}: {e}"))?;
        self.campaigns.push((name.to_string(), rows));
        self.campaigns.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(())
    }

    /// Parses `text` as a `ssr-metrics-v1` snapshot and adds it under
    /// `name`, keeping `metrics` sorted by name.
    pub fn push_metrics_json(&mut self, name: &str, text: &str) -> Result<(), String> {
        let doc = reader::parse_metrics_json(text).map_err(|e| format!("{name}: {e}"))?;
        self.metrics.push((name.to_string(), doc));
        self.metrics.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(())
    }
}

/// Collects the relative (`/`-joined) paths of every regular file
/// under `dir`, recursively.
fn collect_files(dir: &Path, prefix: &str, out: &mut Vec<String>) -> Result<(), String> {
    for entry in fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))? {
        let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        let rel = if prefix.is_empty() {
            name
        } else {
            format!("{prefix}/{name}")
        };
        let ty = entry
            .file_type()
            .map_err(|e| format!("cannot stat {rel}: {e}"))?;
        if ty.is_dir() {
            collect_files(&entry.path(), &rel, out)?;
        } else if ty.is_file() {
            out.push(rel);
        }
    }
    Ok(())
}

/// Loads every recognizable artifact under `dir` (recursively, so
/// per-campaign trace subdirectories are found), in sorted
/// relative-path order. A recognized file that fails validation is a
/// hard error; an unrecognized file is merely listed in
/// [`Artifacts::skipped`].
pub fn load_dir(dir: &Path) -> Result<Artifacts, String> {
    let mut names = Vec::new();
    collect_files(dir, "", &mut names)?;
    names.sort();
    let mut art = Artifacts::default();
    for name in names {
        let path = dir.join(&name);
        let ext = path.extension().and_then(|e| e.to_str()).unwrap_or("");
        if !matches!(ext, "json" | "jsonl" | "csv") {
            continue;
        }
        let text = fs::read_to_string(&path).map_err(|e| format!("cannot read {name}: {e}"))?;
        match ext {
            "jsonl" => {
                let first = text.lines().find(|l| !l.trim().is_empty()).unwrap_or("");
                if first.contains("\"event\"") {
                    let rows =
                        reader::parse_trace_jsonl(&text).map_err(|e| format!("{name}: {e}"))?;
                    art.traces.push((name, rows));
                } else if first.contains(history::HISTORY_SCHEMA) {
                    art.history =
                        history::parse_history_jsonl(&text).map_err(|e| format!("{name}: {e}"))?;
                } else if first.contains("\"campaign\"") {
                    let rows =
                        reader::parse_campaign_jsonl(&text).map_err(|e| format!("{name}: {e}"))?;
                    art.campaigns.push((name, rows));
                } else {
                    art.skipped.push(name);
                }
            }
            "json" => {
                if text.contains("ssr-metrics-v1") {
                    let doc =
                        reader::parse_metrics_json(&text).map_err(|e| format!("{name}: {e}"))?;
                    art.metrics.push((name, doc));
                } else if text.contains("ssr-bench-results/v1") {
                    art.bench = Some(
                        reader::parse_bench_results(&text).map_err(|e| format!("{name}: {e}"))?,
                    );
                } else if text.contains("bench-scale-v") {
                    art.scale =
                        Some(reader::parse_scale_json(&text).map_err(|e| format!("{name}: {e}"))?);
                } else {
                    art.skipped.push(name);
                }
            }
            _ => {
                if text.starts_with("campaign,") {
                    let rows =
                        reader::parse_campaign_csv(&text).map_err(|e| format!("{name}: {e}"))?;
                    art.campaigns.push((name, rows));
                } else {
                    art.skipped.push(name);
                }
            }
        }
    }
    Ok(art)
}

/// Nearest-rank percentile over a sorted slice (matches
/// `ssr_campaign::stats`).
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn figure(id: &str, title: &str, note: &str, legend: &str, body: &str, table: &str) -> String {
    let mut s = String::new();
    let _ = write!(s, "<figure id=\"{id}\"><figcaption><h2>{}</h2>", esc(title));
    if !note.is_empty() {
        let _ = write!(s, "<p class=\"note\">{}</p>", esc(note));
    }
    s.push_str("</figcaption>");
    s.push_str(legend);
    s.push_str(body);
    if !table.is_empty() {
        let _ = write!(s, "<details><summary>Data table</summary>{table}</details>");
    }
    s.push_str("</figure>");
    s
}

fn empty_figure(id: &str, title: &str, why: &str) -> String {
    figure(
        id,
        title,
        why,
        "",
        "<p class=\"empty\">No data in this artifact set.</p>",
        "",
    )
}

fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut s = String::from("<table><thead><tr>");
    for h in headers {
        let _ = write!(s, "<th>{}</th>", esc(h));
    }
    s.push_str("</tr></thead><tbody>");
    for row in rows {
        s.push_str("<tr>");
        for cell in row {
            let _ = write!(s, "<td>{}</td>", esc(cell));
        }
        s.push_str("</tr>");
    }
    s.push_str("</tbody></table>");
    s
}

/// Measured-vs-bound margins per family: worst measured figure as the
/// bar, the closed-form bound as a marker tick.
fn bounds_section(art: &Artifacts) -> String {
    struct Row {
        family: String,
        measured: u64,
        bound: u64,
        unit: &'static str,
        trials: usize,
    }
    let mut rows: Vec<Row> = Vec::new();
    let mut families: Vec<String> = art
        .campaigns
        .iter()
        .flat_map(|(_, rs)| rs.iter())
        .filter(|r| r.bound_rounds.is_some() || r.bound_moves.is_some())
        .map(|r| r.algorithm.clone())
        .collect();
    families.sort();
    families.dedup();
    for family in families {
        let recs: Vec<&CampaignRow> = art
            .campaigns
            .iter()
            .flat_map(|(_, rs)| rs.iter())
            .filter(|r| r.algorithm == family)
            .collect();
        // Prefer the rounds bound when any record carries one; fall
        // back to the moves bound.
        let use_rounds = recs.iter().any(|r| r.bound_rounds.is_some());
        let bounded: Vec<&&CampaignRow> = recs
            .iter()
            .filter(|r| {
                if use_rounds {
                    r.bound_rounds.is_some()
                } else {
                    r.bound_moves.is_some()
                }
            })
            .collect();
        let (measured, bound) = bounded.iter().fold((0u64, 0u64), |(m, b), r| {
            if use_rounds {
                (m.max(r.rounds), b.max(r.bound_rounds.unwrap_or(0)))
            } else {
                (m.max(r.moves), b.max(r.bound_moves.unwrap_or(0)))
            }
        });
        rows.push(Row {
            family,
            measured,
            bound,
            unit: if use_rounds { "rounds" } else { "moves" },
            trials: bounded.len(),
        });
    }
    if let Some(bench) = &art.bench {
        for g in &bench.groups {
            rows.push(Row {
                family: format!("{} ({})", g.id, g.title),
                measured: g.moves,
                bound: g.bound,
                unit: "moves",
                trials: g.sizes.len(),
            });
        }
    }
    if rows.is_empty() {
        return empty_figure(
            "chart-bounds",
            "Measured vs bound",
            "needs campaign records or BENCH_RESULTS.json with bounds",
        );
    }
    let bars: Vec<HBar> = rows
        .iter()
        .map(|r| HBar {
            label: r.family.clone(),
            value: r.measured as f64,
            marker: (r.bound > 0).then_some(r.bound as f64),
            tooltip: format!(
                "{}: worst {} {} of bound {} over {} records",
                r.family, r.unit, r.measured, r.bound, r.trials
            ),
            series: 1,
        })
        .collect();
    let t = table(
        &["family", "unit", "worst measured", "bound", "records"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.family.clone(),
                    r.unit.to_string(),
                    r.measured.to_string(),
                    r.bound.to_string(),
                    r.trials.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    figure(
        "chart-bounds",
        "Measured vs bound",
        "bar = worst measured figure per family; tick = closed-form bound",
        "",
        &svg::hbar_chart(&bars, "rounds / moves"),
        &t,
    )
}

/// Convergence-time distribution across all campaign records: p50/p90/
/// p99 plus a rounds histogram.
fn convergence_section(art: &Artifacts) -> String {
    let mut rounds: Vec<u64> = art
        .campaigns
        .iter()
        .flat_map(|(_, rs)| rs.iter().map(|r| r.rounds))
        .collect();
    if rounds.is_empty() {
        return empty_figure(
            "chart-convergence",
            "Convergence-time distribution",
            "needs campaign records",
        );
    }
    rounds.sort_unstable();
    let (p50, p90, p99) = (
        percentile(&rounds, 50.0),
        percentile(&rounds, 90.0),
        percentile(&rounds, 99.0),
    );
    let max = *rounds.last().unwrap_or(&0);
    let bins = 20usize.min(max as usize + 1).max(1);
    let bin_w = ((max + 1) as f64 / bins as f64).ceil().max(1.0) as u64;
    let mut counts = vec![0u64; bins];
    for &r in &rounds {
        let idx = ((r / bin_w) as usize).min(bins - 1);
        counts[idx] += 1;
    }
    let bars: Vec<VBar> = counts
        .iter()
        .enumerate()
        .map(|(i, &c)| {
            let lo = i as u64 * bin_w;
            let hi = lo + bin_w - 1;
            VBar {
                label: if bin_w == 1 {
                    lo.to_string()
                } else {
                    format!("{lo}–{hi}")
                },
                value: c as f64,
                tooltip: format!("rounds {lo}–{hi}: {c} runs"),
                series: 3,
            }
        })
        .collect();
    let t = table(
        &["stat", "rounds"],
        &[
            vec!["runs".to_string(), rounds.len().to_string()],
            vec!["min".to_string(), rounds[0].to_string()],
            vec!["p50".to_string(), p50.to_string()],
            vec!["p90".to_string(), p90.to_string()],
            vec!["p99".to_string(), p99.to_string()],
            vec!["max".to_string(), max.to_string()],
        ],
    );
    figure(
        "chart-convergence",
        "Convergence-time distribution",
        &format!(
            "{} runs — rounds p50 {p50}, p90 {p90}, p99 {p99}",
            rounds.len()
        ),
        "",
        &svg::vbar_chart(&bars, "rounds to convergence", "runs"),
        &t,
    )
}

/// Per-phase select/apply/guards wall-time breakdown from the scale
/// sweep, at the largest size per topology.
fn phases_section(art: &Artifacts) -> String {
    let Some(scale) = &art.scale else {
        return empty_figure(
            "chart-phases",
            "Per-phase time breakdown",
            "needs BENCH_SCALE.json (bench-scale-v2)",
        );
    };
    let mut tops: Vec<&str> = scale.runs.iter().map(|r| r.topology.as_str()).collect();
    tops.sort_unstable();
    tops.dedup();
    let mut bars = Vec::new();
    let mut rows = Vec::new();
    for top in tops {
        let max_n = scale
            .runs
            .iter()
            .filter(|r| r.topology == top)
            .map(|r| r.n)
            .max()
            .unwrap_or(0);
        for r in scale
            .runs
            .iter()
            .filter(|r| r.topology == top && r.n == max_n)
        {
            let phases = [
                ("select", r.phase_select_nanos, 1usize),
                ("apply", r.phase_apply_nanos, 2),
                ("guards", r.phase_guards_nanos, 3),
            ];
            for (phase, nanos, slot) in phases {
                let ms = nanos as f64 / 1.0e6;
                bars.push(HBar {
                    label: format!("{top} n={max_n} t={} · {phase}", r.threads),
                    value: ms,
                    marker: None,
                    tooltip: format!(
                        "{top} n={max_n} threads={}: {phase} {} ms",
                        r.threads,
                        fmt_num(ms)
                    ),
                    series: slot,
                });
            }
            rows.push(vec![
                r.cell(),
                fmt_num(r.phase_select_nanos as f64 / 1.0e6),
                fmt_num(r.phase_apply_nanos as f64 / 1.0e6),
                fmt_num(r.phase_guards_nanos as f64 / 1.0e6),
            ]);
        }
    }
    if bars.iter().all(|b| b.value == 0.0) {
        return empty_figure(
            "chart-phases",
            "Per-phase time breakdown",
            "scale sweep carries no phase timings",
        );
    }
    let legend = svg::legend(&[
        ("select".to_string(), 1),
        ("apply".to_string(), 2),
        ("guards".to_string(), 3),
    ]);
    let t = table(&["cell", "select ms", "apply ms", "guards ms"], &rows);
    figure(
        "chart-phases",
        "Per-phase time breakdown",
        "select / apply / guards wall time at the largest size per topology",
        &legend,
        &svg::hbar_chart(&bars, "milliseconds"),
        &t,
    )
}

/// Thread-scaling curves from the scale sweep: steps/sec over thread
/// count, one series per `(topology, n)` (largest sizes first, capped
/// at the 8 categorical slots).
fn scaling_section(art: &Artifacts) -> String {
    let Some(scale) = &art.scale else {
        return empty_figure(
            "chart-scaling",
            "Thread scaling",
            "needs BENCH_SCALE.json (bench-scale-v2)",
        );
    };
    let mut keys: Vec<(String, u64)> = scale
        .runs
        .iter()
        .map(|r| (r.topology.clone(), r.n))
        .collect();
    keys.sort_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
    keys.dedup();
    let shown = &keys[..keys.len().min(8)];
    let mut series = Vec::new();
    let mut rows = Vec::new();
    for (slot, (top, n)) in shown.iter().enumerate() {
        let mut points: Vec<(f64, f64)> = scale
            .runs
            .iter()
            .filter(|r| &r.topology == top && r.n == *n)
            .map(|r| {
                rows.push(vec![
                    r.cell(),
                    fmt_num(r.steps_per_sec),
                    fmt_num(r.moves_per_sec),
                    fmt_num(r.seconds),
                ]);
                (r.threads as f64, r.steps_per_sec)
            })
            .collect();
        points.sort_by(|a, b| a.0.total_cmp(&b.0));
        series.push(Series {
            name: format!("{top} n={n}"),
            points,
            series: slot + 1,
        });
    }
    let dropped = keys.len().saturating_sub(shown.len());
    let note = if dropped > 0 {
        format!(
            "steps/sec over intra-run threads — largest {} of {} (topology, n) cells shown",
            shown.len(),
            keys.len()
        )
    } else {
        "steps/sec over intra-run threads".to_string()
    };
    let legend = svg::legend(
        &series
            .iter()
            .map(|s| (s.name.clone(), s.series))
            .collect::<Vec<_>>(),
    );
    let t = table(&["cell", "steps/sec", "moves/sec", "seconds"], &rows);
    figure(
        "chart-scaling",
        "Thread scaling",
        &note,
        &legend,
        &svg::line_chart(&series, "threads", "steps/sec"),
        &t,
    )
}

/// Trace-derived run timeline: enabled-set size per step from the
/// first trace file, with per-step moves in the tooltip.
fn timeline_section(art: &Artifacts) -> String {
    let Some((name, rows)) = art.traces.first() else {
        return empty_figure(
            "chart-timeline",
            "Run timeline",
            "needs a trace JSONL file (run with --trace)",
        );
    };
    let mut steps: Vec<(u64, u64, u64)> = Vec::new(); // (step, enabled, moves)
    for r in rows {
        match r.event.as_str() {
            "step-started" => {
                steps.push((r.step.unwrap_or(0), r.enabled.unwrap_or(0), 0));
            }
            "moves-applied" => {
                if let Some(last) = steps.last_mut() {
                    last.2 = r.moves.unwrap_or(0);
                }
            }
            _ => {}
        }
    }
    let total = steps.len();
    steps.truncate(TIMELINE_CAP);
    let bars: Vec<VBar> = steps
        .iter()
        .map(|&(step, enabled, moves)| VBar {
            label: step.to_string(),
            value: enabled as f64,
            tooltip: format!("step {step}: {enabled} enabled, {moves} moves applied"),
            series: 7,
        })
        .collect();
    let ended = rows.iter().find(|r| r.event == "run-ended");
    let mut note = format!("{name} — enabled-set size per step");
    if let Some(e) = ended {
        let _ = write!(
            note,
            " (run: {} steps, {} moves, {} rounds, {})",
            e.steps.unwrap_or(0),
            e.moves.unwrap_or(0),
            e.rounds.unwrap_or(0),
            e.reason.as_deref().unwrap_or("?"),
        );
    }
    if total > TIMELINE_CAP {
        let _ = write!(note, " — first {TIMELINE_CAP} of {total} steps shown");
    }
    let t = table(
        &["step", "enabled", "moves"],
        &steps
            .iter()
            .map(|&(s, e, m)| vec![s.to_string(), e.to_string(), m.to_string()])
            .collect::<Vec<_>>(),
    );
    figure(
        "chart-timeline",
        "Run timeline",
        &note,
        "",
        &svg::vbar_chart(&bars, "step", "enabled processes"),
        &t,
    )
}

/// The perf-history section: one row per recorded entry.
fn history_section(art: &Artifacts) -> String {
    let mut s = String::from("<section id=\"history\"><h2>Perf history</h2>");
    if art.history.is_empty() {
        s.push_str("<p class=\"empty\">No BENCH_HISTORY.jsonl in this artifact set.</p>");
    } else {
        let rows: Vec<Vec<String>> = art
            .history
            .iter()
            .map(|e| {
                let best = e
                    .cells
                    .iter()
                    .map(|c| c.steps_per_sec)
                    .fold(0.0f64, f64::max);
                vec![
                    e.sha.clone(),
                    e.host.clone(),
                    e.source.clone(),
                    e.cells.len().to_string(),
                    fmt_num(best),
                ]
            })
            .collect();
        s.push_str(&table(
            &["sha", "host", "source", "cells", "best steps/sec"],
            &rows,
        ));
        let _ = write!(
            s,
            "<p class=\"note\">{} entries, oldest first. Gate with `report --check`.</p>",
            art.history.len()
        );
    }
    s.push_str("</section>");
    s
}

/// Campaign and metrics inventory (what the report was built from).
fn inventory_section(art: &Artifacts) -> String {
    let mut s = String::from("<section id=\"inventory\"><h2>Artifacts</h2><ul>");
    for (name, rows) in &art.campaigns {
        let _ = write!(
            s,
            "<li>campaign <code>{}</code> — {} records</li>",
            esc(name),
            rows.len()
        );
    }
    for (name, doc) in &art.metrics {
        let _ = write!(
            s,
            "<li>metrics <code>{}</code> — {} metrics</li>",
            esc(name),
            doc.metrics.len()
        );
    }
    for (name, rows) in &art.traces {
        let _ = write!(
            s,
            "<li>trace <code>{}</code> — {} events</li>",
            esc(name),
            rows.len()
        );
    }
    if let Some(b) = &art.bench {
        let _ = write!(
            s,
            "<li>bench results — profile {}, {} groups, all_pass {}</li>",
            esc(&b.profile),
            b.groups.len(),
            b.all_pass
        );
    }
    if let Some(sc) = &art.scale {
        let _ = write!(
            s,
            "<li>scale sweep — {} cells, smoke {}</li>",
            sc.runs.len(),
            sc.smoke
        );
    }
    for name in &art.skipped {
        let _ = write!(
            s,
            "<li>skipped (unrecognized) <code>{}</code></li>",
            esc(name)
        );
    }
    s.push_str("</ul></section>");
    s
}

/// The stylesheet: validated categorical palette and surface/ink
/// tokens as CSS custom properties, with a selected dark mode behind
/// both `prefers-color-scheme` and an explicit `data-theme` override.
const STYLE: &str = "\
:root{--surface:#fcfcfb;--ink:#0b0b0b;--ink-2:#52514e;--grid:#dcdbd5;\
--series-1:#2a78d6;--series-2:#eb6834;--series-3:#1baf7a;--series-4:#eda100;\
--series-5:#e87ba4;--series-6:#008300;--series-7:#4a3aa7;--series-8:#e34948}\
@media (prefers-color-scheme:dark){:root:not([data-theme=light])\
{--surface:#1a1a19;--ink:#ffffff;--ink-2:#c3c2b7;--grid:#3a3a37;\
--series-1:#3987e5;--series-2:#d95926;--series-3:#199e70;--series-4:#c98500;\
--series-5:#d55181;--series-6:#008300;--series-7:#9085e9;--series-8:#e66767}}\
[data-theme=dark]{--surface:#1a1a19;--ink:#ffffff;--ink-2:#c3c2b7;--grid:#3a3a37;\
--series-1:#3987e5;--series-2:#d95926;--series-3:#199e70;--series-4:#c98500;\
--series-5:#d55181;--series-6:#008300;--series-7:#9085e9;--series-8:#e66767}\
body{background:var(--surface);color:var(--ink);font:15px/1.5 system-ui,sans-serif;\
max-width:920px;margin:2rem auto;padding:0 1rem}\
h1{font-size:1.4rem}h2{font-size:1.1rem;margin:0 0 .25rem}\
figure{margin:2.5rem 0}figcaption .note,p.note{color:var(--ink-2);font-size:.85rem;margin:.1rem 0}\
p.empty{color:var(--ink-2);font-style:italic}\
svg{width:100%;height:auto;display:block;margin-top:.5rem}\
.s1{--c:var(--series-1)}.s2{--c:var(--series-2)}.s3{--c:var(--series-3)}\
.s4{--c:var(--series-4)}.s5{--c:var(--series-5)}.s6{--c:var(--series-6)}\
.s7{--c:var(--series-7)}.s8{--c:var(--series-8)}\
svg rect{fill:var(--c)}svg circle.dot{fill:var(--c);stroke:var(--surface);stroke-width:2}\
svg path.line{stroke:var(--c);stroke-width:2;fill:none}\
svg .grid{stroke:var(--grid);stroke-width:1}\
svg .marker{stroke:var(--ink);stroke-width:2}\
svg text{fill:var(--ink-2);font:11px system-ui,sans-serif}\
svg .axis-label{fill:var(--ink);font-size:12px}\
svg .row-label{fill:var(--ink)}\
.legend{display:flex;gap:1rem;flex-wrap:wrap;font-size:.85rem;color:var(--ink-2)}\
.legend-item{display:inline-flex;align-items:center;gap:.35rem}\
.swatch{width:10px;height:10px;border-radius:2px;display:inline-block;background:var(--c)}\
details{margin-top:.5rem}summary{cursor:pointer;color:var(--ink-2);font-size:.85rem}\
table{border-collapse:collapse;font-size:.85rem;margin-top:.5rem}\
th,td{border:1px solid var(--grid);padding:.25rem .6rem;text-align:left}\
th{color:var(--ink-2);font-weight:600}\
code{font-size:.85em}ul{color:var(--ink-2)}";

/// Renders the loaded artifact set as one self-contained HTML page.
pub fn render(art: &Artifacts) -> String {
    let mut s = String::with_capacity(32 * 1024);
    s.push_str("<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">");
    s.push_str("<meta name=\"viewport\" content=\"width=device-width,initial-scale=1\">");
    s.push_str("<title>ssr campaign report</title>");
    let _ = write!(s, "<style>{STYLE}</style>");
    s.push_str("</head><body><h1>ssr campaign report</h1>");
    s.push_str(
        "<p class=\"note\">Self-contained report over the stack&#39;s own artifacts. \
         Byte-identical for a given artifact set — diff two reports to diff two runs.</p>",
    );
    s.push_str(&bounds_section(art));
    s.push_str(&convergence_section(art));
    s.push_str(&phases_section(art));
    s.push_str(&scaling_section(art));
    s.push_str(&timeline_section(art));
    s.push_str(&history_section(art));
    s.push_str(&inventory_section(art));
    s.push_str("</body></html>\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every chart anchor must be present even over an empty set.
    #[test]
    fn empty_artifact_set_still_emits_all_anchors() {
        let html = render(&Artifacts::default());
        for id in [
            "chart-bounds",
            "chart-convergence",
            "chart-phases",
            "chart-scaling",
            "chart-timeline",
            "history",
            "inventory",
        ] {
            assert!(html.contains(&format!("id=\"{id}\"")), "missing {id}");
        }
        assert!(html.contains("<!DOCTYPE html>"));
    }

    #[test]
    fn render_is_deterministic() {
        let mut art = Artifacts::default();
        art.campaigns.push((
            "c.jsonl".to_string(),
            reader::parse_campaign_jsonl(
                r#"{"campaign":"c","index":0,"topology":"ring","n":8,"nodes":8,"edges":8,"max_degree":2,"diameter":4,"algorithm":"unison-sdr","daemon":"central","init":"arbitrary","trial":1,"seed":7,"reached":true,"terminal":true,"reason":"terminal","steps":10,"moves":12,"rounds":5,"max_moves_per_process":3,"bound_rounds":24,"bound_moves":null,"verdict":"pass"}"#,
            )
            .unwrap(),
        ));
        let one = render(&art);
        let two = render(&art);
        assert_eq!(one, two);
        assert!(one.contains("unison-sdr"));
        // The bounds marker for bound_rounds=24 is drawn.
        assert!(one.contains("class=\"marker\""));
    }

    #[test]
    fn push_campaign_jsonl_matches_manual_parse_and_sorts() {
        let line = r#"{"campaign":"c","index":0,"topology":"ring","n":8,"nodes":8,"edges":8,"max_degree":2,"diameter":4,"algorithm":"unison-sdr","daemon":"central","init":"arbitrary","trial":1,"seed":7,"reached":true,"terminal":true,"reason":"terminal","steps":10,"moves":12,"rounds":5,"max_moves_per_process":3,"bound_rounds":24,"bound_moves":null,"verdict":"pass"}"#;
        let mut art = Artifacts::default();
        art.push_campaign_jsonl("z.jsonl", line).unwrap();
        art.push_campaign_jsonl("a.jsonl", line).unwrap();
        assert_eq!(art.campaigns.len(), 2);
        assert_eq!(art.campaigns[0].0, "a.jsonl");
        assert_eq!(
            art.campaigns[1].1,
            reader::parse_campaign_jsonl(line).unwrap()
        );
        assert!(art
            .push_campaign_jsonl("bad.jsonl", "{\"nope\":1}")
            .is_err());
    }

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50.0), 50);
        assert_eq!(percentile(&v, 90.0), 90);
        assert_eq!(percentile(&v, 99.0), 99);
        assert_eq!(percentile(&[], 50.0), 0);
        assert_eq!(percentile(&[7], 99.0), 7);
    }
}
