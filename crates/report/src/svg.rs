//! Hand-rolled, deterministic inline-SVG chart builders.
//!
//! Everything here is a pure function of its inputs: coordinates are
//! formatted with fixed precision, iteration order is the caller's,
//! and no ambient state (time, RNG, locale) is consulted — so a report
//! built from the same artifacts is byte-identical on any machine at
//! any thread count.
//!
//! Colors are *not* baked in: marks reference the `--series-N`,
//! `--ink-*`, and `--grid` CSS custom properties that the HTML shell
//! defines (with validated light and dark values), so the same SVG
//! adapts to `prefers-color-scheme` for free.

use std::fmt::Write as _;

/// Escapes text for SVG/HTML content and attribute positions.
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            c => out.push(c),
        }
    }
    out
}

/// Deterministic human formatting: integers bare, everything else with
/// two decimals (trailing zeros trimmed).
pub fn fmt_num(v: f64) -> String {
    if !v.is_finite() {
        return "–".to_string();
    }
    if v.trunc() == v && v.abs() < 1e15 {
        return format!("{}", v as i64);
    }
    let s = format!("{v:.2}");
    let s = s.trim_end_matches('0').trim_end_matches('.');
    s.to_string()
}

/// Fixed-precision pixel coordinate (two decimals, no negative zero).
fn px(v: f64) -> String {
    let r = (v * 100.0).round() / 100.0;
    let r = if r == 0.0 { 0.0 } else { r };
    let s = format!("{r:.2}");
    s.trim_end_matches('0').trim_end_matches('.').to_string()
}

/// "Nice" axis ceiling: the smallest 1/2/5 × 10^k at or above `max`.
fn nice_ceiling(max: f64) -> f64 {
    if max <= 0.0 || !max.is_finite() {
        return 1.0;
    }
    let exp = max.log10().floor();
    let base = 10f64.powf(exp);
    for mult in [1.0, 2.0, 5.0, 10.0] {
        if base * mult >= max {
            return base * mult;
        }
    }
    base * 10.0
}

/// One bar of a horizontal bar chart.
pub struct HBar {
    /// Row label (left gutter).
    pub label: String,
    /// Bar length in data units.
    pub value: f64,
    /// Optional reference marker (e.g. a closed-form bound) drawn as a
    /// tick at this data position.
    pub marker: Option<f64>,
    /// Tooltip text (native SVG `<title>`).
    pub tooltip: String,
    /// 1-based categorical palette slot for the bar fill.
    pub series: usize,
}

/// A horizontal bar chart with an optional per-row reference marker.
/// One x-axis in data units; row labels in the left gutter.
pub fn hbar_chart(bars: &[HBar], x_label: &str) -> String {
    const GUTTER: f64 = 190.0;
    const PLOT_W: f64 = 560.0;
    const ROW_H: f64 = 26.0;
    const BAR_H: f64 = 14.0;
    const TOP: f64 = 8.0;
    const AXIS_H: f64 = 34.0;
    let max = bars
        .iter()
        .flat_map(|b| [b.value, b.marker.unwrap_or(0.0)])
        .fold(0.0f64, f64::max);
    let ceil = nice_ceiling(max);
    let height = TOP + bars.len() as f64 * ROW_H + AXIS_H;
    let width = GUTTER + PLOT_W + 20.0;
    let mut s = String::new();
    let _ = write!(
        s,
        "<svg viewBox=\"0 0 {} {}\" role=\"img\" xmlns=\"http://www.w3.org/2000/svg\">",
        px(width),
        px(height)
    );
    // Gridlines + axis ticks at quarters of the ceiling.
    let axis_y = TOP + bars.len() as f64 * ROW_H;
    for q in 0..=4u32 {
        let x = GUTTER + PLOT_W * f64::from(q) / 4.0;
        let _ = write!(
            s,
            "<line x1=\"{x}\" y1=\"{y1}\" x2=\"{x}\" y2=\"{y2}\" class=\"grid\"/>\
             <text x=\"{x}\" y=\"{ty}\" class=\"tick\" text-anchor=\"middle\">{t}</text>",
            x = px(x),
            y1 = px(TOP),
            y2 = px(axis_y),
            ty = px(axis_y + 14.0),
            t = esc(&fmt_num(ceil * f64::from(q) / 4.0)),
        );
    }
    let _ = write!(
        s,
        "<text x=\"{x}\" y=\"{y}\" class=\"axis-label\" text-anchor=\"middle\">{t}</text>",
        x = px(GUTTER + PLOT_W / 2.0),
        y = px(axis_y + 30.0),
        t = esc(x_label),
    );
    for (i, b) in bars.iter().enumerate() {
        let y = TOP + i as f64 * ROW_H;
        let w = if ceil > 0.0 {
            b.value / ceil * PLOT_W
        } else {
            0.0
        };
        let _ = write!(
            s,
            "<text x=\"{lx}\" y=\"{ly}\" class=\"row-label\" text-anchor=\"end\">{label}</text>\
             <rect x=\"{bx}\" y=\"{by}\" width=\"{bw}\" height=\"{bh}\" rx=\"3\" \
             class=\"s{series}\"><title>{tip}</title></rect>",
            lx = px(GUTTER - 8.0),
            ly = px(y + BAR_H),
            label = esc(&b.label),
            bx = px(GUTTER),
            by = px(y + (ROW_H - BAR_H) / 2.0),
            bw = px(w.max(1.0)),
            bh = px(BAR_H),
            series = b.series,
            tip = esc(&b.tooltip),
        );
        if let Some(m) = b.marker {
            let mx = GUTTER + (m / ceil * PLOT_W);
            let _ = write!(
                s,
                "<line x1=\"{x}\" y1=\"{y1}\" x2=\"{x}\" y2=\"{y2}\" class=\"marker\">\
                 <title>bound {t}</title></line>",
                x = px(mx),
                y1 = px(y + 2.0),
                y2 = px(y + ROW_H - 2.0),
                t = esc(&fmt_num(m)),
            );
        }
    }
    s.push_str("</svg>");
    s
}

/// One series of a line chart.
pub struct Series {
    /// Series name (legend entry).
    pub name: String,
    /// `(x, y)` points in ascending-x order.
    pub points: Vec<(f64, f64)>,
    /// 1-based categorical palette slot.
    pub series: usize,
}

/// A multi-series line chart: one y-axis, shared x-axis, 2px lines,
/// ≥8px hover targets with native tooltips on every point.
pub fn line_chart(series: &[Series], x_label: &str, y_label: &str) -> String {
    const LEFT: f64 = 70.0;
    const PLOT_W: f64 = 600.0;
    const PLOT_H: f64 = 220.0;
    const TOP: f64 = 12.0;
    const AXIS_H: f64 = 40.0;
    let xs: Vec<f64> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.0))
        .collect();
    let ys: Vec<f64> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.1))
        .collect();
    // The x axis always starts at the origin: every use is a count
    // (thread counts, step indices), never negative.
    let x_min = 0.0f64;
    let x_max = xs.iter().copied().fold(0.0f64, f64::max).max(x_min + 1.0);
    let y_ceil = nice_ceiling(ys.iter().copied().fold(0.0f64, f64::max));
    let width = LEFT + PLOT_W + 20.0;
    let height = TOP + PLOT_H + AXIS_H;
    let sx = |x: f64| LEFT + (x - x_min) / (x_max - x_min) * PLOT_W;
    let sy = |y: f64| TOP + PLOT_H - (y / y_ceil) * PLOT_H;
    let mut s = String::new();
    let _ = write!(
        s,
        "<svg viewBox=\"0 0 {} {}\" role=\"img\" xmlns=\"http://www.w3.org/2000/svg\">",
        px(width),
        px(height)
    );
    for q in 0..=4u32 {
        let frac = f64::from(q) / 4.0;
        let y = TOP + PLOT_H * (1.0 - frac);
        let _ = write!(
            s,
            "<line x1=\"{x1}\" y1=\"{y}\" x2=\"{x2}\" y2=\"{y}\" class=\"grid\"/>\
             <text x=\"{tx}\" y=\"{ty}\" class=\"tick\" text-anchor=\"end\">{t}</text>",
            x1 = px(LEFT),
            x2 = px(LEFT + PLOT_W),
            y = px(y),
            tx = px(LEFT - 8.0),
            ty = px(y + 4.0),
            t = esc(&fmt_num(y_ceil * frac)),
        );
    }
    // X ticks at each distinct x across all series (sweeps are small).
    let mut ticks: Vec<f64> = xs.clone();
    ticks.sort_by(f64::total_cmp);
    ticks.dedup();
    for &x in &ticks {
        let _ = write!(
            s,
            "<text x=\"{tx}\" y=\"{ty}\" class=\"tick\" text-anchor=\"middle\">{t}</text>",
            tx = px(sx(x)),
            ty = px(TOP + PLOT_H + 16.0),
            t = esc(&fmt_num(x)),
        );
    }
    let _ = write!(
        s,
        "<text x=\"{x}\" y=\"{y}\" class=\"axis-label\" text-anchor=\"middle\">{t}</text>\
         <text x=\"14\" y=\"{ly}\" class=\"axis-label\" text-anchor=\"middle\" \
         transform=\"rotate(-90 14 {ly})\">{l}</text>",
        x = px(LEFT + PLOT_W / 2.0),
        y = px(TOP + PLOT_H + 34.0),
        t = esc(x_label),
        ly = px(TOP + PLOT_H / 2.0),
        l = esc(y_label),
    );
    for ser in series {
        if ser.points.is_empty() {
            continue;
        }
        let mut d = String::new();
        for (i, &(x, y)) in ser.points.iter().enumerate() {
            let _ = write!(
                d,
                "{}{} {}",
                if i == 0 { "M" } else { " L" },
                px(sx(x)),
                px(sy(y))
            );
        }
        let _ = write!(
            s,
            "<path d=\"{d}\" class=\"line s{slot}\" fill=\"none\"/>",
            slot = ser.series
        );
        for &(x, y) in &ser.points {
            let _ = write!(
                s,
                "<circle cx=\"{cx}\" cy=\"{cy}\" r=\"4\" class=\"dot s{slot}\">\
                 <title>{name}: x={xv}, y={yv}</title></circle>",
                cx = px(sx(x)),
                cy = px(sy(y)),
                slot = ser.series,
                name = esc(&ser.name),
                xv = esc(&fmt_num(x)),
                yv = esc(&fmt_num(y)),
            );
        }
    }
    s.push_str("</svg>");
    s
}

/// One column of a vertical bar chart (histogram bucket, timeline
/// step, …).
pub struct VBar {
    /// Column label (x tick).
    pub label: String,
    /// Column height in data units.
    pub value: f64,
    /// Tooltip text.
    pub tooltip: String,
    /// 1-based categorical palette slot.
    pub series: usize,
}

/// A vertical bar chart with a 2px surface gap between adjacent bars.
/// Labels thin out automatically when there are many columns.
pub fn vbar_chart(bars: &[VBar], x_label: &str, y_label: &str) -> String {
    const LEFT: f64 = 70.0;
    const PLOT_W: f64 = 600.0;
    const PLOT_H: f64 = 200.0;
    const TOP: f64 = 12.0;
    const AXIS_H: f64 = 40.0;
    let y_ceil = nice_ceiling(bars.iter().map(|b| b.value).fold(0.0f64, f64::max));
    let width = LEFT + PLOT_W + 20.0;
    let height = TOP + PLOT_H + AXIS_H;
    let slot_w = PLOT_W / (bars.len().max(1) as f64);
    let bar_w = (slot_w - 2.0).max(1.0);
    // At most ~12 x labels; step chosen so ticks stay readable.
    let label_step = bars.len().div_ceil(12).max(1);
    let mut s = String::new();
    let _ = write!(
        s,
        "<svg viewBox=\"0 0 {} {}\" role=\"img\" xmlns=\"http://www.w3.org/2000/svg\">",
        px(width),
        px(height)
    );
    for q in 0..=4u32 {
        let frac = f64::from(q) / 4.0;
        let y = TOP + PLOT_H * (1.0 - frac);
        let _ = write!(
            s,
            "<line x1=\"{x1}\" y1=\"{y}\" x2=\"{x2}\" y2=\"{y}\" class=\"grid\"/>\
             <text x=\"{tx}\" y=\"{ty}\" class=\"tick\" text-anchor=\"end\">{t}</text>",
            x1 = px(LEFT),
            x2 = px(LEFT + PLOT_W),
            y = px(y),
            tx = px(LEFT - 8.0),
            ty = px(y + 4.0),
            t = esc(&fmt_num(y_ceil * frac)),
        );
    }
    for (i, b) in bars.iter().enumerate() {
        let x = LEFT + i as f64 * slot_w + 1.0;
        let h = if y_ceil > 0.0 {
            (b.value / y_ceil * PLOT_H).max(if b.value > 0.0 { 1.0 } else { 0.0 })
        } else {
            0.0
        };
        let _ = write!(
            s,
            "<rect x=\"{x}\" y=\"{y}\" width=\"{w}\" height=\"{h}\" rx=\"2\" \
             class=\"s{slot}\"><title>{tip}</title></rect>",
            x = px(x),
            y = px(TOP + PLOT_H - h),
            w = px(bar_w),
            h = px(h),
            slot = b.series,
            tip = esc(&b.tooltip),
        );
        if i % label_step == 0 {
            let _ = write!(
                s,
                "<text x=\"{tx}\" y=\"{ty}\" class=\"tick\" text-anchor=\"middle\">{t}</text>",
                tx = px(x + bar_w / 2.0),
                ty = px(TOP + PLOT_H + 16.0),
                t = esc(&b.label),
            );
        }
    }
    let _ = write!(
        s,
        "<text x=\"{x}\" y=\"{y}\" class=\"axis-label\" text-anchor=\"middle\">{t}</text>\
         <text x=\"14\" y=\"{ly}\" class=\"axis-label\" text-anchor=\"middle\" \
         transform=\"rotate(-90 14 {ly})\">{l}</text>",
        x = px(LEFT + PLOT_W / 2.0),
        y = px(TOP + PLOT_H + 34.0),
        t = esc(x_label),
        ly = px(TOP + PLOT_H / 2.0),
        l = esc(y_label),
    );
    s.push_str("</svg>");
    s
}

/// A legend line for ≥ 2 series: colored swatch + name in text ink.
pub fn legend(entries: &[(String, usize)]) -> String {
    if entries.len() < 2 {
        return String::new();
    }
    let mut s = String::from("<div class=\"legend\">");
    for (name, slot) in entries {
        let _ = write!(
            s,
            "<span class=\"legend-item\"><span class=\"swatch s{slot}\"></span>{}</span>",
            esc(name)
        );
    }
    s.push_str("</div>");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_num_is_stable() {
        assert_eq!(fmt_num(0.0), "0");
        assert_eq!(fmt_num(12.0), "12");
        assert_eq!(fmt_num(12.5), "12.5");
        assert_eq!(fmt_num(12.345), "12.35");
        assert_eq!(fmt_num(f64::NAN), "–");
    }

    #[test]
    fn nice_ceiling_snaps_up() {
        assert_eq!(nice_ceiling(0.0), 1.0);
        assert_eq!(nice_ceiling(7.0), 10.0);
        assert_eq!(nice_ceiling(14.0), 20.0);
        assert_eq!(nice_ceiling(50.0), 50.0);
        assert_eq!(nice_ceiling(430.0), 500.0);
    }

    #[test]
    fn charts_are_deterministic_and_escaped() {
        let bars = vec![HBar {
            label: "a<b>".to_string(),
            value: 3.0,
            marker: Some(5.0),
            tooltip: "3 \"moves\"".to_string(),
            series: 1,
        }];
        let one = hbar_chart(&bars, "moves");
        let two = hbar_chart(&bars, "moves");
        assert_eq!(one, two);
        assert!(one.contains("a&lt;b&gt;"));
        assert!(one.contains("&quot;moves&quot;"));
        assert!(one.contains("class=\"marker\""));
    }

    #[test]
    fn line_chart_emits_series_and_tooltips() {
        let s = line_chart(
            &[
                Series {
                    name: "ring".to_string(),
                    points: vec![(1.0, 10.0), (2.0, 18.0)],
                    series: 1,
                },
                Series {
                    name: "torus".to_string(),
                    points: vec![(1.0, 9.0), (2.0, 15.0)],
                    series: 2,
                },
            ],
            "threads",
            "steps/sec",
        );
        assert!(s.contains("class=\"line s1\""));
        assert!(s.contains("class=\"line s2\""));
        assert!(s.contains("<title>torus: x=2, y=15</title>"));
    }

    #[test]
    fn legend_needs_two_series() {
        assert!(legend(&[("solo".to_string(), 1)]).is_empty());
        let l = legend(&[("a".to_string(), 1), ("b".to_string(), 2)]);
        assert!(l.contains("swatch s1") && l.contains("swatch s2"));
    }

    #[test]
    fn vbar_thins_labels() {
        let bars: Vec<VBar> = (0..40)
            .map(|i| VBar {
                label: format!("{i}"),
                value: f64::from(i),
                tooltip: format!("bucket {i}"),
                series: 3,
            })
            .collect();
        let s = vbar_chart(&bars, "bucket", "count");
        // 40 columns, step 4 → exactly 10 x tick labels.
        assert_eq!(
            s.matches("class=\"tick\" text-anchor=\"middle\"").count(),
            10
        );
    }
}
