//! Typed readers for the artifacts the stack writes: campaign
//! JSONL/CSV, `ssr-metrics-v1` snapshots, trace JSONL (`DESIGN.md`
//! §10), `BENCH_RESULTS.json` (`ssr-bench-results/v1`), and
//! `BENCH_SCALE.json` (`bench-scale-v2`).
//!
//! Every reader is the exact inverse of a hand-rolled writer elsewhere
//! in the workspace, built on the shared recursive-descent parser in
//! [`ssr_obs::json`]; proptests in `tests/reader_roundtrip.rs` pin the
//! round trips against the live writers. Readers validate as they
//! parse — a file that parses is also schema-conformant.

use ssr_obs::json::{self, Value};

/// One campaign scenario record, as written by
/// `ssr_campaign::output::jsonl`/`csv`.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignRow {
    /// Campaign id.
    pub campaign: String,
    /// Grid index of the scenario.
    pub index: u64,
    /// Topology label.
    pub topology: String,
    /// Requested size parameter.
    pub n: u64,
    /// Actual node count.
    pub nodes: u64,
    /// Edge count.
    pub edges: u64,
    /// Maximum degree.
    pub max_degree: u64,
    /// Graph diameter.
    pub diameter: u64,
    /// Algorithm family label.
    pub algorithm: String,
    /// Daemon label.
    pub daemon: String,
    /// Init-plan label.
    pub init: String,
    /// Trial number.
    pub trial: u64,
    /// Derived RNG seed.
    pub seed: u64,
    /// Whether the target predicate was reached.
    pub reached: bool,
    /// Whether the run ended in a terminal configuration.
    pub terminal: bool,
    /// Termination reason (`None` when the run recorded none).
    pub reason: Option<String>,
    /// Steps taken.
    pub steps: u64,
    /// Moves made.
    pub moves: u64,
    /// Rounds completed.
    pub rounds: u64,
    /// Maximum moves by any one process.
    pub max_moves_per_process: u64,
    /// Closed-form round bound, when one applies.
    pub bound_rounds: Option<u64>,
    /// Closed-form move bound, when one applies.
    pub bound_moves: Option<u64>,
    /// Bound verdict (`pass`/`fail`/`no-bound`/`skip`).
    pub verdict: String,
}

fn opt_u64(v: &Value, key: &str, what: &str) -> Result<Option<u64>, String> {
    match json::field(v, key, what)? {
        Value::Null => Ok(None),
        other => other
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("{what}.{key} must be an unsigned integer or null")),
    }
}

fn opt_str(v: &Value, key: &str, what: &str) -> Result<Option<String>, String> {
    match json::field(v, key, what)? {
        Value::Null => Ok(None),
        other => other
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| format!("{what}.{key} must be a string or null")),
    }
}

fn campaign_row(v: &Value, what: &str) -> Result<CampaignRow, String> {
    Ok(CampaignRow {
        campaign: json::str_field(v, "campaign", what)?,
        index: json::u64_field(v, "index", what)?,
        topology: json::str_field(v, "topology", what)?,
        n: json::u64_field(v, "n", what)?,
        nodes: json::u64_field(v, "nodes", what)?,
        edges: json::u64_field(v, "edges", what)?,
        max_degree: json::u64_field(v, "max_degree", what)?,
        diameter: json::u64_field(v, "diameter", what)?,
        algorithm: json::str_field(v, "algorithm", what)?,
        daemon: json::str_field(v, "daemon", what)?,
        init: json::str_field(v, "init", what)?,
        trial: json::u64_field(v, "trial", what)?,
        seed: json::u64_field(v, "seed", what)?,
        reached: json::bool_field(v, "reached", what)?,
        terminal: json::bool_field(v, "terminal", what)?,
        reason: opt_str(v, "reason", what)?,
        steps: json::u64_field(v, "steps", what)?,
        moves: json::u64_field(v, "moves", what)?,
        rounds: json::u64_field(v, "rounds", what)?,
        max_moves_per_process: json::u64_field(v, "max_moves_per_process", what)?,
        bound_rounds: opt_u64(v, "bound_rounds", what)?,
        bound_moves: opt_u64(v, "bound_moves", what)?,
        verdict: json::str_field(v, "verdict", what)?,
    })
}

/// Parses campaign JSONL (the `ssr_campaign::output::jsonl` format).
pub fn parse_campaign_jsonl(text: &str) -> Result<Vec<CampaignRow>, String> {
    json::parse_jsonl(text)?
        .iter()
        .enumerate()
        .map(|(i, v)| campaign_row(v, &format!("record[{i}]")))
        .collect()
}

/// The fixed campaign CSV header (`ssr_campaign::output::csv`).
const CSV_COLUMNS: [&str; 23] = [
    "campaign",
    "index",
    "topology",
    "n",
    "nodes",
    "edges",
    "max_degree",
    "diameter",
    "algorithm",
    "daemon",
    "init",
    "trial",
    "seed",
    "reached",
    "terminal",
    "reason",
    "steps",
    "moves",
    "rounds",
    "max_moves_per_process",
    "bound_rounds",
    "bound_moves",
    "verdict",
];

/// Splits one CSV record with RFC-4180 quoting (`""` escapes a quote
/// inside a quoted field). The writer never emits embedded newlines
/// in practice, so records are lines.
fn split_csv(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    field.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' => in_quotes = true,
            ',' if !in_quotes => fields.push(std::mem::take(&mut field)),
            c => field.push(c),
        }
    }
    fields.push(field);
    fields
}

/// Parses campaign CSV (the `ssr_campaign::output::csv` format,
/// header required).
pub fn parse_campaign_csv(text: &str) -> Result<Vec<CampaignRow>, String> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or("empty CSV document")?;
    let cols = split_csv(header);
    if cols != CSV_COLUMNS {
        return Err(format!("unexpected CSV header: {header:?}"));
    }
    let mut out = Vec::new();
    for (i, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let what = format!("row {}", i + 1);
        let fields = split_csv(line);
        if fields.len() != CSV_COLUMNS.len() {
            return Err(format!(
                "{what}: {} fields, expected {}",
                fields.len(),
                CSV_COLUMNS.len()
            ));
        }
        let u = |idx: usize| -> Result<u64, String> {
            fields[idx]
                .parse::<u64>()
                .map_err(|_| format!("{what}: field {} is not an integer", CSV_COLUMNS[idx]))
        };
        let b = |idx: usize| -> Result<bool, String> {
            fields[idx]
                .parse::<bool>()
                .map_err(|_| format!("{what}: field {} is not a boolean", CSV_COLUMNS[idx]))
        };
        let opt = |idx: usize| -> Result<Option<u64>, String> {
            if fields[idx].is_empty() {
                Ok(None)
            } else {
                u(idx).map(Some)
            }
        };
        out.push(CampaignRow {
            campaign: fields[0].clone(),
            index: u(1)?,
            topology: fields[2].clone(),
            n: u(3)?,
            nodes: u(4)?,
            edges: u(5)?,
            max_degree: u(6)?,
            diameter: u(7)?,
            algorithm: fields[8].clone(),
            daemon: fields[9].clone(),
            init: fields[10].clone(),
            trial: u(11)?,
            seed: u(12)?,
            reached: b(13)?,
            terminal: b(14)?,
            reason: (!fields[15].is_empty()).then(|| fields[15].clone()),
            steps: u(16)?,
            moves: u(17)?,
            rounds: u(18)?,
            max_moves_per_process: u(19)?,
            bound_rounds: opt(20)?,
            bound_moves: opt(21)?,
            verdict: fields[22].clone(),
        });
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// ssr-metrics-v1
// ---------------------------------------------------------------------

/// One metric value from an `ssr-metrics-v1` snapshot.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// A counter.
    Counter(u64),
    /// A gauge with its extrema and last sample.
    Gauge {
        /// Smallest sampled value.
        min: u64,
        /// Largest sampled value.
        max: u64,
        /// Last sampled value.
        last: u64,
    },
    /// A power-of-two-bucket histogram.
    Histogram {
        /// Number of recorded values.
        count: u64,
        /// Sum of recorded values.
        sum: u64,
        /// Smallest recorded value.
        min: u64,
        /// Largest recorded value.
        max: u64,
        /// Non-empty buckets as `(inclusive_upper_bound, count)`.
        buckets: Vec<(u64, u64)>,
    },
}

/// A parsed `ssr-metrics-v1` snapshot, keys in document (sorted)
/// order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsDoc {
    /// `(key, value)` pairs.
    pub metrics: Vec<(String, MetricValue)>,
}

impl MetricsDoc {
    /// The metric under `key`, if present.
    pub fn get(&self, key: &str) -> Option<&MetricValue> {
        self.metrics.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Sum of histogram `key` (0 when absent or not a histogram).
    pub fn histogram_sum(&self, key: &str) -> u64 {
        match self.get(key) {
            Some(MetricValue::Histogram { sum, .. }) => *sum,
            _ => 0,
        }
    }
}

/// Parses (and thereby validates) an `ssr-metrics-v1` snapshot.
pub fn parse_metrics_json(text: &str) -> Result<MetricsDoc, String> {
    let root = json::parse(text)?;
    let schema = json::str_field(&root, "schema", "document")?;
    if schema != "ssr-metrics-v1" {
        return Err(format!("schema is `{schema}`, expected `ssr-metrics-v1`"));
    }
    let metrics = json::field(&root, "metrics", "document")?;
    let members = json::obj(metrics, "document.metrics")?;
    let mut out = Vec::with_capacity(members.len());
    for (key, m) in members {
        let what = format!("metrics[{key:?}]");
        let value = match json::str_field(m, "type", &what)?.as_str() {
            "counter" => MetricValue::Counter(json::u64_field(m, "value", &what)?),
            "gauge" => MetricValue::Gauge {
                min: json::u64_field(m, "min", &what)?,
                max: json::u64_field(m, "max", &what)?,
                last: json::u64_field(m, "last", &what)?,
            },
            "histogram" => {
                let mut buckets = Vec::new();
                for (i, pair) in json::arr(
                    json::field(m, "buckets", &what)?,
                    &format!("{what}.buckets"),
                )?
                .iter()
                .enumerate()
                {
                    let bwhat = format!("{what}.buckets[{i}]");
                    let pair = json::arr(pair, &bwhat)?;
                    if pair.len() != 2 {
                        return Err(format!("{bwhat} must be a [upper_bound, count] pair"));
                    }
                    let le = pair[0]
                        .as_u64()
                        .ok_or_else(|| format!("{bwhat}[0] must be an unsigned integer"))?;
                    let c = pair[1]
                        .as_u64()
                        .ok_or_else(|| format!("{bwhat}[1] must be an unsigned integer"))?;
                    buckets.push((le, c));
                }
                MetricValue::Histogram {
                    count: json::u64_field(m, "count", &what)?,
                    sum: json::u64_field(m, "sum", &what)?,
                    min: json::u64_field(m, "min", &what)?,
                    max: json::u64_field(m, "max", &what)?,
                    buckets,
                }
            }
            other => {
                return Err(format!(
                    "{what}.type `{other}` is not counter|gauge|histogram"
                ))
            }
        };
        out.push((key.clone(), value));
    }
    Ok(MetricsDoc { metrics: out })
}

// ---------------------------------------------------------------------
// Trace JSONL (DESIGN.md §10)
// ---------------------------------------------------------------------

/// One trace event row (the union of the §10 event fields; absent
/// fields are `None`).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceRow {
    /// Event discriminator (`step-started`, `moves-applied`, …).
    pub event: String,
    /// Step index, for per-step events.
    pub step: Option<u64>,
    /// Enabled-set size.
    pub enabled: Option<u64>,
    /// Moves applied this step (or total, for `run-ended`).
    pub moves: Option<u64>,
    /// Rounds completed (or total, for `run-ended`).
    pub rounds: Option<u64>,
    /// Total steps (for `run-ended`).
    pub steps: Option<u64>,
    /// Phase name (for `phase-timed`).
    pub phase: Option<String>,
    /// Phase wall time in nanoseconds (for `phase-timed`).
    pub nanos: Option<u64>,
    /// Termination reason (for `run-ended`).
    pub reason: Option<String>,
    /// Conflict classes of the applied selection, when measured.
    pub conflict_classes: Option<u64>,
}

/// Parses a trace JSONL file; every line is also validated against the
/// §10 event schema via [`ssr_obs::trace::validate_jsonl_line`].
pub fn parse_trace_jsonl(text: &str) -> Result<Vec<TraceRow>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        ssr_obs::trace::validate_jsonl_line(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let v = json::parse(line.trim()).map_err(|e| format!("line {}: {e}", i + 1))?;
        let opt = |key: &str| v.get(key).and_then(Value::as_u64);
        out.push(TraceRow {
            event: v
                .get("event")
                .and_then(Value::as_str)
                .expect("validated above")
                .to_string(),
            step: opt("step"),
            enabled: opt("enabled"),
            moves: opt("moves"),
            rounds: opt("rounds"),
            steps: opt("steps"),
            phase: v.get("phase").and_then(Value::as_str).map(str::to_string),
            nanos: opt("nanos"),
            reason: v.get("reason").and_then(Value::as_str).map(str::to_string),
            conflict_classes: opt("conflict_classes"),
        });
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// BENCH_RESULTS.json (ssr-bench-results/v1)
// ---------------------------------------------------------------------

/// One experiment group of a `BENCH_RESULTS.json` document.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchGroup {
    /// Group id (`E1+E2`, …).
    pub id: String,
    /// Human claim title.
    pub title: String,
    /// Swept sizes.
    pub sizes: Vec<u64>,
    /// Headline rounds KPI.
    pub rounds: u64,
    /// Headline moves KPI.
    pub moves: u64,
    /// Headline closed-form bound.
    pub bound: u64,
    /// `pass` / `fail`.
    pub verdict: String,
}

/// A parsed `ssr-bench-results/v1` document.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchResultsDoc {
    /// `quick` or `full`.
    pub profile: String,
    /// Whether every group passed.
    pub all_pass: bool,
    /// The experiment groups, in document order.
    pub groups: Vec<BenchGroup>,
}

/// Parses (and thereby validates) a `BENCH_RESULTS.json` document.
pub fn parse_bench_results(text: &str) -> Result<BenchResultsDoc, String> {
    let root = json::parse(text)?;
    let schema = json::str_field(&root, "schema", "document")?;
    if schema != "ssr-bench-results/v1" {
        return Err(format!(
            "schema is `{schema}`, expected `ssr-bench-results/v1`"
        ));
    }
    let mut groups = Vec::new();
    for (i, g) in json::arr(json::field(&root, "groups", "document")?, "groups")?
        .iter()
        .enumerate()
    {
        let what = format!("groups[{i}]");
        let sizes = json::arr(json::field(g, "sizes", &what)?, &format!("{what}.sizes"))?
            .iter()
            .enumerate()
            .map(|(j, s)| {
                s.as_u64()
                    .ok_or_else(|| format!("{what}.sizes[{j}] must be an unsigned integer"))
            })
            .collect::<Result<Vec<u64>, String>>()?;
        groups.push(BenchGroup {
            id: json::str_field(g, "id", &what)?,
            title: json::str_field(g, "title", &what)?,
            sizes,
            rounds: json::u64_field(g, "rounds", &what)?,
            moves: json::u64_field(g, "moves", &what)?,
            bound: json::u64_field(g, "bound", &what)?,
            verdict: json::str_field(g, "verdict", &what)?,
        });
    }
    Ok(BenchResultsDoc {
        profile: json::str_field(&root, "profile", "document")?,
        all_pass: json::bool_field(&root, "all_pass", "document")?,
        groups,
    })
}

// ---------------------------------------------------------------------
// BENCH_SCALE.json (bench-scale-v2)
// ---------------------------------------------------------------------

/// One measured cell of a `bench-scale-v2` sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct ScaleRun {
    /// Topology (`ring` / `torus`).
    pub topology: String,
    /// Node count.
    pub n: u64,
    /// Intra-run thread count.
    pub threads: u64,
    /// Steps to convergence.
    pub steps: u64,
    /// Moves to convergence.
    pub moves: u64,
    /// Rounds to convergence.
    pub rounds: u64,
    /// Wall time of the measured run.
    pub seconds: f64,
    /// Steps per second.
    pub steps_per_sec: f64,
    /// Moves per second.
    pub moves_per_sec: f64,
    /// Whether the run converged within the bound.
    pub converged: bool,
    /// Mean greedy conflict classes per step (diagnostic replay).
    pub conflict_classes_avg: f64,
    /// Heap bytes of the SoA snapshot.
    pub soa_heap_bytes: u64,
    /// Select-phase wall nanos.
    pub phase_select_nanos: u64,
    /// Apply-phase wall nanos.
    pub phase_apply_nanos: u64,
    /// Guards-phase wall nanos.
    pub phase_guards_nanos: u64,
    /// Steps on which the parallel apply kernel engaged.
    pub apply_par_steps: u64,
    /// Steps on which the parallel guards kernel engaged.
    pub guards_par_steps: u64,
}

impl ScaleRun {
    /// The `(topology, n, threads)` cell key.
    pub fn cell(&self) -> String {
        format!("{}/n={}/t={}", self.topology, self.n, self.threads)
    }
}

/// A parsed `bench-scale-v2` document.
#[derive(Clone, Debug, PartialEq)]
pub struct ScaleDoc {
    /// Whether this was a `--smoke` run.
    pub smoke: bool,
    /// The measured cells, in document order.
    pub runs: Vec<ScaleRun>,
}

/// Parses (and thereby validates) a `BENCH_SCALE.json` document.
/// Rejects the retired `bench-scale-v1` schema by name.
pub fn parse_scale_json(text: &str) -> Result<ScaleDoc, String> {
    let root = json::parse(text)?;
    let schema = json::str_field(&root, "schema", "document")?;
    if schema == "bench-scale-v1" {
        return Err(
            "schema is `bench-scale-v1` (no phase/kernel metrics) — re-run the `scale` bin to \
             regenerate a `bench-scale-v2` file"
                .to_string(),
        );
    }
    if schema != "bench-scale-v2" {
        return Err(format!("schema is `{schema}`, expected `bench-scale-v2`"));
    }
    let mut runs = Vec::new();
    for (i, r) in json::arr(json::field(&root, "runs", "document")?, "runs")?
        .iter()
        .enumerate()
    {
        let what = format!("runs[{i}]");
        let phase = json::field(r, "phase_nanos", &what)?;
        let pwhat = format!("{what}.phase_nanos");
        let kernel = json::field(r, "kernel_par_steps", &what)?;
        let kwhat = format!("{what}.kernel_par_steps");
        runs.push(ScaleRun {
            topology: json::str_field(r, "topology", &what)?,
            n: json::u64_field(r, "n", &what)?,
            threads: json::u64_field(r, "threads", &what)?,
            steps: json::u64_field(r, "steps", &what)?,
            moves: json::u64_field(r, "moves", &what)?,
            rounds: json::u64_field(r, "rounds", &what)?,
            seconds: json::num_field(r, "seconds", &what)?,
            steps_per_sec: json::num_field(r, "steps_per_sec", &what)?,
            moves_per_sec: json::num_field(r, "moves_per_sec", &what)?,
            converged: json::bool_field(r, "converged", &what)?,
            conflict_classes_avg: json::num_field(r, "conflict_classes_avg", &what)?,
            soa_heap_bytes: json::u64_field(r, "soa_heap_bytes", &what)?,
            phase_select_nanos: json::u64_field(phase, "select", &pwhat)?,
            phase_apply_nanos: json::u64_field(phase, "apply", &pwhat)?,
            phase_guards_nanos: json::u64_field(phase, "guards", &pwhat)?,
            apply_par_steps: json::u64_field(kernel, "apply", &kwhat)?,
            guards_par_steps: json::u64_field(kernel, "guards", &kwhat)?,
        });
    }
    Ok(ScaleDoc {
        smoke: json::bool_field(&root, "smoke", "document")?,
        runs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const ROW: &str = r#"{"campaign":"c","index":3,"topology":"ring","n":8,"nodes":8,"edges":8,"max_degree":2,"diameter":4,"algorithm":"unison-sdr","daemon":"central","init":"arbitrary","trial":1,"seed":18446744073709551615,"reached":true,"terminal":true,"reason":"terminal","steps":10,"moves":12,"rounds":5,"max_moves_per_process":3,"bound_rounds":24,"bound_moves":null,"verdict":"pass"}"#;

    #[test]
    fn campaign_jsonl_row_parses_with_exact_seed() {
        let rows = parse_campaign_jsonl(&format!("{ROW}\n{ROW}\n")).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].seed, u64::MAX);
        assert_eq!(rows[0].bound_rounds, Some(24));
        assert_eq!(rows[0].bound_moves, None);
        assert_eq!(rows[0].reason.as_deref(), Some("terminal"));
    }

    #[test]
    fn campaign_jsonl_rejects_missing_keys() {
        let err = parse_campaign_jsonl("{\"campaign\":\"c\"}\n").unwrap_err();
        assert!(err.contains("missing key"), "{err}");
    }

    #[test]
    fn csv_quoted_fields_round_trip() {
        let text = "campaign,index,topology,n,nodes,edges,max_degree,diameter,algorithm,daemon,\
                    init,trial,seed,reached,terminal,reason,steps,moves,rounds,\
                    max_moves_per_process,bound_rounds,bound_moves,verdict\n\
                    c,0,ring,8,8,8,2,4,\"fga:domination(1,0)\",central,arbitrary,1,7,true,true,,1,2,3,1,,,no-bound\n";
        let rows = parse_campaign_csv(text).unwrap();
        assert_eq!(rows[0].algorithm, "fga:domination(1,0)");
        assert_eq!(rows[0].reason, None);
        assert_eq!(rows[0].bound_rounds, None);
        assert_eq!(rows[0].verdict, "no-bound");
    }

    #[test]
    fn metrics_snapshot_parses() {
        let doc = parse_metrics_json(
            "{\"schema\":\"ssr-metrics-v1\",\"metrics\":{\
             \"a\":{\"type\":\"counter\",\"value\":3},\
             \"g\":{\"type\":\"gauge\",\"min\":1,\"max\":9,\"last\":4},\
             \"h\":{\"type\":\"histogram\",\"count\":2,\"sum\":5,\"min\":2,\"max\":3,\
             \"buckets\":[[3,2]]}}}",
        )
        .unwrap();
        assert_eq!(doc.get("a"), Some(&MetricValue::Counter(3)));
        assert_eq!(doc.histogram_sum("h"), 5);
        assert!(parse_metrics_json("{\"schema\":\"nope\",\"metrics\":{}}").is_err());
    }

    #[test]
    fn trace_rows_parse_and_validate() {
        let rows = parse_trace_jsonl(
            "{\"event\":\"step-started\",\"step\":0,\"enabled\":3}\n\
             {\"event\":\"run-ended\",\"steps\":5,\"moves\":6,\"rounds\":2,\"reason\":\"terminal\"}\n",
        )
        .unwrap();
        assert_eq!(rows[0].event, "step-started");
        assert_eq!(rows[1].reason.as_deref(), Some("terminal"));
        assert!(parse_trace_jsonl("{\"event\":\"mystery\"}\n").is_err());
    }

    #[test]
    fn scale_v1_is_rejected_with_a_pointer() {
        let err =
            parse_scale_json("{\"schema\": \"bench-scale-v1\", \"smoke\": false, \"runs\": []}")
                .unwrap_err();
        assert!(err.contains("re-run"), "{err}");
    }

    #[test]
    fn scale_v2_parses() {
        let doc = parse_scale_json(
            "{\"schema\": \"bench-scale-v2\", \"smoke\": true, \"runs\": [\
             {\"topology\":\"ring\",\"n\":100,\"threads\":2,\"steps\":5,\"moves\":9,\
             \"rounds\":5,\"seconds\":0.5,\"steps_per_sec\":10.0,\"moves_per_sec\":18.0,\
             \"converged\":true,\"conflict_classes_avg\":2.00,\"soa_heap_bytes\":1024,\
             \"phase_nanos\":{\"select\":1,\"apply\":2,\"guards\":3},\
             \"kernel_par_steps\":{\"apply\":4,\"guards\":5}}]}",
        )
        .unwrap();
        assert!(doc.smoke);
        assert_eq!(doc.runs[0].cell(), "ring/n=100/t=2");
        assert_eq!(doc.runs[0].phase_guards_nanos, 3);
        assert_eq!(doc.runs[0].guards_par_steps, 5);
    }

    #[test]
    fn bench_results_parse() {
        let doc = parse_bench_results(
            "{\"schema\":\"ssr-bench-results/v1\",\"profile\":\"quick\",\"selection\":\"all\",\
             \"all_pass\":true,\"groups\":[{\"id\":\"E1+E2\",\"title\":\"t\",\"sizes\":[8,16],\
             \"rounds\":12,\"moves\":40,\"bound\":72,\"verdict\":\"pass\"}]}",
        )
        .unwrap();
        assert_eq!(doc.groups[0].sizes, vec![8, 16]);
        assert!(doc.all_pass);
    }
}
