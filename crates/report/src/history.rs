//! The perf-history store (`BENCH_HISTORY.jsonl`, schema
//! `ssr-history/v1`) and the regression tripwire over it.
//!
//! One line per recorded benchmark run, append-only. Identity comes in
//! from the outside — git SHA and a host fingerprint are caller-passed
//! flags, never ambient state — so a history file is reproducible and
//! the store stays deterministic. Per-cell figures are distilled from a
//! `bench-scale-v2` sweep by [`entry_from_scale`].
//!
//! [`check`] is a pure function from `(baseline, current, tolerance)`
//! to a list of [`Regression`]s: throughput may not fall below
//! `baseline × (1 − tol)`, phase wall-nanos may not rise above
//! `baseline × (1 + tol)`. Baseline selection policy (first entry,
//! `--baseline SHA`) lives in the CLI, not here.

use std::fmt::Write as _;

use ssr_obs::json::{self, Value};
use ssr_obs::metrics::json_string;

use crate::reader::ScaleDoc;

/// The history line schema identifier.
pub const HISTORY_SCHEMA: &str = "ssr-history/v1";

/// Per-`(topology, n, threads)` figures of one recorded run.
#[derive(Clone, Debug, PartialEq)]
pub struct HistoryCell {
    /// Topology label.
    pub topology: String,
    /// Node count.
    pub n: u64,
    /// Intra-run thread count.
    pub threads: u64,
    /// Steps per second (higher is better).
    pub steps_per_sec: f64,
    /// Moves per second (higher is better).
    pub moves_per_sec: f64,
    /// Select-phase wall nanos (lower is better).
    pub phase_select_nanos: u64,
    /// Apply-phase wall nanos (lower is better).
    pub phase_apply_nanos: u64,
    /// Guards-phase wall nanos (lower is better).
    pub phase_guards_nanos: u64,
}

impl HistoryCell {
    /// The `(topology, n, threads)` cell key.
    pub fn key(&self) -> String {
        format!("{}/n={}/t={}", self.topology, self.n, self.threads)
    }
}

/// One `ssr-history/v1` line: a recorded benchmark run.
#[derive(Clone, Debug, PartialEq)]
pub struct HistoryEntry {
    /// Git SHA of the measured tree (caller-passed).
    pub sha: String,
    /// Host fingerprint (caller-passed; figures are only comparable
    /// within one host).
    pub host: String,
    /// Which artifact the cells were distilled from (e.g. the
    /// `BENCH_SCALE.json` path).
    pub source: String,
    /// Measured cells, in source order.
    pub cells: Vec<HistoryCell>,
}

/// Distills a parsed `bench-scale-v2` sweep into one history entry.
pub fn entry_from_scale(doc: &ScaleDoc, sha: &str, host: &str, source: &str) -> HistoryEntry {
    HistoryEntry {
        sha: sha.to_string(),
        host: host.to_string(),
        source: source.to_string(),
        cells: doc
            .runs
            .iter()
            .map(|r| HistoryCell {
                topology: r.topology.clone(),
                n: r.n,
                threads: r.threads,
                steps_per_sec: r.steps_per_sec,
                moves_per_sec: r.moves_per_sec,
                phase_select_nanos: r.phase_select_nanos,
                phase_apply_nanos: r.phase_apply_nanos,
                phase_guards_nanos: r.phase_guards_nanos,
            })
            .collect(),
    }
}

/// Serializes one entry as a single `ssr-history/v1` JSON line (no
/// trailing newline). Throughput floats carry one decimal, matching
/// the scale writer.
pub fn entry_to_json_line(entry: &HistoryEntry) -> String {
    let mut s = String::with_capacity(256);
    let _ = write!(
        s,
        "{{\"schema\":{},\"sha\":{},\"host\":{},\"source\":{},\"cells\":[",
        json_string(HISTORY_SCHEMA),
        json_string(&entry.sha),
        json_string(&entry.host),
        json_string(&entry.source),
    );
    for (i, c) in entry.cells.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"topology\":{},\"n\":{},\"threads\":{},\"steps_per_sec\":{:.1},\
             \"moves_per_sec\":{:.1},\"phase_select_nanos\":{},\"phase_apply_nanos\":{},\
             \"phase_guards_nanos\":{}}}",
            json_string(&c.topology),
            c.n,
            c.threads,
            c.steps_per_sec,
            c.moves_per_sec,
            c.phase_select_nanos,
            c.phase_apply_nanos,
            c.phase_guards_nanos,
        );
    }
    s.push_str("]}");
    s
}

fn entry_from_value(v: &Value, what: &str) -> Result<HistoryEntry, String> {
    let schema = json::str_field(v, "schema", what)?;
    if schema != HISTORY_SCHEMA {
        return Err(format!(
            "{what}: schema is `{schema}`, expected `{HISTORY_SCHEMA}`"
        ));
    }
    let mut cells = Vec::new();
    for (i, c) in json::arr(json::field(v, "cells", what)?, &format!("{what}.cells"))?
        .iter()
        .enumerate()
    {
        let cwhat = format!("{what}.cells[{i}]");
        cells.push(HistoryCell {
            topology: json::str_field(c, "topology", &cwhat)?,
            n: json::u64_field(c, "n", &cwhat)?,
            threads: json::u64_field(c, "threads", &cwhat)?,
            steps_per_sec: json::num_field(c, "steps_per_sec", &cwhat)?,
            moves_per_sec: json::num_field(c, "moves_per_sec", &cwhat)?,
            phase_select_nanos: json::u64_field(c, "phase_select_nanos", &cwhat)?,
            phase_apply_nanos: json::u64_field(c, "phase_apply_nanos", &cwhat)?,
            phase_guards_nanos: json::u64_field(c, "phase_guards_nanos", &cwhat)?,
        });
    }
    Ok(HistoryEntry {
        sha: json::str_field(v, "sha", what)?,
        host: json::str_field(v, "host", what)?,
        source: json::str_field(v, "source", what)?,
        cells,
    })
}

/// Parses a `BENCH_HISTORY.jsonl` document, oldest entry first.
pub fn parse_history_jsonl(text: &str) -> Result<Vec<HistoryEntry>, String> {
    json::parse_jsonl(text)?
        .iter()
        .enumerate()
        .map(|(i, v)| entry_from_value(v, &format!("entry[{i}]")))
        .collect()
}

/// Validates one history line (used by `obs_validate --kind history`).
pub fn validate_history_line(line: &str) -> Result<(), String> {
    let v = json::parse(line.trim()).map_err(|e| format!("invalid JSON ({e})"))?;
    entry_from_value(&v, "entry").map(|_| ())
}

/// Relative tolerance bands for [`check`]. A fraction of `0.10` allows
/// 10% degradation before tripping.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Tolerance {
    /// Allowed fractional drop in steps/sec and moves/sec.
    pub throughput_frac: f64,
    /// Allowed fractional rise in per-phase wall nanos.
    pub phase_frac: f64,
}

impl Default for Tolerance {
    /// 15% throughput / 25% phase — tight enough to catch a real
    /// slowdown, loose enough to absorb same-host run-to-run noise.
    fn default() -> Self {
        Tolerance {
            throughput_frac: 0.15,
            phase_frac: 0.25,
        }
    }
}

/// One tripped tolerance band.
#[derive(Clone, Debug, PartialEq)]
pub struct Regression {
    /// The `(topology, n, threads)` cell key.
    pub cell: String,
    /// The metric that tripped (`steps_per_sec`, `phase_apply_nanos`, …).
    pub metric: String,
    /// Baseline figure.
    pub baseline: f64,
    /// Current figure.
    pub current: f64,
    /// The band edge the current figure crossed.
    pub limit: f64,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} {:.1} vs baseline {:.1} (limit {:.1})",
            self.cell, self.metric, self.current, self.baseline, self.limit
        )
    }
}

/// Compares `current` against `baseline` cell-by-cell. Throughput
/// regresses when it falls below `baseline × (1 − throughput_frac)`;
/// a phase regresses when its nanos rise above
/// `baseline × (1 + phase_frac)` (zero-valued baselines or currents
/// are skipped — untimed sweeps carry no phase signal).
///
/// Errors when the two entries share no `(topology, n, threads)` cell:
/// a gate that compares nothing must fail loudly, not pass silently.
pub fn check(
    baseline: &HistoryEntry,
    current: &HistoryEntry,
    tol: &Tolerance,
) -> Result<Vec<Regression>, String> {
    let mut regressions = Vec::new();
    let mut compared = 0usize;
    for cur in &current.cells {
        let Some(base) = baseline
            .cells
            .iter()
            .find(|b| b.topology == cur.topology && b.n == cur.n && b.threads == cur.threads)
        else {
            continue;
        };
        compared += 1;
        let mut floor = |metric: &str, b: f64, c: f64| {
            let limit = b * (1.0 - tol.throughput_frac);
            if c < limit {
                regressions.push(Regression {
                    cell: cur.key(),
                    metric: metric.to_string(),
                    baseline: b,
                    current: c,
                    limit,
                });
            }
        };
        floor("steps_per_sec", base.steps_per_sec, cur.steps_per_sec);
        floor("moves_per_sec", base.moves_per_sec, cur.moves_per_sec);
        let phases = [
            (
                "phase_select_nanos",
                base.phase_select_nanos,
                cur.phase_select_nanos,
            ),
            (
                "phase_apply_nanos",
                base.phase_apply_nanos,
                cur.phase_apply_nanos,
            ),
            (
                "phase_guards_nanos",
                base.phase_guards_nanos,
                cur.phase_guards_nanos,
            ),
        ];
        for (metric, b, c) in phases {
            if b == 0 || c == 0 {
                continue;
            }
            let (b, c) = (b as f64, c as f64);
            let limit = b * (1.0 + tol.phase_frac);
            if c > limit {
                regressions.push(Regression {
                    cell: cur.key(),
                    metric: metric.to_string(),
                    baseline: b,
                    current: c,
                    limit,
                });
            }
        }
    }
    if compared == 0 {
        return Err(format!(
            "no overlapping (topology, n, threads) cells between baseline {} and current {}",
            baseline.sha, current.sha
        ));
    }
    Ok(regressions)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(n: u64, sps: f64, apply: u64) -> HistoryCell {
        HistoryCell {
            topology: "ring".to_string(),
            n,
            threads: 2,
            steps_per_sec: sps,
            moves_per_sec: sps * 2.0,
            phase_select_nanos: 1000,
            phase_apply_nanos: apply,
            phase_guards_nanos: 500,
        }
    }

    fn entry(sha: &str, cells: Vec<HistoryCell>) -> HistoryEntry {
        HistoryEntry {
            sha: sha.to_string(),
            host: "h".to_string(),
            source: "BENCH_SCALE.json".to_string(),
            cells,
        }
    }

    #[test]
    fn line_round_trips() {
        let e = entry("abc123", vec![cell(100, 1234.5, 2000)]);
        let line = entry_to_json_line(&e);
        validate_history_line(&line).unwrap();
        let parsed = parse_history_jsonl(&format!("{line}\n")).unwrap();
        assert_eq!(parsed, vec![e]);
    }

    #[test]
    fn identical_entries_pass() {
        let e = entry("a", vec![cell(100, 1000.0, 2000)]);
        assert!(check(&e, &e, &Tolerance::default()).unwrap().is_empty());
    }

    #[test]
    fn throughput_drop_trips_the_floor() {
        let base = entry("a", vec![cell(100, 1000.0, 2000)]);
        let cur = entry("b", vec![cell(100, 800.0, 2000)]);
        let regs = check(&base, &cur, &Tolerance::default()).unwrap();
        assert_eq!(regs.len(), 2, "{regs:?}"); // steps/sec and moves/sec
        assert_eq!(regs[0].metric, "steps_per_sec");
        // Within a looser band, the same drop passes.
        let loose = Tolerance {
            throughput_frac: 0.5,
            phase_frac: 0.5,
        };
        assert!(check(&base, &cur, &loose).unwrap().is_empty());
    }

    #[test]
    fn phase_rise_trips_the_ceiling() {
        let base = entry("a", vec![cell(100, 1000.0, 2000)]);
        let cur = entry("b", vec![cell(100, 1000.0, 3000)]);
        let regs = check(&base, &cur, &Tolerance::default()).unwrap();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].metric, "phase_apply_nanos");
        assert!(regs[0].to_string().contains("phase_apply_nanos"));
    }

    #[test]
    fn zero_phase_baseline_is_skipped() {
        let mut base = entry("a", vec![cell(100, 1000.0, 0)]);
        base.cells[0].phase_select_nanos = 0;
        base.cells[0].phase_guards_nanos = 0;
        let cur = entry("b", vec![cell(100, 1000.0, 99999)]);
        assert!(check(&base, &cur, &Tolerance::default())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn disjoint_cells_error() {
        let base = entry("a", vec![cell(100, 1000.0, 2000)]);
        let cur = entry("b", vec![cell(200, 1000.0, 2000)]);
        let err = check(&base, &cur, &Tolerance::default()).unwrap_err();
        assert!(err.contains("no overlapping"), "{err}");
    }

    #[test]
    fn entry_from_scale_distills_cells() {
        let doc = crate::reader::parse_scale_json(
            "{\"schema\": \"bench-scale-v2\", \"smoke\": true, \"runs\": [\
             {\"topology\":\"ring\",\"n\":100,\"threads\":2,\"steps\":5,\"moves\":9,\
             \"rounds\":5,\"seconds\":0.5,\"steps_per_sec\":10.0,\"moves_per_sec\":18.0,\
             \"converged\":true,\"conflict_classes_avg\":2.00,\"soa_heap_bytes\":1024,\
             \"phase_nanos\":{\"select\":1,\"apply\":2,\"guards\":3},\
             \"kernel_par_steps\":{\"apply\":4,\"guards\":5}}]}",
        )
        .unwrap();
        let e = entry_from_scale(&doc, "deadbeef", "ci-x86", "BENCH_SCALE.json");
        assert_eq!(e.cells.len(), 1);
        assert_eq!(e.cells[0].key(), "ring/n=100/t=2");
        assert_eq!(e.cells[0].phase_guards_nanos, 3);
    }
}
