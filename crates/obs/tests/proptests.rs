//! Property-based pins for the observability read-only guarantee: on
//! any seeded run, enabling trace or metrics channels must leave the
//! run's results byte-identical to the bare path — at one *and* four
//! intra-run threads — and two traces of the same seeded run must be
//! byte-identical to each other.

use proptest::prelude::*;
use ssr_graph::{generators, Graph};
use ssr_obs::pipeline::{CompositeSink, PipelineMetrics};
use ssr_obs::trace::JsonlSink;
use ssr_runtime::rng::Xoshiro256StarStar;
use ssr_runtime::trace::TraceSink;
use ssr_runtime::{Algorithm, Daemon, NodeId, RuleId, RuleMask, Simulator, StateView};

/// Toy convergence workload with multi-move synchronous steps: every
/// node below the maximum of its neighborhood adopts that maximum.
struct MaxFlood;

impl Algorithm for MaxFlood {
    type State = u32;
    fn rule_count(&self) -> usize {
        1
    }
    fn rule_name(&self, _: RuleId) -> &'static str {
        "adopt-max"
    }
    fn enabled_mask<V: StateView<u32>>(&self, u: NodeId, view: &V) -> RuleMask {
        let best = view
            .graph()
            .neighbors(u)
            .iter()
            .map(|&v| *view.state(v))
            .max()
            .unwrap_or(0);
        RuleMask::from_bool(best > *view.state(u))
    }
    fn apply<V: StateView<u32>>(&self, u: NodeId, view: &V, _: RuleId) -> u32 {
        view.graph()
            .neighbors(u)
            .iter()
            .map(|&v| *view.state(v))
            .max()
            .unwrap_or(0)
            .max(*view.state(u))
    }
}

fn instance(n: usize, gseed: u64, vseed: u64) -> (Graph, Vec<u32>) {
    let g = generators::random_connected(n, n / 2, gseed);
    let mut rng = Xoshiro256StarStar::seed_from_u64(vseed);
    let init: Vec<u32> = (0..g.node_count()).map(|_| rng.below(64) as u32).collect();
    (g, init)
}

fn daemon(choice: u8) -> Daemon {
    match choice % 4 {
        0 => Daemon::Synchronous,
        1 => Daemon::Central,
        2 => Daemon::RoundRobin,
        _ => Daemon::RandomSubset { p: 0.5 },
    }
}

/// Everything a run "returns": final configuration plus the stats a
/// caller could observe. Observability must never perturb any of it.
type RunRecord = (Vec<u32>, u64, u64, u64, bool);

fn run_once(
    g: &Graph,
    init: &[u32],
    daemon: Daemon,
    threads: usize,
    sink: Option<Box<dyn TraceSink>>,
) -> (RunRecord, Option<Box<dyn TraceSink>>) {
    let mut sim = Simulator::new(g, MaxFlood, init.to_vec(), daemon, 42);
    sim.set_intra_threads(threads);
    if let Some(sink) = sink {
        sim.set_trace_sink(sink);
    }
    let out = sim.execution().cap(10_000).run();
    let record = (
        sim.states().to_vec(),
        sim.stats().steps,
        sim.stats().moves,
        sim.stats().completed_rounds,
        out.terminal,
    );
    let mut sink = sim.take_trace_sink();
    if let Some(s) = sink.as_mut() {
        s.flush();
    }
    (record, sink)
}

fn trace_bytes(sink: Box<dyn TraceSink>) -> Vec<u8> {
    let mut sink = sink;
    let jsonl = sink
        .as_any_mut()
        .and_then(|a| a.downcast_mut::<JsonlSink<Vec<u8>>>())
        .expect("sink is the JsonlSink we installed");
    std::mem::replace(jsonl, JsonlSink::new(Vec::new())).into_writer()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Results with trace and metrics channels enabled are identical to
    /// the bare path, at 1 and 4 intra-run threads alike.
    #[test]
    fn observability_leaves_results_byte_identical(
        n in 3usize..24,
        gseed in 0u64..50,
        vseed in 0u64..50,
        dchoice in 0u8..4,
    ) {
        let (g, init) = instance(n, gseed, vseed);
        let d = daemon(dchoice);
        let (baseline, _) = run_once(&g, &init, d.clone(), 1, None);
        for threads in [1usize, 4] {
            let (bare, _) = run_once(&g, &init, d.clone(), threads, None);
            let (traced, _) = run_once(
                &g,
                &init,
                d.clone(),
                threads,
                Some(Box::new(JsonlSink::new(Vec::new()))),
            );
            let (metered, _) = run_once(
                &g,
                &init,
                d.clone(),
                threads,
                Some(Box::new(PipelineMetrics::without_timing())),
            );
            prop_assert_eq!(&bare, &baseline, "threads must not change results");
            prop_assert_eq!(&traced, &baseline, "tracing must be read-only");
            prop_assert_eq!(&metered, &baseline, "metrics must be read-only");
        }
    }

    /// Two JSONL traces of the same seeded run are byte-identical, and
    /// non-trivial.
    #[test]
    fn same_seeded_run_traces_identically(
        n in 3usize..24,
        gseed in 0u64..50,
        vseed in 0u64..50,
        dchoice in 0u8..4,
    ) {
        let (g, init) = instance(n, gseed, vseed);
        let d = daemon(dchoice);
        let mut traces = Vec::new();
        for _ in 0..2 {
            let (_, sink) = run_once(
                &g,
                &init,
                d.clone(),
                1,
                Some(Box::new(JsonlSink::new(Vec::new()))),
            );
            traces.push(trace_bytes(sink.expect("sink survives the run")));
        }
        prop_assert!(!traces[0].is_empty(), "a run must emit at least RunEnded");
        prop_assert_eq!(&traces[0], &traces[1]);
    }

    /// The untimed pipeline-metrics snapshot is a pure function of the
    /// seeded run: identical JSON at 1 and 4 intra-run threads.
    #[test]
    fn untimed_metrics_are_thread_count_invariant(
        n in 3usize..24,
        gseed in 0u64..50,
        vseed in 0u64..50,
    ) {
        let (g, init) = instance(n, gseed, vseed);
        let mut snapshots = Vec::new();
        for threads in [1usize, 4] {
            let (_, sink) = run_once(
                &g,
                &init,
                Daemon::Synchronous,
                threads,
                Some(Box::new(CompositeSink::new(
                    Some(PipelineMetrics::without_timing()),
                    None,
                ))),
            );
            let mut sink = sink.expect("sink survives the run");
            let metrics = sink
                .as_any_mut()
                .and_then(|a| a.downcast_mut::<CompositeSink>())
                .and_then(CompositeSink::take_metrics)
                .expect("composite sink carries metrics");
            snapshots.push(metrics.snapshot().to_json());
        }
        prop_assert!(snapshots[0].contains("pipeline.steps"));
        prop_assert_eq!(&snapshots[0], &snapshots[1]);
    }
}
