//! Ready-made [`Observer`]s: metrics collection, conflict-partition
//! diagnostics, and timeline recording.
//!
//! These attach to any [`Execution`](ssr_runtime::Execution) via
//! `.observe(...)` — they need the typed simulator handle, unlike
//! [`TraceSink`](ssr_runtime::trace::TraceSink)s, which attach below
//! the observer layer and see only the erased event stream.
//!
//! # Examples
//!
//! Driving a run with a [`MetricsObserver`] and reading the snapshot:
//!
//! ```
//! use ssr_graph::generators;
//! use ssr_obs::observers::MetricsObserver;
//! use ssr_runtime::{Algorithm, Daemon, Execution, NodeId, RuleId, RuleMask, StateView};
//!
//! /// Toy flood: a node with a `true` neighbor becomes `true`.
//! struct Flood;
//! impl Algorithm for Flood {
//!     type State = bool;
//!     fn rule_count(&self) -> usize { 1 }
//!     fn rule_name(&self, _: RuleId) -> &'static str { "flood" }
//!     fn enabled_mask<V: StateView<bool>>(&self, u: NodeId, view: &V) -> RuleMask {
//!         let infected = view.graph().neighbors(u).iter().any(|&v| *view.state(v));
//!         RuleMask::from_bool(!*view.state(u) && infected)
//!     }
//!     fn apply<V: StateView<bool>>(&self, _: NodeId, _: &V, _: RuleId) -> bool { true }
//! }
//!
//! let g = generators::path(5);
//! let mut init = vec![false; 5];
//! init[0] = true;
//! let mut metrics = MetricsObserver::new();
//! let out = Execution::of(&g, Flood)
//!     .init(init)
//!     .daemon(Daemon::Synchronous)
//!     .observe(&mut metrics)
//!     .run();
//! assert!(out.terminal);
//! let snap = metrics.metrics().snapshot();
//! println!("{}", snap.render_table());
//! assert_eq!(metrics.metrics().counter_value("run.steps"), Some(4));
//! assert_eq!(metrics.metrics().counter_value("run.moves"), Some(4));
//! ```

use std::fmt;
use std::time::Instant;

use ssr_runtime::{Algorithm, Observer, RunOutcome, Simulator, StepOutcome};

use crate::metrics::MetricsSet;
use crate::timeline::{RunTimeline, TimelineStep};

/// An [`Observer`] accumulating run-level metrics: step/move/round
/// counters, moves-per-step and enabled-set histograms, and (unless
/// timing is disabled) run wall time and steps/sec.
///
/// Keys: `run.steps`, `run.moves`, `run.rounds`, `run.terminal_runs`,
/// `run.moves_per_step`, `run.enabled_set`; with timing,
/// `time.run_nanos` (counter) and `time.steps_per_sec` (gauge).
///
/// See the [module documentation](self) for a worked example.
#[derive(Debug)]
pub struct MetricsObserver {
    metrics: MetricsSet,
    started: Option<Instant>,
    steps_at_start: Option<u64>,
    timing: bool,
}

impl MetricsObserver {
    /// An observer with wall-time metrics **on**.
    pub fn new() -> Self {
        MetricsObserver {
            metrics: MetricsSet::new(),
            started: None,
            steps_at_start: None,
            timing: true,
        }
    }

    /// A deterministic variant: no clock reads, so the metrics are a
    /// pure function of the seeded run.
    pub fn without_timing() -> Self {
        MetricsObserver {
            timing: false,
            ..MetricsObserver::new()
        }
    }

    /// The metrics accumulated so far.
    pub fn metrics(&self) -> &MetricsSet {
        &self.metrics
    }

    /// Consumes the observer into its metrics.
    pub fn into_metrics(self) -> MetricsSet {
        self.metrics
    }

    /// Drains the accumulated metrics, leaving the observer fresh.
    pub fn take_metrics(&mut self) -> MetricsSet {
        self.started = None;
        self.steps_at_start = None;
        std::mem::take(&mut self.metrics)
    }
}

impl Default for MetricsObserver {
    fn default() -> Self {
        MetricsObserver::new()
    }
}

impl<A: Algorithm> Observer<A> for MetricsObserver {
    fn on_step(&mut self, sim: &Simulator<'_, A>, outcome: &StepOutcome) {
        if self.timing && self.started.is_none() {
            self.started = Some(Instant::now());
            self.steps_at_start = Some(sim.stats().steps.saturating_sub(1));
        }
        if let StepOutcome::Progress { activated } = outcome {
            self.metrics.inc("run.steps", 1);
            self.metrics.inc("run.moves", *activated as u64);
            self.metrics
                .observe("run.moves_per_step", *activated as u64);
            self.metrics
                .observe("run.enabled_set", sim.enabled_count() as u64);
        }
    }

    fn on_round_complete(&mut self, _sim: &Simulator<'_, A>) {
        self.metrics.inc("run.rounds", 1);
    }

    fn on_terminal(&mut self, _sim: &Simulator<'_, A>) {
        self.metrics.inc("run.terminal_runs", 1);
    }

    fn on_run_end(&mut self, sim: &Simulator<'_, A>, _outcome: &RunOutcome) {
        if let (Some(t0), Some(s0)) = (self.started.take(), self.steps_at_start.take()) {
            let nanos = t0.elapsed().as_nanos() as u64;
            self.metrics.inc("time.run_nanos", nanos);
            let steps = sim.stats().steps.saturating_sub(s0);
            if nanos > 0 {
                let sps = (steps as f64 / (nanos as f64 / 1e9)) as u64;
                self.metrics.gauge_set("time.steps_per_sec", sps);
            }
        }
    }
}

/// Summary statistics of the conflict-partition diagnostics
/// ([`Simulator::last_conflict_classes`]) over a run — with a
/// [`fmt::Display`] pretty-printer, so reports need no ad-hoc debug
/// formatting and no serde.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConflictSummary {
    /// Steps with a recorded partition.
    pub steps: u64,
    /// Sum of class counts over those steps.
    pub total_classes: u64,
    /// Smallest class count seen (0 when nothing was recorded).
    pub min_classes: u32,
    /// Largest class count seen.
    pub max_classes: u32,
    /// Steps whose selection was already conflict-free (one class).
    pub single_class_steps: u64,
}

impl ConflictSummary {
    /// Mean classes per recorded step (`None` when nothing recorded).
    pub fn mean_classes(&self) -> Option<f64> {
        (self.steps > 0).then(|| self.total_classes as f64 / self.steps as f64)
    }
}

impl fmt::Display for ConflictSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.steps == 0 {
            return write!(f, "conflict partition: no steps recorded");
        }
        write!(
            f,
            "conflict partition: {} steps, classes min {} / mean {:.2} / max {}, {} conflict-free ({:.0}%)",
            self.steps,
            self.min_classes,
            self.mean_classes().unwrap_or(0.0),
            self.max_classes,
            self.single_class_steps,
            100.0 * self.single_class_steps as f64 / self.steps as f64,
        )
    }
}

/// An [`Observer`] sampling [`Simulator::last_conflict_classes`] after
/// every step.
///
/// The simulator must have diagnostics on
/// ([`Simulator::set_conflict_stats`]) — without them every step
/// reports `None` and the summary stays empty. Fold the result into a
/// metrics set with [`ConflictObserver::merge_into`] (key
/// `conflict.classes` plus the summary counters).
#[derive(Clone, Copy, Debug, Default)]
pub struct ConflictObserver {
    summary: ConflictSummary,
}

impl ConflictObserver {
    /// A fresh observer.
    pub fn new() -> Self {
        ConflictObserver::default()
    }

    /// The summary so far.
    pub fn summary(&self) -> ConflictSummary {
        self.summary
    }

    /// Folds the summary into `metrics`: histogram `conflict.classes`
    /// is *not* reconstructible from a summary, so this writes the
    /// counters `conflict.steps`, `conflict.total_classes`,
    /// `conflict.single_class_steps` and the gauge
    /// `conflict.max_classes`.
    pub fn merge_into(&self, metrics: &mut MetricsSet) {
        if self.summary.steps == 0 {
            return;
        }
        metrics.inc("conflict.steps", self.summary.steps);
        metrics.inc("conflict.total_classes", self.summary.total_classes);
        metrics.inc(
            "conflict.single_class_steps",
            self.summary.single_class_steps,
        );
        metrics.gauge_set("conflict.max_classes", self.summary.max_classes as u64);
    }
}

impl<A: Algorithm> Observer<A> for ConflictObserver {
    fn on_step(&mut self, sim: &Simulator<'_, A>, _outcome: &StepOutcome) {
        if let Some(k) = sim.last_conflict_classes() {
            let s = &mut self.summary;
            if s.steps == 0 {
                s.min_classes = k;
            } else {
                s.min_classes = s.min_classes.min(k);
            }
            s.steps += 1;
            s.total_classes += k as u64;
            s.max_classes = s.max_classes.max(k);
            if k <= 1 {
                s.single_class_steps += 1;
            }
        }
    }
}

/// An [`Observer`] recording the full per-step move sequence as a
/// [`RunTimeline`] — the replayable per-run artifact.
#[derive(Debug, Default)]
pub struct TimelineObserver {
    timeline: RunTimeline,
}

impl TimelineObserver {
    /// A fresh recorder.
    pub fn new() -> Self {
        TimelineObserver::default()
    }

    /// The timeline recorded so far.
    pub fn timeline(&self) -> &RunTimeline {
        &self.timeline
    }

    /// Consumes the observer into its timeline.
    pub fn into_timeline(self) -> RunTimeline {
        self.timeline
    }
}

impl<A: Algorithm> Observer<A> for TimelineObserver {
    fn on_step(&mut self, sim: &Simulator<'_, A>, _outcome: &StepOutcome) {
        self.timeline.push(TimelineStep {
            moves: sim.last_activated().to_vec(),
            round_completed: sim.last_step_completed_round(),
        });
    }
}

/// Compile-time guard: the observers stay attachable from campaign
/// worker threads.
#[allow(dead_code)]
fn assert_send() {
    fn is_send<T: Send>() {}
    is_send::<MetricsObserver>();
    is_send::<ConflictObserver>();
    is_send::<TimelineObserver>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_graph::generators;
    use ssr_runtime::{Daemon, NodeId, RuleId, RuleMask, Simulator, StateView};

    struct Flood;
    impl Algorithm for Flood {
        type State = bool;
        fn rule_count(&self) -> usize {
            1
        }
        fn rule_name(&self, _: RuleId) -> &'static str {
            "flood"
        }
        fn enabled_mask<V: StateView<bool>>(&self, u: NodeId, view: &V) -> RuleMask {
            let infected = view.graph().neighbors(u).iter().any(|&v| *view.state(v));
            RuleMask::from_bool(!*view.state(u) && infected)
        }
        fn apply<V: StateView<bool>>(&self, _: NodeId, _: &V, _: RuleId) -> bool {
            true
        }
    }

    fn flood_sim(g: &ssr_graph::Graph) -> Simulator<'_, Flood> {
        let mut init = vec![false; g.node_count()];
        init[0] = true;
        Simulator::new(g, Flood, init, Daemon::Synchronous, 0)
    }

    #[test]
    fn metrics_observer_counts_the_run() {
        let g = generators::path(4);
        let mut sim = flood_sim(&g);
        let mut obs = MetricsObserver::without_timing();
        let out = sim.execution().cap(100).observe(&mut obs).run();
        assert!(out.terminal);
        let m = obs.metrics();
        assert_eq!(m.counter_value("run.steps"), Some(3));
        assert_eq!(m.counter_value("run.moves"), Some(3));
        assert_eq!(m.counter_value("run.rounds"), Some(3));
        assert_eq!(m.counter_value("run.terminal_runs"), Some(1));
        assert_eq!(m.counter_value("time.run_nanos"), None, "timing off");
        assert_eq!(m.histogram("run.moves_per_step").unwrap().count(), 3);
    }

    #[test]
    fn metrics_observer_records_wall_time_when_enabled() {
        let g = generators::path(4);
        let mut sim = flood_sim(&g);
        let mut obs = MetricsObserver::new();
        sim.execution().cap(100).observe(&mut obs).run();
        assert!(obs.metrics().counter_value("time.run_nanos").unwrap() > 0);
    }

    #[test]
    fn conflict_observer_summarizes_partitions() {
        let g = generators::path(5);
        let mut sim = flood_sim(&g);
        sim.set_conflict_stats(true);
        let mut obs = ConflictObserver::new();
        let out = sim.execution().cap(100).observe(&mut obs).run();
        assert!(out.terminal);
        let s = obs.summary();
        // Path flood: one mover per step, always one class.
        assert_eq!(s.steps, 4);
        assert_eq!((s.min_classes, s.max_classes), (1, 1));
        assert_eq!(s.single_class_steps, 4);
        assert_eq!(s.mean_classes(), Some(1.0));
        let txt = s.to_string();
        assert!(txt.contains("4 steps") && txt.contains("100%"), "{txt}");
        let mut m = MetricsSet::new();
        obs.merge_into(&mut m);
        assert_eq!(m.counter_value("conflict.steps"), Some(4));
    }

    #[test]
    fn conflict_observer_without_diagnostics_stays_empty() {
        let g = generators::path(3);
        let mut sim = flood_sim(&g);
        let mut obs = ConflictObserver::new();
        sim.execution().cap(100).observe(&mut obs).run();
        assert_eq!(obs.summary().steps, 0);
        assert_eq!(
            obs.summary().to_string(),
            "conflict partition: no steps recorded"
        );
        let mut m = MetricsSet::new();
        obs.merge_into(&mut m);
        assert!(m.is_empty());
    }

    #[test]
    fn timeline_observer_records_and_replays() {
        let g = generators::path(4);
        let mut sim = flood_sim(&g);
        let mut rec = TimelineObserver::new();
        let out = sim.execution().cap(100).observe(&mut rec).run();
        assert!(out.terminal);
        let timeline = rec.into_timeline();
        assert_eq!(timeline.len(), 3);
        assert!(timeline.steps().iter().all(|s| s.round_completed));

        // Replay the recorded schedule with a scripted daemon: the
        // trajectory must reproduce exactly.
        let mut init = vec![false; 4];
        init[0] = true;
        let mut replay = Simulator::new(&g, Flood, init, timeline.script_daemon(), 0);
        let mut rec2 = TimelineObserver::new();
        let out2 = replay.execution().cap(100).observe(&mut rec2).run();
        assert!(out2.terminal);
        assert_eq!(rec2.timeline(), &timeline);
    }
}
