//! # ssr-obs — observability for the step pipeline
//!
//! Zero-cost tracing, phase-level metrics, and live campaign progress
//! for the cooperative-reset simulator. Three layers, all strictly
//! opt-in:
//!
//! 1. **Tracing** — the runtime's [`TraceSink`] seam emits typed
//!    events ([`TraceEvent`]) from inside the three-phase step
//!    pipeline. This crate supplies the concrete sinks: a
//!    [`RingSink`] flight recorder, a
//!    [`JsonlSink`] writer (schema: `DESIGN.md`
//!    §10), and [`PipelineMetrics`], which
//!    folds the stream into the metrics registry. With no sink
//!    installed the pipeline's cost is one never-taken branch per
//!    phase — pinned by the `obs_overhead` bench.
//!
//! 2. **Metrics** — [`MetricsSet`] holds
//!    counters, gauges, and power-of-two-bucket histograms; sets are
//!    accumulated lock-free (by ownership, one per worker) and merged
//!    into a [`MetricsHub`], whose snapshot is
//!    deterministic: sorted keys, byte-stable JSON
//!    (`"schema":"ssr-metrics-v1"`), and a human table.
//!
//! 3. **Progress & timelines** — [`Progress`]
//!    reporters stream campaign completion (done/total, ETA,
//!    per-worker state) to stderr or JSONL, and
//!    [`TimelineObserver`] records a
//!    replayable [`RunTimeline`] checkable
//!    against an exhaustive-explorer
//!    [`Witness`](ssr_runtime::exhaustive::Witness).
//!
//! Determinism contract: everything here is either a pure function of
//! the seeded run (traces and metrics without phase timing) or
//! explicitly wall-clock-bearing (`wants_phase_timing()`,
//! `time.*`/`phase.*` keys, progress ETA). Enabling the deterministic
//! parts never changes a run's results — goldens stay byte-identical.
//!
//! See [`observers`] for a worked `Execution::of(...).observe(...)`
//! example.

#![forbid(unsafe_code)]

pub mod json;
pub mod metrics;
pub mod observers;
pub mod pipeline;
pub mod progress;
pub mod timeline;
pub mod trace;

pub use json::Value as JsonValue;
pub use metrics::{Histogram, Metric, MetricsHub, MetricsSet, MetricsSnapshot};
pub use observers::{ConflictObserver, ConflictSummary, MetricsObserver, TimelineObserver};
pub use pipeline::{CompositeSink, PipelineMetrics};
pub use progress::{BusSnapshot, JsonlProgress, NoProgress, Progress, ProgressBus, StderrProgress};
pub use timeline::{RunTimeline, TimelineStep};
pub use trace::{JsonlSink, RingSink};

// The runtime-side seam types, re-exported so downstream code can name
// the whole observability surface through one crate.
pub use ssr_runtime::trace::{NoTrace, TraceEvent, TracePhase, TraceSink};
