//! A small shared recursive-descent JSON parser for reading the
//! stack's own artifacts back in.
//!
//! The workspace is serde-free by policy (the build is offline), so
//! every machine-readable artifact — campaign JSONL, `ssr-metrics-v1`
//! snapshots, trace JSONL, `BENCH_RESULTS.json`, `BENCH_SCALE.json`,
//! `BENCH_HISTORY.jsonl`, `ANALYSIS.json` — is written by hand-rolled
//! emitters. This module is the one read-side counterpart: the parser
//! that used to live privately inside the `ssr-analyze` validator and
//! the shallow key scan in [`crate::trace::validate_jsonl_line`] now
//! share this home, and `ssr-report` builds its typed readers on it.
//!
//! Integers are preserved exactly: a numeric token without `.`/`e`
//! parses into [`Value::U64`]/[`Value::I64`], so 64-bit seeds and
//! nano counters survive a write→parse round trip bit-for-bit
//! (pinned by proptests in `ssr-report`). Objects keep insertion
//! order, matching the deterministic key order of the writers.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer token (no fraction/exponent).
    U64(u64),
    /// A negative integer token (no fraction/exponent).
    I64(i64),
    /// Any other numeric token.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in document order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The member of an object under `key`, if this is an object and
    /// the key is present.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an unsigned integer (exact: integer tokens only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as any number, widened to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::U64(v) => Some(*v as f64),
            Value::I64(v) => Some(*v as f64),
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

impl fmt::Display for Value {
    /// Debug-oriented rendering; artifact *writers* stay hand-rolled
    /// in their home crates so their byte layouts never depend on this.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::U64(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) if v.is_finite() => write!(f, "{v}"),
            Value::F64(_) => write!(f, "null"),
            Value::Str(s) => write!(f, "{}", crate::metrics::json_string(s)),
            Value::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Value::Obj(members) => {
                write!(f, "{{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}:{v}", crate::metrics::json_string(k))?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Parses one complete JSON document (trailing whitespace allowed,
/// trailing content rejected).
pub fn parse(s: &str) -> Result<Value, String> {
    let mut p = Parser::new(s);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content"));
    }
    Ok(v)
}

/// Parses a JSON-Lines document: one value per non-empty line, with
/// 1-based line numbers in errors.
pub fn parse_jsonl(text: &str) -> Result<Vec<Value>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        out.push(parse(line).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Checked accessors — shared vocabulary for schema validators, with
// `what`-labelled errors ("families[3].graphs[0].nodes must be ...").
// ---------------------------------------------------------------------

/// `v` as an object, or a labelled error.
pub fn obj<'v>(v: &'v Value, what: &str) -> Result<&'v [(String, Value)], String> {
    v.as_obj()
        .ok_or_else(|| format!("{what} must be an object, got {}", v.kind()))
}

/// `v` as an array, or a labelled error.
pub fn arr<'v>(v: &'v Value, what: &str) -> Result<&'v [Value], String> {
    v.as_arr()
        .ok_or_else(|| format!("{what} must be an array, got {}", v.kind()))
}

/// Member `key` of object `v`, or a labelled error.
pub fn field<'v>(v: &'v Value, key: &str, what: &str) -> Result<&'v Value, String> {
    obj(v, what)?;
    v.get(key)
        .ok_or_else(|| format!("{what}: missing key `{key}`"))
}

/// Member `key` as a string.
pub fn str_field(v: &Value, key: &str, what: &str) -> Result<String, String> {
    field(v, key, what)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("{what}.{key} must be a string"))
}

/// Member `key` as a boolean.
pub fn bool_field(v: &Value, key: &str, what: &str) -> Result<bool, String> {
    field(v, key, what)?
        .as_bool()
        .ok_or_else(|| format!("{what}.{key} must be a boolean"))
}

/// Member `key` as any number.
pub fn num_field(v: &Value, key: &str, what: &str) -> Result<f64, String> {
    field(v, key, what)?
        .as_f64()
        .ok_or_else(|| format!("{what}.{key} must be a number"))
}

/// Member `key` as an unsigned integer (exact).
pub fn u64_field(v: &Value, key: &str, what: &str) -> Result<u64, String> {
    field(v, key, what)?
        .as_u64()
        .ok_or_else(|| format!("{what}.{key} must be an unsigned integer"))
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if integral {
            // Exact integers: u64 for non-negative, i64 for negative —
            // seeds and counters round-trip without f64 truncation.
            if let Some(rest) = s.strip_prefix('-') {
                if let Ok(v) = rest.parse::<u64>() {
                    if v <= i64::MAX as u64 + 1 {
                        return Ok(Value::I64((v as i128).wrapping_neg() as i64));
                    }
                }
            } else if let Ok(v) = s.parse::<u64>() {
                return Ok(Value::U64(v));
            }
        }
        s.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("bad number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through unsplit.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members: Vec<(String, Value)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_exactly() {
        assert_eq!(parse("null"), Ok(Value::Null));
        assert_eq!(parse("true"), Ok(Value::Bool(true)));
        assert_eq!(parse("0"), Ok(Value::U64(0)));
        assert_eq!(
            parse("18446744073709551615"),
            Ok(Value::U64(u64::MAX)),
            "u64::MAX must not go through f64"
        );
        assert_eq!(parse("-3"), Ok(Value::I64(-3)));
        assert_eq!(
            parse("-9223372036854775808"),
            Ok(Value::I64(i64::MIN)),
            "i64::MIN is a valid integer token"
        );
        assert_eq!(parse("1.5"), Ok(Value::F64(1.5)));
        assert_eq!(parse("2e3"), Ok(Value::F64(2000.0)));
        assert_eq!(parse("\"a\\nb\""), Ok(Value::Str("a\nb".into())));
    }

    #[test]
    fn objects_keep_document_order() {
        let v = parse("{\"z\":1,\"a\":2}").unwrap();
        let members = v.as_obj().unwrap();
        assert_eq!(members[0].0, "z");
        assert_eq!(members[1].0, "a");
        assert_eq!(v.get("a"), Some(&Value::U64(2)));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("{}x").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn jsonl_skips_blank_lines_and_numbers_errors() {
        let vals = parse_jsonl("{\"a\":1}\n\n{\"b\":2}\n").unwrap();
        assert_eq!(vals.len(), 2);
        let err = parse_jsonl("{\"a\":1}\nnope\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn checked_accessors_label_errors() {
        let v = parse("{\"n\":3,\"s\":\"x\",\"b\":true}").unwrap();
        assert_eq!(u64_field(&v, "n", "doc"), Ok(3));
        assert_eq!(str_field(&v, "s", "doc"), Ok("x".to_string()));
        assert_eq!(bool_field(&v, "b", "doc"), Ok(true));
        assert!(num_field(&v, "s", "doc").unwrap_err().contains("doc.s"));
        assert!(field(&v, "gone", "doc").unwrap_err().contains("`gone`"));
        assert!(obj(&Value::Null, "doc").is_err());
        assert!(arr(&Value::Null, "doc").is_err());
    }

    #[test]
    fn display_round_trips_structure() {
        let v = parse("{\"a\":[1,-2,1.5,null,true,\"s\"]}").unwrap();
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }
}
