//! Concrete [`TraceSink`]s: in-memory ring buffer, JSONL writer, and
//! the JSONL serialization/validation of the event schema.
//!
//! The schema (documented normatively in `DESIGN.md` §10) is one JSON
//! object per line with a mandatory `"event"` discriminator:
//!
//! ```json
//! {"event":"step-started","step":0,"enabled":3}
//! {"event":"phase-timed","step":0,"phase":"select","nanos":1200,"par":false}
//! {"event":"moves-applied","step":0,"moves":2,"conflict_classes":null}
//! {"event":"enabled-set-size","step":0,"enabled":2}
//! {"event":"round-completed","step":0,"rounds":1}
//! {"event":"run-ended","steps":10,"moves":12,"rounds":3,"reason":"terminal"}
//! ```
//!
//! Without phase timing (the default), a trace is a pure function of
//! the seeded run: two traces of the same run are byte-identical.

use std::any::Any;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

use ssr_runtime::trace::{TraceEvent, TraceSink};

use crate::metrics::json_string;

/// Serializes one event as a single JSON line (no trailing newline).
pub fn event_to_json(event: &TraceEvent) -> String {
    let mut s = String::with_capacity(64);
    let _ = write!(s, "{{\"event\":\"{}\"", event.name());
    match event {
        TraceEvent::StepStarted { step, enabled } => {
            let _ = write!(s, ",\"step\":{step},\"enabled\":{enabled}");
        }
        TraceEvent::PhaseTimed {
            step,
            phase,
            nanos,
            par,
        } => {
            let _ = write!(
                s,
                ",\"step\":{step},\"phase\":\"{phase}\",\"nanos\":{nanos},\"par\":{par}"
            );
        }
        TraceEvent::MovesApplied {
            step,
            moves,
            conflict_classes,
        } => {
            let _ = write!(
                s,
                ",\"step\":{step},\"moves\":{moves},\"conflict_classes\":"
            );
            match conflict_classes {
                Some(k) => {
                    let _ = write!(s, "{k}");
                }
                None => s.push_str("null"),
            }
        }
        TraceEvent::EnabledSetSize { step, enabled } => {
            let _ = write!(s, ",\"step\":{step},\"enabled\":{enabled}");
        }
        TraceEvent::RoundCompleted { step, rounds } => {
            let _ = write!(s, ",\"step\":{step},\"rounds\":{rounds}");
        }
        TraceEvent::RunEnded {
            steps,
            moves,
            rounds,
            reason,
        } => {
            let _ = write!(
                s,
                ",\"steps\":{steps},\"moves\":{moves},\"rounds\":{rounds},\"reason\":{}",
                json_string(&reason.to_string())
            );
        }
    }
    s.push('}');
    s
}

/// The keys every serialized event of a given name must carry, beyond
/// `"event"` itself — the normative half of the schema check.
fn required_keys(event_name: &str) -> Option<&'static [&'static str]> {
    Some(match event_name {
        "step-started" | "enabled-set-size" => &["step", "enabled"],
        "phase-timed" => &["step", "phase", "nanos", "par"],
        "moves-applied" => &["step", "moves", "conflict_classes"],
        "round-completed" => &["step", "rounds"],
        "run-ended" => &["steps", "moves", "rounds", "reason"],
        _ => return None,
    })
}

/// Validates one JSONL trace line against the event schema: valid
/// JSON object, known event name, every required key present. Parsing
/// goes through the shared [`crate::json`] recursive-descent parser,
/// so structurally broken lines are rejected, not just missing keys.
pub fn validate_jsonl_line(line: &str) -> Result<(), String> {
    let value =
        crate::json::parse(line.trim()).map_err(|e| format!("invalid JSON ({e}): {line:?}"))?;
    if value.as_obj().is_none() {
        return Err(format!("not a JSON object: {line:?}"));
    }
    let name = value
        .get("event")
        .and_then(crate::json::Value::as_str)
        .ok_or_else(|| format!("missing \"event\" key: {line:?}"))?;
    let keys = required_keys(name).ok_or_else(|| format!("unknown event {name:?} in: {line:?}"))?;
    for key in keys {
        if value.get(key).is_none() {
            return Err(format!("event {name:?} is missing key {key:?}: {line:?}"));
        }
    }
    Ok(())
}

/// An in-memory sink keeping the **last** `capacity` events (older
/// events fall off the front) — the flight recorder for interactive
/// debugging and tests.
///
/// # Examples
///
/// ```
/// use ssr_obs::trace::RingSink;
/// use ssr_runtime::trace::{TraceEvent, TraceSink};
///
/// let mut ring = RingSink::new(2);
/// for step in 0..5 {
///     ring.record(&TraceEvent::StepStarted { step, enabled: 1 });
/// }
/// assert_eq!(ring.events().len(), 2);
/// let oldest = ring.events().next().unwrap();
/// assert!(matches!(oldest, TraceEvent::StepStarted { step: 3, .. }));
/// ```
#[derive(Debug)]
pub struct RingSink {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
    timing: bool,
}

impl RingSink {
    /// A ring holding at most `capacity` events (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        RingSink {
            buf: VecDeque::with_capacity(capacity.max(1)),
            capacity: capacity.max(1),
            dropped: 0,
            timing: false,
        }
    }

    /// Opts into per-phase wall-time events (nondeterministic values).
    #[must_use]
    pub fn with_phase_timing(mut self, timing: bool) -> Self {
        self.timing = timing;
        self
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl ExactSizeIterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Number of events that fell off the front.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, event: &TraceEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(*event);
    }

    fn wants_phase_timing(&self) -> bool {
        self.timing
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn Any> {
        Some(self)
    }
}

/// A sink writing one JSON line per event to any buffered writer —
/// files via [`JsonlSink::create`], or an owned `Vec<u8>` for tests.
///
/// Without phase timing (the default), output is deterministic: two
/// traces of the same seeded run are byte-identical.
pub struct JsonlSink<W: Write + Send> {
    writer: W,
    timing: bool,
    lines: u64,
}

impl JsonlSink<BufWriter<File>> {
    /// Creates (truncating) the trace file at `path`.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(JsonlSink::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps `writer` (supply your own buffering).
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer,
            timing: false,
            lines: 0,
        }
    }

    /// Opts into per-phase wall-time events (nondeterministic values —
    /// the trace stops being byte-comparable across runs).
    #[must_use]
    pub fn with_phase_timing(mut self, timing: bool) -> Self {
        self.timing = timing;
        self
    }

    /// Lines written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Flushes and hands back the writer.
    pub fn into_writer(mut self) -> W {
        let _ = self.writer.flush();
        self.writer
    }
}

impl<W: Write + Send + 'static> TraceSink for JsonlSink<W> {
    fn record(&mut self, event: &TraceEvent) {
        // I/O errors must not abort a measurement run; the final flush
        // in the CLI layer surfaces persistent failures.
        let _ = writeln!(self.writer, "{}", event_to_json(event));
        self.lines += 1;
    }

    fn wants_phase_timing(&self) -> bool {
        self.timing
    }

    fn flush(&mut self) {
        let _ = self.writer.flush();
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_runtime::TerminationReason;

    #[test]
    fn every_event_serializes_and_validates() {
        use ssr_runtime::trace::TracePhase;
        let events = [
            TraceEvent::StepStarted {
                step: 0,
                enabled: 3,
            },
            TraceEvent::PhaseTimed {
                step: 0,
                phase: TracePhase::Select,
                nanos: 12,
                par: false,
            },
            TraceEvent::MovesApplied {
                step: 0,
                moves: 2,
                conflict_classes: Some(1),
            },
            TraceEvent::MovesApplied {
                step: 1,
                moves: 2,
                conflict_classes: None,
            },
            TraceEvent::EnabledSetSize {
                step: 0,
                enabled: 2,
            },
            TraceEvent::RoundCompleted { step: 0, rounds: 1 },
            TraceEvent::RunEnded {
                steps: 5,
                moves: 6,
                rounds: 2,
                reason: TerminationReason::CapExhausted,
            },
        ];
        for e in &events {
            let line = event_to_json(e);
            validate_jsonl_line(&line).unwrap_or_else(|err| panic!("{err}"));
        }
    }

    #[test]
    fn validation_rejects_malformed_lines() {
        assert!(validate_jsonl_line("not json").is_err());
        assert!(validate_jsonl_line("{\"no\":\"event\"}").is_err());
        assert!(validate_jsonl_line("{\"event\":\"mystery\"}").is_err());
        assert!(validate_jsonl_line("{\"event\":\"step-started\",\"step\":1}").is_err());
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(&TraceEvent::StepStarted {
            step: 0,
            enabled: 1,
        });
        sink.record(&TraceEvent::EnabledSetSize {
            step: 0,
            enabled: 0,
        });
        assert_eq!(sink.lines(), 2);
        let out = String::from_utf8(sink.into_writer()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        for l in lines {
            validate_jsonl_line(l).unwrap();
        }
    }

    #[test]
    fn ring_sink_keeps_the_tail() {
        let mut ring = RingSink::new(3);
        for step in 0..10 {
            ring.record(&TraceEvent::StepStarted { step, enabled: 1 });
        }
        assert_eq!(ring.dropped(), 7);
        let steps: Vec<u64> = ring
            .events()
            .map(|e| match e {
                TraceEvent::StepStarted { step, .. } => *step,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(steps, vec![7, 8, 9]);
    }
}
