//! Live campaign progress: scenario completion counts, ETA, and
//! per-worker state, streamed to stderr or a JSONL file.
//!
//! A [`Progress`] implementation is driven by the campaign worker pool
//! (behind a mutex — progress is inherently a shared, rate-limited
//! side channel, not a per-step hot path). [`StderrProgress`] renders
//! a human one-liner; [`JsonlProgress`] appends machine-readable
//! records for dashboards and post-hoc analysis.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::time::{Duration, Instant};

use crate::metrics::json_string;

/// Receives campaign life-cycle notifications.
///
/// Call order: one `begin`, then interleaved `item_started` /
/// `item_done` (from the pool's dispatch loop, already serialized),
/// then one `finish`. Implementations must tolerate `item_started`
/// being skipped (sequential drivers may only report completions).
pub trait Progress: Send {
    /// The campaign is starting with `total` work items.
    fn begin(&mut self, total: usize) {
        let _ = total;
    }

    /// Worker `worker` picked up item `index`.
    fn item_started(&mut self, worker: usize, index: usize, label: &str) {
        let _ = (worker, index, label);
    }

    /// Item `index` finished; `ok` is false when the scenario reported
    /// a property violation or error.
    fn item_done(&mut self, index: usize, label: &str, ok: bool) {
        let _ = (index, label, ok);
    }

    /// The campaign is over; flush anything buffered.
    fn finish(&mut self) {}
}

/// The zero-cost default: every notification is a no-op.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoProgress;

impl Progress for NoProgress {}

/// Renders `done/total`, percent, elapsed, ETA, and the busy workers'
/// current labels as a single stderr line per (rate-limited) update.
#[derive(Debug)]
pub struct StderrProgress {
    total: usize,
    done: usize,
    failed: usize,
    started: Option<Instant>,
    last_print: Option<Instant>,
    /// What each worker is currently running (None = idle).
    workers: Vec<Option<String>>,
    /// Minimum gap between printed updates (the final one always
    /// prints).
    min_interval: Duration,
}

impl StderrProgress {
    /// A reporter printing at most ~5 updates per second.
    pub fn new() -> Self {
        StderrProgress {
            total: 0,
            done: 0,
            failed: 0,
            started: None,
            last_print: None,
            workers: Vec::new(),
            min_interval: Duration::from_millis(200),
        }
    }

    /// Overrides the update rate limit (tests use zero).
    #[must_use]
    pub fn with_min_interval(mut self, min_interval: Duration) -> Self {
        self.min_interval = min_interval;
        self
    }

    /// Completed item count.
    pub fn done(&self) -> usize {
        self.done
    }

    /// Items that finished not-ok.
    pub fn failed(&self) -> usize {
        self.failed
    }

    /// The line body (without the leading `\r`): exposed for tests.
    pub fn render_line(&self) -> String {
        let pct = if self.total > 0 {
            100.0 * self.done as f64 / self.total as f64
        } else {
            0.0
        };
        let elapsed = self
            .started
            .map(|t| t.elapsed())
            .unwrap_or_default()
            .as_secs_f64();
        let eta = if self.done > 0 && self.done < self.total {
            let per_item = elapsed / self.done as f64;
            format!(", eta {:.0}s", per_item * (self.total - self.done) as f64)
        } else {
            String::new()
        };
        let busy: Vec<&str> = self.workers.iter().filter_map(|w| w.as_deref()).collect();
        let mut line = format!(
            "campaign {}/{} ({pct:.0}%), {:.1}s elapsed{eta}",
            self.done, self.total, elapsed
        );
        if self.failed > 0 {
            line.push_str(&format!(", {} failed", self.failed));
        }
        if !busy.is_empty() {
            line.push_str(&format!(" | running: {}", busy.join(", ")));
        }
        line
    }

    fn print(&mut self, force: bool) {
        let due = match self.last_print {
            None => true,
            Some(t) => t.elapsed() >= self.min_interval,
        };
        if !(force || due) {
            return;
        }
        self.last_print = Some(Instant::now());
        eprint!("\r\x1b[2K{}", self.render_line());
        let _ = std::io::stderr().flush();
    }
}

impl Default for StderrProgress {
    fn default() -> Self {
        StderrProgress::new()
    }
}

impl Progress for StderrProgress {
    fn begin(&mut self, total: usize) {
        self.total = total;
        self.done = 0;
        self.failed = 0;
        self.started = Some(Instant::now());
        self.print(true);
    }

    fn item_started(&mut self, worker: usize, _index: usize, label: &str) {
        if self.workers.len() <= worker {
            self.workers.resize(worker + 1, None);
        }
        self.workers[worker] = Some(label.to_owned());
    }

    fn item_done(&mut self, _index: usize, label: &str, ok: bool) {
        self.done += 1;
        if !ok {
            self.failed += 1;
        }
        for w in &mut self.workers {
            if w.as_deref() == Some(label) {
                *w = None;
                break;
            }
        }
        self.print(self.done == self.total);
    }

    fn finish(&mut self) {
        self.print(true);
        eprintln!();
    }
}

/// Appends one JSON record per notification:
///
/// ```json
/// {"progress":"begin","total":12}
/// {"progress":"item","index":0,"done":1,"total":12,"label":"unison/ring/n=16","ok":true,"elapsed_ms":41}
/// {"progress":"end","done":12,"total":12,"failed":0,"elapsed_ms":873}
/// ```
///
/// `item_started` is not persisted — the file records completions, not
/// scheduling.
pub struct JsonlProgress<W: Write + Send> {
    writer: W,
    total: usize,
    done: usize,
    failed: usize,
    started: Option<Instant>,
}

impl JsonlProgress<BufWriter<File>> {
    /// Creates (truncating) the progress file at `path`.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(JsonlProgress::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write + Send> JsonlProgress<W> {
    /// Wraps `writer` (supply your own buffering).
    pub fn new(writer: W) -> Self {
        JsonlProgress {
            writer,
            total: 0,
            done: 0,
            failed: 0,
            started: None,
        }
    }

    /// Flushes and hands back the writer.
    pub fn into_writer(mut self) -> W {
        let _ = self.writer.flush();
        self.writer
    }

    fn elapsed_ms(&self) -> u128 {
        self.started.map(|t| t.elapsed().as_millis()).unwrap_or(0)
    }
}

impl<W: Write + Send> Progress for JsonlProgress<W> {
    fn begin(&mut self, total: usize) {
        self.total = total;
        self.done = 0;
        self.failed = 0;
        self.started = Some(Instant::now());
        let _ = writeln!(self.writer, "{{\"progress\":\"begin\",\"total\":{total}}}");
    }

    fn item_done(&mut self, index: usize, label: &str, ok: bool) {
        self.done += 1;
        if !ok {
            self.failed += 1;
        }
        let _ = writeln!(
            self.writer,
            "{{\"progress\":\"item\",\"index\":{index},\"done\":{},\"total\":{},\"label\":{},\"ok\":{ok},\"elapsed_ms\":{}}}",
            self.done,
            self.total,
            json_string(label),
            self.elapsed_ms()
        );
    }

    fn finish(&mut self) {
        let _ = writeln!(
            self.writer,
            "{{\"progress\":\"end\",\"done\":{},\"total\":{},\"failed\":{},\"elapsed_ms\":{}}}",
            self.done,
            self.total,
            self.failed,
            self.elapsed_ms()
        );
        let _ = self.writer.flush();
    }
}

// ---------------------------------------------------------------------
// ProgressBus: the shared live-event channel behind SSE streaming
// ---------------------------------------------------------------------

/// A point-in-time view of a [`ProgressBus`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BusSnapshot {
    /// Work items announced by `begin`.
    pub total: usize,
    /// Items completed so far.
    pub done: usize,
    /// Completed items that reported not-ok.
    pub failed: usize,
    /// Whether `finish` has been called.
    pub finished: bool,
    /// Number of event lines recorded so far (a cursor for
    /// [`ProgressBus::events_since`]).
    pub events: usize,
}

struct BusState {
    events: Vec<String>,
    snap: BusSnapshot,
}

/// A cloneable, in-memory progress/trace event bus: the campaign side
/// writes through the [`Progress`] (and
/// [`TraceSink`](ssr_runtime::trace::TraceSink)) impls, any number of
/// readers poll [`ProgressBus::events_since`] — which blocks on a
/// condvar until new events arrive — and stream them on (this is what
/// feeds `ssr-serve`'s `text/event-stream` endpoint).
///
/// Events are the [`JsonlProgress`] line formats minus the wall-clock
/// `elapsed_ms` field (bus contents are a deterministic function of
/// the campaign), so a bus is a JSONL progress file that never touches
/// disk; `RunEnded` trace events append `{"trace":"run-ended",...}`
/// lines in between.
///
/// # Examples
///
/// ```
/// use ssr_obs::progress::{Progress, ProgressBus};
///
/// let mut bus = ProgressBus::new();
/// let reader = bus.clone();
/// bus.begin(2);
/// bus.item_done(0, "ring/n=8#0", true);
/// let (events, cursor) = reader.events_since(0, std::time::Duration::ZERO);
/// assert_eq!(events.len(), 2);
/// assert_eq!(cursor, 2);
/// assert_eq!(events[0], "{\"progress\":\"begin\",\"total\":2}");
/// assert_eq!(reader.snapshot().done, 1);
/// ```
#[derive(Clone)]
pub struct ProgressBus {
    state: std::sync::Arc<(std::sync::Mutex<BusState>, std::sync::Condvar)>,
}

impl ProgressBus {
    /// An empty bus.
    pub fn new() -> Self {
        ProgressBus {
            state: std::sync::Arc::new((
                std::sync::Mutex::new(BusState {
                    events: Vec::new(),
                    snap: BusSnapshot::default(),
                }),
                std::sync::Condvar::new(),
            )),
        }
    }

    fn push(&self, line: String, update: impl FnOnce(&mut BusSnapshot)) {
        let (lock, cvar) = &*self.state;
        let mut st = lock.lock().unwrap();
        st.events.push(line);
        let events = st.events.len();
        update(&mut st.snap);
        st.snap.events = events;
        cvar.notify_all();
    }

    /// The current counters.
    pub fn snapshot(&self) -> BusSnapshot {
        self.state.0.lock().unwrap().snap.clone()
    }

    /// Event lines recorded after cursor `from`, plus the new cursor.
    ///
    /// Blocks up to `timeout` waiting for news; returns early (and
    /// possibly empty) once the bus is finished, so streaming readers
    /// terminate promptly at campaign end.
    pub fn events_since(&self, from: usize, timeout: Duration) -> (Vec<String>, usize) {
        let (lock, cvar) = &*self.state;
        let mut st = lock.lock().unwrap();
        let deadline = Instant::now() + timeout;
        while st.events.len() <= from && !st.snap.finished {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                break;
            }
            let (next, timed_out) = cvar.wait_timeout(st, left).unwrap();
            st = next;
            if timed_out.timed_out() {
                break;
            }
        }
        let events = if st.events.len() > from {
            st.events[from..].to_vec()
        } else {
            Vec::new()
        };
        (events, st.events.len())
    }
}

impl Default for ProgressBus {
    fn default() -> Self {
        ProgressBus::new()
    }
}

impl Progress for ProgressBus {
    fn begin(&mut self, total: usize) {
        self.push(
            format!("{{\"progress\":\"begin\",\"total\":{total}}}"),
            |snap| {
                snap.total = total;
                snap.done = 0;
                snap.failed = 0;
                snap.finished = false;
            },
        );
    }

    fn item_done(&mut self, index: usize, label: &str, ok: bool) {
        let (lock, cvar) = &*self.state;
        let mut st = lock.lock().unwrap();
        st.snap.done += 1;
        if !ok {
            st.snap.failed += 1;
        }
        let line = format!(
            "{{\"progress\":\"item\",\"index\":{index},\"done\":{},\"total\":{},\"label\":{},\"ok\":{ok}}}",
            st.snap.done,
            st.snap.total,
            json_string(label),
        );
        st.events.push(line);
        st.snap.events = st.events.len();
        cvar.notify_all();
    }

    fn finish(&mut self) {
        let (lock, cvar) = &*self.state;
        let mut st = lock.lock().unwrap();
        let line = format!(
            "{{\"progress\":\"end\",\"done\":{},\"total\":{},\"failed\":{}}}",
            st.snap.done, st.snap.total, st.snap.failed,
        );
        st.events.push(line);
        st.snap.events = st.events.len();
        st.snap.finished = true;
        cvar.notify_all();
    }
}

impl ssr_runtime::trace::TraceSink for ProgressBus {
    fn record(&mut self, event: &ssr_runtime::trace::TraceEvent) {
        if let ssr_runtime::trace::TraceEvent::RunEnded {
            steps,
            moves,
            rounds,
            reason,
        } = event
        {
            self.push(
                format!(
                    "{{\"trace\":\"run-ended\",\"steps\":{steps},\"moves\":{moves},\
                     \"rounds\":{rounds},\"reason\":\"{reason}\"}}"
                ),
                |_| {},
            );
        }
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

/// Compile-time guard: progress reporters cross the worker-pool
/// boundary.
#[allow(dead_code)]
fn assert_send() {
    fn is_send<T: Send>() {}
    is_send::<NoProgress>();
    is_send::<StderrProgress>();
    is_send::<JsonlProgress<BufWriter<File>>>();
    is_send::<ProgressBus>();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_progress_records_the_campaign() {
        let mut p = JsonlProgress::new(Vec::new());
        p.begin(2);
        p.item_done(0, "a/b", true);
        p.item_done(1, "c\"d", false);
        p.finish();
        let out = String::from_utf8(p.into_writer()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "{\"progress\":\"begin\",\"total\":2}");
        assert!(lines[1].contains("\"done\":1") && lines[1].contains("\"label\":\"a/b\""));
        assert!(lines[2].contains("\"ok\":false") && lines[2].contains("c\\\"d"));
        assert!(lines[3].starts_with("{\"progress\":\"end\",\"done\":2,\"total\":2,\"failed\":1"));
    }

    #[test]
    fn stderr_progress_tracks_counts_and_workers() {
        let mut p = StderrProgress::new().with_min_interval(Duration::from_secs(3600));
        p.begin(4);
        p.item_started(1, 0, "ring/16");
        assert!(p.render_line().contains("running: ring/16"));
        p.item_done(0, "ring/16", true);
        p.item_done(1, "torus/64", false);
        assert_eq!((p.done(), p.failed()), (2, 1));
        let line = p.render_line();
        assert!(
            line.contains("2/4") && line.contains("50%") && line.contains("1 failed"),
            "{line}"
        );
        assert!(!line.contains("running:"), "{line}");
        p.finish();
    }

    #[test]
    fn bus_streams_events_to_a_blocking_reader() {
        let mut bus = ProgressBus::new();
        let reader = bus.clone();
        let t = std::thread::spawn(move || {
            let mut cursor = 0;
            let mut lines = Vec::new();
            loop {
                let (events, next) = reader.events_since(cursor, Duration::from_secs(10));
                cursor = next;
                lines.extend(events);
                if reader.snapshot().finished && cursor == reader.snapshot().events {
                    return lines;
                }
            }
        });
        bus.begin(2);
        bus.item_done(0, "a", true);
        bus.item_done(1, "b", false);
        bus.finish();
        let lines = t.join().unwrap();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "{\"progress\":\"begin\",\"total\":2}");
        assert_eq!(
            lines[1],
            "{\"progress\":\"item\",\"index\":0,\"done\":1,\"total\":2,\"label\":\"a\",\"ok\":true}"
        );
        assert_eq!(
            lines[3],
            "{\"progress\":\"end\",\"done\":2,\"total\":2,\"failed\":1}"
        );
        let snap = bus.snapshot();
        assert_eq!((snap.total, snap.done, snap.failed), (2, 2, 1));
        assert!(snap.finished);
    }

    #[test]
    fn bus_records_run_ended_trace_events_only() {
        use ssr_runtime::trace::{TraceEvent, TraceSink};
        use ssr_runtime::TerminationReason;
        let mut bus = ProgressBus::new();
        assert!(!bus.wants_phase_timing());
        bus.record(&TraceEvent::StepStarted {
            step: 1,
            enabled: 3,
        });
        bus.record(&TraceEvent::RunEnded {
            steps: 5,
            moves: 7,
            rounds: 2,
            reason: TerminationReason::Terminal,
        });
        let (events, _) = bus.events_since(0, Duration::ZERO);
        assert_eq!(
            events,
            vec![
                "{\"trace\":\"run-ended\",\"steps\":5,\"moves\":7,\"rounds\":2,\
                 \"reason\":\"terminal\"}"
            ]
        );
        assert!(bus.as_any_mut().is_some());
    }

    #[test]
    fn bus_timeout_returns_empty_without_news() {
        let bus = ProgressBus::new();
        let (events, cursor) = bus.events_since(0, Duration::from_millis(10));
        assert!(events.is_empty());
        assert_eq!(cursor, 0);
    }

    #[test]
    fn eta_appears_once_items_complete() {
        let mut p = StderrProgress::new().with_min_interval(Duration::ZERO);
        p.begin(10);
        assert!(!p.render_line().contains("eta"));
        p.item_done(0, "x", true);
        assert!(p.render_line().contains("eta"));
        p.finish();
    }
}
