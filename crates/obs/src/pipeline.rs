//! [`PipelineMetrics`]: a [`TraceSink`] folding the step pipeline's
//! event stream into the metrics registry — per-phase wall time,
//! moves/step, enabled-set occupancy, and kernel utilization — and
//! [`CompositeSink`], the metrics + trace-file fanout the campaign and
//! bench layers install through the family boundary.

use std::any::Any;
use std::fs::File;
use std::io::BufWriter;

use ssr_runtime::trace::{TraceEvent, TraceSink};

use crate::metrics::MetricsSet;
use crate::trace::JsonlSink;

/// Folds [`TraceEvent`]s into a [`MetricsSet`] as they stream by.
///
/// Metric keys (see `DESIGN.md` §10 for the full table):
///
/// * `pipeline.steps`, `pipeline.moves`, `pipeline.rounds` — counters;
/// * `pipeline.moves_per_step`, `pipeline.enabled_set` — histograms;
/// * `phase.{select,apply,guards}.nanos` — histograms (phase timing
///   on, the default for this sink);
/// * `kernel.{apply,guards}.par_steps` / `.seq_steps` — counters
///   splitting each parallelizable phase by whether the installed
///   kernels engaged (intra-thread utilization);
/// * `pipeline.conflict_classes` — histogram, only when the simulator
///   has conflict diagnostics on.
///
/// # Examples
///
/// ```
/// use ssr_obs::pipeline::PipelineMetrics;
/// use ssr_runtime::trace::{TraceEvent, TraceSink};
///
/// let mut pm = PipelineMetrics::new();
/// pm.record(&TraceEvent::StepStarted { step: 0, enabled: 4 });
/// pm.record(&TraceEvent::MovesApplied { step: 0, moves: 2, conflict_classes: None });
/// let m = pm.into_metrics();
/// assert_eq!(m.counter_value("pipeline.steps"), Some(1));
/// assert_eq!(m.counter_value("pipeline.moves"), Some(2));
/// ```
#[derive(Debug, Default)]
pub struct PipelineMetrics {
    metrics: MetricsSet,
    timing: bool,
}

impl PipelineMetrics {
    /// A sink with phase timing **on** (its reason to exist); use
    /// [`PipelineMetrics::without_timing`] for deterministic folds.
    pub fn new() -> Self {
        PipelineMetrics {
            metrics: MetricsSet::new(),
            timing: true,
        }
    }

    /// A deterministic variant: no clock reads, so the folded metrics
    /// are a pure function of the seeded run.
    pub fn without_timing() -> Self {
        PipelineMetrics {
            metrics: MetricsSet::new(),
            timing: false,
        }
    }

    /// The metrics folded so far.
    pub fn metrics(&self) -> &MetricsSet {
        &self.metrics
    }

    /// Consumes the sink into its metrics.
    pub fn into_metrics(self) -> MetricsSet {
        self.metrics
    }

    /// Drains the folded metrics, leaving the sink empty (for reuse
    /// across runs).
    pub fn take_metrics(&mut self) -> MetricsSet {
        std::mem::take(&mut self.metrics)
    }
}

impl TraceSink for PipelineMetrics {
    fn record(&mut self, event: &TraceEvent) {
        match event {
            TraceEvent::StepStarted { enabled, .. } => {
                self.metrics.inc("pipeline.steps", 1);
                self.metrics
                    .observe("pipeline.enabled_set", *enabled as u64);
            }
            TraceEvent::PhaseTimed {
                phase, nanos, par, ..
            } => {
                self.metrics
                    .observe(&format!("phase.{phase}.nanos"), *nanos);
                // Select is sequential by design; utilization split
                // only makes sense for the parallelizable phases.
                if phase.as_str() != "select" {
                    let kind = if *par { "par_steps" } else { "seq_steps" };
                    self.metrics.inc(&format!("kernel.{phase}.{kind}"), 1);
                }
            }
            TraceEvent::MovesApplied {
                moves,
                conflict_classes,
                ..
            } => {
                self.metrics.inc("pipeline.moves", *moves as u64);
                self.metrics
                    .observe("pipeline.moves_per_step", *moves as u64);
                if let Some(k) = conflict_classes {
                    self.metrics.observe("pipeline.conflict_classes", *k as u64);
                }
            }
            TraceEvent::EnabledSetSize { .. } => {}
            TraceEvent::RoundCompleted { .. } => {
                self.metrics.inc("pipeline.rounds", 1);
            }
            TraceEvent::RunEnded { .. } => {
                self.metrics.inc("pipeline.runs", 1);
            }
        }
    }

    fn wants_phase_timing(&self) -> bool {
        self.timing
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn Any> {
        Some(self)
    }
}

/// The standard composite: fans each event into a metrics fold and/or
/// a JSONL trace file, whichever are enabled. Install it as a boxed
/// [`TraceSink`], recover it afterwards through
/// [`TraceSink::as_any_mut`] and drain the metrics with
/// [`CompositeSink::take_metrics`].
#[derive(Default)]
pub struct CompositeSink {
    metrics: Option<PipelineMetrics>,
    file: Option<JsonlSink<BufWriter<File>>>,
}

impl CompositeSink {
    /// A sink driving the given channels (either may be `None`).
    pub fn new(metrics: Option<PipelineMetrics>, file: Option<JsonlSink<BufWriter<File>>>) -> Self {
        CompositeSink { metrics, file }
    }

    /// Whether no channel is enabled (callers skip installation).
    pub fn is_empty(&self) -> bool {
        self.metrics.is_none() && self.file.is_none()
    }

    /// Takes the folded metrics out (once), flushing the file channel.
    pub fn take_metrics(&mut self) -> Option<MetricsSet> {
        if let Some(f) = &mut self.file {
            f.flush();
        }
        self.metrics.take().map(PipelineMetrics::into_metrics)
    }
}

impl TraceSink for CompositeSink {
    fn record(&mut self, event: &TraceEvent) {
        if let Some(m) = &mut self.metrics {
            m.record(event);
        }
        if let Some(f) = &mut self.file {
            f.record(event);
        }
    }

    fn wants_phase_timing(&self) -> bool {
        self.metrics
            .as_ref()
            .is_some_and(|m| m.wants_phase_timing())
            || self.file.as_ref().is_some_and(|f| f.wants_phase_timing())
    }

    fn flush(&mut self) {
        if let Some(f) = &mut self.file {
            f.flush();
        }
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_runtime::trace::TracePhase;
    use ssr_runtime::TerminationReason;

    #[test]
    fn folds_the_full_stream() {
        let mut pm = PipelineMetrics::new();
        pm.record(&TraceEvent::StepStarted {
            step: 0,
            enabled: 5,
        });
        pm.record(&TraceEvent::PhaseTimed {
            step: 0,
            phase: TracePhase::Select,
            nanos: 100,
            par: false,
        });
        pm.record(&TraceEvent::PhaseTimed {
            step: 0,
            phase: TracePhase::Apply,
            nanos: 200,
            par: true,
        });
        pm.record(&TraceEvent::PhaseTimed {
            step: 0,
            phase: TracePhase::Guards,
            nanos: 300,
            par: false,
        });
        pm.record(&TraceEvent::MovesApplied {
            step: 0,
            moves: 3,
            conflict_classes: Some(2),
        });
        pm.record(&TraceEvent::EnabledSetSize {
            step: 0,
            enabled: 2,
        });
        pm.record(&TraceEvent::RoundCompleted { step: 0, rounds: 1 });
        pm.record(&TraceEvent::RunEnded {
            steps: 1,
            moves: 3,
            rounds: 1,
            reason: TerminationReason::Terminal,
        });
        let m = pm.into_metrics();
        assert_eq!(m.counter_value("pipeline.steps"), Some(1));
        assert_eq!(m.counter_value("pipeline.moves"), Some(3));
        assert_eq!(m.counter_value("pipeline.rounds"), Some(1));
        assert_eq!(m.counter_value("pipeline.runs"), Some(1));
        assert_eq!(m.counter_value("kernel.apply.par_steps"), Some(1));
        assert_eq!(m.counter_value("kernel.guards.seq_steps"), Some(1));
        assert_eq!(m.counter_value("kernel.select.seq_steps"), None);
        assert_eq!(m.histogram("phase.select.nanos").unwrap().sum(), 100);
        assert_eq!(
            m.histogram("pipeline.conflict_classes").unwrap().max(),
            Some(2)
        );
    }

    #[test]
    fn timing_opt_out_is_deterministic() {
        let pm = PipelineMetrics::without_timing();
        assert!(!pm.wants_phase_timing());
    }

    #[test]
    fn composite_sink_round_trips_through_the_erased_interface() {
        let mut boxed: Box<dyn TraceSink> = Box::new(CompositeSink::new(
            Some(PipelineMetrics::without_timing()),
            None,
        ));
        assert!(!boxed.wants_phase_timing());
        boxed.record(&TraceEvent::StepStarted {
            step: 0,
            enabled: 2,
        });
        boxed.record(&TraceEvent::MovesApplied {
            step: 0,
            moves: 2,
            conflict_classes: None,
        });
        let composite = boxed
            .as_any_mut()
            .and_then(|a| a.downcast_mut::<CompositeSink>())
            .expect("recoverable");
        let m = composite.take_metrics().expect("metrics channel on");
        assert_eq!(m.counter_value("pipeline.steps"), Some(1));
        assert!(composite.take_metrics().is_none(), "drained once");
        assert!(CompositeSink::default().is_empty());
    }
}
