//! The metrics registry: counters, gauges, and fixed-bucket histograms
//! with per-thread accumulation and a deterministic merged snapshot.
//!
//! The design is lock-free by **ownership**, not by atomics: each
//! worker thread owns a private [`MetricsSet`] and submits it once to a
//! shared [`MetricsHub`] when its work is done. Every merge operation
//! is commutative and associative (counters add, gauges keep extrema,
//! histogram buckets add), and snapshots sort keys, so a merged
//! [`MetricsSnapshot`] has deterministic *structure* regardless of
//! submission order — only wall-clock-derived values vary between
//! runs, and those live under explicitly time-valued keys.
//!
//! Histograms use fixed power-of-two buckets (the value's bit length),
//! so observing a value is a handful of integer ops and two slots of
//! memory traffic — cheap enough for per-step use.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

/// Number of power-of-two histogram buckets: bucket 0 holds zeros,
/// bucket `i ≥ 1` holds values of bit length `i` (`2^(i-1) ..= 2^i-1`).
const BUCKETS: usize = 65;

/// A fixed-bucket histogram over `u64` values.
///
/// Buckets are powers of two (value bit length), so the layout is
/// identical for every histogram and merging is plain elementwise
/// addition.
///
/// # Examples
///
/// ```
/// use ssr_obs::metrics::Histogram;
///
/// let mut h = Histogram::default();
/// for v in [0, 1, 2, 3, 900] {
///     h.observe(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.sum(), 906);
/// assert_eq!((h.min(), h.max()), (Some(0), Some(900)));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: Box::new([0; BUCKETS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Inclusive upper bound of bucket `i`.
    fn bucket_le(i: usize) -> u64 {
        match i {
            0 => 0,
            64 => u64::MAX,
            _ => (1u64 << i) - 1,
        }
    }

    /// Records one value.
    pub fn observe(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Arithmetic mean (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Non-empty buckets as `(inclusive_upper_bound, count)` pairs, in
    /// ascending bound order.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_le(i), c))
            .collect()
    }

    /// Adds `other` into `self` (elementwise; commutative).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// One named metric value.
#[derive(Clone, Debug, PartialEq)]
pub enum Metric {
    /// Monotone event count; merges by addition.
    Counter(u64),
    /// Sampled level; merges by keeping the extrema over all samples.
    Gauge {
        /// Smallest sampled value.
        min: u64,
        /// Largest sampled value.
        max: u64,
        /// Most recent sample of *this* set (merge keeps the left one).
        last: u64,
    },
    /// Distribution of values; merges bucketwise.
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge { .. } => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A thread-owned bundle of named metrics.
///
/// Keys sort lexicographically in snapshots; dots conventionally
/// namespace them (`pipeline.steps`, `phase.apply.nanos`). Mixing
/// metric kinds under one key panics — that is a programming error,
/// not data.
///
/// # Examples
///
/// ```
/// use ssr_obs::metrics::MetricsSet;
///
/// let mut m = MetricsSet::new();
/// m.inc("runs", 1);
/// m.observe("moves_per_step", 3);
/// m.gauge_set("enabled", 17);
/// assert_eq!(m.counter_value("runs"), Some(1));
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSet {
    metrics: BTreeMap<String, Metric>,
}

impl MetricsSet {
    /// An empty set.
    pub fn new() -> Self {
        MetricsSet::default()
    }

    /// Adds `v` to counter `key` (created at zero).
    pub fn inc(&mut self, key: &str, v: u64) {
        match self
            .metrics
            .entry(key.to_string())
            .or_insert(Metric::Counter(0))
        {
            Metric::Counter(c) => *c += v,
            m => panic!("metric {key:?} is a {}, not a counter", m.kind()),
        }
    }

    /// Samples gauge `key` at level `v`.
    pub fn gauge_set(&mut self, key: &str, v: u64) {
        match self
            .metrics
            .entry(key.to_string())
            .or_insert(Metric::Gauge {
                min: v,
                max: v,
                last: v,
            }) {
            Metric::Gauge { min, max, last } => {
                *min = (*min).min(v);
                *max = (*max).max(v);
                *last = v;
            }
            m => panic!("metric {key:?} is a {}, not a gauge", m.kind()),
        }
    }

    /// Records `v` into histogram `key` (created empty).
    pub fn observe(&mut self, key: &str, v: u64) {
        match self
            .metrics
            .entry(key.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::default()))
        {
            Metric::Histogram(h) => h.observe(v),
            m => panic!("metric {key:?} is a {}, not a histogram", m.kind()),
        }
    }

    /// The value of counter `key`, if present.
    pub fn counter_value(&self, key: &str) -> Option<u64> {
        match self.metrics.get(key)? {
            Metric::Counter(c) => Some(*c),
            _ => None,
        }
    }

    /// The histogram under `key`, if present.
    pub fn histogram(&self, key: &str) -> Option<&Histogram> {
        match self.metrics.get(key)? {
            Metric::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// The metric under `key`, if present.
    pub fn get(&self, key: &str) -> Option<&Metric> {
        self.metrics.get(key)
    }

    /// Whether no metric was ever touched.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Merges `other` into `self`. Counters add, gauges keep extrema
    /// (and `self`'s `last`), histograms add bucketwise — commutative
    /// and associative up to the `last` tiebreak, so any submission
    /// order yields the same aggregate structure.
    ///
    /// # Panics
    ///
    /// Panics when the same key holds different metric kinds.
    pub fn merge(&mut self, other: &MetricsSet) {
        for (key, theirs) in &other.metrics {
            match self.metrics.get_mut(key) {
                None => {
                    self.metrics.insert(key.clone(), theirs.clone());
                }
                Some(ours) => match (ours, theirs) {
                    (Metric::Counter(a), Metric::Counter(b)) => *a += b,
                    (
                        Metric::Gauge { min, max, .. },
                        Metric::Gauge {
                            min: bmin,
                            max: bmax,
                            ..
                        },
                    ) => {
                        *min = (*min).min(*bmin);
                        *max = (*max).max(*bmax);
                    }
                    (Metric::Histogram(a), Metric::Histogram(b)) => a.merge(b),
                    (ours, theirs) => panic!(
                        "metric {key:?} kind mismatch: {} vs {}",
                        ours.kind(),
                        theirs.kind()
                    ),
                },
            }
        }
    }

    /// Freezes the set into a sorted snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            items: self
                .metrics
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }
}

/// The merge point worker threads submit their [`MetricsSet`]s to.
///
/// The mutex is touched once per worker lifetime (at submission), not
/// per event — accumulation itself stays lock-free.
#[derive(Debug, Default)]
pub struct MetricsHub {
    merged: Mutex<MetricsSet>,
}

impl MetricsHub {
    /// An empty hub.
    pub fn new() -> Self {
        MetricsHub::default()
    }

    /// Merges one worker's finished set.
    pub fn submit(&self, set: &MetricsSet) {
        self.merged.lock().expect("metrics hub poisoned").merge(set);
    }

    /// Snapshot of everything submitted so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.merged.lock().expect("metrics hub poisoned").snapshot()
    }

    /// Consumes the hub into its merged set — for folding one
    /// campaign's hub into a longer-lived aggregate.
    pub fn into_inner(self) -> MetricsSet {
        self.merged.into_inner().expect("metrics hub poisoned")
    }
}

/// An immutable, key-sorted view of a merged [`MetricsSet`], with JSON
/// and human-table renderings.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsSnapshot {
    items: Vec<(String, Metric)>,
}

impl MetricsSnapshot {
    /// The metrics, sorted by key.
    pub fn items(&self) -> &[(String, Metric)] {
        &self.items
    }

    /// The metric under `key`, if present.
    pub fn get(&self, key: &str) -> Option<&Metric> {
        self.items
            .binary_search_by(|(k, _)| k.as_str().cmp(key))
            .ok()
            .map(|i| &self.items[i].1)
    }

    /// One JSON object: `{"schema":"ssr-metrics-v1","metrics":{...}}`.
    /// Hand-rolled (the workspace has no serde); key order is the
    /// sorted key order, so equal snapshots render equal bytes.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"schema\":\"ssr-metrics-v1\",\"metrics\":{");
        for (i, (key, m)) in self.items.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{}:", json_string(key));
            match m {
                Metric::Counter(c) => {
                    let _ = write!(s, "{{\"type\":\"counter\",\"value\":{c}}}");
                }
                Metric::Gauge { min, max, last } => {
                    let _ = write!(
                        s,
                        "{{\"type\":\"gauge\",\"min\":{min},\"max\":{max},\"last\":{last}}}"
                    );
                }
                Metric::Histogram(h) => {
                    let _ = write!(
                        s,
                        "{{\"type\":\"histogram\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
                        h.count(),
                        h.sum(),
                        h.min().unwrap_or(0),
                        h.max().unwrap_or(0),
                    );
                    for (j, (le, c)) in h.nonzero_buckets().into_iter().enumerate() {
                        if j > 0 {
                            s.push(',');
                        }
                        let _ = write!(s, "[{le},{c}]");
                    }
                    s.push_str("]}");
                }
            }
        }
        s.push_str("}}");
        s
    }

    /// A fixed-width human table, one metric per row.
    pub fn render_table(&self) -> String {
        let key_w = self
            .items
            .iter()
            .map(|(k, _)| k.len())
            .max()
            .unwrap_or(6)
            .max(6);
        let mut s = format!("{:<key_w$}  {:<9}  value\n", "metric", "type");
        let _ = writeln!(
            s,
            "{}  {}  {}",
            "-".repeat(key_w),
            "-".repeat(9),
            "-".repeat(30)
        );
        for (key, m) in &self.items {
            match m {
                Metric::Counter(c) => {
                    let _ = writeln!(s, "{key:<key_w$}  {:<9}  {c}", "counter");
                }
                Metric::Gauge { min, max, last } => {
                    let _ = writeln!(
                        s,
                        "{key:<key_w$}  {:<9}  min {min}  max {max}  last {last}",
                        "gauge"
                    );
                }
                Metric::Histogram(h) => {
                    let mean = h.mean().map_or("-".to_string(), |m| format!("{m:.2}"));
                    let _ = writeln!(
                        s,
                        "{key:<key_w$}  {:<9}  n {}  mean {mean}  min {}  max {}",
                        "histogram",
                        h.count(),
                        h.min().unwrap_or(0),
                        h.max().unwrap_or(0),
                    );
                }
            }
        }
        s
    }
}

/// Escapes `s` as a JSON string literal (shared by the trace and
/// progress writers).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_bit_length() {
        let mut h = Histogram::default();
        h.observe(0);
        h.observe(1);
        h.observe(2);
        h.observe(3);
        h.observe(1024);
        assert_eq!(h.nonzero_buckets(), vec![(0, 1), (1, 1), (3, 2), (2047, 1)]);
        assert_eq!(h.mean(), Some(206.0));
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = MetricsSet::new();
        a.inc("steps", 3);
        a.observe("m", 5);
        a.gauge_set("g", 10);
        let mut b = MetricsSet::new();
        b.inc("steps", 4);
        b.inc("other", 1);
        b.observe("m", 9);
        b.gauge_set("g", 2);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        // Structure is identical either way (gauge `last` differs by
        // design — compare through the kinds that matter).
        assert_eq!(ab.counter_value("steps"), ba.counter_value("steps"));
        assert_eq!(ab.counter_value("other"), Some(1));
        assert_eq!(ab.histogram("m"), ba.histogram("m"));
        match (ab.get("g").unwrap(), ba.get("g").unwrap()) {
            (
                Metric::Gauge { min, max, .. },
                Metric::Gauge {
                    min: m2, max: x2, ..
                },
            ) => {
                assert_eq!((min, max), (m2, x2));
                assert_eq!((*min, *max), (2, 10));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn hub_merges_submissions() {
        let hub = MetricsHub::new();
        for i in 0..4u64 {
            let mut set = MetricsSet::new();
            set.inc("runs", 1);
            set.observe("v", i);
            hub.submit(&set);
        }
        let snap = hub.snapshot();
        assert_eq!(snap.get("runs"), Some(&Metric::Counter(4)));
        match snap.get("v").unwrap() {
            Metric::Histogram(h) => assert_eq!(h.count(), 4),
            _ => unreachable!(),
        }
    }

    #[test]
    fn snapshot_json_is_deterministic_and_sorted() {
        let mut m = MetricsSet::new();
        m.inc("z.last", 1);
        m.inc("a.first", 2);
        m.observe("h", 7);
        let j1 = m.snapshot().to_json();
        let j2 = m.snapshot().to_json();
        assert_eq!(j1, j2);
        assert!(j1.starts_with("{\"schema\":\"ssr-metrics-v1\""));
        let a = j1.find("a.first").unwrap();
        let z = j1.find("z.last").unwrap();
        assert!(a < z, "keys must be sorted");
    }

    #[test]
    fn table_renders_every_kind() {
        let mut m = MetricsSet::new();
        m.inc("c", 2);
        m.gauge_set("g", 5);
        m.observe("h", 3);
        let t = m.snapshot().render_table();
        assert!(t.contains("counter") && t.contains("gauge") && t.contains("histogram"));
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn kind_mismatch_panics() {
        let mut m = MetricsSet::new();
        m.observe("k", 1);
        m.inc("k", 1);
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
