//! Per-run timelines: the `(process, rule)` moves of every step, as a
//! replayable artifact.
//!
//! A [`RunTimeline`] is recorded by
//! [`TimelineObserver`](crate::observers::TimelineObserver), serialized
//! as JSONL, and replayed through [`RunTimeline::script_daemon`] — the
//! same `Daemon::Script` mechanism the exhaustive explorer's
//! [`Witness`] uses, so a recorded trajectory can be checked against a
//! worst-case witness or re-driven deterministically.

use std::fmt::Write as _;
use std::sync::Arc;

use ssr_graph::NodeId;
use ssr_runtime::exhaustive::Witness;
use ssr_runtime::{Daemon, RuleId};

/// One step of a recorded run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TimelineStep {
    /// The `(process, rule)` moves of the step, in activation order.
    pub moves: Vec<(NodeId, RuleId)>,
    /// Whether this step completed a §2.4 round.
    pub round_completed: bool,
}

/// The recorded trajectory of one run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunTimeline {
    steps: Vec<TimelineStep>,
}

impl RunTimeline {
    /// An empty timeline.
    pub fn new() -> Self {
        RunTimeline::default()
    }

    /// Appends one step (used by the recording observer).
    pub fn push(&mut self, step: TimelineStep) {
        self.steps.push(step);
    }

    /// The recorded steps, in order.
    pub fn steps(&self) -> &[TimelineStep] {
        &self.steps
    }

    /// Number of recorded steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The activation set of each step — the schedule in the
    /// [`Witness`] sense (rule choices dropped).
    pub fn schedule(&self) -> Vec<Vec<NodeId>> {
        self.steps
            .iter()
            .map(|s| s.moves.iter().map(|&(u, _)| u).collect())
            .collect()
    }

    /// A scripted daemon replaying this timeline's schedule step by
    /// step, from the same initial configuration.
    pub fn script_daemon(&self) -> Daemon {
        Daemon::Script {
            steps: Arc::new(self.schedule()),
        }
    }

    /// Whether this timeline activates the same process sets as
    /// `witness`, step for step (order within a step is irrelevant —
    /// activation sets are sets).
    pub fn matches_witness(&self, witness: &Witness) -> bool {
        let ours = self.schedule();
        if ours.len() != witness.schedule.len() {
            return false;
        }
        ours.iter().zip(witness.schedule.iter()).all(|(a, b)| {
            let mut a = a.clone();
            let mut b = b.clone();
            a.sort_unstable();
            b.sort_unstable();
            a == b
        })
    }

    /// JSONL rendering: one line per step,
    /// `{"step":i,"moves":[[node,rule],...],"round_completed":bool}`.
    /// Deterministic — a pure function of the recorded run.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (i, s) in self.steps.iter().enumerate() {
            let _ = write!(out, "{{\"step\":{i},\"moves\":[");
            for (j, (u, r)) in s.moves.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{},{}]", u.index(), r.index());
            }
            let _ = writeln!(out, "],\"round_completed\":{}}}", s.round_completed);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tl(steps: &[&[u32]]) -> RunTimeline {
        let mut t = RunTimeline::new();
        for s in steps {
            t.push(TimelineStep {
                moves: s.iter().map(|&u| (NodeId(u), RuleId(0))).collect(),
                round_completed: false,
            });
        }
        t
    }

    fn witness(schedule: &[&[u32]]) -> Witness {
        Witness {
            init: 0,
            schedule: schedule
                .iter()
                .map(|s| s.iter().map(|&u| NodeId(u)).collect())
                .collect(),
            moves: 0,
            steps: schedule.len() as u64,
            rounds: 0,
        }
    }

    #[test]
    fn schedule_drops_rules() {
        let t = tl(&[&[0, 2], &[1]]);
        assert_eq!(
            t.schedule(),
            vec![vec![NodeId(0), NodeId(2)], vec![NodeId(1)]]
        );
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn witness_match_is_order_insensitive_within_steps() {
        let t = tl(&[&[2, 0], &[1]]);
        assert!(t.matches_witness(&witness(&[&[0, 2], &[1]])));
        assert!(!t.matches_witness(&witness(&[&[0], &[1]])));
        assert!(!t.matches_witness(&witness(&[&[0, 2]])));
    }

    #[test]
    fn jsonl_is_deterministic() {
        let mut t = tl(&[&[0]]);
        t.push(TimelineStep {
            moves: vec![(NodeId(1), RuleId(2))],
            round_completed: true,
        });
        let s = t.to_jsonl();
        assert_eq!(
            s,
            "{\"step\":0,\"moves\":[[0,0]],\"round_completed\":false}\n\
             {\"step\":1,\"moves\":[[1,2]],\"round_completed\":true}\n"
        );
        assert_eq!(s, t.to_jsonl());
    }

    #[test]
    fn script_daemon_wraps_the_schedule() {
        let t = tl(&[&[0, 1]]);
        match t.script_daemon() {
            Daemon::Script { steps } => assert_eq!(steps.len(), 1),
            _ => unreachable!(),
        }
    }
}
