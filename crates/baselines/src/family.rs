//! The baseline algorithm families: CFG-style unison with
//! uncoordinated local resets (label `cfg-unison`) and the
//! mono-initiator reset (label `mono-reset`), registrable in any
//! [`FamilyRegistry`](ssr_runtime::family::FamilyRegistry).
//!
//! Neither baseline has a closed-form paper bound — blowing a step cap
//! is a *finding* (the very pathology §1 motivates cooperation with),
//! not a campaign failure — so both report
//! [`Verdict::NoBound`](ssr_runtime::family::Verdict::NoBound).

use ssr_graph::{Graph, NodeId};
use ssr_runtime::analysis::{
    audit_runs, collect_footprints, AnalyzeFamily, AnalyzeOptions, GraphAnalysis, RngAudit,
};
use ssr_runtime::family::{
    explore_sample_seeds, AlgorithmSpec, ExecBudget, Family, FamilyProbe, FamilyRunOutcome,
    InitPlan, ProbeBridge, RunSeeds,
};
use ssr_runtime::rng::Xoshiro256StarStar;
use ssr_runtime::{Daemon, Simulator};
use ssr_unison::workloads::unison_tear_plain;
use ssr_unison::{spec, Unison};

use crate::cfg_unison::CfgUnison;
use crate::mono_reset::{MonoReset, MonoState, Phase};

/// The spec handle `cfg-unison`.
pub fn cfg_unison_spec() -> AlgorithmSpec {
    AlgorithmSpec::plain("cfg-unison")
}

/// The spec handle `mono-reset`.
pub fn mono_reset_spec() -> AlgorithmSpec {
    AlgorithmSpec::plain("mono-reset")
}

/// The CFG-style baseline family: the unison increment rule plus an
/// *uncoordinated local reset* rule — the non-cooperative ablation.
///
/// Init-plan semantics mirror the unison family (`Normal` and
/// `CorruptClocks` from all-zero clocks, `Tear` from the plain-clock
/// gradient, `Arbitrary` from the sampler); the target is the unison
/// safety predicate.
#[derive(Clone, Copy, Debug, Default)]
pub struct CfgUnisonFamily;

impl CfgUnisonFamily {
    /// The analysis seed set: `γ_init`, the torn gradient, and
    /// `samples` arbitrary clock vectors.
    fn seed_set(graph: &Graph, scenario_seed: u64, samples: usize) -> (CfgUnison, Vec<Vec<u64>>) {
        let nn = graph.node_count() as u64;
        let cfg = CfgUnison::for_graph(graph);
        let period = cfg.period();
        let mut inits = vec![
            cfg.initial_config(graph),
            unison_tear_plain(graph, period, (nn / 2).max(1)),
        ];
        for s in explore_sample_seeds(scenario_seed, samples) {
            inits.push(cfg.arbitrary_config(graph, s));
        }
        (cfg, inits)
    }
}

impl Family for CfgUnisonFamily {
    fn id(&self) -> &str {
        "cfg-unison"
    }

    fn run(
        &self,
        graph: &Graph,
        init: &InitPlan,
        daemon: &Daemon,
        seeds: RunSeeds,
        budget: ExecBudget,
        probe: Option<&mut dyn FamilyProbe>,
    ) -> FamilyRunOutcome {
        let nn = graph.node_count() as u64;
        let cfg = CfgUnison::for_graph(graph);
        let period = cfg.period();
        let init_cfg = match init {
            InitPlan::Normal | InitPlan::CorruptClocks { .. } => cfg.initial_config(graph),
            InitPlan::Tear { gap } => unison_tear_plain(graph, period, gap.resolve(nn)),
            InitPlan::Arbitrary => cfg.arbitrary_config(graph, seeds.init),
        };
        let mut sim = Simulator::new(graph, cfg, init_cfg, daemon.clone(), seeds.sim);
        if let InitPlan::CorruptClocks { k } = init {
            let mut rng = Xoshiro256StarStar::seed_from_u64(seeds.fault);
            ssr_runtime::faults::corrupt_random(
                &mut sim,
                k.resolve(nn).min(nn) as usize,
                &mut rng,
                |_, r| r.below(period),
            );
            sim.reset_stats();
        }
        let mut bridge = ProbeBridge::new(probe);
        bridge.install_trace(&mut sim);
        let out = sim
            .execution()
            .cap(budget.cap)
            .intra_threads(budget.intra_threads)
            .observe(&mut bridge)
            .until(|gr, st| spec::safety_holds(gr, st, period))
            .run();
        bridge.collect_trace(&mut sim);
        let mut fo = FamilyRunOutcome::from_run(&out, sim.stats().steps);
        fo.max_moves_per_process = sim.stats().max_moves_per_process();
        // No closed-form bound: blowing the cap is a finding, not a
        // campaign failure.
        fo
    }

    fn analysis(&self) -> Option<&dyn AnalyzeFamily> {
        Some(self)
    }
}

impl AnalyzeFamily for CfgUnisonFamily {
    fn rule_names(&self, graph: &Graph) -> Vec<String> {
        ssr_runtime::analysis::rule_names(&CfgUnison::for_graph(graph))
    }

    fn footprints(&self, graph: &Graph, graph_name: &str, opts: &AnalyzeOptions) -> GraphAnalysis {
        let (algo, inits) = Self::seed_set(graph, opts.scenario_seed, opts.samples);
        collect_footprints(graph, graph_name, &algo, &inits, opts)
    }

    fn audit(&self, graph: &Graph, opts: &AnalyzeOptions) -> RngAudit {
        let (algo, inits) = Self::seed_set(graph, opts.scenario_seed, opts.samples);
        audit_runs(graph, &algo, &inits, opts)
    }
}

/// The mono-initiator reset baseline family (root = node 0): every
/// inconsistency report funnels to one fixed root, which runs a single
/// global broadcast-feedback reset wave.
///
/// The baseline is non-self-stabilizing in general, so every init plan
/// starts from `γ_init`; `CorruptClocks` then corrupts `k` random
/// clocks (phases reset to idle) and measures recovery to the normal
/// configurations.
#[derive(Clone, Copy, Debug, Default)]
pub struct MonoResetFamily;

impl MonoResetFamily {
    /// The analysis seed set: `γ_init` plus `samples` configurations
    /// with arbitrary wave phases and clocks, so every wave rule
    /// (request, broadcast, feedback, completion) gets exercised.
    #[allow(clippy::type_complexity)]
    fn seed_set(
        graph: &Graph,
        scenario_seed: u64,
        samples: usize,
    ) -> (MonoReset<Unison>, Vec<Vec<MonoState<u64>>>) {
        let mono = MonoReset::new(graph, Unison::for_graph(graph), NodeId(0));
        let period = mono.input().period();
        let mut inits = vec![mono.initial_config(graph)];
        for s in explore_sample_seeds(scenario_seed, samples) {
            let mut rng = Xoshiro256StarStar::seed_from_u64(s);
            inits.push(
                graph
                    .nodes()
                    .map(|_| MonoState {
                        phase: match rng.below(4) {
                            0 => Phase::Idle,
                            1 => Phase::Req,
                            2 => Phase::RB,
                            _ => Phase::RF,
                        },
                        inner: rng.below(period),
                    })
                    .collect(),
            );
        }
        (mono, inits)
    }
}

impl Family for MonoResetFamily {
    fn id(&self) -> &str {
        "mono-reset"
    }

    fn run(
        &self,
        graph: &Graph,
        init: &InitPlan,
        daemon: &Daemon,
        seeds: RunSeeds,
        budget: ExecBudget,
        probe: Option<&mut dyn FamilyProbe>,
    ) -> FamilyRunOutcome {
        let nn = graph.node_count() as u64;
        let mono = MonoReset::new(graph, Unison::for_graph(graph), NodeId(0));
        let period = mono.input().period();
        let check = MonoReset::new(graph, Unison::for_graph(graph), NodeId(0));
        let init_cfg = mono.initial_config(graph);
        let mut sim = Simulator::new(graph, mono, init_cfg, daemon.clone(), seeds.sim);
        if let InitPlan::CorruptClocks { k } = init {
            let mut rng = Xoshiro256StarStar::seed_from_u64(seeds.fault);
            ssr_runtime::faults::corrupt_random(
                &mut sim,
                k.resolve(nn).min(nn) as usize,
                &mut rng,
                |_, r| MonoState {
                    phase: Phase::Idle,
                    inner: r.below(period),
                },
            );
            sim.reset_stats();
        }
        let mut bridge = ProbeBridge::new(probe);
        bridge.install_trace(&mut sim);
        let out = sim
            .execution()
            .cap(budget.cap)
            .intra_threads(budget.intra_threads)
            .observe(&mut bridge)
            .until(|gr, st| check.is_normal_config(gr, st))
            .run();
        bridge.collect_trace(&mut sim);
        let mut fo = FamilyRunOutcome::from_run(&out, sim.stats().steps);
        fo.max_moves_per_process = sim.stats().max_moves_per_process();
        fo
    }

    fn analysis(&self) -> Option<&dyn AnalyzeFamily> {
        Some(self)
    }
}

impl AnalyzeFamily for MonoResetFamily {
    fn rule_names(&self, graph: &Graph) -> Vec<String> {
        ssr_runtime::analysis::rule_names(&MonoReset::new(
            graph,
            Unison::for_graph(graph),
            NodeId(0),
        ))
    }

    fn footprints(&self, graph: &Graph, graph_name: &str, opts: &AnalyzeOptions) -> GraphAnalysis {
        let (algo, inits) = Self::seed_set(graph, opts.scenario_seed, opts.samples);
        collect_footprints(graph, graph_name, &algo, &inits, opts)
    }

    fn audit(&self, graph: &Graph, opts: &AnalyzeOptions) -> RngAudit {
        let (algo, inits) = Self::seed_set(graph, opts.scenario_seed, opts.samples);
        audit_runs(graph, &algo, &inits, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_graph::generators;
    use ssr_runtime::family::{Amount, Verdict};

    fn seeds() -> RunSeeds {
        RunSeeds {
            init: 11,
            sim: 12,
            fault: 13,
        }
    }

    #[test]
    fn cfg_baseline_recovers_and_reports_no_bound() {
        let g = generators::ring(8);
        let out = CfgUnisonFamily.run(
            &g,
            &InitPlan::Arbitrary,
            &Daemon::RandomSubset { p: 0.5 },
            seeds(),
            2_000_000.into(),
            None,
        );
        assert_eq!(out.verdict, Verdict::NoBound);
        assert!(out.reached, "small rings recover within the cap");
    }

    #[test]
    fn mono_reset_recovers_from_corruption() {
        let g = generators::ring(8);
        let out = MonoResetFamily.run(
            &g,
            &InitPlan::CorruptClocks {
                k: Amount::Fixed(2),
            },
            &Daemon::RandomSubset { p: 0.5 },
            seeds(),
            2_000_000.into(),
            None,
        );
        assert_eq!(out.verdict, Verdict::NoBound);
        assert!(out.reached, "{out:?}");
    }

    #[test]
    fn baselines_have_no_explore_hook_or_requirements() {
        assert!(Family::explore(&CfgUnisonFamily).is_none());
        assert!(Family::explore(&MonoResetFamily).is_none());
        let g = generators::path(3);
        assert!(CfgUnisonFamily.requirements(&g).is_none());
        assert!(MonoResetFamily.requirements(&g).is_none());
        assert_eq!(cfg_unison_spec().label(), "cfg-unison");
        assert_eq!(mono_reset_spec().label(), "mono-reset");
    }
}
